#include "rules/rule.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "packet/headers.hpp"

namespace jaal::rules {
namespace {

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (char c : s) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == sep && !in_quotes) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

[[nodiscard]] AddrSpec::Block parse_cidr_block(const std::string& body) {
  AddrSpec::Block block;
  const std::size_t slash = body.find('/');
  if (slash == std::string::npos) {
    block.addr = packet::ip_from_string(body);
    block.prefix = 32;
  } else {
    block.addr = packet::ip_from_string(body.substr(0, slash));
    const int prefix = std::stoi(body.substr(slash + 1));
    if (prefix < 0 || prefix > 32) {
      throw std::invalid_argument("parse_rule: bad prefix in '" + body + "'");
    }
    block.prefix = static_cast<std::uint32_t>(prefix);
  }
  return block;
}

[[nodiscard]] AddrSpec parse_addr(const std::string& token,
                                  const RuleVars& vars) {
  if (token == "any") return AddrSpec{};
  if (token == "$HOME_NET") return vars.home_net;
  if (token == "$EXTERNAL_NET") {
    AddrSpec ext = vars.home_net;
    if (!ext.any) ext.negated = !ext.negated;
    return ext;
  }
  AddrSpec spec;
  spec.any = false;
  std::string body = token;
  if (!body.empty() && body[0] == '!') {
    spec.negated = true;
    body = body.substr(1);
  }
  if (body.size() >= 2 && body.front() == '[' && body.back() == ']') {
    // Bracketed list: union of CIDR blocks.
    for (const std::string& part : split(body.substr(1, body.size() - 2),
                                         ',')) {
      const std::string item = trim(part);
      if (item.empty()) {
        throw std::invalid_argument("parse_rule: empty address list entry");
      }
      spec.blocks.push_back(parse_cidr_block(item));
    }
    if (spec.blocks.empty()) {
      throw std::invalid_argument("parse_rule: empty address list");
    }
  } else {
    spec.blocks.push_back(parse_cidr_block(body));
  }
  return spec;
}

/// Parses a single port or a Snort range "lo:hi" / ":hi" / "lo:".
[[nodiscard]] PortSpec::Range parse_port_range(const std::string& body) {
  auto parse_bound = [](const std::string& s) -> std::uint16_t {
    const unsigned long v = std::stoul(s);
    if (v > 65535) {
      throw std::invalid_argument("parse_rule: port out of range");
    }
    return static_cast<std::uint16_t>(v);
  };
  PortSpec::Range range;
  const std::size_t colon = body.find(':');
  if (colon == std::string::npos) {
    range.lo = range.hi = parse_bound(body);
  } else {
    const std::string lo = trim(body.substr(0, colon));
    const std::string hi = trim(body.substr(colon + 1));
    range.lo = lo.empty() ? 0 : parse_bound(lo);
    range.hi = hi.empty() ? 65535 : parse_bound(hi);
    if (range.lo > range.hi) {
      throw std::invalid_argument("parse_rule: inverted port range '" + body +
                                  "'");
    }
  }
  return range;
}

[[nodiscard]] PortSpec parse_port(const std::string& token) {
  if (token == "any") return PortSpec{};
  PortSpec spec;
  spec.any = false;
  std::string body = token;
  if (!body.empty() && body[0] == '!') {
    spec.negated = true;
    body = body.substr(1);
  }
  if (body.size() >= 2 && body.front() == '[' && body.back() == ']') {
    for (const std::string& part : split(body.substr(1, body.size() - 2),
                                         ',')) {
      const std::string item = trim(part);
      if (item.empty()) {
        throw std::invalid_argument("parse_rule: empty port list entry");
      }
      spec.ranges.push_back(parse_port_range(item));
    }
    if (spec.ranges.empty()) {
      throw std::invalid_argument("parse_rule: empty port list");
    }
  } else {
    spec.ranges.push_back(parse_port_range(body));
  }
  return spec;
}

/// Extracts "count N" / "seconds S" style key-value pairs from an option
/// body like "track by_src, count 5, seconds 60".
[[nodiscard]] DetectionFilter parse_detection_filter(const std::string& body) {
  DetectionFilter f;
  for (const std::string& part : split(body, ',')) {
    std::istringstream is(trim(part));
    std::string key;
    is >> key;
    if (key == "count") {
      is >> f.count;
    } else if (key == "seconds") {
      is >> f.seconds;
    }
    // "track by_src" and "type ..." accepted and ignored: Jaal's inference
    // aggregates globally, so tracking scope is handled by the aggregator.
  }
  if (f.count == 0) {
    throw std::invalid_argument("detection_filter: count must be positive");
  }
  return f;
}

}  // namespace

bool AddrSpec::Block::contains(std::uint32_t ip) const noexcept {
  const std::uint32_t mask =
      prefix == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix);
  return (ip & mask) == (addr & mask);
}

bool AddrSpec::matches(std::uint32_t ip) const noexcept {
  if (any) return true;
  bool inside = false;
  for (const Block& b : blocks) inside |= b.contains(ip);
  return negated ? !inside : inside;
}

AddrSpec AddrSpec::cidr(std::uint32_t addr, std::uint32_t prefix,
                        bool negated) {
  AddrSpec spec;
  spec.any = false;
  spec.negated = negated;
  spec.blocks.push_back({addr, prefix});
  return spec;
}

bool PortSpec::matches(std::uint16_t port) const noexcept {
  if (any) return true;
  bool inside = false;
  for (const Range& r : ranges) inside |= r.contains(port);
  return negated ? !inside : inside;
}

PortSpec PortSpec::exact(std::uint16_t port) {
  PortSpec spec;
  spec.any = false;
  spec.ranges.push_back({port, port});
  return spec;
}

bool Rule::matches_packet(const packet::PacketRecord& pkt) const noexcept {
  if (proto == "tcp" && pkt.ip.protocol != 6) return false;
  if (!src_addr.matches(pkt.ip.src_ip)) return false;
  if (!dst_addr.matches(pkt.ip.dst_ip)) return false;
  if (!src_port.matches(pkt.tcp.src_port)) return false;
  if (!dst_port.matches(pkt.tcp.dst_port)) return false;
  if (flags && pkt.tcp.flags != *flags) return false;
  if (window && pkt.tcp.window != *window) return false;
  return true;
}

std::uint8_t parse_flag_letters(const std::string& letters) {
  std::uint8_t out = 0;
  for (char c : letters) {
    switch (c) {
      case 'F': out |= packet::flag_bit(packet::TcpFlag::kFin); break;
      case 'S': out |= packet::flag_bit(packet::TcpFlag::kSyn); break;
      case 'R': out |= packet::flag_bit(packet::TcpFlag::kRst); break;
      case 'P': out |= packet::flag_bit(packet::TcpFlag::kPsh); break;
      case 'A': out |= packet::flag_bit(packet::TcpFlag::kAck); break;
      case 'U': out |= packet::flag_bit(packet::TcpFlag::kUrg); break;
      default:
        throw std::invalid_argument(std::string("unknown TCP flag letter '") +
                                    c + "'");
    }
  }
  return out;
}

Rule parse_rule(const std::string& line, const RuleVars& vars) {
  const std::size_t open = line.find('(');
  const std::size_t close = line.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    throw std::invalid_argument("parse_rule: missing option parentheses");
  }

  // Header: action proto src_addr src_port -> dst_addr dst_port
  std::istringstream head(line.substr(0, open));
  Rule rule;
  std::string src_a, src_p, arrow, dst_a, dst_p;
  if (!(head >> rule.action >> rule.proto >> src_a >> src_p >> arrow >> dst_a >>
        dst_p)) {
    throw std::invalid_argument("parse_rule: malformed rule header");
  }
  if (arrow != "->") {
    throw std::invalid_argument("parse_rule: expected '->' in header");
  }
  if (rule.proto != "tcp") {
    throw std::invalid_argument("parse_rule: only tcp rules are supported");
  }
  rule.src_addr = parse_addr(src_a, vars);
  rule.src_port = parse_port(src_p);
  rule.dst_addr = parse_addr(dst_a, vars);
  rule.dst_port = parse_port(dst_p);

  // Options: key[: value]; ...
  for (const std::string& raw : split(line.substr(open + 1, close - open - 1),
                                      ';')) {
    const std::string opt = trim(raw);
    if (opt.empty()) continue;
    const std::size_t colon = opt.find(':');
    const std::string key = trim(colon == std::string::npos ? opt
                                                            : opt.substr(0, colon));
    std::string value =
        colon == std::string::npos ? "" : trim(opt.substr(colon + 1));
    // Strip surrounding quotes.
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }

    if (key == "msg") {
      rule.msg = value;
    } else if (key == "sid") {
      rule.sid = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "rev") {
      rule.rev = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "flags") {
      rule.flags = parse_flag_letters(value);
    } else if (key == "window") {
      rule.window = static_cast<std::uint16_t>(std::stoul(value));
    } else if (key == "content") {
      rule.content = value;
    } else if (key == "detection_filter" || key == "threshold") {
      rule.detection_filter = parse_detection_filter(value);
    } else if (key == "jaal_raw_count") {
      rule.raw_count = static_cast<std::uint32_t>(std::stoul(value));
    } else if (key == "jaal_variance") {
      const auto parts = split(value, ',');
      if (parts.size() != 2) {
        throw std::invalid_argument("jaal_variance: expected '<field>, <tau_v>'");
      }
      VarianceCheck vc;
      vc.field = packet::field_from_name(trim(parts[0]));
      vc.threshold = std::stod(trim(parts[1]));
      rule.variance = vc;
    } else if (key == "flow" || key == "depth" || key == "classtype" ||
               key == "metadata" || key == "reference" || key == "priority") {
      // Accepted for Snort compatibility; not needed for header inference.
    } else {
      throw std::invalid_argument("parse_rule: unknown option '" + key + "'");
    }
  }
  return rule;
}

std::vector<Rule> parse_rules(const std::string& text, const RuleVars& vars) {
  std::vector<Rule> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    out.push_back(parse_rule(t, vars));
  }
  return out;
}

std::vector<Rule> load_rules_file(const std::string& path,
                                  const RuleVars& vars) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("load_rules_file: cannot open " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_rules(text.str(), vars);
}

std::string default_ruleset_text() {
  // Thresholds (count, tau_v) are per-attack parameters a system
  // administrator configures (§5.2).  Counts are per inference window and
  // calibrated for a nominal ~2000-packet epoch with the paper's 10% attack
  // injection cap; callers evaluating larger/smaller windows scale them via
  // EngineConfig::tau_c_scale.
  //
  // The SSH rule is Jaal's *equivalent* of Snort sid 19559: the original
  // keys on the "SSH-" payload banner plus a per-source 5-in-60s filter,
  // which a headers-only summary cannot see; repeated short login attempts
  // are instead visible as a burst of SYNs to port 22 (§5.2: "We propose
  // simple new, equivalent rules for those that cannot be automatically
  // transformed").
  return R"(# Jaal built-in transport-layer ruleset (paper §8 attacks)
alert tcp any any -> $HOME_NET 80 (msg:"SYN flood"; flags:S; detection_filter: track by_src, count 190, seconds 2; jaal_raw_count: 80; classtype:attempted-dos; sid:1000001; rev:1;)
alert tcp any any -> $HOME_NET 80 (msg:"Distributed SYN flood"; flags:S; detection_filter: track by_src, count 190, seconds 2; jaal_raw_count: 80; jaal_variance: ip.src, 0.005; classtype:attempted-dos; sid:1000002; rev:1;)
alert tcp any any -> $HOME_NET any (msg:"Distributed port scan"; flags:S; detection_filter: count 200, seconds 2; jaal_raw_count: 120; jaal_variance: tcp.dst_port, 0.004; classtype:attempted-recon; sid:1000003; rev:1;)
alert tcp $EXTERNAL_NET any -> $HOME_NET 22 (msg:"INDICATOR-SCAN SSH brute force login attempt"; flags:S; detection_filter: track by_src, count 165, seconds 2; jaal_raw_count: 22; metadata:service ssh; classtype:misc-activity; sid:19559; rev:5;)
alert tcp any any -> $HOME_NET any (msg:"Sockstress zero-window DoS"; flags:A; window:0; detection_filter: count 4, seconds 2; jaal_raw_count: 3; classtype:attempted-dos; sid:1000005; rev:1;)
alert tcp any any -> any 23 (msg:"Mirai telnet scan"; flags:S; detection_filter: count 50, seconds 2; jaal_raw_count: 30; jaal_variance: ip.dst, 0.005; sid:1000006; rev:1;)
alert tcp any any -> any 2323 (msg:"Mirai telnet-alt scan"; flags:S; detection_filter: count 6, seconds 2; jaal_raw_count: 4; jaal_variance: ip.dst, 0.005; sid:1000007; rev:1;)
)";
}

}  // namespace jaal::rules
