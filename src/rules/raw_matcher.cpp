#include "rules/raw_matcher.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "linalg/stats.hpp"

namespace jaal::rules {

RawMatcher::RawMatcher(std::vector<Rule> rules) : rules_(std::move(rules)) {}

std::vector<RawAlert> RawMatcher::analyze(
    std::span<const packet::PacketRecord> window, double window_seconds,
    double threshold_scale) const {
  std::vector<RawAlert> alerts;
  for (const Rule& rule : rules_) {
    std::uint64_t matched = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> per_source;
    linalg::RunningStats field_stats;
    for (const auto& pkt : window) {
      if (!rule.matches_packet(pkt)) continue;
      ++matched;
      ++per_source[pkt.ip.src_ip];
      if (rule.variance) {
        const auto v = packet::to_normalized_vector(pkt);
        field_stats.add(v[packet::index(rule.variance->field)]);
      }
    }
    if (matched == 0) continue;

    std::uint64_t max_src = 0;
    for (const auto& [src, count] : per_source) {
      max_src = std::max(max_src, count);
    }

    // Threshold, scaled down when we only observed a fraction of the
    // filter's period (e.g. a 2 s window against a 60 s filter).
    std::uint64_t threshold = 1;
    if (rule.detection_filter) {
      double t = rule.detection_filter->count * threshold_scale;
      if (window_seconds > 0.0 &&
          window_seconds < rule.detection_filter->seconds) {
        t *= window_seconds / rule.detection_filter->seconds;
      }
      threshold = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::ceil(t)));
    }
    if (max_src < threshold && matched < threshold) continue;

    RawAlert alert;
    alert.sid = rule.sid;
    alert.msg = rule.msg;
    alert.matched_packets = matched;
    alert.max_per_source = max_src;
    if (rule.variance) {
      alert.variance_triggered =
          field_stats.variance() >= rule.variance->threshold;
      if (!alert.variance_triggered) continue;  // equivalent rule not met
    }
    alerts.push_back(std::move(alert));
  }
  return alerts;
}

}  // namespace jaal::rules
