// Snort-equivalent raw-packet detection engine.
//
// Used in three places that need ground-truth-style raw analysis:
//  * the feedback loop (§5.3 case 3): uncertain centroids trigger retrieval
//    of raw packets, which are then "done by pattern matching using
//    traditional Snort rules";
//  * the Fig. 7 vanilla baseline (copy everything to a central Snort);
//  * baseline comparisons (reservoir sampling, Table 1).
#pragma once

#include <span>
#include <vector>

#include "rules/rule.hpp"

namespace jaal::rules {

struct RawAlert {
  std::uint32_t sid = 0;
  std::string msg;
  std::uint64_t matched_packets = 0;
  /// Highest per-source match count (what "track by_src" thresholds on).
  std::uint64_t max_per_source = 0;
  bool variance_triggered = false;  ///< Postprocessor-equivalent outcome.
};

class RawMatcher {
 public:
  explicit RawMatcher(std::vector<Rule> rules);

  /// Analyzes one time window of packets.  A rule fires when
  ///  * its signature matches at least detection_filter.count packets
  ///    (tracked per source, scaled to the window length when the filter's
  ///    period exceeds it), and
  ///  * its variance check (if any) passes over the matching packets.
  /// `window_seconds` is the span the packets cover (used for threshold
  /// scaling); pass 0 to apply thresholds unscaled.  `threshold_scale`
  /// multiplies every count threshold — callers evaluating windows of
  /// non-nominal packet volume (or sampled views) adjust with it.
  [[nodiscard]] std::vector<RawAlert> analyze(
      std::span<const packet::PacketRecord> window,
      double window_seconds = 0.0, double threshold_scale = 1.0) const;

  [[nodiscard]] const std::vector<Rule>& rules() const noexcept {
    return rules_;
  }

 private:
  std::vector<Rule> rules_;
};

}  // namespace jaal::rules
