#include "rules/question.hpp"

#include <cmath>
#include <limits>

namespace jaal::rules {

using packet::FieldIndex;

double Question::distance(std::span<const double> x) const noexcept {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < q.size(); ++j) {
    if (q[j] == kWildcard) continue;
    sum += std::abs(q[j] - x[j]);
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::infinity();
  return sum / static_cast<double>(n);
}

std::size_t Question::constrained_fields() const noexcept {
  std::size_t n = 0;
  for (double v : q) n += (v != kWildcard) ? 1 : 0;
  return n;
}

namespace {

void pin(Question& question, FieldIndex f, double raw_value) {
  question.q[packet::index(f)] = packet::normalize_field(f, raw_value);
}

void pin_addr(Question& question, FieldIndex f, const AddrSpec& spec) {
  if (spec.any || spec.negated) return;  // unconstrainable as a point value
  // Midpoint of the covered span: worst-case distance for any in-range
  // address is half the (normalized) span width.  For block lists, use the
  // span from the lowest block start to the highest block end.
  std::uint32_t lo = ~std::uint32_t{0};
  std::uint32_t hi = 0;
  for (const AddrSpec::Block& b : spec.blocks) {
    const std::uint32_t mask =
        b.prefix == 0 ? 0 : ~std::uint32_t{0} << (32 - b.prefix);
    lo = std::min(lo, b.addr & mask);
    hi = std::max(hi, (b.addr & mask) | ~mask);
  }
  pin(question, f, (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0);
}

}  // namespace

Question translate(const Rule& rule) {
  Question question;
  question.q.fill(kWildcard);
  question.sid = rule.sid;
  question.msg = rule.msg;

  pin_addr(question, FieldIndex::kIpSrcAddr, rule.src_addr);
  pin_addr(question, FieldIndex::kIpDstAddr, rule.dst_addr);
  if (rule.src_port.is_exact_port()) {
    pin(question, FieldIndex::kTcpSrcPort, rule.src_port.value());
  }
  if (rule.dst_port.is_exact_port()) {
    pin(question, FieldIndex::kTcpDstPort, rule.dst_port.value());
  }
  if (rule.flags) pin(question, FieldIndex::kTcpFlags, *rule.flags);
  if (rule.window) pin(question, FieldIndex::kTcpWindow, *rule.window);

  if (rule.detection_filter) {
    question.tau_c = rule.detection_filter->count;
    question.window_seconds = rule.detection_filter->seconds;
  }
  question.variance = rule.variance;
  return question;
}

std::vector<Question> translate(const std::vector<Rule>& rules) {
  std::vector<Question> out;
  out.reserve(rules.size());
  for (const Rule& r : rules) out.push_back(translate(r));
  return out;
}

}  // namespace jaal::rules
