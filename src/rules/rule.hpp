// Snort-subset rule model and parser.
//
// Jaal translates Snort signature rules into question vectors (§5.2).  This
// module models the rule subset relevant to transport-layer attacks (the
// paper's threat model): 5-tuple constraints, TCP flag tests, window tests,
// detection_filter thresholds — plus Jaal's "equivalent rules" for
// preprocessor-style distributed attacks, expressed as a variance check on
// one header field (Algorithm 2).
//
// Grammar (one rule per line; '#' starts a comment):
//   alert tcp <addr> <port> -> <addr> <port> ( option; option; ... )
// where <addr> is any | $HOME_NET | $EXTERNAL_NET | a.b.c.d | a.b.c.d/nn
// and <port> is any | integer.
// Options understood: msg, sid, rev, flags, window, content, depth,
// detection_filter (track by_src, count N, seconds S), classtype, metadata,
// flow (accepted, ignored), threshold (as detection_filter), and the Jaal
// extension `jaal_variance: <field>, <tau_v>`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "packet/fields.hpp"

namespace jaal::rules {

/// Address constraint: `any`, a CIDR block, or a bracketed list of CIDR
/// blocks ("[10.0.0.0/8,192.168.1.0/24]"), optionally negated with '!'
/// (e.g. $EXTERNAL_NET = !$HOME_NET, or "![10.0.0.0/8]").
struct AddrSpec {
  struct Block {
    std::uint32_t addr = 0;   ///< Network address, host order.
    std::uint32_t prefix = 32;

    [[nodiscard]] bool contains(std::uint32_t ip) const noexcept;
    bool operator==(const Block&) const = default;
  };

  bool any = true;
  bool negated = false;       ///< Match = NOT in any block.
  std::vector<Block> blocks;  ///< Union of CIDR blocks (>=1 when !any).

  [[nodiscard]] bool matches(std::uint32_t ip) const noexcept;
  /// True when the spec pins one exact host address.
  [[nodiscard]] bool is_exact_host() const noexcept {
    return !any && !negated && blocks.size() == 1 && blocks[0].prefix == 32;
  }
  /// Convenience accessors for the single-block case (the common one).
  [[nodiscard]] std::uint32_t addr() const noexcept {
    return blocks.empty() ? 0 : blocks[0].addr;
  }
  [[nodiscard]] std::uint32_t prefix() const noexcept {
    return blocks.empty() ? 32 : blocks[0].prefix;
  }

  /// Builds a single-block spec.
  [[nodiscard]] static AddrSpec cidr(std::uint32_t addr, std::uint32_t prefix,
                                     bool negated = false);
};

/// Port constraint: `any`, a single port, a Snort range "lo:hi" (either
/// bound omittable: ":1024", "1024:"), or a bracketed list mixing both
/// ("[22,80,8000:8080]"), optionally negated with '!'.
struct PortSpec {
  struct Range {
    std::uint16_t lo = 0;
    std::uint16_t hi = 65535;

    [[nodiscard]] bool contains(std::uint16_t p) const noexcept {
      return p >= lo && p <= hi;
    }
    bool operator==(const Range&) const = default;
  };

  bool any = true;
  bool negated = false;
  std::vector<Range> ranges;

  [[nodiscard]] bool matches(std::uint16_t port) const noexcept;
  /// True when the spec pins exactly one port.
  [[nodiscard]] bool is_exact_port() const noexcept {
    return !any && !negated && ranges.size() == 1 &&
           ranges[0].lo == ranges[0].hi;
  }
  [[nodiscard]] std::uint16_t value() const noexcept {
    return ranges.empty() ? 0 : ranges[0].lo;
  }

  /// Builds a single-port spec.
  [[nodiscard]] static PortSpec exact(std::uint16_t port);
};

/// detection_filter / threshold option: alert only after `count` matching
/// packets within `seconds`, tracked by source.
struct DetectionFilter {
  std::uint32_t count = 1;
  double seconds = 60.0;
};

/// Jaal's preprocessor-equivalent extension: alert when the variance of a
/// header field across matching packets exceeds tau_v (Algorithm 2).
struct VarianceCheck {
  packet::FieldIndex field = packet::FieldIndex::kTcpDstPort;
  double threshold = 0.0;  ///< tau_v in normalized-field units.
};

struct Rule {
  std::string action = "alert";
  std::string proto = "tcp";
  AddrSpec src_addr;
  PortSpec src_port;
  AddrSpec dst_addr;
  PortSpec dst_port;

  std::string msg;
  std::uint32_t sid = 0;
  std::uint32_t rev = 0;
  /// Exact TCP flag byte the packet must carry (flags:S -> SYN only).
  std::optional<std::uint8_t> flags;
  std::optional<std::uint16_t> window;
  std::optional<std::string> content;  ///< Accepted; headers-only engines ignore it.
  std::optional<DetectionFilter> detection_filter;
  std::optional<VarianceCheck> variance;
  /// Jaal extension `jaal_raw_count`: the exact-match packet count that
  /// confirms this rule during raw verification (feedback case 3 and the
  /// verify-all-alerts mode).  Summary-domain counts (detection_filter)
  /// absorb near-miss benign centroids under normalized distances; exact
  /// matching does not, so its confirmation threshold is separate and
  /// typically much lower.  Absent: a kRawEvidenceFactor fraction of the
  /// detection_filter count is used.
  std::optional<std::uint32_t> raw_count;

  /// Does the packet's 5-tuple + header constraints satisfy this rule
  /// (ignoring detection_filter counting)?
  [[nodiscard]] bool matches_packet(const packet::PacketRecord& pkt) const noexcept;
};

/// Variable bindings used during parsing.
struct RuleVars {
  AddrSpec home_net;  ///< $HOME_NET; $EXTERNAL_NET is its negation.
};

/// Parses one rule line.  Throws std::invalid_argument with a diagnostic on
/// malformed input.
[[nodiscard]] Rule parse_rule(const std::string& line, const RuleVars& vars);

/// Parses a rule file (skips blanks and comments).
[[nodiscard]] std::vector<Rule> parse_rules(const std::string& text,
                                            const RuleVars& vars);

/// Loads and parses a rule file from disk.  Throws std::runtime_error if
/// the file cannot be read, std::invalid_argument on malformed rules.
[[nodiscard]] std::vector<Rule> load_rules_file(const std::string& path,
                                                const RuleVars& vars);

/// Parses Snort flag letters ("S", "SA", "FPA"...) into a flag byte.
[[nodiscard]] std::uint8_t parse_flag_letters(const std::string& letters);

/// The built-in rule set covering the paper's five evaluation attacks plus
/// the Mirai scan, written against a given victim/home network.
[[nodiscard]] std::string default_ruleset_text();

}  // namespace jaal::rules
