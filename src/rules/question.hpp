// Rule -> question-vector translation (§5.2, "Translator").
//
// A question vector q has length p = 18; entry j is the normalized value the
// rule pins for header field j, or -1 when the rule does not constrain that
// field.  The similarity estimator (Algorithm 1) compares q against summary
// centroids with the normalized L1 distance of Eq. 5.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rules/rule.hpp"

namespace jaal::rules {

/// Wildcard marker inside a question vector.
inline constexpr double kWildcard = -1.0;

struct Question {
  std::array<double, packet::kFieldCount> q{};  ///< Normalized or kWildcard.
  std::uint32_t sid = 0;
  std::string msg;
  /// Minimum matched-packet count before alerting (tau_c, Algorithm 1);
  /// carried over from the rule's detection_filter (default 1).
  std::uint64_t tau_c = 1;
  /// Time window the count applies to (from detection_filter.seconds).
  double window_seconds = 60.0;
  /// Postprocessor check for preprocessor-style distributed attacks.
  std::optional<VarianceCheck> variance;

  /// Eq. 5: mean |q_j - x_j| over constrained fields j.  Returns +inf for a
  /// fully wildcarded question (nothing to match on).
  [[nodiscard]] double distance(std::span<const double> x) const noexcept;

  /// Number of constrained (non-wildcard) entries.
  [[nodiscard]] std::size_t constrained_fields() const noexcept;
};

/// Translates one rule.  Address constraints map to the midpoint of their
/// CIDR range (minimizing worst-case distance for in-range traffic); negated
/// specs ($EXTERNAL_NET) cannot be pinned to a value and stay wildcards.
[[nodiscard]] Question translate(const Rule& rule);

/// Translates a whole ruleset.
[[nodiscard]] std::vector<Question> translate(const std::vector<Rule>& rules);

}  // namespace jaal::rules
