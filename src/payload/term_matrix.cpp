#include "payload/term_matrix.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "linalg/svd.hpp"

namespace jaal::payload {
namespace {

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Overlap-counting case-insensitive substring search.
[[nodiscard]] std::uint32_t count_occurrences(const std::string& haystack,
                                              const std::string& needle) {
  std::uint32_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  return count;
}

}  // namespace

Vocabulary::Vocabulary(std::vector<std::string> terms) {
  if (terms.empty()) {
    throw std::invalid_argument("Vocabulary: no terms");
  }
  terms_.reserve(terms.size());
  for (auto& t : terms) {
    if (t.empty()) throw std::invalid_argument("Vocabulary: empty term");
    terms_.push_back(lower(t));
  }
}

std::size_t Vocabulary::index_of(std::string_view term) const {
  const std::string needle = lower(term);
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i] == needle) return i;
  }
  throw std::invalid_argument("Vocabulary: unknown term '" +
                              std::string(term) + "'");
}

std::vector<std::uint32_t> Vocabulary::count(std::string_view payload) const {
  const std::string hay = lower(payload);
  std::vector<std::uint32_t> out;
  out.reserve(terms_.size());
  for (const std::string& term : terms_) {
    out.push_back(count_occurrences(hay, term));
  }
  return out;
}

Vocabulary default_vocabulary() {
  // The paper names ".exe" (executable transfer) and the SSH banner; the
  // rest are common infection/exfiltration indicators a DPI rule set
  // would track.
  return Vocabulary({".exe", "ssh-", "/bin/sh", "powershell", "cmd.exe",
                     "wget ", "base64,", "eval(", "union select",
                     "../..", "x-shellcode", "botnet"});
}

linalg::Matrix term_frequency_matrix(const Vocabulary& vocab,
                                     const std::vector<std::string>& payloads) {
  linalg::Matrix x(payloads.size(), vocab.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const auto counts = vocab.count(payloads[i]);
    auto row = x.row(i);
    for (std::size_t j = 0; j < counts.size(); ++j) {
      row[j] = static_cast<double>(counts[j]);
    }
  }
  return x;
}

PayloadSummary summarize_payloads(const Vocabulary& vocab,
                                  const std::vector<std::string>& payloads,
                                  const PayloadSummarizerConfig& cfg) {
  if (payloads.empty()) {
    throw std::invalid_argument("summarize_payloads: empty batch");
  }
  linalg::Matrix x = term_frequency_matrix(vocab, payloads);

  // §4.1 normalization, column-wise: divide by the batch maximum so a term
  // appearing many times in one packet doesn't dominate distances.
  PayloadSummary summary;
  summary.column_max.assign(vocab.size(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      summary.column_max[j] = std::max(summary.column_max[j], x(i, j));
    }
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto row = x.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (summary.column_max[j] > 0.0) row[j] /= summary.column_max[j];
    }
  }

  // §4.2 fields-mode reduction; term matrices are very low-rank (most
  // packets carry no tracked terms at all).
  const std::size_t r =
      std::min({cfg.rank, x.rows(), x.cols()});
  const auto svd = linalg::truncated_svd(x, std::max<std::size_t>(1, r));
  const linalg::Matrix reduced = svd.reconstruct();

  // §4.3 packets-mode clustering.
  std::mt19937_64 rng(cfg.seed);
  const auto km = summarize::kmeans(reduced, cfg.centroids, rng);
  summary.centroids = km.centroids;
  summary.counts = km.counts;
  return summary;
}

std::vector<KeywordAlert> match_keywords(const Vocabulary& vocab,
                                         const PayloadSummary& summary,
                                         const std::vector<KeywordRule>& rules) {
  std::vector<KeywordAlert> alerts;
  for (const KeywordRule& rule : rules) {
    const std::size_t col = vocab.index_of(rule.term);
    // Estimated term-carrying packets: each centroid's normalized frequency
    // approximates the mean occurrences of its members; counts weight it.
    double estimate = 0.0;
    for (std::size_t c = 0; c < summary.centroids.rows(); ++c) {
      const double freq = std::max(0.0, summary.centroids(c, col));
      estimate += freq * static_cast<double>(summary.counts[c]);
    }
    // De-normalize: frequency 1.0 means column_max occurrences per packet,
    // so the weighted mass times column_max estimates total occurrences
    // (>= packets carrying the term at least once).
    estimate *= summary.column_max[col];
    if (estimate >= static_cast<double>(rule.min_count)) {
      alerts.push_back({rule.term, rule.msg, estimate});
    }
  }
  return alerts;
}

PayloadGenerator::PayloadGenerator(std::uint64_t seed,
                                   double malicious_fraction,
                                   std::string marker)
    : rng_(seed),
      malicious_fraction_(malicious_fraction),
      marker_(std::move(marker)) {}

std::string PayloadGenerator::next() {
  static const char* kBenign[] = {
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n",
      "POST /api/v2/metrics HTTP/1.1\r\nContent-Type: application/json\r\n",
      "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nCache-Control: no-store\r\n",
      "\x16\x03\x01\x02\x00\x01\x00\x01\xfc\x03\x03",  // TLS client hello-ish
      "{\"user\":\"alice\",\"action\":\"sync\",\"items\":[1,2,3]}",
      "220 mail.example.com ESMTP ready\r\nEHLO client.example.org\r\n",
  };
  std::string payload = kBenign[rng_() % std::size(kBenign)];
  // Random filler so payload lengths and contents vary.
  const std::size_t filler = rng_() % 64;
  for (std::size_t i = 0; i < filler; ++i) {
    payload.push_back(static_cast<char>('a' + rng_() % 26));
  }
  if (std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
      malicious_fraction_) {
    payload += " /download/update" + marker_ + " ";
  }
  return payload;
}

std::vector<std::string> PayloadGenerator::batch(std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace jaal::payload
