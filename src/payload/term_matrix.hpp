// Payload-based detection extension (§10, "Payload-based Attacks").
//
// The paper sketches how Jaal can handle rudimentary payload attacks: build
// a term-frequency matrix over a batch of packet payloads ("a popular
// technique used in sentiment analysis and recommender systems") and treat
// it exactly like the headers-only batch — reduce, cluster, and match
// keyword questions against centroids.  This module implements that
// pipeline over a fixed vocabulary of tracked terms.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "summarize/kmeans.hpp"

namespace jaal::payload {

/// The set of terms whose per-packet frequencies form the matrix columns.
/// Matching is case-insensitive and byte-oriented (payloads are treated as
/// opaque byte strings, as a DPI engine would).
class Vocabulary {
 public:
  /// Throws std::invalid_argument on empty vocabularies or empty terms.
  explicit Vocabulary(std::vector<std::string> terms);

  [[nodiscard]] std::size_t size() const noexcept { return terms_.size(); }
  [[nodiscard]] const std::vector<std::string>& terms() const noexcept {
    return terms_;
  }

  /// Index of a term; throws std::invalid_argument if absent.
  [[nodiscard]] std::size_t index_of(std::string_view term) const;

  /// Occurrence counts of every term in one payload (overlapping matches
  /// counted, case-insensitive).
  [[nodiscard]] std::vector<std::uint32_t> count(
      std::string_view payload) const;

 private:
  std::vector<std::string> terms_;  ///< Lower-cased.
};

/// Default vocabulary: indicators the paper names (".exe", the SSH banner)
/// plus common exfiltration/infection markers.
[[nodiscard]] Vocabulary default_vocabulary();

/// n x |V| term-frequency matrix: row i = term counts of payloads[i],
/// normalized per §4.1 (x / max(x), column-wise over the batch, so all
/// counts land in [0, 1]; an all-zero column stays zero).
[[nodiscard]] linalg::Matrix term_frequency_matrix(
    const Vocabulary& vocab, const std::vector<std::string>& payloads);

/// Summary of a payload batch: k centroids in normalized term space plus
/// cluster sizes — directly analogous to a header CombinedSummary.
struct PayloadSummary {
  linalg::Matrix centroids;            ///< k x |V|.
  std::vector<std::uint64_t> counts;
  /// Per-column normalization divisors used (max raw count per term).
  std::vector<double> column_max;
};

struct PayloadSummarizerConfig {
  std::size_t rank = 4;       ///< Term co-occurrence structure is low-rank.
  std::size_t centroids = 32;
  std::uint64_t seed = 99;
};

/// Full pipeline: term matrix -> rank reduction -> k-means++.
/// Throws std::invalid_argument on an empty batch.
[[nodiscard]] PayloadSummary summarize_payloads(
    const Vocabulary& vocab, const std::vector<std::string>& payloads,
    const PayloadSummarizerConfig& cfg);

/// Keyword rule: alert when at least min_count packets in the batch carry
/// the term (estimated from the summary's centroids and counts).
struct KeywordRule {
  std::string term;
  std::uint64_t min_count = 1;
  std::string msg;
};

struct KeywordAlert {
  std::string term;
  std::string msg;
  double estimated_packets = 0.0;
};

/// Estimates, from the summary alone, how many packets carry each rule's
/// term (sum over centroids of count x normalized frequency x column max),
/// and alerts when the estimate crosses the rule threshold.
[[nodiscard]] std::vector<KeywordAlert> match_keywords(
    const Vocabulary& vocab, const PayloadSummary& summary,
    const std::vector<KeywordRule>& rules);

/// Synthetic payload generator for tests/benches: benign HTTP/TLS-ish
/// payloads, with a configurable fraction carrying a malicious marker term.
class PayloadGenerator {
 public:
  PayloadGenerator(std::uint64_t seed, double malicious_fraction = 0.0,
                   std::string marker = ".exe");

  [[nodiscard]] std::string next();
  [[nodiscard]] std::vector<std::string> batch(std::size_t n);

 private:
  std::mt19937_64 rng_;
  double malicious_fraction_;
  std::string marker_;
};

}  // namespace jaal::payload
