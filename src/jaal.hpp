// jaal.hpp — the supported public surface of the Jaal library.
//
// Consumers include this one header (examples/ are the reference usage).
// Everything it exports is the API we keep stable:
//
//   deployment      core::DeploymentConfig, core::JaalConfig,
//                   core::JaalController, core::EpochResult, core::Monitor,
//                   core::CommStats, core::AlertLogger
//   evaluation      core::TrialConfig, core::make_trial/make_trial_set,
//                   core::roc_sweep / evaluate / evaluate_with_feedback,
//                   core::ConfusionCounts, core::RocCurve
//   rules           rules::Rule, rules::parse_rules,
//                   rules::default_ruleset_text, rules::RuleVars
//   inference       shard::InferenceTier, shard::ShardingConfig,
//                   inference::AggregationPolicy, inference::Alert,
//                   inference::AggregatedSummary, inference::AlertCorrelator
//                   (the tier is the deployment-facing detection API:
//                   consistent-hash monitor partitioning across N engine
//                   shards with hierarchical cross-shard aggregation,
//                   byte-identical to one engine at every shard count;
//                   inference::InferenceEngine remains exported for
//                   single-engine embedding and store replay, but new code
//                   should construct an InferenceTier — at shards=1 it IS
//                   the old engine, same bytes, same alerts)
//   traffic         trace::BackgroundTraffic, trace::TrafficMix,
//                   trace::PcapReader/Writer, attack::* generators
//   fault model     faults::FaultScenario, faults::CrashWindow,
//                   faults::ShardCrashWindow, faults::RetryPolicy,
//                   faults::LatePolicy, faults::SummaryTransport,
//                   faults::TransportStats
//   network sim     netsim::Topology, netsim::EventQueue, netsim::LinkQueue,
//                   netsim::latency/replication models, assign::*
//   telemetry       telemetry::Telemetry, telemetry::to_jsonl,
//                   telemetry::to_prometheus
//   observability   observe::ObserveConfig, observe::AlertProvenance,
//                   observe::DriftDetector, observe::HealthTracker,
//                   observe::HealthReport, observe::FlightRecorder,
//                   observe::SloTracker (alert causal chains, summary
//                   drift monitors, the epoch health report, the flight
//                   recorder ring and SLO error budgets —
//                   examples/jaal_doctor is the reference consumer)
//   persistence     store::StoreConfig, store::DeploymentStore,
//                   store::StoreReplayer, store::EpochMeta,
//                   store::diagnose_store (mmap'd time-sharded .jstore
//                   logs of summaries/alerts/provenance/ops, crash-safe
//                   restart, retroactive rule replay, offline timeline
//                   diagnosis — JaalConfig::store_dir wires it in;
//                   examples/retroactive_query and jaal_doctor --store
//                   are the reference consumers)
//   payload         payload::TermMatrix (payload-mode detection)
//
// Error policy (library-wide, enforced at this surface):
//
//   * Construction-time misconfiguration throws std::invalid_argument —
//     constructors and config validation (JaalController, InferenceEngine,
//     Summarizer, FaultScenario::validate, LinkQueue, DriftConfig::validate,
//     ...) are the only places the library throws on bad input.
//   * Runtime degradation never throws: it is reported through status and
//     optional returns.  A silent monitor is a nullopt summary; a failed
//     feedback retrieval is a RawFetch with nullopt packets (the engine
//     degrades to summary-only inference); transport loss is a ShipStatus;
//     a partial epoch is an EpochResult with report_fraction < 1.
//   * The per-epoch hot path — JaalController::ingest/close_epoch,
//     InferenceEngine::infer, SummaryTransport::ship/fetch — does not
//     throw.  (Documented preconditions still hold: e.g.
//     Summarizer::summarize requires min_batch packets, which its only
//     caller, Monitor::flush_epoch, gates on.)
#pragma once

#include "assign/assigner.hpp"
#include "assign/flow_groups.hpp"
#include "attack/generators.hpp"
#include "attack/mirai.hpp"
#include "core/alert_log.hpp"
#include "core/assignment_service.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/monitor.hpp"
#include "faults/scenario.hpp"
#include "faults/transport.hpp"
#include "inference/alert_json.hpp"
#include "inference/correlator.hpp"
#include "inference/engine.hpp"
#include "netsim/event.hpp"
#include "netsim/latency.hpp"
#include "netsim/link.hpp"
#include "netsim/replication.hpp"
#include "netsim/topology.hpp"
#include "observe/observe.hpp"
#include "payload/term_matrix.hpp"
#include "rules/rule.hpp"
#include "shard/hash_ring.hpp"
#include "shard/tier.hpp"
#include "store/doctor.hpp"
#include "store/replay.hpp"
#include "store/store.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/background.hpp"
#include "trace/mix.hpp"
#include "trace/pcap.hpp"
