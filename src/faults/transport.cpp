#include "faults/transport.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace jaal::faults {
namespace {

/// splitmix64: decorrelates the per-(epoch, monitor) RNG streams from the
/// scenario seed without any cross-stream structure.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t epoch,
                          std::uint64_t monitor) noexcept {
  return mix(mix(seed ^ 0xFA017ULL) ^ mix(epoch) ^ mix(monitor << 1));
}

double unit(std::mt19937_64& rng) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

}  // namespace

SummaryTransport::SummaryTransport(const FaultScenario& scenario,
                                   std::size_t monitor_count)
    : scenario_(scenario),
      monitor_count_(monitor_count),
      burst_remaining_(monitor_count, 0),
      fetch_rng_(mix(scenario.seed)) {
  scenario_.validate();
  if (scenario_.use_link_model) {
    links_.reserve(monitor_count_);
    for (std::size_t m = 0; m < monitor_count_; ++m) {
      auto link = std::make_unique<Link>();
      netsim::LinkConfig cfg = scenario_.link;
      cfg.name = cfg.name + "-m" + std::to_string(m);
      link->queue = std::make_unique<netsim::LinkQueue>(link->events, cfg);
      Link* raw = link.get();
      link->queue->set_deliver([raw](std::size_t, double now) {
        raw->last_arrival = now;
        raw->delivered = true;
      });
      links_.push_back(std::move(link));
    }
  }
}

void SummaryTransport::set_telemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  for (auto& link : links_) link->queue->set_telemetry(tel);
  if (tel_ == nullptr) {
    tel_delivered_ = tel_dropped_ = tel_late_ = tel_reordered_ = nullptr;
    tel_crashed_ = nullptr;
    tel_fetch_attempts_ = tel_fetch_failures_ = tel_fetch_giveups_ = nullptr;
    return;
  }
  auto& m = tel_->metrics;
  tel_delivered_ = &m.counter("jaal_faults_summaries_delivered_total");
  tel_dropped_ = &m.counter("jaal_faults_summaries_dropped_total");
  tel_late_ = &m.counter("jaal_faults_summaries_late_total");
  tel_reordered_ = &m.counter("jaal_faults_summaries_reordered_total");
  tel_crashed_ = &m.counter("jaal_faults_crashed_monitor_epochs_total");
  tel_fetch_attempts_ = &m.counter("jaal_faults_feedback_attempts_total");
  tel_fetch_failures_ = &m.counter("jaal_faults_feedback_failures_total");
  tel_fetch_giveups_ = &m.counter("jaal_faults_feedback_giveups_total");
}

void SummaryTransport::note_crashed(std::size_t count) {
  stats_.crashed_monitor_epochs += count;
  if (tel_crashed_ != nullptr && count > 0) tel_crashed_->add(count);
}

void SummaryTransport::begin_epoch(std::uint64_t epoch, double now,
                                   double deadline) {
  epoch_ = epoch;
  epoch_now_ = now;
  epoch_deadline_ = deadline;
  last_arrival_this_epoch_ = 0.0;
  // Feedback draws restart from a per-epoch stream so a retrieval's fate
  // depends on (seed, epoch, call order), not on how many epochs preceded.
  fetch_rng_.seed(stream_seed(scenario_.seed ^ 0xFEEDBACCULL, epoch, 0));
}

ShipOutcome SummaryTransport::ship(std::size_t monitor, std::size_t bytes) {
  ++stats_.summaries_shipped;
  if (scenario_.fault_free()) {
    ++stats_.summaries_delivered;
    if (tel_delivered_ != nullptr) tel_delivered_->add(1);
    return {ShipStatus::kDelivered, epoch_now_};
  }

  std::mt19937_64 rng(stream_seed(scenario_.seed, epoch_, monitor));
  auto dropped = [&]() -> ShipOutcome {
    ++stats_.summaries_dropped;
    if (tel_dropped_ != nullptr) tel_dropped_->add(1);
    return {ShipStatus::kDropped, 0.0};
  };

  // Burst state first: a burst in progress swallows this summary outright.
  if (monitor < burst_remaining_.size() && burst_remaining_[monitor] > 0) {
    --burst_remaining_[monitor];
    return dropped();
  }
  if (scenario_.drop_rate > 0.0 && unit(rng) < scenario_.drop_rate) {
    if (scenario_.burst_rate > 0.0 && unit(rng) < scenario_.burst_rate) {
      burst_remaining_[monitor] = scenario_.burst_length;
    }
    return dropped();
  }

  double arrival = epoch_now_;
  if (scenario_.use_link_model && monitor < links_.size()) {
    Link& link = *links_[monitor];
    // Bring the link's clock up to the ship time (a busy link may already
    // be past it — the summary then queues behind the previous epoch's).
    link.events.run_until(epoch_now_);
    link.delivered = false;
    if (!link.queue->offer(bytes)) return dropped();  // tail drop
    (void)link.events.run();
    arrival = std::max(arrival, link.last_arrival);
  }
  if (scenario_.delay_mean_s > 0.0) {
    arrival += -scenario_.delay_mean_s * std::log(1.0 - unit(rng));
  }
  if (scenario_.delay_jitter_s > 0.0) {
    arrival += scenario_.delay_jitter_s * unit(rng);
  }

  if (arrival < last_arrival_this_epoch_) {
    ++stats_.summaries_reordered;
    if (tel_reordered_ != nullptr) tel_reordered_->add(1);
  }
  last_arrival_this_epoch_ = std::max(last_arrival_this_epoch_, arrival);

  if (arrival > epoch_deadline_) {
    ++stats_.summaries_late;
    if (tel_late_ != nullptr) tel_late_->add(1);
    return {ShipStatus::kLate, arrival};
  }
  ++stats_.summaries_delivered;
  if (tel_delivered_ != nullptr) tel_delivered_->add(1);
  return {ShipStatus::kDelivered, arrival};
}

FetchResult SummaryTransport::fetch(std::size_t monitor,
                                    const FetchAttempt& attempt) {
  ++stats_.fetch_calls;
  FetchResult result;
  const RetryPolicy& retry = scenario_.retry;
  const bool down = !monitor_up(monitor, epoch_);
  double backoff_step = retry.base_backoff_s;
  for (std::size_t i = 0; i < retry.max_attempts; ++i) {
    ++result.attempts;
    ++stats_.fetch_attempts;
    if (tel_fetch_attempts_ != nullptr) tel_fetch_attempts_->add(1);
    bool failed = down;
    if (!failed && scenario_.feedback_failure_rate > 0.0) {
      failed = unit(fetch_rng_) < scenario_.feedback_failure_rate;
    }
    if (!failed) {
      result.packets = attempt(i);
      break;
    }
    ++stats_.fetch_failures;
    if (tel_fetch_failures_ != nullptr) tel_fetch_failures_->add(1);
    if (i + 1 == retry.max_attempts) break;
    if (result.backoff_s + backoff_step > retry.timeout_s) break;  // budget
    result.backoff_s += backoff_step;
    backoff_step *= retry.multiplier;
  }
  stats_.fetch_backoff_s += result.backoff_s;
  if (!result.packets) {
    ++stats_.fetch_giveups;
    if (tel_fetch_giveups_ != nullptr) tel_fetch_giveups_->add(1);
  }
  return result;
}

}  // namespace jaal::faults
