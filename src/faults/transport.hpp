// Fault-injecting summary transport for the monitor -> engine control plane.
//
// Every summary the controller aggregates and every feedback retrieval
// round-trip goes through a SummaryTransport.  With a fault-free scenario
// (the default) it short-circuits to perfect in-process delivery and costs a
// branch; with faults configured it decides each summary's fate — delivered
// in time, delivered late (past the aggregation deadline), or dropped — and
// wraps feedback retrievals in bounded retry with exponential backoff.
//
// Determinism contract: ship() and fetch() are called serially by the
// controller (the aggregation/decision phases are serial in monitor/rule
// order even when a thread pool is attached), and every random draw is
// seeded from (scenario.seed, epoch, monitor), so a scenario's outcome —
// drops, lateness, retry counts, and everything downstream — is
// byte-identical across runs and across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "faults/scenario.hpp"
#include "netsim/event.hpp"
#include "netsim/link.hpp"
#include "packet/wire.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::faults {

enum class ShipStatus : std::uint8_t {
  kDelivered,  ///< Arrived at or before the epoch deadline.
  kLate,       ///< Arrived, but after the deadline (LatePolicy decides).
  kDropped,    ///< Lost on the link (random/burst drop or queue tail drop).
};

struct ShipOutcome {
  ShipStatus status = ShipStatus::kDelivered;
  double arrival_time = 0.0;  ///< Simulated seconds; 0 when dropped.
};

/// One feedback retrieval through the transport: the payload (nullopt when
/// every attempt failed or the backoff budget ran out) plus the retry
/// accounting the resilience tests assert on.
struct FetchResult {
  std::optional<std::vector<packet::PacketRecord>> packets;
  std::size_t attempts = 0;
  double backoff_s = 0.0;  ///< Total backoff accrued (bounded by policy).
};

/// Cumulative transport accounting (monotonic, like InferenceStats).
struct TransportStats {
  std::uint64_t summaries_shipped = 0;
  std::uint64_t summaries_delivered = 0;
  std::uint64_t summaries_dropped = 0;
  std::uint64_t summaries_late = 0;
  std::uint64_t summaries_reordered = 0;  ///< Arrived before a lower-id peer.
  std::uint64_t crashed_monitor_epochs = 0;
  std::uint64_t fetch_calls = 0;
  std::uint64_t fetch_attempts = 0;
  std::uint64_t fetch_failures = 0;  ///< Individual failed attempts.
  std::uint64_t fetch_giveups = 0;   ///< Retrievals that exhausted retries.
  double fetch_backoff_s = 0.0;
};

class SummaryTransport {
 public:
  /// Validates the scenario (std::invalid_argument on misconfiguration) and
  /// stands up per-monitor link queues when the link model is enabled.
  SummaryTransport(const FaultScenario& scenario, std::size_t monitor_count);

  /// Publishes jaal_faults_* counters into `tel` (null detaches).
  void set_telemetry(telemetry::Telemetry* tel);

  [[nodiscard]] const FaultScenario& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] const TransportStats& stats() const noexcept { return stats_; }

  /// True when `monitor` is not inside any crash window at `epoch`.  Cheap
  /// enough for the per-packet ingest path (empty crash list short-circuits).
  [[nodiscard]] bool monitor_up(std::size_t monitor,
                                std::uint64_t epoch) const noexcept {
    for (const CrashWindow& c : scenario_.crashes) {
      if (c.covers(monitor, epoch)) return false;
    }
    return true;
  }

  /// Counts one epoch's worth of crashed monitors (telemetry bookkeeping;
  /// the controller discards their buffers).
  void note_crashed(std::size_t count);

  /// Starts an epoch: `now` is the epoch close time, `deadline` the absolute
  /// simulated time after which an arriving summary is late.
  void begin_epoch(std::uint64_t epoch, double now, double deadline);

  /// Decides the fate of one summary of `bytes` bytes from `monitor`,
  /// shipped at the current epoch's close time.  Never throws.
  [[nodiscard]] ShipOutcome ship(std::size_t monitor, std::size_t bytes);

  /// One feedback round-trip: runs `attempt` under the scenario's
  /// per-attempt failure rate and the bounded RetryPolicy.  A crashed
  /// monitor fails every attempt.  Never throws (barring `attempt` itself).
  using FetchAttempt =
      std::function<std::vector<packet::PacketRecord>(std::size_t attempt)>;
  [[nodiscard]] FetchResult fetch(std::size_t monitor,
                                  const FetchAttempt& attempt);

 private:
  /// Per-monitor link instance (only when scenario_.use_link_model).
  struct Link {
    netsim::EventQueue events;
    std::unique_ptr<netsim::LinkQueue> queue;
    double last_arrival = 0.0;
    bool delivered = false;
  };

  FaultScenario scenario_;
  std::size_t monitor_count_;
  std::vector<std::size_t> burst_remaining_;  ///< Per-link burst state.
  std::vector<std::unique_ptr<Link>> links_;
  std::mt19937_64 fetch_rng_;

  std::uint64_t epoch_ = 0;
  double epoch_now_ = 0.0;
  double epoch_deadline_ = 0.0;
  double last_arrival_this_epoch_ = 0.0;

  TransportStats stats_;

  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Counter* tel_delivered_ = nullptr;
  telemetry::Counter* tel_dropped_ = nullptr;
  telemetry::Counter* tel_late_ = nullptr;
  telemetry::Counter* tel_reordered_ = nullptr;
  telemetry::Counter* tel_crashed_ = nullptr;
  telemetry::Counter* tel_fetch_attempts_ = nullptr;
  telemetry::Counter* tel_fetch_failures_ = nullptr;
  telemetry::Counter* tel_fetch_giveups_ = nullptr;
};

}  // namespace jaal::faults
