// Seeded failure scenarios for the monitor -> engine control plane.
//
// The paper's central claim is that Jaal keeps detecting while its own
// summary traffic shares congested ISP links (§8).  A FaultScenario is the
// declarative description of everything that can go wrong on that path:
// per-summary drops (i.i.d. or bursty), crash/restart windows that silence a
// monitor for whole epochs, seeded delivery delay and jitter (which reorders
// arrivals and makes summaries miss the aggregation deadline), an optional
// netsim::LinkQueue model that adds serialization delay and tail drops, and
// a per-attempt failure rate on the feedback retrieval round-trip governed
// by a bounded RetryPolicy.
//
// Scenarios are pure data: every stochastic decision is derived from
// (seed, epoch, monitor), never from wall clock or thread timing, so a
// scenario replays byte-identically across runs and thread counts.
//
// Error policy (see jaal.hpp): validate() throws std::invalid_argument at
// configuration time; nothing in the per-epoch hot path throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netsim/link.hpp"

namespace jaal::faults {

/// What the controller does with a summary that arrives after the epoch's
/// aggregation deadline.
enum class LatePolicy : std::uint8_t {
  kDiscard,      ///< Count it and drop it (the data is stale).
  kRollForward,  ///< Count it and aggregate it into the *next* epoch.
};

/// One monitor outage: the monitor is down for epochs in
/// [crash_epoch, restart_epoch).  Packets routed to it are lost and it ships
/// no summary; on restart it resumes with an empty buffer.
struct CrashWindow {
  std::size_t monitor = 0;
  std::uint64_t crash_epoch = 0;
  std::uint64_t restart_epoch = 0;  ///< Exclusive; == crash_epoch is a no-op.

  [[nodiscard]] bool covers(std::size_t m, std::uint64_t epoch) const noexcept {
    return m == monitor && epoch >= crash_epoch && epoch < restart_epoch;
  }
};

/// One inference-shard outage: the engine shard is down for epochs in
/// [crash_epoch, restart_epoch).  Monitors keep observing and shipping —
/// the loss is on the receiving side: summaries owned by a down shard are
/// refused at arrival (not aggregated, not persisted), the epoch's
/// report_fraction drops accordingly, and inference proceeds over the
/// surviving shards' rows.  Distinct from CrashWindow, which silences a
/// *monitor* (the sending side).
struct ShardCrashWindow {
  std::size_t shard = 0;
  std::uint64_t crash_epoch = 0;
  std::uint64_t restart_epoch = 0;  ///< Exclusive; == crash_epoch is a no-op.

  [[nodiscard]] bool covers(std::size_t s, std::uint64_t epoch) const noexcept {
    return s == shard && epoch >= crash_epoch && epoch < restart_epoch;
  }
};

/// Bounded retry with exponential backoff for feedback retrievals.  Attempt
/// i (0-based) waits base_backoff_s * multiplier^i before retrying; the
/// retrieval gives up after max_attempts attempts or once the accumulated
/// backoff would exceed timeout_s, whichever is first — so both the attempt
/// count and the total backoff are provably bounded.
struct RetryPolicy {
  std::size_t max_attempts = 3;
  double base_backoff_s = 0.05;
  double multiplier = 2.0;
  double timeout_s = 1.0;  ///< Hard cap on accumulated backoff.

  /// Closed-form upper bound on the backoff a single retrieval can accrue:
  /// min(timeout_s, sum of the first max_attempts-1 backoff terms).
  [[nodiscard]] double max_total_backoff_s() const noexcept;
};

struct FaultScenario {
  std::uint64_t seed = 1;

  // --- Summary-path loss -------------------------------------------------
  /// Per-summary i.i.d. drop probability on the monitor->engine path.
  double drop_rate = 0.0;
  /// Probability that a drop opens a *burst*: the next burst_length
  /// summaries on the same link are dropped too (correlated loss, the
  /// congestion-collapse shape of Fig. 7 rather than random erasure).
  double burst_rate = 0.0;
  std::size_t burst_length = 0;

  // --- Summary-path delay ------------------------------------------------
  /// Mean extra delivery delay (seeded exponential) added to every summary.
  double delay_mean_s = 0.0;
  /// Uniform jitter on top; distinct per-monitor draws reorder arrivals.
  double delay_jitter_s = 0.0;

  // --- Monitor outages ---------------------------------------------------
  std::vector<CrashWindow> crashes;

  // --- Inference-shard outages --------------------------------------------
  /// Consumed by shard::InferenceTier (the transport ignores them): windows
  /// during which one engine shard refuses the summaries it owns.
  std::vector<ShardCrashWindow> shard_crashes;

  // --- Feedback round-trip ------------------------------------------------
  /// Per-attempt failure probability of a raw-packet retrieval.
  double feedback_failure_rate = 0.0;
  RetryPolicy retry;

  // --- Optional packet-level link model ----------------------------------
  /// When set, every summary additionally crosses a per-monitor
  /// netsim::LinkQueue clone of `link`: serialization at the link rate plus
  /// propagation delay, with tail drops when the queue byte bound overflows
  /// (a second, purely capacity-driven source of loss).
  bool use_link_model = false;
  netsim::LinkConfig link;

  /// True when the scenario perturbs nothing — the transport then
  /// short-circuits to perfect in-process delivery (the pre-fault pipeline).
  [[nodiscard]] bool fault_free() const noexcept;

  /// Throws std::invalid_argument on out-of-range rates, a burst without a
  /// length, inverted crash windows, or a degenerate retry policy.
  void validate() const;
};

}  // namespace jaal::faults
