#include "faults/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace jaal::faults {

double RetryPolicy::max_total_backoff_s() const noexcept {
  double total = 0.0;
  double step = base_backoff_s;
  // One backoff interval precedes each retry, so max_attempts attempts
  // accrue at most max_attempts - 1 intervals.
  for (std::size_t i = 1; i < max_attempts; ++i) {
    total += step;
    step *= multiplier;
  }
  return std::min(total, timeout_s);
}

bool FaultScenario::fault_free() const noexcept {
  return drop_rate == 0.0 && burst_rate == 0.0 && delay_mean_s == 0.0 &&
         delay_jitter_s == 0.0 && crashes.empty() && shard_crashes.empty() &&
         feedback_failure_rate == 0.0 && !use_link_model;
}

void FaultScenario::validate() const {
  auto probability = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("FaultScenario: ") + what +
                                  " must be in [0, 1]");
    }
  };
  probability(drop_rate, "drop_rate");
  probability(burst_rate, "burst_rate");
  probability(feedback_failure_rate, "feedback_failure_rate");
  if (burst_rate > 0.0 && burst_length == 0) {
    throw std::invalid_argument(
        "FaultScenario: burst_rate > 0 needs burst_length >= 1");
  }
  if (delay_mean_s < 0.0 || delay_jitter_s < 0.0) {
    throw std::invalid_argument("FaultScenario: delays must be >= 0");
  }
  for (const CrashWindow& c : crashes) {
    if (c.restart_epoch < c.crash_epoch) {
      throw std::invalid_argument(
          "FaultScenario: crash window restart_epoch < crash_epoch");
    }
  }
  for (const ShardCrashWindow& c : shard_crashes) {
    if (c.restart_epoch < c.crash_epoch) {
      throw std::invalid_argument(
          "FaultScenario: shard crash window restart_epoch < crash_epoch");
    }
  }
  if (retry.max_attempts == 0) {
    throw std::invalid_argument("FaultScenario: retry.max_attempts must be >= 1");
  }
  if (retry.base_backoff_s < 0.0 || retry.timeout_s < 0.0) {
    throw std::invalid_argument("FaultScenario: retry backoff must be >= 0");
  }
  if (retry.multiplier < 1.0) {
    throw std::invalid_argument("FaultScenario: retry.multiplier must be >= 1");
  }
  if (use_link_model &&
      (link.rate_bytes_per_s <= 0.0 || link.queue_limit_bytes == 0)) {
    throw std::invalid_argument(
        "FaultScenario: link model needs a positive rate and queue bound");
  }
}

}  // namespace jaal::faults
