#include "baseline/netflow.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/stats.hpp"

namespace jaal::baseline {

FlowCache::FlowCache(const FlowCacheConfig& cfg) : cfg_(cfg) {}

void FlowCache::export_record(const FlowRecord& rec) {
  export_queue_.push_back(rec);
  ++exported_records_;
}

void FlowCache::observe(const packet::PacketRecord& pkt) {
  ++seen_;
  now_ = std::max(now_, pkt.timestamp);

  FlowRecord& rec = cache_[pkt.flow()];
  if (rec.packets == 0) {
    rec.key = pkt.flow();
    rec.first_seen = pkt.timestamp;
  } else if (pkt.timestamp - rec.first_seen > cfg_.active_timeout) {
    // Active timeout: export the long-running flow and restart the record.
    export_record(rec);
    rec = FlowRecord{};
    rec.key = pkt.flow();
    rec.first_seen = pkt.timestamp;
  }
  ++rec.packets;
  rec.bytes += pkt.ip.total_length;
  rec.last_seen = pkt.timestamp;
  rec.tcp_flags_or =
      static_cast<std::uint8_t>(rec.tcp_flags_or | pkt.tcp.flags);

  if (cache_.size() > cfg_.max_entries) {
    // Emergency eviction: export the stalest entries (quarter of the cache),
    // as real exporters do under pressure.
    std::vector<std::pair<double, packet::FlowKey>> by_age;
    by_age.reserve(cache_.size());
    for (const auto& [key, record] : cache_) {
      by_age.emplace_back(record.last_seen, key);
    }
    std::sort(by_age.begin(), by_age.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::size_t evict = cache_.size() / 4 + 1;
    for (std::size_t i = 0; i < evict && i < by_age.size(); ++i) {
      const auto it = cache_.find(by_age[i].second);
      export_record(it->second);
      cache_.erase(it);
    }
  }
}

std::size_t FlowCache::expire(double now) {
  now_ = std::max(now_, now);
  std::size_t exported = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    const FlowRecord& rec = it->second;
    if (now_ - rec.last_seen > cfg_.inactive_timeout ||
        now_ - rec.first_seen > cfg_.active_timeout) {
      export_record(rec);
      it = cache_.erase(it);
      ++exported;
    } else {
      ++it;
    }
  }
  return exported;
}

std::vector<FlowRecord> FlowCache::drain() {
  std::vector<FlowRecord> out;
  out.swap(export_queue_);
  return out;
}

void FlowCache::flush() {
  for (const auto& [key, rec] : cache_) export_record(rec);
  cache_.clear();
}

std::vector<rules::RawAlert> detect_on_flow_records(
    const std::vector<rules::Rule>& ruleset,
    const std::vector<FlowRecord>& records, double threshold_scale) {
  std::vector<rules::RawAlert> alerts;
  for (const rules::Rule& rule : ruleset) {
    if (rule.window.has_value()) continue;  // field not exported by NetFlow

    std::uint64_t matched = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> per_source;
    linalg::RunningStats field_stats;
    for (const FlowRecord& rec : records) {
      if (!rule.src_addr.matches(rec.key.src_ip)) continue;
      if (!rule.dst_addr.matches(rec.key.dst_ip)) continue;
      if (!rule.src_port.matches(rec.key.src_port)) continue;
      if (!rule.dst_port.matches(rec.key.dst_port)) continue;
      // Precision loss: the record can only prove the rule's flags appeared
      // somewhere in the flow, not that any single packet carried exactly
      // that combination.
      if (rule.flags && (rec.tcp_flags_or & *rule.flags) != *rule.flags) {
        continue;
      }
      matched += rec.packets;
      per_source[rec.key.src_ip] += rec.packets;
      if (rule.variance) {
        // Reconstruct the field value from the record where possible.
        double raw = 0.0;
        switch (rule.variance->field) {
          case packet::FieldIndex::kIpSrcAddr: raw = rec.key.src_ip; break;
          case packet::FieldIndex::kIpDstAddr: raw = rec.key.dst_ip; break;
          case packet::FieldIndex::kTcpSrcPort: raw = rec.key.src_port; break;
          case packet::FieldIndex::kTcpDstPort: raw = rec.key.dst_port; break;
          default: raw = 0.0; break;  // field absent from flow records
        }
        field_stats.add(packet::normalize_field(rule.variance->field, raw),
                        rec.packets);
      }
    }
    if (matched == 0) continue;

    std::uint64_t threshold = 1;
    if (rule.detection_filter) {
      threshold = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 std::ceil(rule.detection_filter->count * threshold_scale)));
    }
    std::uint64_t max_src = 0;
    for (const auto& [src, count] : per_source) {
      max_src = std::max(max_src, count);
    }
    if (matched < threshold && max_src < threshold) continue;

    rules::RawAlert alert;
    alert.sid = rule.sid;
    alert.msg = rule.msg;
    alert.matched_packets = matched;
    alert.max_per_source = max_src;
    if (rule.variance) {
      alert.variance_triggered =
          field_stats.variance() >= rule.variance->threshold;
      if (!alert.variance_triggered) continue;
    }
    alerts.push_back(std::move(alert));
  }
  return alerts;
}

}  // namespace jaal::baseline
