#include "baseline/countmin.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace jaal::baseline {
namespace {

/// 64-bit FNV-1a seeded by xor-folding the row seed in.
[[nodiscard]] std::uint64_t hash_bytes(std::span<const std::uint8_t> key,
                                       std::uint64_t seed) noexcept {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (std::uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  // Final avalanche (splitmix64 tail) to decorrelate nearby keys.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

[[nodiscard]] std::array<std::uint8_t, 8> to_bytes(std::uint64_t key) noexcept {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(key >> (8 * i));
  }
  return out;
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth) {
  if (width_ == 0 || depth_ == 0) {
    throw std::invalid_argument("CountMinSketch: zero geometry");
  }
  row_seeds_.reserve(depth_);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < depth_; ++i) {
    s += 0x9E3779B97F4A7C15ULL;
    row_seeds_.push_back(s);
  }
  counters_.assign(width_ * depth_, 0);
}

std::size_t CountMinSketch::cell(std::size_t row,
                                 std::span<const std::uint8_t> key) const {
  return row * width_ + hash_bytes(key, row_seeds_[row]) % width_;
}

void CountMinSketch::add(std::span<const std::uint8_t> key,
                         std::uint64_t count) {
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[cell(row, key)] += count;
  }
  total_ += count;
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t count) {
  const auto bytes = to_bytes(key);
  add(std::span<const std::uint8_t>(bytes), count);
}

std::uint64_t CountMinSketch::estimate(
    std::span<const std::uint8_t> key) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    best = std::min(best, counters_[cell(row, key)]);
  }
  return best;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
  const auto bytes = to_bytes(key);
  return estimate(std::span<const std::uint8_t>(bytes));
}

std::size_t CountMinSketch::memory_bytes() const noexcept {
  return counters_.size() * sizeof(std::uint64_t);
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (other.width_ != width_ || other.depth_ != depth_ ||
      other.row_seeds_ != row_seeds_) {
    throw std::invalid_argument("CountMinSketch::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

}  // namespace jaal::baseline
