// NetFlow-style flow records — the "rudimentary" monitoring ISPs already
// deploy (§2: "ISPs typically employ rudimentary sampling techniques like
// NetFlow to obtain a coarse view of network dynamics").
//
// A FlowCache aggregates packets into v5-style unidirectional flow records
// (5-tuple, packet/byte counts, first/last timestamps, OR of TCP flags)
// with active/inactive timeouts and LRU-free size-bounded eviction.  The
// bench compares this baseline against summaries: records are tiny, but
// per-packet detail is gone — the OR-ed flag byte cannot distinguish a
// pure-SYN flood member from a completed handshake, and window sizes are
// simply absent (Sockstress is invisible).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "packet/packet.hpp"
#include "rules/raw_matcher.hpp"

namespace jaal::baseline {

/// One exported unidirectional flow record (NetFlow v5 layout subset).
struct FlowRecord {
  packet::FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double first_seen = 0.0;
  double last_seen = 0.0;
  std::uint8_t tcp_flags_or = 0;  ///< OR of all member packets' flag bytes.

  /// Export size on the wire: the NetFlow v5 record is 48 bytes.
  static constexpr std::size_t kWireBytes = 48;
};

struct FlowCacheConfig {
  double active_timeout = 60.0;    ///< Export long flows periodically.
  double inactive_timeout = 15.0;  ///< Export idle flows.
  std::size_t max_entries = 65536; ///< Cache bound; overflow force-exports.
};

class FlowCache {
 public:
  explicit FlowCache(const FlowCacheConfig& cfg = {});

  /// Accounts one packet.  Expired entries move to the export queue.
  void observe(const packet::PacketRecord& pkt);

  /// Records whose timeouts expired as of `now` move to the export queue;
  /// returns the number exported.
  std::size_t expire(double now);

  /// Takes everything accumulated in the export queue.
  [[nodiscard]] std::vector<FlowRecord> drain();

  /// Exports all remaining active flows (end of measurement).
  void flush();

  [[nodiscard]] std::size_t active_flows() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::uint64_t packets_seen() const noexcept { return seen_; }
  /// Total bytes the exporter has shipped so far (48 B per record).
  [[nodiscard]] std::uint64_t exported_bytes() const noexcept {
    return exported_records_ * FlowRecord::kWireBytes;
  }
  [[nodiscard]] std::uint64_t exported_records() const noexcept {
    return exported_records_;
  }

 private:
  void export_record(const FlowRecord& rec);

  FlowCacheConfig cfg_;
  std::unordered_map<packet::FlowKey, FlowRecord, packet::FlowKeyHash> cache_;
  std::vector<FlowRecord> export_queue_;
  std::uint64_t seen_ = 0;
  std::uint64_t exported_records_ = 0;
  double now_ = 0.0;
};

/// Detection over flow records with the Jaal/Snort rule set: a record
/// matches a rule when its 5-tuple satisfies the specs and the rule's flag
/// byte is a SUBSET of the record's OR-ed flags (the record can't prove the
/// exact combination — NetFlow's loss of per-packet precision).  Rules on
/// the window field can never match (the field isn't exported).  Counts are
/// the summed packet counts of matching records, compared against the
/// rule's detection_filter threshold x threshold_scale; variance checks use
/// the per-record field value weighted by packets.
[[nodiscard]] std::vector<rules::RawAlert> detect_on_flow_records(
    const std::vector<rules::Rule>& ruleset,
    const std::vector<FlowRecord>& records, double threshold_scale = 1.0);

}  // namespace jaal::baseline
