// Count-min sketch baseline (§2's sketching discussion).
//
// Sketches give strong per-dimension guarantees but are single-dimensional:
// a sketch keyed on (src IP) cannot answer questions about (src IP, SYN
// flag) and vice versa, which is the paper's core argument for summaries.
// This implementation backs the overhead-comparison bench: covering all
// 2^18 field combinations with one sketch each is shown to be prohibitive.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace jaal::baseline {

class CountMinSketch {
 public:
  /// width: counters per row; depth: independent hash rows.
  /// Throws std::invalid_argument when either is zero.
  CountMinSketch(std::size_t width, std::size_t depth,
                 std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Adds `count` occurrences of the key.
  void add(std::span<const std::uint8_t> key, std::uint64_t count = 1);
  void add(std::uint64_t key, std::uint64_t count = 1);

  /// Point query: overestimates with bounded error (epsilon = e/width).
  [[nodiscard]] std::uint64_t estimate(std::span<const std::uint8_t> key) const;
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const;

  /// Total stream count added.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Memory footprint in bytes (what a monitor would ship).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Merges another sketch of identical geometry; throws on mismatch.
  void merge(const CountMinSketch& other);

 private:
  [[nodiscard]] std::size_t cell(std::size_t row,
                                 std::span<const std::uint8_t> key) const;

  std::size_t width_;
  std::size_t depth_;
  std::vector<std::uint64_t> row_seeds_;
  std::vector<std::uint64_t> counters_;  ///< depth_ x width_, row-major.
  std::uint64_t total_ = 0;
};

}  // namespace jaal::baseline
