// Reservoir sampling baseline (Table 1).
//
// Vitter's Algorithm R keeps a fixed-size uniform sample of a stream.  The
// paper configures the sampler for the same communication budget as Jaal
// (reservoir of 250 per 1000 packets vs r=12, k=200, n=1000) and shows that
// short attack bursts get diluted by benign traffic in the sample.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "packet/packet.hpp"
#include "rules/raw_matcher.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::baseline {

class ReservoirSampler {
 public:
  /// Throws std::invalid_argument for capacity == 0.
  ReservoirSampler(std::size_t capacity, std::uint64_t seed);

  void add(const packet::PacketRecord& pkt);

  /// Attaches telemetry: evictions feed jaal_baseline_reservoir_evictions_total.
  /// Null detaches (the default).
  void set_telemetry(telemetry::Telemetry* tel);

  [[nodiscard]] const std::vector<packet::PacketRecord>& sample() const noexcept {
    return sample_;
  }
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Resident samples displaced by later arrivals (Algorithm R
  /// replacements); not reset by reset().
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

  /// Inverse sampling ratio seen/|sample| (1 while the reservoir fills).
  [[nodiscard]] double scale_factor() const noexcept;

  /// Clears the reservoir for the next shipping epoch.
  void reset() noexcept;

 private:
  std::size_t capacity_;
  std::mt19937_64 rng_;
  std::vector<packet::PacketRecord> sample_;
  std::uint64_t seen_ = 0;
  std::uint64_t evictions_ = 0;
  telemetry::Counter* tel_evictions_ = nullptr;
};

/// Detection over a shipped sample: runs the Snort-style matcher on the
/// sampled packets with count thresholds divided by the sampling ratio, the
/// fairest possible use of a uniform sample.  Returns alerts as RawMatcher
/// does.
[[nodiscard]] std::vector<rules::RawAlert> detect_on_sample(
    const rules::RawMatcher& matcher, const ReservoirSampler& sampler,
    double window_seconds);

}  // namespace jaal::baseline
