#include "baseline/reservoir.hpp"

#include <cmath>
#include <stdexcept>

namespace jaal::baseline {

ReservoirSampler::ReservoirSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ReservoirSampler: zero capacity");
  }
  sample_.reserve(capacity_);
}

void ReservoirSampler::add(const packet::PacketRecord& pkt) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(pkt);
    return;
  }
  // Algorithm R: keep the new item with probability capacity/seen.
  const std::uint64_t j = rng_() % seen_;
  if (j < capacity_) {
    sample_[j] = pkt;
    ++evictions_;
    if (tel_evictions_ != nullptr) tel_evictions_->add(1);
  }
}

void ReservoirSampler::set_telemetry(telemetry::Telemetry* tel) {
  tel_evictions_ =
      tel == nullptr
          ? nullptr
          : &tel->metrics.counter("jaal_baseline_reservoir_evictions_total");
}

double ReservoirSampler::scale_factor() const noexcept {
  if (sample_.empty()) return 1.0;
  return static_cast<double>(seen_) / static_cast<double>(sample_.size());
}

void ReservoirSampler::reset() noexcept {
  sample_.clear();
  seen_ = 0;
}

std::vector<rules::RawAlert> detect_on_sample(const rules::RawMatcher& matcher,
                                              const ReservoirSampler& sampler,
                                              double window_seconds) {
  // Scaling the thresholds down by the sampling ratio is equivalent to
  // scaling the observed counts up; RawMatcher scales thresholds by
  // window ratio already, so fold the sampling ratio into window_seconds.
  // A 1/s sample of a w-second window carries the evidence density of a
  // w/s-second window.
  const double effective_window = window_seconds / sampler.scale_factor();
  return matcher.analyze(sampler.sample(), effective_window);
}

}  // namespace jaal::baseline
