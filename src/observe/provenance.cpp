#include "observe/provenance.hpp"

#include <cstdio>

namespace jaal::observe {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

const char* to_string(ThresholdCase c) noexcept {
  switch (c) {
    case ThresholdCase::kStrictMatch: return "strict_match";
    case ThresholdCase::kUncertainVerified: return "uncertain_verified";
    case ThresholdCase::kUncertainAssumed: return "uncertain_assumed";
  }
  return "unknown";
}

double AlertProvenance::mean_margin() const noexcept {
  if (centroids.empty()) return 0.0;
  const bool strict = threshold_case == ThresholdCase::kStrictMatch;
  double sum = 0.0;
  for (const CentroidEvidence& c : centroids) {
    sum += strict ? c.margin_d1 : c.margin_d2;
  }
  return sum / static_cast<double>(centroids.size());
}

std::string to_json(const AlertProvenance& p) {
  std::string out = "{\"kind\":\"provenance\",\"sid\":";
  append_u64(out, p.sid);
  out += ",\"case\":\"";
  out += to_string(p.threshold_case);
  out += "\",\"tau_d1\":" + fmt_double(p.tau_d1);
  out += ",\"tau_d2\":" + fmt_double(p.tau_d2);
  out += ",\"tau_c\":";
  append_u64(out, p.tau_c);
  out += ",\"tau_c_scale\":" + fmt_double(p.tau_c_scale);
  out += ",\"strict_count\":";
  append_u64(out, p.strict_count);
  out += ",\"loose_count\":";
  append_u64(out, p.loose_count);
  out += ",\"report_fraction\":" + fmt_double(p.report_fraction);
  out += ",\"caution\":" + fmt_double(p.caution);
  out += ",\"mean_margin\":" + fmt_double(p.mean_margin());
  out += ",\"monitors\":[";
  for (std::size_t i = 0; i < p.monitors.size(); ++i) {
    if (i != 0) out += ',';
    append_u64(out, p.monitors[i]);
  }
  out += "],\"centroids\":[";
  for (std::size_t i = 0; i < p.centroids.size(); ++i) {
    const CentroidEvidence& c = p.centroids[i];
    if (i != 0) out += ',';
    out += "{\"monitor\":";
    append_u64(out, c.monitor);
    out += ",\"index\":";
    append_u64(out, c.local_index);
    out += ",\"count\":";
    append_u64(out, c.count);
    out += ",\"distance\":" + fmt_double(c.distance);
    out += ",\"margin_d1\":" + fmt_double(c.margin_d1);
    out += ",\"margin_d2\":" + fmt_double(c.margin_d2);
    out += "}";
  }
  out += "],\"feedback\":{\"requested\":";
  out += p.feedback.requested ? "true" : "false";
  out += ",\"fallback\":";
  out += p.feedback.fallback ? "true" : "false";
  out += ",\"attempts\":";
  append_u64(out, p.feedback.attempts);
  out += ",\"backoff_s\":" + fmt_double(p.feedback.backoff_s);
  out += ",\"raw_packets\":";
  append_u64(out, p.feedback.raw_packets);
  out += ",\"raw_confirmed\":";
  out += p.feedback.raw_confirmed ? "true" : "false";
  out += "},\"variance\":" + fmt_double(p.variance);
  out += ",\"distributed\":";
  out += p.distributed ? "true" : "false";
  out += ",\"verified\":";
  out += p.verified ? "true" : "false";
  out += "}";
  return out;
}

std::string to_jsonl(
    const std::vector<std::shared_ptr<const AlertProvenance>>& records) {
  std::string out;
  for (const auto& p : records) {
    if (!p) continue;
    out += to_json(*p);
    out += '\n';
  }
  return out;
}

}  // namespace jaal::observe
