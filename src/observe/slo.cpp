#include "observe/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace jaal::observe {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void SloConfig::validate() const {
  if (!(objective > 0.0) || !(objective < 1.0)) {
    throw std::invalid_argument("SloConfig: objective must be in (0, 1)");
  }
  if (!(report_fraction_min > 0.0) || report_fraction_min > 1.0) {
    throw std::invalid_argument(
        "SloConfig: report_fraction_min must be in (0, 1]");
  }
  if (!(latency_target_ms > 0.0)) {
    throw std::invalid_argument("SloConfig: latency_target_ms must be > 0");
  }
  if (window == 0) {
    throw std::invalid_argument("SloConfig: window must be > 0");
  }
}

SloTracker::SloTracker(const SloConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  rf_window_.assign(cfg_.window, 0);
}

void SloTracker::observe_epoch(std::uint64_t /*epoch*/,
                               double report_fraction, double latency_ms) {
  ++epochs_;
  const bool rf_bad = report_fraction < cfg_.report_fraction_min;
  if (rf_bad) ++rf_bad_;
  last_latency_breached_ =
      latency_ms >= 0.0 && latency_ms > cfg_.latency_target_ms;
  if (last_latency_breached_) ++lat_bad_;

  window_bad_ -= rf_window_[window_pos_];
  rf_window_[window_pos_] = rf_bad ? 1 : 0;
  window_bad_ += rf_window_[window_pos_];
  window_pos_ = (window_pos_ + 1) % rf_window_.size();
}

void SloTracker::attribute_latency(const std::string& dominant_stage) {
  if (dominant_stage.empty()) return;
  last_dominant_stage_ = dominant_stage;
  if (!last_latency_breached_) return;
  for (auto& [stage, count] : stage_breaches_) {
    if (stage == dominant_stage) {
      ++count;
      return;
    }
  }
  stage_breaches_.emplace_back(dominant_stage, 1);
}

std::vector<std::pair<std::string, std::uint64_t>>
SloTracker::breaches_by_stage() const {
  auto out = stage_breaches_;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::int64_t SloTracker::budget_permille(std::uint64_t bad) const noexcept {
  if (epochs_ == 0) return 1000;
  const double allowed = (1.0 - cfg_.objective) * static_cast<double>(epochs_);
  const double remaining =
      std::clamp(1.0 - static_cast<double>(bad) / allowed, 0.0, 1.0);
  return static_cast<std::int64_t>(std::llround(remaining * 1000.0));
}

std::int64_t SloTracker::rf_budget_remaining_permille() const noexcept {
  return budget_permille(rf_bad_);
}

std::int64_t SloTracker::latency_budget_remaining_permille() const noexcept {
  return budget_permille(lat_bad_);
}

std::int64_t SloTracker::rf_burn_rate_permille() const noexcept {
  const std::uint64_t w =
      std::min<std::uint64_t>(epochs_, rf_window_.size());
  if (w == 0) return 0;
  const double bad_rate =
      static_cast<double>(window_bad_) / static_cast<double>(w);
  const double burn = bad_rate / (1.0 - cfg_.objective);
  return static_cast<std::int64_t>(std::llround(burn * 1000.0));
}

std::string SloTracker::to_jsonl() const {
  std::string out = "{\"kind\":\"slo_summary\"";
  out += ",\"objective\":" + fmt_double(cfg_.objective);
  out += ",\"report_fraction_min\":" + fmt_double(cfg_.report_fraction_min);
  out += ",\"window\":" + std::to_string(rf_window_.size());
  out += ",\"epochs\":" + std::to_string(epochs_);
  out += ",\"rf_breaches\":" + std::to_string(rf_bad_);
  out += ",\"rf_budget_remaining_permille\":" +
         std::to_string(rf_budget_remaining_permille());
  out += ",\"rf_burn_rate_permille\":" +
         std::to_string(rf_burn_rate_permille());
  out += "}\n";
  return out;
}

}  // namespace jaal::observe
