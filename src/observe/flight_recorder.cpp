#include "observe/flight_recorder.hpp"

#include <cstdio>
#include <stdexcept>

namespace jaal::observe {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* flight_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kEpochClose: return "epoch_close";
    case FlightEventKind::kFidelity: return "fidelity";
    case FlightEventKind::kDriftStart: return "drift_start";
    case FlightEventKind::kDriftEnd: return "drift_end";
    case FlightEventKind::kShip: return "ship";
    case FlightEventKind::kFeedback: return "feedback";
    case FlightEventKind::kSpan: return "span";
    case FlightEventKind::kProfile: return "profile";
  }
  return "unknown";
}

const char* drift_metric_name(std::uint64_t id) noexcept {
  switch (id) {
    case 0: return "svd_energy";
    case 1: return "kmeans_inertia";
    case 2: return "recon_error";
    default: return "unknown";
  }
}

std::uint64_t drift_metric_id(const std::string& name) noexcept {
  if (name == "svd_energy") return 0;
  if (name == "kmeans_inertia") return 1;
  return 2;  // "recon_error"
}

std::string to_json(const FlightEvent& event) {
  std::string out = "{\"seq\":" + std::to_string(event.seq);
  out += ",\"epoch\":" + std::to_string(event.epoch);
  out += ",\"kind\":\"";
  out += flight_kind_name(event.kind);
  out += "\",\"actor\":" + std::to_string(event.actor);
  out += ",\"a\":" + fmt_double(event.a);
  out += ",\"b\":" + fmt_double(event.b);
  out += ",\"c\":" + fmt_double(event.c);
  out += ",\"u\":[";
  for (int i = 0; i < 6; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(event.u[i]);
  }
  out += "]}";
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be > 0");
  }
  slots_.reset(new Slot[capacity_]);
}

void FlightRecorder::record(FlightEvent event) noexcept {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  event.seq = seq;
  Slot& s = slots_[seq % capacity_];
  s.ev = event;
  s.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t first = total > capacity_ ? total - capacity_ : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(total - first));
  for (std::uint64_t i = first; i < total; ++i) {
    const Slot& s = slots_[i % capacity_];
    // A stamp other than i + 1 means this generation was overwritten (or
    // not yet published) — skip it rather than return torn data.
    if (s.stamp.load(std::memory_order_acquire) != i + 1) continue;
    out.push_back(s.ev);
  }
  return out;
}

std::string FlightRecorder::dump_jsonl() const {
  dumps_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<FlightEvent> events = snapshot();
  std::string out = "{\"kind\":\"flight_recorder\",\"capacity\":" +
                    std::to_string(capacity_);
  out += ",\"total_recorded\":" + std::to_string(total_recorded());
  out += ",\"dropped\":" + std::to_string(dropped());
  out += ",\"events\":" + std::to_string(events.size());
  out += "}\n";
  for (const FlightEvent& e : events) {
    out += to_json(e);
    out += '\n';
  }
  return out;
}

}  // namespace jaal::observe
