// Epoch health tracking and the operator-facing HealthReport.
//
// The HealthTracker is the deployment's detection-quality ledger: the
// controller feeds it every monitor's per-epoch FidelityStats (which drive
// the per-(monitor, metric) DriftDetectors) plus the epoch's degraded-mode
// accounting, and it answers two questions at any time: "how cautious
// should a consumer be about this epoch's alerts?" (caution(), the tau_c
// caution signal — the fraction of monitors whose summary fidelity is
// currently drifting, surfaced on alerts but never auto-acted on) and
// "what is the overall health of this deployment?" (report()).
//
// The HealthReport adds an optional per-rule precision scoreboard filled
// from labeled trials (jaal_doctor runs them; a live deployment has no
// labels) and renders as human-readable text — a *ranked* diagnosis, worst
// finding first — or as deterministic JSONL for the CI artifact trail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "observe/drift.hpp"
#include "observe/slo.hpp"

namespace jaal::observe {

/// Deployment-level observability knobs (JaalConfig::observe).
struct ObserveConfig {
  /// Attach an AlertProvenance to every alert (near-zero cost when off:
  /// one branch per alert in the serial decision phase).
  bool provenance = true;
  /// Run the summary-fidelity drift monitors and the caution signal.
  bool drift = true;
  DriftConfig drift_config;
  /// Operational flight recorder (observe/flight_recorder.hpp): off by
  /// default; when on, the controller records structured events from its
  /// serial epoch-close phase into a ring of flight_capacity events.
  bool flight_recorder = false;
  std::size_t flight_capacity = 4096;
  /// SLO tracking (observe/slo.hpp): off by default; when on, every epoch
  /// feeds the report_fraction and close-latency error budgets and the
  /// jaal_slo_* metrics are exported.
  bool slo = false;
  SloConfig slo_config;
  /// Per-epoch critical-path profiling (telemetry/profile.hpp): on by
  /// default, but only active when JaalConfig::telemetry is set.  Each
  /// epoch close reconstructs the span tree, fills EpochResult::profile,
  /// exports the jaal_profile_* metric family, records one deterministic
  /// kProfile flight event, and feeds SLO latency attribution.  Turn off
  /// to keep spans without the per-epoch tree analysis (the perf gate for
  /// the ops-focused bench mode).
  bool profile = true;
};

/// Aggregated fidelity and drift state of one monitor.
struct MonitorHealth {
  std::uint32_t monitor = 0;
  std::size_t epochs = 0;  ///< Epochs this monitor produced a summary.
  double mean_energy = 0.0;
  double min_energy = 1.0;
  double mean_inertia = 0.0;
  double max_inertia = 0.0;
  double mean_recon_error = 0.0;
  std::size_t drift_events = 0;  ///< kDriftStart transitions observed.
  bool drifting = false;         ///< Any metric currently drifted.
};

/// Per-rule precision from labeled trials (filled by jaal_doctor; empty on
/// a live deployment, which has no ground truth).
struct RuleScore {
  std::uint32_t sid = 0;
  std::string msg;
  std::uint64_t true_positives = 0;   ///< Fired on a trial labeled with it.
  std::uint64_t false_positives = 0;  ///< Fired anywhere else.
  std::uint64_t labeled_trials = 0;   ///< Trials carrying this rule's attack.

  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t fired = true_positives + false_positives;
    return fired == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(fired);
  }
  [[nodiscard]] double recall() const noexcept {
    return labeled_trials == 0 ? 1.0
                               : static_cast<double>(true_positives) /
                                     static_cast<double>(labeled_trials);
  }
};

/// PR 4 degraded-mode accounting, folded over all epochs seen.
struct DegradationSummary {
  std::size_t epochs = 0;
  std::size_t degraded_epochs = 0;  ///< report_fraction < 1.
  std::size_t monitor_crash_epochs = 0;
  std::size_t summaries_dropped = 0;
  std::size_t summaries_late = 0;
  std::size_t summaries_rolled_in = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t feedback_fallbacks = 0;
  std::uint64_t alerts = 0;
  double min_report_fraction = 1.0;
  double mean_report_fraction = 1.0;
};

/// The assembled health picture, with renderers.
struct HealthReport {
  std::vector<MonitorHealth> monitors;  ///< Ascending monitor id.
  std::vector<HealthEvent> events;      ///< Chronological.
  DegradationSummary degradation;
  std::vector<RuleScore> scoreboard;    ///< Optional (labeled trials only).
  double caution = 0.0;                 ///< Current caution signal.

  /// One ranked finding: higher severity = worse; ties broken by text.
  struct Finding {
    double severity = 0.0;  ///< 0 = informational, 1 = critical.
    std::string text;
  };
  /// The ranked diagnosis, worst first.  Always non-empty (an all-healthy
  /// deployment yields one informational finding saying so).
  [[nodiscard]] std::vector<Finding> ranked_findings() const;

  /// Human-readable report: summary header, ranked findings, per-monitor
  /// fidelity table, scoreboard (when present), event log.
  [[nodiscard]] std::string to_text() const;

  /// Deterministic JSONL: one "health_summary" line, then one line per
  /// monitor, rule score, and event, in fixed order; doubles as %.17g.
  [[nodiscard]] std::string to_jsonl() const;
};

/// Accumulates epoch observations into a HealthReport.  Fed serially by the
/// controller (fidelity in monitor order, then one end_epoch), so its
/// output is deterministic across runs and thread counts.
class HealthTracker {
 public:
  /// Throws std::invalid_argument on a bad drift config or zero monitors.
  HealthTracker(const ObserveConfig& cfg, std::size_t monitor_count);

  /// Plain-data view of one epoch's degradation (mirrors EpochResult
  /// without depending on core).
  struct EpochDegradation {
    double report_fraction = 1.0;
    std::size_t monitors_crashed = 0;
    std::size_t summaries_dropped = 0;
    std::size_t summaries_late = 0;
    std::size_t summaries_rolled_in = 0;
    std::uint64_t packets_lost = 0;
    std::uint64_t feedback_fallbacks = 0;
    std::size_t alerts = 0;
  };

  /// Feeds one monitor's fidelity for the current epoch; any drift
  /// transitions it causes are buffered until end_epoch.  No-op when
  /// drift monitoring is disabled.
  void observe_fidelity(const FidelityStats& stats);

  /// Closes the epoch: folds the degradation accounting and returns the
  /// drift events raised since the previous end_epoch (chronological,
  /// monitor order within the epoch).
  std::vector<HealthEvent> end_epoch(std::uint64_t epoch,
                                     const EpochDegradation& degradation);

  /// The tau_c caution signal: fraction of monitors with any currently
  /// drifting fidelity metric, in [0, 1].  0 when drift is disabled.
  [[nodiscard]] double caution() const noexcept;

  /// Monitors with at least one drifting metric right now.
  [[nodiscard]] std::size_t monitors_drifting() const noexcept;

  [[nodiscard]] std::uint64_t drift_events_total() const noexcept {
    return drift_events_total_;
  }

  /// Assembles the report from everything seen so far (scoreboard empty;
  /// callers with labeled trials fill it in).
  [[nodiscard]] HealthReport report() const;

 private:
  struct PerMonitor {
    DriftDetector energy;
    DriftDetector inertia;
    DriftDetector recon;
    std::size_t epochs = 0;
    double energy_sum = 0.0;
    double min_energy = 1.0;
    double inertia_sum = 0.0;
    double max_inertia = 0.0;
    double recon_sum = 0.0;
    std::size_t drift_events = 0;
    [[nodiscard]] bool drifting() const noexcept {
      return energy.drifting() || inertia.drifting() || recon.drifting();
    }
  };

  void check_metric(DriftDetector& detector, const FidelityStats& stats,
                    const char* metric, double value, PerMonitor& pm);

  ObserveConfig cfg_;
  std::vector<PerMonitor> monitors_;
  std::vector<HealthEvent> epoch_events_;  ///< Since the last end_epoch.
  std::vector<HealthEvent> all_events_;
  DegradationSummary degradation_;
  double report_fraction_sum_ = 0.0;
  std::uint64_t drift_events_total_ = 0;
};

}  // namespace jaal::observe
