// In-process flight recorder: a fixed-size ring of structured operational
// events (epoch closes, fault-transport decisions, fidelity samples, drift
// transitions, stage-span completions) that an operator can dump as
// deterministic JSONL after the fact — the "what was the pipeline doing
// right before this?" answer that counters alone cannot give.
//
// Cost model: recording is wait-free — one relaxed fetch_add to claim a
// slot, a plain struct copy, one release store to publish.  When the
// recorder is off (the default), callers hold a null pointer and pay one
// branch.  The ring overwrites oldest-first when full; overwritten events
// are counted, never silently lost.
//
// Threading contract: record() is safe from concurrent threads as long as
// the ring does not wrap within one concurrent burst (capacity >> in-flight
// writers — trivially true here: the controller records only from the
// serial epoch-close phase).  snapshot()/dump_jsonl() read only published
// slots and are safe concurrent with recording; for a *deterministic* dump,
// take it from the serial phase like everything else in this codebase.
//
// Determinism: events carry simulated time, epoch ids and seeded pipeline
// quantities — never wall-clock durations — so the same seeded run produces
// a byte-identical dump across runs and thread counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jaal::observe {

/// Event vocabulary.  Values are stable — they are persisted verbatim in
/// the store's kEvents records (see store/metrics_codec.hpp); add at the
/// end, never renumber.
enum class FlightEventKind : std::uint8_t {
  kEpochClose = 1,  ///< One per closed epoch: degradation accounting.
  kFidelity = 2,    ///< One per reporting monitor: summary fidelity.
  kDriftStart = 3,  ///< Fidelity metric left its baseline band.
  kDriftEnd = 4,    ///< Fidelity metric returned to baseline.
  kShip = 5,        ///< Fault-transport decision on one summary.
  kFeedback = 6,    ///< Feedback-loop fallbacks this epoch.
  kSpan = 7,        ///< Pipeline stage span completed (sim time only).
  kProfile = 8,     ///< Deterministic critical-path digest of the epoch.
};

/// Stable name for a kind ("epoch_close", "fidelity", ...).
[[nodiscard]] const char* flight_kind_name(FlightEventKind kind) noexcept;

/// One fixed-size event.  The payload fields are kind-specific:
///
///   kEpochClose  actor=alerts  a=report_fraction b=caution
///                c=deployment monitor count (exact for counts < 2^53;
///                lets offline reconstruction size its HealthTracker)
///                u = {crashed, dropped, late, rolled_in, packets_lost,
///                     feedback_fallbacks}
///   kFidelity    actor=monitor a=svd_energy b=inertia c=recon_error
///                u0=batch_packets
///   kDriftStart/ actor=monitor a=value b=baseline c=z
///   kDriftEnd    u0=metric id (0 svd_energy, 1 kmeans_inertia,
///                              2 recon_error)
///   kShip        actor=monitor u0=outcome (1 dropped, 2 late,
///                              3 rolled forward)
///   kFeedback    u0=fallbacks this epoch
///   kSpan        actor=stage id (0 observe .. 5 postprocess) a=sim_time
///   kProfile     actor=dominant stage id (telemetry::profile_stage_id,
///                deterministic-mode critical path) a=root inclusive units
///                b=critical path depth  u = {span count, sibling groups}
///                — all fields are derived from the deterministic span
///                tree shape, so the persisted bytes stay byte-identical
///                across runs, thread counts, and shard counts.
struct FlightEvent {
  std::uint64_t seq = 0;  ///< Assigned by record(); global, gap-free.
  std::uint64_t epoch = 0;
  FlightEventKind kind = FlightEventKind::kEpochClose;
  std::uint32_t actor = 0;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  std::uint64_t u[6] = {0, 0, 0, 0, 0, 0};
};

/// Drift-metric name <-> the id carried in FlightEvent::u[0].
[[nodiscard]] const char* drift_metric_name(std::uint64_t id) noexcept;
[[nodiscard]] std::uint64_t drift_metric_id(const std::string& name) noexcept;

/// One deterministic JSON line for an event (no trailing newline);
/// doubles as %.17g.
[[nodiscard]] std::string to_json(const FlightEvent& event);

class FlightRecorder {
 public:
  /// Throws std::invalid_argument when capacity is zero (construction-time
  /// misconfiguration only; record() never throws).
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event (seq is assigned here, overwriting event.seq).
  void record(FlightEvent event) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Events recorded over the recorder's lifetime.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return next_.load(std::memory_order_acquire);
  }

  /// Events overwritten by ring wrap-around (lifetime).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t total = total_recorded();
    return total > capacity_ ? total - capacity_ : 0;
  }

  /// Dumps taken so far (dump_jsonl calls).
  [[nodiscard]] std::uint64_t dumps_taken() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

  /// The ring's current contents, oldest first (published slots only).
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Deterministic JSONL dump: one flight_recorder header line (totals),
  /// then one line per live event, oldest first.  Counts toward
  /// dumps_taken().
  [[nodiscard]] std::string dump_jsonl() const;

 private:
  struct Slot {
    /// seq + 1 once the event for generation seq is published; 0 = empty.
    std::atomic<std::uint64_t> stamp{0};
    FlightEvent ev;
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  mutable std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace jaal::observe
