// Umbrella header for the detection-observability subsystem:
//   - observe/provenance.hpp  per-alert causal chains (AlertProvenance)
//   - observe/drift.hpp       summary-fidelity drift monitors
//   - observe/health.hpp      ObserveConfig, HealthTracker, HealthReport
#pragma once

#include "observe/drift.hpp"
#include "observe/health.hpp"
#include "observe/provenance.hpp"
