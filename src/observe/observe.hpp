// Umbrella header for the detection-observability subsystem:
//   - observe/provenance.hpp       per-alert causal chains (AlertProvenance)
//   - observe/drift.hpp            summary-fidelity drift monitors
//   - observe/health.hpp           ObserveConfig, HealthTracker, HealthReport
//   - observe/flight_recorder.hpp  operational event ring + JSONL dumps
//   - observe/slo.hpp              error-budget tracking (report_fraction,
//                                  epoch latency)
#pragma once

#include "observe/drift.hpp"
#include "observe/flight_recorder.hpp"
#include "observe/health.hpp"
#include "observe/provenance.hpp"
#include "observe/slo.hpp"
