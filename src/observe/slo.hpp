// Service-level-objective tracking over the two signals an operator
// actually promises on: detection completeness (per-epoch report_fraction)
// and epoch-close latency.
//
// Model (the standard SRE error-budget formulation):
//   * An epoch is *good* for the completeness SLI when report_fraction >=
//     report_fraction_min, and good for the latency SLI when the epoch
//     close's wall-clock cost is <= latency_target_ms.
//   * The objective is a target fraction of good epochs (e.g. 0.99).  The
//     lifetime error budget is (1 - objective) * epochs; budget remaining
//     is 1 - bad / budget, clamped to [0, 1] and exported in permille.
//   * The burn rate is computed over a rolling window of the last W epochs:
//     (bad_in_window / W) / (1 - objective).  1000 permille = burning
//     exactly the sustainable rate; above that the budget is shrinking.
//
// Determinism: the completeness SLI is pure seeded-pipeline arithmetic —
// byte-identical across runs and thread counts, persisted per epoch and
// reproducible offline by jaal_doctor --store.  The latency SLI is
// wall-clock derived; its exported metrics are named with "_ms" so the
// deterministic export filter (telemetry::is_wall_clock_metric) already
// excludes them, and to_jsonl() reports the completeness side only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jaal::observe {

/// SLO targets (ObserveConfig::slo_config).
struct SloConfig {
  /// Target fraction of good epochs, in (0, 1).
  double objective = 0.99;
  /// Completeness SLI threshold: epoch good iff report_fraction >= this.
  double report_fraction_min = 0.999;
  /// Latency SLI threshold in wall-clock ms per epoch close.
  double latency_target_ms = 250.0;
  /// Rolling window (epochs) for the burn rate.
  std::size_t window = 64;

  /// Throws std::invalid_argument on a degenerate configuration.
  void validate() const;
};

/// Folds per-epoch observations into error budgets.  Fed from the serial
/// epoch-close phase; all completeness-side outputs are deterministic.
class SloTracker {
 public:
  SloTracker() : SloTracker(SloConfig{}) {}
  explicit SloTracker(const SloConfig& cfg);

  /// Folds one epoch.  latency_ms < 0 means "no latency sample" (offline
  /// reconstruction, where wall clock was not persisted).
  void observe_epoch(std::uint64_t epoch, double report_fraction,
                     double latency_ms);

  /// Attributes the epoch most recently folded by observe_epoch to the
  /// stage that dominated its critical path (telemetry::CriticalPath).
  /// When that epoch breached the latency target, the stage's breach
  /// count increments — the "which stage ate the budget" side channel the
  /// live jaal_doctor surfaces.  Kept out of to_jsonl(): the latency SLI
  /// is wall-clock derived, and to_jsonl() is pinned byte-identical
  /// between live runs and offline store reconstruction.
  void attribute_latency(const std::string& dominant_stage);

  /// Dominant stage of the last attributed epoch ("" before any).
  [[nodiscard]] const std::string& last_dominant_stage() const noexcept {
    return last_dominant_stage_;
  }
  /// (stage, latency-breach count) pairs, sorted by stage name — only
  /// epochs that breached the latency target count.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  breaches_by_stage() const;

  [[nodiscard]] const SloConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::uint64_t rf_breaches() const noexcept {
    return rf_bad_;
  }
  [[nodiscard]] std::uint64_t latency_breaches() const noexcept {
    return lat_bad_;
  }

  /// Lifetime budget remaining, in permille of the allowed bad epochs
  /// (1000 = untouched, 0 = exhausted or overdrawn).
  [[nodiscard]] std::int64_t rf_budget_remaining_permille() const noexcept;
  [[nodiscard]] std::int64_t latency_budget_remaining_permille()
      const noexcept;

  /// Rolling-window burn rate in permille (1000 = burning exactly the
  /// sustainable rate).  Completeness SLI only.
  [[nodiscard]] std::int64_t rf_burn_rate_permille() const noexcept;

  /// One deterministic "slo_summary" JSON line (trailing newline),
  /// completeness SLI only; doubles as %.17g.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  [[nodiscard]] std::int64_t budget_permille(std::uint64_t bad) const noexcept;

  SloConfig cfg_;
  std::uint64_t epochs_ = 0;
  std::uint64_t rf_bad_ = 0;
  std::uint64_t lat_bad_ = 0;
  /// Last `window` completeness verdicts (1 = bad), ring-indexed by epoch
  /// order.
  std::vector<std::uint8_t> rf_window_;
  std::size_t window_pos_ = 0;
  std::uint64_t window_bad_ = 0;
  bool last_latency_breached_ = false;
  std::string last_dominant_stage_;
  /// Unordered (stage, breach count); breaches_by_stage() sorts.
  std::vector<std::pair<std::string, std::uint64_t>> stage_breaches_;
};

}  // namespace jaal::observe
