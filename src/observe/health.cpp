#include "observe/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace jaal::observe {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<HealthReport::Finding> HealthReport::ranked_findings() const {
  std::vector<Finding> findings;

  // Drifting monitors: the most actionable signal — summaries no longer
  // represent the traffic behind them.
  for (const MonitorHealth& m : monitors) {
    if (m.drifting) {
      findings.push_back(
          {0.9, "monitor " + std::to_string(m.monitor) +
                    ": summary fidelity is currently drifting (min energy " +
                    fmt_fixed(m.min_energy, 4) + ", " +
                    std::to_string(m.drift_events) + " drift event(s))"});
    } else if (m.drift_events > 0) {
      findings.push_back(
          {0.5, "monitor " + std::to_string(m.monitor) + ": " +
                    std::to_string(m.drift_events) +
                    " past drift episode(s), currently recovered"});
    }
  }

  // Imprecise rules (labeled trials only).
  for (const RuleScore& r : scoreboard) {
    const double p = r.precision();
    if (r.true_positives + r.false_positives > 0 && p < 0.999) {
      findings.push_back(
          {0.4 + 0.4 * (1.0 - p),
           "rule sid " + std::to_string(r.sid) + " (" + r.msg +
               "): precision " + fmt_fixed(p, 3) + " over " +
               std::to_string(r.true_positives + r.false_positives) +
               " firings"});
    }
    if (r.labeled_trials > 0 && r.recall() < 0.999) {
      findings.push_back(
          {0.4 + 0.4 * (1.0 - r.recall()),
           "rule sid " + std::to_string(r.sid) + " (" + r.msg +
               "): recall " + fmt_fixed(r.recall(), 3) + " over " +
               std::to_string(r.labeled_trials) + " labeled trial(s)"});
    }
  }

  // Degraded-mode accounting.
  if (degradation.degraded_epochs > 0) {
    const double frac =
        static_cast<double>(degradation.degraded_epochs) /
        static_cast<double>(std::max<std::size_t>(degradation.epochs, 1));
    findings.push_back(
        {0.3 + 0.5 * frac,
         std::to_string(degradation.degraded_epochs) + "/" +
             std::to_string(degradation.epochs) +
             " epochs degraded (min report_fraction " +
             fmt_fixed(degradation.min_report_fraction, 3) + ", " +
             std::to_string(degradation.packets_lost) + " packets lost)"});
  }
  if (degradation.feedback_fallbacks > 0) {
    findings.push_back(
        {0.45, std::to_string(degradation.feedback_fallbacks) +
                   " feedback retrieval(s) fell back to summary-only "
                   "decisions (uncertain alerts unverified)"});
  }
  if (degradation.summaries_late > 0 || degradation.summaries_rolled_in > 0) {
    findings.push_back(
        {0.2, std::to_string(degradation.summaries_late) +
                  " late summar(ies), " +
                  std::to_string(degradation.summaries_rolled_in) +
                  " rolled into a later epoch"});
  }

  if (findings.empty()) {
    findings.push_back({0.0, "all monitors healthy: no drift, no degraded "
                             "epochs, no feedback fallbacks"});
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity) {
                       return a.severity > b.severity;
                     }
                     return a.text < b.text;
                   });
  return findings;
}

std::string HealthReport::to_text() const {
  std::string out;
  out += "=== Jaal epoch health report ===\n";
  out += "epochs: " + std::to_string(degradation.epochs);
  out += "  alerts: " + std::to_string(degradation.alerts);
  out += "  caution: " + fmt_fixed(caution, 3);
  out += "  mean report_fraction: " +
         fmt_fixed(degradation.mean_report_fraction, 3) + "\n\n";

  out += "-- ranked diagnosis (worst first) --\n";
  std::size_t rank = 1;
  for (const Finding& f : ranked_findings()) {
    out += "  " + std::to_string(rank++) + ". [" +
           fmt_fixed(f.severity, 2) + "] " + f.text + "\n";
  }

  out += "\n-- per-monitor summary fidelity --\n";
  out += "  monitor  epochs  mean_energy  min_energy  mean_inertia  "
         "drift_events  state\n";
  for (const MonitorHealth& m : monitors) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %7u  %6zu  %11.4f  %10.4f  %12.4f  %12zu  %s\n",
                  m.monitor, m.epochs, m.mean_energy, m.min_energy,
                  m.mean_inertia, m.drift_events,
                  m.drifting ? "DRIFTING" : "ok");
    out += line;
  }

  if (!scoreboard.empty()) {
    out += "\n-- rule precision scoreboard (labeled trials) --\n";
    out += "      sid  tp  fp  trials  precision  recall  msg\n";
    for (const RuleScore& r : scoreboard) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %7u  %2llu  %2llu  %6llu  %9.3f  %6.3f  %s\n", r.sid,
                    static_cast<unsigned long long>(r.true_positives),
                    static_cast<unsigned long long>(r.false_positives),
                    static_cast<unsigned long long>(r.labeled_trials),
                    r.precision(), r.recall(), r.msg.c_str());
      out += line;
    }
  }

  out += "\n-- drift events (" + std::to_string(events.size()) + ") --\n";
  for (const HealthEvent& e : events) {
    out += "  epoch " + std::to_string(e.epoch) + " monitor " +
           std::to_string(e.monitor) + " " + e.metric +
           (e.kind == HealthEventKind::kDriftStart ? " DRIFT_START"
                                                   : " drift_end") +
           " z=" + fmt_fixed(e.z, 2) + " value=" + fmt_fixed(e.value, 4) +
           " baseline=" + fmt_fixed(e.baseline, 4) + "\n";
  }
  return out;
}

std::string HealthReport::to_jsonl() const {
  std::string out = "{\"kind\":\"health_summary\",\"epochs\":";
  out += std::to_string(degradation.epochs);
  out += ",\"degraded_epochs\":" + std::to_string(degradation.degraded_epochs);
  out += ",\"monitor_crash_epochs\":" +
         std::to_string(degradation.monitor_crash_epochs);
  out += ",\"summaries_dropped\":" +
         std::to_string(degradation.summaries_dropped);
  out += ",\"summaries_late\":" + std::to_string(degradation.summaries_late);
  out += ",\"summaries_rolled_in\":" +
         std::to_string(degradation.summaries_rolled_in);
  out += ",\"packets_lost\":" + std::to_string(degradation.packets_lost);
  out += ",\"feedback_fallbacks\":" +
         std::to_string(degradation.feedback_fallbacks);
  out += ",\"alerts\":" + std::to_string(degradation.alerts);
  out += ",\"min_report_fraction\":" +
         fmt_double(degradation.min_report_fraction);
  out += ",\"mean_report_fraction\":" +
         fmt_double(degradation.mean_report_fraction);
  out += ",\"caution\":" + fmt_double(caution);
  out += ",\"drift_events\":" + std::to_string(events.size());
  out += "}\n";

  for (const MonitorHealth& m : monitors) {
    out += "{\"kind\":\"monitor_health\",\"monitor\":";
    out += std::to_string(m.monitor);
    out += ",\"epochs\":" + std::to_string(m.epochs);
    out += ",\"mean_energy\":" + fmt_double(m.mean_energy);
    out += ",\"min_energy\":" + fmt_double(m.min_energy);
    out += ",\"mean_inertia\":" + fmt_double(m.mean_inertia);
    out += ",\"max_inertia\":" + fmt_double(m.max_inertia);
    out += ",\"mean_recon_error\":" + fmt_double(m.mean_recon_error);
    out += ",\"drift_events\":" + std::to_string(m.drift_events);
    out += ",\"drifting\":";
    out += m.drifting ? "true" : "false";
    out += "}\n";
  }

  for (const RuleScore& r : scoreboard) {
    out += "{\"kind\":\"rule_score\",\"sid\":" + std::to_string(r.sid);
    out += ",\"msg\":\"" + json_escape(r.msg) + "\"";
    out += ",\"tp\":" + std::to_string(r.true_positives);
    out += ",\"fp\":" + std::to_string(r.false_positives);
    out += ",\"labeled_trials\":" + std::to_string(r.labeled_trials);
    out += ",\"precision\":" + fmt_double(r.precision());
    out += ",\"recall\":" + fmt_double(r.recall());
    out += "}\n";
  }

  for (const HealthEvent& e : events) {
    out += to_json(e);
    out += '\n';
  }
  return out;
}

HealthTracker::HealthTracker(const ObserveConfig& cfg,
                             std::size_t monitor_count)
    : cfg_(cfg) {
  cfg_.drift_config.validate();
  if (monitor_count == 0) {
    throw std::invalid_argument("HealthTracker: monitor_count must be > 0");
  }
  monitors_.reserve(monitor_count);
  for (std::size_t i = 0; i < monitor_count; ++i) {
    monitors_.push_back(PerMonitor{DriftDetector(cfg_.drift_config),
                                   DriftDetector(cfg_.drift_config),
                                   DriftDetector(cfg_.drift_config)});
  }
}

void HealthTracker::check_metric(DriftDetector& detector,
                                 const FidelityStats& stats,
                                 const char* metric, double value,
                                 PerMonitor& pm) {
  const double baseline = detector.mean();
  const double z = detector.observe(value);
  if (detector.transitioned()) {
    const HealthEventKind kind = detector.drifting()
                                     ? HealthEventKind::kDriftStart
                                     : HealthEventKind::kDriftEnd;
    if (kind == HealthEventKind::kDriftStart) {
      ++pm.drift_events;
      ++drift_events_total_;
    }
    epoch_events_.push_back(
        {stats.epoch, stats.monitor, metric, kind, value, baseline, z});
  }
}

void HealthTracker::observe_fidelity(const FidelityStats& stats) {
  if (stats.monitor >= monitors_.size()) {
    return;  // Unknown monitor id; never happens from the controller.
  }
  PerMonitor& pm = monitors_[stats.monitor];
  ++pm.epochs;
  pm.energy_sum += stats.svd_energy_retained;
  pm.min_energy = std::min(pm.min_energy, stats.svd_energy_retained);
  pm.inertia_sum += stats.kmeans_inertia;
  pm.max_inertia = std::max(pm.max_inertia, stats.kmeans_inertia);
  pm.recon_sum += stats.reconstruction_error;
  if (!cfg_.drift) return;
  check_metric(pm.energy, stats, "svd_energy", stats.svd_energy_retained, pm);
  check_metric(pm.inertia, stats, "kmeans_inertia", stats.kmeans_inertia, pm);
  check_metric(pm.recon, stats, "recon_error", stats.reconstruction_error,
               pm);
}

std::vector<HealthEvent> HealthTracker::end_epoch(
    std::uint64_t /*epoch*/, const EpochDegradation& degradation) {
  ++degradation_.epochs;
  if (degradation.report_fraction < 1.0) ++degradation_.degraded_epochs;
  if (degradation.monitors_crashed > 0) ++degradation_.monitor_crash_epochs;
  degradation_.summaries_dropped += degradation.summaries_dropped;
  degradation_.summaries_late += degradation.summaries_late;
  degradation_.summaries_rolled_in += degradation.summaries_rolled_in;
  degradation_.packets_lost += degradation.packets_lost;
  degradation_.feedback_fallbacks += degradation.feedback_fallbacks;
  degradation_.alerts += degradation.alerts;
  degradation_.min_report_fraction =
      std::min(degradation_.min_report_fraction, degradation.report_fraction);
  report_fraction_sum_ += degradation.report_fraction;
  degradation_.mean_report_fraction =
      report_fraction_sum_ / static_cast<double>(degradation_.epochs);

  std::vector<HealthEvent> events = std::move(epoch_events_);
  epoch_events_.clear();
  all_events_.insert(all_events_.end(), events.begin(), events.end());
  return events;
}

double HealthTracker::caution() const noexcept {
  if (!cfg_.drift || monitors_.empty()) return 0.0;
  return static_cast<double>(monitors_drifting()) /
         static_cast<double>(monitors_.size());
}

std::size_t HealthTracker::monitors_drifting() const noexcept {
  std::size_t n = 0;
  for (const PerMonitor& pm : monitors_) {
    if (pm.drifting()) ++n;
  }
  return n;
}

HealthReport HealthTracker::report() const {
  HealthReport r;
  r.monitors.reserve(monitors_.size());
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    const PerMonitor& pm = monitors_[i];
    MonitorHealth mh;
    mh.monitor = static_cast<std::uint32_t>(i);
    mh.epochs = pm.epochs;
    if (pm.epochs > 0) {
      const double n = static_cast<double>(pm.epochs);
      mh.mean_energy = pm.energy_sum / n;
      mh.min_energy = pm.min_energy;
      mh.mean_inertia = pm.inertia_sum / n;
      mh.max_inertia = pm.max_inertia;
      mh.mean_recon_error = pm.recon_sum / n;
    }
    mh.drift_events = pm.drift_events;
    mh.drifting = pm.drifting();
    r.monitors.push_back(mh);
  }
  r.events = all_events_;
  r.degradation = degradation_;
  r.caution = caution();
  return r;
}

}  // namespace jaal::observe
