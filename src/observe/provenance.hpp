// Alert provenance: the full causal chain behind one alert.
//
// An Alert says *that* a rule fired; an AlertProvenance says *why*: which
// aggregated centroids matched the question vector and by what margin
// against tau_d1/tau_d2, which monitors contributed them, which of the
// engine's threshold cases (§5.3) the decision took, what the feedback
// round-trip did (attempts, fallback, raw verdict), and the degraded-mode
// context (report_fraction, caution) in effect at decision time.
//
// Provenance is built from plain data the engine already computed — counts,
// seeded distances, threshold constants — in the serial decision phase, so
// the same seeded run produces byte-identical provenance across runs and
// thread counts.  Capture is toggled by EngineConfig::record_provenance
// (default on); off costs one branch per alert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jaal::observe {

/// Which of the engine's §5.3 threshold cases produced the alert.
enum class ThresholdCase : std::uint8_t {
  kStrictMatch = 1,       ///< Case 1: matched at tau_d1 (high confidence).
  kUncertainVerified = 3, ///< Case 3: tau_d1 missed, raw packets confirmed.
  kUncertainAssumed = 4,  ///< Case 3 without usable feedback (no fetcher,
                          ///< feedback disabled, or retrieval fallback):
                          ///< the loose tau_d2 decision stands.
};

[[nodiscard]] const char* to_string(ThresholdCase c) noexcept;

/// One aggregated centroid that matched the question vector.
struct CentroidEvidence {
  std::uint32_t monitor = 0;     ///< Origin monitor (summarize::MonitorId).
  std::size_t local_index = 0;   ///< Centroid index at that monitor.
  std::uint64_t count = 0;       ///< Packets behind the centroid.
  double distance = 0.0;         ///< Eq. 5 distance to the question vector.
  /// Threshold margins (positive = inside): tau_d - distance.
  double margin_d1 = 0.0;
  double margin_d2 = 0.0;
};

/// Outcome of the case-3 feedback round-trip for this alert.
struct FeedbackProvenance {
  bool requested = false;     ///< The engine asked for raw packets.
  bool fallback = false;      ///< Retrieval failed; summary decision stood.
  std::size_t attempts = 0;   ///< Transport attempts across all retrievals
                              ///< freshly made for this alert (cache hits
                              ///< contribute 0).
  double backoff_s = 0.0;     ///< Total retry backoff those attempts cost.
  std::size_t raw_packets = 0;  ///< Raw packets examined.
  bool raw_confirmed = false;   ///< Exact-match verdict (when it ran).
};

struct AlertProvenance {
  std::uint32_t sid = 0;
  ThresholdCase threshold_case = ThresholdCase::kStrictMatch;

  // Thresholds in effect at decision time.
  double tau_d1 = 0.0;
  double tau_d2 = 0.0;
  std::uint64_t tau_c = 0;      ///< Scaled count threshold actually applied.
  double tau_c_scale = 1.0;     ///< Volume scale folded into tau_c.

  // The two Algorithm-1 passes.
  std::uint64_t strict_count = 0;  ///< Sum of counts within tau_d1.
  std::uint64_t loose_count = 0;   ///< Sum of counts within tau_d2.

  // Degraded-mode context (PR 4) at decision time.
  double report_fraction = 1.0;
  /// Drift caution signal (fraction of monitors whose summary fidelity is
  /// currently drifting, 0 = all healthy).  Surfaced, never acted on.
  double caution = 0.0;

  /// The evidence set Q the decision used: strict matches for case 1,
  /// loose matches for case 3.  Non-empty for every raised alert.
  std::vector<CentroidEvidence> centroids;
  /// Distinct contributing monitors, ascending.
  std::vector<std::uint32_t> monitors;

  FeedbackProvenance feedback;

  // Postprocessor (Algorithm 2) outcome.
  double variance = 0.0;
  bool distributed = false;
  /// verify_all_alerts (§10) raw confirmation ran and passed.
  bool verified = false;

  /// Mean margin of the evidence set against the threshold that admitted it
  /// (tau_d1 for case 1, tau_d2 otherwise); 0 on an empty set.
  [[nodiscard]] double mean_margin() const noexcept;
};

/// One-line deterministic JSON (no trailing newline): field order fixed,
/// doubles as %.17g, centroids in aggregate-row order.
[[nodiscard]] std::string to_json(const AlertProvenance& p);

/// JSONL for a batch of provenance records, one line each, in order.
[[nodiscard]] std::string to_jsonl(
    const std::vector<std::shared_ptr<const AlertProvenance>>& records);

}  // namespace jaal::observe
