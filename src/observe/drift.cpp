#include "observe/drift.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace jaal::observe {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void DriftConfig::validate() const {
  if (!(alpha > 0.0) || alpha > 1.0) {
    throw std::invalid_argument("DriftConfig: alpha must be in (0, 1]");
  }
  if (!(z_enter > 0.0) || z_exit < 0.0 || z_exit > z_enter) {
    throw std::invalid_argument(
        "DriftConfig: need 0 <= z_exit <= z_enter, z_enter > 0");
  }
  if (rel_floor < 0.0 || abs_floor < 0.0) {
    throw std::invalid_argument("DriftConfig: floors must be >= 0");
  }
}

std::string to_json(const HealthEvent& event) {
  std::string out = "{\"kind\":\"";
  out += event.kind == HealthEventKind::kDriftStart ? "drift_start"
                                                    : "drift_end";
  out += "\",\"epoch\":" + std::to_string(event.epoch);
  out += ",\"monitor\":" + std::to_string(event.monitor);
  out += ",\"metric\":\"" + event.metric + "\"";
  out += ",\"value\":" + fmt_double(event.value);
  out += ",\"baseline\":" + fmt_double(event.baseline);
  out += ",\"z\":" + fmt_double(event.z);
  out += "}";
  return out;
}

DriftDetector::DriftDetector(const DriftConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

double DriftDetector::observe(double x) {
  transitioned_ = false;
  if (n_ == 0) {
    // First sample seeds the baseline; no deviation to judge yet.
    mean_ = x;
    var_ = 0.0;
    n_ = 1;
    last_z_ = 0.0;
    return 0.0;
  }

  const double d = x - mean_;
  double z = 0.0;
  if (n_ >= cfg_.warmup) {
    const double sigma =
        std::max({std::sqrt(var_), cfg_.rel_floor * std::fabs(mean_),
                  cfg_.abs_floor});
    z = d / sigma;
    if (!drifting_ && std::fabs(z) >= cfg_.z_enter) {
      drifting_ = true;
      transitioned_ = true;
    } else if (drifting_ && std::fabs(z) <= cfg_.z_exit) {
      drifting_ = false;
      transitioned_ = true;
    }
  }
  last_z_ = z;

  // EWMA update (exponentially weighted mean and variance; West 1979
  // form).  Deliberately after the decision so each sample is judged
  // against the baseline that *predates* it.
  mean_ += cfg_.alpha * d;
  var_ = (1.0 - cfg_.alpha) * (var_ + cfg_.alpha * d * d);
  ++n_;
  return z;
}

}  // namespace jaal::observe
