// Summary-quality drift monitors.
//
// Jaal's detection quality rests on an assumption the pipeline never checks:
// that rank-r SVD plus k centroids still *represent* the traffic they
// summarize.  When the traffic distribution shifts (flash crowds, new
// services, an attack the ruleset does not know), summary fidelity erodes
// silently — the engine keeps matching question vectors against centroids
// that no longer resemble the packets behind them.  This module closes that
// gap: every Summarizer emits per-batch FidelityStats (SVD energy retained
// at rank r, k-means inertia, combined reconstruction error), and a
// DriftDetector per (monitor, metric) tracks an EWMA baseline with an EWMA
// variance, raising a HealthEvent when the z-score leaves the baseline band
// and a matching recovery event when it returns.
//
// Hysteresis: entering the drifted state needs |z| >= z_enter; leaving it
// needs |z| <= z_exit < z_enter.  A metric oscillating around one threshold
// therefore cannot flap start/end events every epoch — the band between
// z_exit and z_enter is sticky in both directions.
//
// Everything here is plain deterministic arithmetic on the (seeded)
// summarizer output: no clocks, no RNG — the same trace produces the same
// events byte-for-byte across runs and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace jaal::observe {

/// Per-batch summary fidelity, computed by the Summarizer from quantities
/// the pipeline already has (total energy is one extra O(np) pass; the
/// inertia comes out of k-means for free).
struct FidelityStats {
  std::uint64_t epoch = 0;    ///< Filled by the controller.
  std::uint32_t monitor = 0;  ///< summarize::MonitorId.
  std::size_t batch_packets = 0;
  /// Fraction of the batch's squared Frobenius energy the rank-r
  /// truncation retains (the §4.2 quantity; ~0.90+ on MAWI-like traffic).
  double svd_energy_retained = 1.0;
  /// Mean squared distance from each point to its centroid (k-means
  /// inertia / n), in whichever space was clustered (field space for S1,
  /// U_r space for S2 — consistent per deployment, which is what the
  /// baseline needs).
  double kmeans_inertia = 0.0;
  /// Combined per-packet summary error: (truncation residual energy +
  /// quantization inertia) / n.  What a consumer reconstructing packets
  /// from the summary would actually be off by, squared.
  double reconstruction_error = 0.0;
};

/// DriftDetector tuning.  Defaults are calibrated for per-epoch fidelity
/// series: a baseline that adapts over ~5 epochs, a 4-sigma entry bar, and
/// a relative variance floor so near-constant series (energy retained
/// ~0.98 +- 1e-3) do not turn numeric dust into drift.
struct DriftConfig {
  double alpha = 0.2;      ///< EWMA weight for mean and variance.
  double z_enter = 4.0;    ///< |z| >= z_enter enters the drifted state.
  double z_exit = 1.5;     ///< |z| <= z_exit recovers from it.
  std::size_t warmup = 3;  ///< Baseline-only samples before any event.
  /// Sigma floor, as a fraction of |baseline mean|: deviations are judged
  /// against max(ewma_sigma, rel_floor * |mean|, abs_floor).
  double rel_floor = 0.01;
  double abs_floor = 1e-9;

  /// Throws std::invalid_argument on a degenerate configuration
  /// (alpha outside (0, 1], z_exit > z_enter, negative floors).
  void validate() const;
};

enum class HealthEventKind : std::uint8_t {
  kDriftStart,  ///< Metric left the baseline band (|z| >= z_enter).
  kDriftEnd,    ///< Metric returned to baseline (|z| <= z_exit).
};

/// One drift transition on one (monitor, metric) series.
struct HealthEvent {
  std::uint64_t epoch = 0;
  std::uint32_t monitor = 0;
  std::string metric;  ///< "svd_energy" | "kmeans_inertia" | "recon_error".
  HealthEventKind kind = HealthEventKind::kDriftStart;
  double value = 0.0;     ///< The observation that triggered the event.
  double baseline = 0.0;  ///< EWMA mean at trigger time (pre-update).
  double z = 0.0;         ///< Signed z-score against that baseline.
};

/// One-line deterministic JSON for a health event (no trailing newline);
/// doubles use %.17g so the text round-trips bit-exactly.
[[nodiscard]] std::string to_json(const HealthEvent& event);

/// EWMA baseline + z-score drift detector with hysteresis over one scalar
/// series.  observe() returns the z-score of the sample against the
/// *pre-update* baseline, then folds the sample in (the baseline keeps
/// adapting while drifted, so a sustained shift eventually becomes the new
/// normal and the drift episode ends — exactly the operator semantics we
/// want: "something changed", not "forever different from epoch 0").
class DriftDetector {
 public:
  DriftDetector() : DriftDetector(DriftConfig{}) {}
  explicit DriftDetector(const DriftConfig& cfg);

  /// Feeds one sample; returns its z-score (0 during warmup).
  double observe(double x);

  [[nodiscard]] bool drifting() const noexcept { return drifting_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] std::size_t samples() const noexcept { return n_; }
  /// True exactly when the last observe() changed the drifting state.
  [[nodiscard]] bool transitioned() const noexcept { return transitioned_; }
  [[nodiscard]] double last_z() const noexcept { return last_z_; }

 private:
  DriftConfig cfg_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::size_t n_ = 0;
  bool drifting_ = false;
  bool transitioned_ = false;
  double last_z_ = 0.0;
};

}  // namespace jaal::observe
