// Epoch critical-path profiling over the deterministic span tree.
//
// `CriticalPath` rebuilds one epoch's span tree from flat SpanRecords and
// attributes latency per stage: inclusive time is the span's own duration,
// exclusive (self) time telescopes — exclusive(s) = inclusive(s) - sum of
// children's inclusive — so the exclusive times of every span in the tree
// sum *exactly* to the root's inclusive time.  Parallel children (monitor
// flushes, shard fan-out) can drive a parent's exclusive time negative;
// that is parallelism credit and is deliberately not clamped, because
// clamping would break the telescoping identity the tests pin down.
//
// Two duration modes:
//  - kWall: real measured durations.  This is what operators profile with;
//    it also powers straggler detection (max-vs-median skew across sibling
//    groups like per-monitor flushes or per-shard aggregates).
//  - kDeterministic: every span weighs 1 unit (inclusive = subtree size).
//    Durations are the *only* nondeterministic span field, so this mode is
//    byte-identical across runs and thread counts; tier-shape spans
//    (per-shard fan-out, only emitted when shards > 1) are excluded so it
//    is also invariant across shard counts.  Stragglers cannot exist here:
//    siblings all weigh the same.
//
// `ProfileReport` rolls critical paths up across epochs into a ranked
// stage table (exclusive ms, % of total, critical-path hit count) with
// deterministic ordering, exported via to_text / to_jsonl.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/span.hpp"

namespace jaal::telemetry {

enum class DurationMode {
  kWall,           ///< Measured durations (nondeterministic).
  kDeterministic,  ///< Unit weights; byte-identical across runs/threads/shards.
};

/// True for spans whose presence depends on the shard count (per-shard
/// fan-out and merge spans, emitted only when shards > 1).  Deterministic
/// exports exclude them so output is shard-count-invariant.
[[nodiscard]] bool is_tier_shape_span(std::string_view name) noexcept;

/// Stable small integer per known stage name, for compact flight-recorder
/// payloads.  Ids 0..5 match the kSpan stage ids already persisted by the
/// flight recorder; unknown names map to 255.
[[nodiscard]] std::uint8_t profile_stage_id(std::string_view name) noexcept;
[[nodiscard]] std::string_view profile_stage_name(std::uint8_t id) noexcept;

struct CriticalPathOptions {
  DurationMode mode = DurationMode::kWall;
  /// A sibling group's slowest member is a straggler when
  /// max >= straggler_skew * median (groups of >= 2, wall mode only).
  double straggler_skew = 2.0;
};

/// Aggregated time for one stage name within an epoch.
struct StageTime {
  std::string name;
  double inclusive_ms = 0.0;
  double exclusive_ms = 0.0;
  std::size_t spans = 0;
};

/// One node on the longest-duration root->leaf path.
struct PathNode {
  std::string name;
  std::uint64_t key = 0;
  double inclusive_ms = 0.0;
  double exclusive_ms = 0.0;
};

/// Slowest member of a sibling group whose skew crossed the threshold.
struct Straggler {
  std::string name;   ///< Sibling group name (e.g. "shard_aggregate").
  std::uint64_t key;  ///< Key of the slowest sibling (monitor/shard id).
  double max_ms = 0.0;
  double median_ms = 0.0;
  std::size_t group_size = 0;
};

/// One epoch's latency attribution.
struct CriticalPath {
  std::uint64_t trace_id = 0;
  DurationMode mode = DurationMode::kWall;
  double root_inclusive_ms = 0.0;
  /// Sum of every tree span's exclusive time; equals root_inclusive_ms up
  /// to float rounding (the telescoping identity).
  double total_exclusive_ms = 0.0;
  /// Per-stage rollup, sorted by (-exclusive_ms, name).
  std::vector<StageTime> stages;
  /// Longest-duration path, root first.
  std::vector<PathNode> path;
  /// Stage (below the root) with the largest exclusive time; empty when
  /// the trace has no spans.
  std::string dominant_stage;
  std::vector<Straggler> stragglers;
  std::size_t span_count = 0;     ///< Spans in the reconstructed tree.
  std::size_t sibling_groups = 0; ///< Same-parent same-name groups of >= 2.
  std::size_t orphans = 0;     ///< parent_id references no span in the trace.
  std::size_t duplicates = 0;  ///< Extra records sharing an existing span_id.

  /// Reconstructs the tree for `trace_id` from flat records and attributes
  /// latency.  Records from other traces are ignored.  Orphans and
  /// duplicates are counted and excluded from the tree.
  [[nodiscard]] static CriticalPath build(
      const std::vector<SpanRecord>& spans, std::uint64_t trace_id,
      const CriticalPathOptions& opts = {});

  /// Human-readable single-epoch breakdown.
  [[nodiscard]] std::string to_text() const;
};

/// Cross-epoch rollup of critical paths into a ranked stage table.
class ProfileReport {
 public:
  void add(const CriticalPath& cp);

  [[nodiscard]] std::size_t epochs() const noexcept { return epochs_; }

  /// Ranked table: stage | exclusive ms | % of total | critical-path hits.
  [[nodiscard]] std::string to_text() const;
  /// One JSON object per stage plus a trailing "profile_summary" line;
  /// deterministic given deterministic inputs.
  [[nodiscard]] std::string to_jsonl() const;

 private:
  struct Row {
    double inclusive_ms = 0.0;
    double exclusive_ms = 0.0;
    std::size_t spans = 0;
    std::size_t path_hits = 0;  ///< Epochs whose critical path hit the stage.
  };
  [[nodiscard]] std::vector<std::pair<std::string, Row>> ranked() const;

  std::vector<std::pair<std::string, Row>> rows_;  ///< Unordered.
  std::size_t epochs_ = 0;
  double total_root_ms_ = 0.0;
  std::size_t stragglers_ = 0;
};

}  // namespace jaal::telemetry
