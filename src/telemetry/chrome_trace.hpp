// Chrome trace-event export: span records -> Perfetto-loadable JSON.
//
// Two modes, mirroring profile.hpp's DurationMode:
//  - kWall: real start/duration timestamps (microseconds, relative to the
//    tracer's birth).  Spans are packed greedily into "thread" lanes so
//    parallel siblings (monitor flushes, shard fan-out) render side by
//    side while parent/child nesting stays on one lane.  This is the mode
//    an operator opens in https://ui.perfetto.dev.
//  - kDeterministic: a synthetic layout derived only from the span tree
//    shape.  Every span is 1 unit wide plus its children (1 unit = 1 us),
//    children are laid out in sorted (name, key, span_id) order, and the
//    trace base timestamp comes from the deterministic sim_time.  The
//    output is byte-identical across runs, thread counts, and shard
//    counts (tier-shape spans are excluded); a tier-1 test pins that.
#pragma once

#include <string>
#include <vector>

#include "telemetry/profile.hpp"
#include "telemetry/span.hpp"

namespace jaal::telemetry {

struct ChromeTraceOptions {
  DurationMode mode = DurationMode::kWall;
};

/// Serializes spans as Chrome trace-event JSON ("X" complete events, one
/// process per trace/epoch).  Load the result in Perfetto or
/// chrome://tracing.
[[nodiscard]] std::string export_chrome_trace(
    const std::vector<SpanRecord>& spans, const ChromeTraceOptions& options = {});

}  // namespace jaal::telemetry
