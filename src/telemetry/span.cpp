#include "telemetry/span.hpp"

namespace jaal::telemetry {

std::uint64_t derive_span_id(std::uint64_t parent_span_id,
                             std::string_view name,
                             std::uint64_t key) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(parent_span_id);
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  mix(key);
  // Reserve 0 for "no parent".
  return h == 0 ? 1 : h;
}

Span::Span(Tracer* tracer, std::string name, const SpanContext& parent,
           std::uint64_t key)
    : tracer_(tracer), start_(std::chrono::steady_clock::now()) {
  rec_.trace_id = parent.span_id == 0 ? key : parent.trace_id;
  rec_.parent_id = parent.span_id;
  rec_.span_id = derive_span_id(parent.span_id, name, key);
  rec_.name = std::move(name);
  rec_.key = key;
  rec_.sim_time = parent.sim_time;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::attr(std::string name, double value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::move(name), value);
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  rec_.duration_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  tracer_->record(std::move(rec_));
  tracer_ = nullptr;
}

void Tracer::record(SpanRecord&& rec) {
  std::lock_guard lock(mu_);
  records_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  records_.clear();
}

}  // namespace jaal::telemetry
