#include "telemetry/span.hpp"

#include "telemetry/metrics.hpp"

namespace jaal::telemetry {

std::uint64_t derive_span_id(std::uint64_t parent_span_id,
                             std::string_view name,
                             std::uint64_t key) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(parent_span_id);
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  mix(key);
  // Reserve 0 for "no parent".
  return h == 0 ? 1 : h;
}

Span::Span(Tracer* tracer, std::string name, const SpanContext& parent,
           std::uint64_t key)
    : tracer_(tracer), start_(std::chrono::steady_clock::now()) {
  rec_.trace_id = parent.span_id == 0 ? key : parent.trace_id;
  rec_.parent_id = parent.span_id;
  rec_.span_id = derive_span_id(parent.span_id, name, key);
  rec_.name = std::move(name);
  rec_.key = key;
  rec_.sim_time = parent.sim_time;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    duration_overridden_ = other.duration_overridden_;
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::attr(std::string name, double value) {
  if (tracer_ == nullptr) return;
  rec_.attrs.emplace_back(std::move(name), value);
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  if (!duration_overridden_) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    rec_.duration_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
  }
  tracer_->record(std::move(rec_));
  tracer_ = nullptr;
}

Tracer::Tracer() : t0_(std::chrono::steady_clock::now()) {}

void Tracer::record(SpanRecord&& rec) {
  rec.start_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0_)
                     .count() -
                 rec.duration_ms;
  if (rec.start_ms < 0.0) rec.start_ms = 0.0;
  Stripe& s = stripes_[stripe_index() % kTracerStripes];
  std::lock_guard lock(s.mu);
  s.records.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::drain() {
  std::vector<SpanRecord> fresh;
  for (Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    fresh.insert(fresh.end(), std::make_move_iterator(s.records.begin()),
                 std::make_move_iterator(s.records.end()));
    s.records.clear();
  }
  std::lock_guard lock(drained_mu_);
  drained_.insert(drained_.end(), fresh.begin(), fresh.end());
  return fresh;
}

std::vector<SpanRecord> Tracer::records() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(drained_mu_);
    out = drained_;
  }
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    out.insert(out.end(), s.records.begin(), s.records.end());
  }
  return out;
}

std::size_t Tracer::size() const {
  std::size_t n = 0;
  {
    std::lock_guard lock(drained_mu_);
    n = drained_.size();
  }
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    n += s.records.size();
  }
  return n;
}

void Tracer::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    s.records.clear();
  }
  std::lock_guard lock(drained_mu_);
  drained_.clear();
}

}  // namespace jaal::telemetry
