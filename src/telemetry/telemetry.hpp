// The telemetry bundle a deployment threads through its components.
//
// One Telemetry instance per deployment (or the process-wide global()):
// components receive a `Telemetry*` via set_telemetry()/config and treat
// null as "telemetry off" — the default, whose only cost is a pointer
// check at wiring points (never per packet: hot-path counters are cached
// Counter handles, incremented per batch/epoch or guarded by the same null
// check).
#pragma once

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace jaal::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  Tracer tracer;

  /// Runtime kill switch for metric writes (spans are skipped by callers
  /// when telemetry is detached; metric handles honor this flag).
  void set_enabled(bool on) noexcept { metrics.set_enabled(on); }
};

/// Process-wide instance for callers without explicit wiring.
[[nodiscard]] Telemetry& global();

}  // namespace jaal::telemetry
