#include "telemetry/export.hpp"

#include "telemetry/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <string_view>

namespace jaal::telemetry {
namespace {

/// Splits 'base{k="v"}' into base and inner label text ('k="v"', possibly
/// empty).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), std::move(labels)};
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Bucket bound label: exact decimal of the power-of-two bound, "+Inf" last.
std::string le_label(double ub) {
  if (std::isinf(ub)) return "+Inf";
  return fmt_double(ub);
}

void append_labels(std::string& out, const std::string& labels,
                   const std::string& extra) {
  if (labels.empty() && extra.empty()) return;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<MetricsSnapshot::Entry> sorted_entries(
    const MetricsSnapshot& snapshot) {
  std::vector<MetricsSnapshot::Entry> entries = snapshot.entries;
  std::sort(entries.begin(), entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.name < b.name; });
  return entries;
}

struct HelpEntry {
  std::string_view base;
  std::string_view help;
};

/// One line per metric family, sorted by base name for binary search.  Help
/// text must stay single-line and free of backslashes (the exposition format
/// would require escaping).
constexpr HelpEntry kMetricHelp[] = {
    {"jaal_baseline_reservoir_evictions_total",
     "Baseline windows evicted by reservoir sampling to hold the memory "
     "budget."},
    {"jaal_faults_crashed_monitor_epochs_total",
     "Monitor-epochs spent inside an injected crash window."},
    {"jaal_faults_degraded_epochs_total",
     "Epochs closed with report_fraction below 1."},
    {"jaal_faults_feedback_attempts_total",
     "Feedback retrieval attempts over the transport, retries included."},
    {"jaal_faults_feedback_failures_total",
     "Feedback retrieval attempts that failed on the transport."},
    {"jaal_faults_feedback_giveups_total",
     "Feedback retrievals abandoned after exhausting their retry budget."},
    {"jaal_faults_packets_lost_total",
     "Ingress packets lost to crashed monitors, never observed."},
    {"jaal_faults_summaries_delivered_total",
     "Monitor summaries delivered to the engine by the deadline."},
    {"jaal_faults_summaries_dropped_total",
     "Monitor summaries lost on the transport."},
    {"jaal_faults_summaries_late_total",
     "Monitor summaries that arrived after the aggregation deadline."},
    {"jaal_faults_summaries_reordered_total",
     "Monitor summaries delivered out of send order."},
    {"jaal_faults_summaries_rolled_forward_total",
     "Late summaries carried into the next epoch under kRollForward."},
    {"jaal_inference_alerts_suppressed_total",
     "Rule matches withheld because scaled degraded-mode thresholds were not "
     "met."},
    {"jaal_inference_alerts_total",
     "Alerts raised, labeled by rule sid."},
    {"jaal_inference_alerts_via_feedback_total",
     "Alerts confirmed through the monitor feedback loop."},
    {"jaal_inference_feedback_fallbacks_total",
     "Feedback requests answered summary-only after transport failure."},
    {"jaal_inference_feedback_requests_total",
     "Raw-packet feedback requests issued to monitors."},
    {"jaal_inference_questions_evaluated_total",
     "Rule questions evaluated against aggregated summaries."},
    {"jaal_inference_questions_matched_total",
     "Rule questions whose strict or loose threshold matched."},
    {"jaal_inference_raw_bytes_fetched_total",
     "Raw packet bytes pulled from monitors by feedback."},
    {"jaal_inference_raw_packets_fetched_total",
     "Raw packets pulled from monitors by feedback."},
    {"jaal_monitor_batches_flushed_total",
     "Packet batches flushed into the summarizer."},
    {"jaal_monitor_packets_malformed_total",
     "Packets rejected by monitors as malformed."},
    {"jaal_monitor_packets_observed_total",
     "Packets observed across all monitors."},
    {"jaal_monitor_packets_oversized_total",
     "Packets truncated to the feature window by monitors."},
    {"jaal_monitor_silent_epochs_total",
     "Monitor epoch closes that stayed below n_min and shipped nothing."},
    {"jaal_monitor_summary_bytes_total",
     "Serialized summary bytes produced by monitors."},
    {"jaal_netsim_link_bytes_forwarded_total",
     "Bytes forwarded by a simulated link, labeled by link."},
    {"jaal_netsim_link_dropped_bytes_total",
     "Bytes dropped by a simulated link, labeled by link."},
    {"jaal_netsim_link_drops_total",
     "Messages dropped by a simulated link, labeled by link."},
    {"jaal_netsim_link_messages_forwarded_total",
     "Messages forwarded by a simulated link, labeled by link."},
    {"jaal_netsim_link_queue_depth_high_water_bytes",
     "High-water queued bytes on a simulated link, labeled by link."},
    {"jaal_observe_caution_permille",
     "Current caution signal (drifting-monitor fraction) in permille."},
    {"jaal_observe_drift_events_total",
     "Drift enter/exit transitions raised by the health tracker."},
    {"jaal_observe_flight_dropped_total",
     "Flight-recorder events overwritten before being dumped (ring "
     "wrap-around)."},
    {"jaal_observe_flight_dumps_total",
     "Flight-recorder dumps taken (crash, health regression, or on "
     "demand)."},
    {"jaal_observe_flight_events_total",
     "Structured events appended to the flight-recorder ring."},
    {"jaal_observe_monitors_drifting",
     "Monitors currently flagged as drifting by the health tracker."},
    {"jaal_observe_provenance_records_total",
     "Alert provenance records captured."},
    {"jaal_profile_critical_path_ms",
     "Wall-clock inclusive latency of the epoch root span (critical-path "
     "profiler)."},
    {"jaal_profile_epochs_total",
     "Epochs profiled by the critical-path profiler."},
    {"jaal_profile_stage_exclusive_ms",
     "Exclusive (self) wall-clock time per pipeline stage, labeled by "
     "stage."},
    {"jaal_profile_stragglers_total",
     "Sibling spans flagged as stragglers by max-vs-median skew."},
    {"jaal_runtime_parallel_for_calls_total",
     "parallel_for invocations on the thread pool."},
    {"jaal_runtime_queue_depth_high_water",
     "High-water mark of the thread-pool task queue."},
    {"jaal_runtime_stage_ms",
     "Wall-clock latency per pipeline stage, labeled by stage."},
    {"jaal_runtime_tasks_completed_total",
     "Thread-pool tasks completed."},
    {"jaal_runtime_tasks_submitted_total",
     "Thread-pool tasks submitted."},
    {"jaal_slo_burn_rate_permille",
     "Rolling-window error-budget burn rate in permille of budget per "
     "epoch."},
    {"jaal_slo_epochs_observed_total",
     "Epochs folded into the SLO tracker."},
    {"jaal_slo_report_fraction_breaches_total",
     "Epochs whose report_fraction fell below the SLO target."},
    {"jaal_slo_report_fraction_budget_remaining_permille",
     "Remaining report_fraction error budget in permille."},
    {"jaal_slo_stage_ms_breaches_total",
     "Epochs whose per-stage wall-clock latency exceeded the SLO target."},
    {"jaal_slo_stage_ms_budget_remaining_permille",
     "Remaining latency error budget in permille (wall-clock derived)."},
    {"jaal_store_bytes_written_total",
     "Bytes appended to the deployment store."},
    {"jaal_store_index_fallback_scans_total",
     "Point queries that fell back to a full shard walk (missing or stale "
     "sidecar index)."},
    {"jaal_store_index_point_queries_total",
     "Epoch point queries answered through the sidecar index."},
    {"jaal_store_msync_ms",
     "Wall-clock latency of store msync calls."},
    {"jaal_store_records_total",
     "Records appended to the deployment store."},
    {"jaal_store_scan_bytes_total",
     "Record bytes visited by store reads (walks plus point queries)."},
    {"jaal_store_shards_rolled_total",
     "Store shard files finalized and rolled."},
    {"jaal_store_torn_bytes_truncated_total",
     "Torn tail bytes truncated during store recovery."},
    {"jaal_summarize_batches_total",
     "Packet batches summarized."},
    {"jaal_summarize_combined_format_total",
     "Summaries shipped in the combined (B = U_r Sigma_r) format."},
    {"jaal_summarize_kmeans_iterations",
     "Lloyd iterations per k-means run."},
    {"jaal_summarize_kmeans_ms",
     "Wall-clock latency per k-means run."},
    {"jaal_summarize_split_format_total",
     "Summaries shipped in the split (factors separate) format."},
    {"jaal_summarize_svd_ms",
     "Wall-clock latency per SVD."},
    {"jaal_summarize_svd_sweeps",
     "Jacobi sweeps per SVD."},
};

}  // namespace

std::string metric_help(const std::string& base_name) {
  const auto* end = kMetricHelp + std::size(kMetricHelp);
  const auto* it = std::lower_bound(
      kMetricHelp, end, base_name,
      [](const HelpEntry& e, const std::string& n) { return e.base < n; });
  if (it != end && it->base == base_name) return std::string(it->help);
  // Unknown family: fall back to what the naming convention guarantees.
  if (base_name.size() > 6 &&
      base_name.rfind("_total") == base_name.size() - 6) {
    return "Monotonic event count.";
  }
  if (is_wall_clock_metric(base_name)) {
    return "Wall-clock measurement in milliseconds.";
  }
  return "Point-in-time value.";
}

bool is_wall_clock_metric(const std::string& name) noexcept {
  return name.find("_ms") != std::string::npos ||
         name.rfind("jaal_runtime_", 0) == 0 ||
         name.rfind("jaal_profile_", 0) == 0;
}

bool is_tier_shape_metric(const std::string& name) noexcept {
  return name.rfind("jaal_shard_", 0) == 0;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string with_label(const std::string& name, const std::string& key,
                       const std::string& value) {
  const std::string pair = key + "=\"" + escape_label_value(value) + "\"";
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    return name + "{" + pair + "}";
  }
  std::string out = name.substr(0, name.size() - 1);
  if (out.back() != '{') out += ',';
  return out + pair + "}";
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  const auto entries = sorted_entries(snapshot);
  std::string out;
  std::string last_base;
  char buf[64];
  for (const auto& e : entries) {
    auto [base, labels] = split_labels(e.name);
    const char* type = e.kind == MetricKind::kCounter    ? "counter"
                       : e.kind == MetricKind::kGauge    ? "gauge"
                                                         : "histogram";
    if (base != last_base) {
      out += "# HELP " + base + " " + metric_help(base) + "\n";
      out += "# TYPE " + base + " " + type + "\n";
      last_base = base;
    }
    switch (e.kind) {
      case MetricKind::kCounter:
        out += base;
        append_labels(out, labels, "");
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", e.counter);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += base;
        append_labels(out, labels, "");
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", e.gauge);
        out += buf;
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < e.histogram.buckets.size(); ++b) {
          cumulative += e.histogram.buckets[b];
          out += base + "_bucket";
          append_labels(out, labels,
                        "le=\"" + le_label(Histogram::upper_bound(b)) + "\"");
          std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
          out += buf;
        }
        out += base + "_sum";
        append_labels(out, labels, "");
        out += " " + fmt_double(e.histogram.sum) + "\n";
        out += base + "_count";
        append_labels(out, labels, "");
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", e.histogram.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl(const MetricsSnapshot& metrics,
                     const std::vector<SpanRecord>& spans,
                     const JsonlOptions& options) {
  std::string out;
  char buf[96];
  for (const auto& e : sorted_entries(metrics)) {
    if (!options.include_timings && is_wall_clock_metric(e.name)) continue;
    switch (e.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "\",\"value\":%" PRIu64 "}\n",
                      e.counter);
        out += "{\"kind\":\"counter\",\"name\":\"" + json_escape(e.name) + buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "\",\"value\":%" PRId64 "}\n",
                      e.gauge);
        out += "{\"kind\":\"gauge\",\"name\":\"" + json_escape(e.name) + buf;
        break;
      case MetricKind::kHistogram: {
        out += "{\"kind\":\"histogram\",\"name\":\"" + json_escape(e.name) +
               "\",";
        std::snprintf(buf, sizeof(buf), "\"count\":%" PRIu64 ",",
                      e.histogram.count);
        out += buf;
        out += "\"sum\":" + fmt_double(e.histogram.sum) +
               ",\"max\":" + fmt_double(e.histogram.max) + ",\"buckets\":[";
        bool first = true;
        for (std::size_t b = 0; b < e.histogram.buckets.size(); ++b) {
          if (e.histogram.buckets[b] == 0) continue;
          if (!first) out += ',';
          first = false;
          out += "{\"le\":\"" + le_label(Histogram::upper_bound(b)) + "\",";
          std::snprintf(buf, sizeof(buf), "\"count\":%" PRIu64 "}",
                        e.histogram.buckets[b]);
          out += buf;
        }
        out += "]}\n";
        break;
      }
    }
  }

  std::vector<SpanRecord> ordered = spans;
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              if (a.name != b.name) return a.name < b.name;
              if (a.key != b.key) return a.key < b.key;
              return a.span_id < b.span_id;
            });
  for (const SpanRecord& s : ordered) {
    // Tier-shape spans exist only when shards > 1; the deterministic dump
    // is pinned byte-identical across shard counts, so they are elided
    // alongside the wall-clock fields.
    if (!options.include_timings && is_tier_shape_span(s.name)) continue;
    std::snprintf(buf, sizeof(buf),
                  "{\"kind\":\"span\",\"trace\":%" PRIu64
                  ",\"span\":\"%016" PRIx64 "\",\"parent\":\"%016" PRIx64
                  "\",",
                  s.trace_id, s.span_id, s.parent_id);
    out += buf;
    out += "\"name\":\"" + json_escape(s.name) + "\",";
    std::snprintf(buf, sizeof(buf), "\"key\":%" PRIu64 ",", s.key);
    out += buf;
    out += "\"sim_time\":" + fmt_double(s.sim_time);
    if (options.include_timings) {
      out += ",\"start_ms\":" + fmt_double(s.start_ms);
      out += ",\"duration_ms\":" + fmt_double(s.duration_ms);
    }
    if (!s.attrs.empty()) {
      out += ",\"attrs\":{";
      for (std::size_t i = 0; i < s.attrs.size(); ++i) {
        if (i != 0) out += ',';
        out += "\"" + json_escape(s.attrs[i].first) +
               "\":" + fmt_double(s.attrs[i].second);
      }
      out += '}';
    }
    out += "}\n";
  }
  return out;
}

}  // namespace jaal::telemetry
