#include "telemetry/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace jaal::telemetry {
namespace {

/// Splits 'base{k="v"}' into base and inner label text ('k="v"', possibly
/// empty).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), std::move(labels)};
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Bucket bound label: exact decimal of the power-of-two bound, "+Inf" last.
std::string le_label(double ub) {
  if (std::isinf(ub)) return "+Inf";
  return fmt_double(ub);
}

void append_labels(std::string& out, const std::string& labels,
                   const std::string& extra) {
  if (labels.empty() && extra.empty()) return;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<MetricsSnapshot::Entry> sorted_entries(
    const MetricsSnapshot& snapshot) {
  std::vector<MetricsSnapshot::Entry> entries = snapshot.entries;
  std::sort(entries.begin(), entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.name < b.name; });
  return entries;
}

}  // namespace

bool is_wall_clock_metric(const std::string& name) noexcept {
  return name.find("_ms") != std::string::npos ||
         name.rfind("jaal_runtime_", 0) == 0;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string with_label(const std::string& name, const std::string& key,
                       const std::string& value) {
  const std::string pair = key + "=\"" + escape_label_value(value) + "\"";
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    return name + "{" + pair + "}";
  }
  std::string out = name.substr(0, name.size() - 1);
  if (out.back() != '{') out += ',';
  return out + pair + "}";
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  const auto entries = sorted_entries(snapshot);
  std::string out;
  std::string last_base;
  char buf[64];
  for (const auto& e : entries) {
    auto [base, labels] = split_labels(e.name);
    const char* type = e.kind == MetricKind::kCounter    ? "counter"
                       : e.kind == MetricKind::kGauge    ? "gauge"
                                                         : "histogram";
    if (base != last_base) {
      out += "# TYPE " + base + " " + type + "\n";
      last_base = base;
    }
    switch (e.kind) {
      case MetricKind::kCounter:
        out += base;
        append_labels(out, labels, "");
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", e.counter);
        out += buf;
        break;
      case MetricKind::kGauge:
        out += base;
        append_labels(out, labels, "");
        std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", e.gauge);
        out += buf;
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < e.histogram.buckets.size(); ++b) {
          cumulative += e.histogram.buckets[b];
          out += base + "_bucket";
          append_labels(out, labels,
                        "le=\"" + le_label(Histogram::upper_bound(b)) + "\"");
          std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
          out += buf;
        }
        out += base + "_sum";
        append_labels(out, labels, "");
        out += " " + fmt_double(e.histogram.sum) + "\n";
        out += base + "_count";
        append_labels(out, labels, "");
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", e.histogram.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string to_jsonl(const MetricsSnapshot& metrics,
                     const std::vector<SpanRecord>& spans,
                     const JsonlOptions& options) {
  std::string out;
  char buf[96];
  for (const auto& e : sorted_entries(metrics)) {
    if (!options.include_timings && is_wall_clock_metric(e.name)) continue;
    switch (e.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "\",\"value\":%" PRIu64 "}\n",
                      e.counter);
        out += "{\"kind\":\"counter\",\"name\":\"" + json_escape(e.name) + buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "\",\"value\":%" PRId64 "}\n",
                      e.gauge);
        out += "{\"kind\":\"gauge\",\"name\":\"" + json_escape(e.name) + buf;
        break;
      case MetricKind::kHistogram: {
        out += "{\"kind\":\"histogram\",\"name\":\"" + json_escape(e.name) +
               "\",";
        std::snprintf(buf, sizeof(buf), "\"count\":%" PRIu64 ",",
                      e.histogram.count);
        out += buf;
        out += "\"sum\":" + fmt_double(e.histogram.sum) +
               ",\"max\":" + fmt_double(e.histogram.max) + ",\"buckets\":[";
        bool first = true;
        for (std::size_t b = 0; b < e.histogram.buckets.size(); ++b) {
          if (e.histogram.buckets[b] == 0) continue;
          if (!first) out += ',';
          first = false;
          out += "{\"le\":\"" + le_label(Histogram::upper_bound(b)) + "\",";
          std::snprintf(buf, sizeof(buf), "\"count\":%" PRIu64 "}",
                        e.histogram.buckets[b]);
          out += buf;
        }
        out += "]}\n";
        break;
      }
    }
  }

  std::vector<SpanRecord> ordered = spans;
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              if (a.name != b.name) return a.name < b.name;
              if (a.key != b.key) return a.key < b.key;
              return a.span_id < b.span_id;
            });
  for (const SpanRecord& s : ordered) {
    std::snprintf(buf, sizeof(buf),
                  "{\"kind\":\"span\",\"trace\":%" PRIu64
                  ",\"span\":\"%016" PRIx64 "\",\"parent\":\"%016" PRIx64
                  "\",",
                  s.trace_id, s.span_id, s.parent_id);
    out += buf;
    out += "\"name\":\"" + json_escape(s.name) + "\",";
    std::snprintf(buf, sizeof(buf), "\"key\":%" PRIu64 ",", s.key);
    out += buf;
    out += "\"sim_time\":" + fmt_double(s.sim_time);
    if (options.include_timings) {
      out += ",\"duration_ms\":" + fmt_double(s.duration_ms);
    }
    if (!s.attrs.empty()) {
      out += ",\"attrs\":{";
      for (std::size_t i = 0; i < s.attrs.size(); ++i) {
        if (i != 0) out += ',';
        out += "\"" + json_escape(s.attrs[i].first) +
               "\":" + fmt_double(s.attrs[i].second);
      }
      out += '}';
    }
    out += "}\n";
  }
  return out;
}

}  // namespace jaal::telemetry
