#include "telemetry/profile.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace jaal::telemetry {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Deterministic record order, independent of recording interleaving.
bool record_less(const SpanRecord& a, const SpanRecord& b) {
  if (a.name != b.name) return a.name < b.name;
  if (a.key != b.key) return a.key < b.key;
  return a.span_id < b.span_id;
}

constexpr std::string_view kStageNames[] = {
    "observe",         // 0  (kSpan stage ids, persisted by flight recorder)
    "summarize",       // 1
    "ship",            // 2
    "aggregate",       // 3
    "infer",           // 4
    "postprocess",     // 5
    "svd",             // 6
    "kmeans",          // 7
    "feedback",        // 8
    "shard_aggregate", // 9
    "shard_match",     // 10
    "cross_shard_merge",  // 11
    "store_append",    // 12
    "store_commit",    // 13
    "index_finalize",  // 14
    "epoch",           // 15
};

}  // namespace

bool is_tier_shape_span(std::string_view name) noexcept {
  return name == "shard_aggregate" || name == "shard_match" ||
         name == "cross_shard_merge";
}

std::uint8_t profile_stage_id(std::string_view name) noexcept {
  for (std::size_t i = 0; i < std::size(kStageNames); ++i) {
    if (kStageNames[i] == name) return static_cast<std::uint8_t>(i);
  }
  return 255;
}

std::string_view profile_stage_name(std::uint8_t id) noexcept {
  if (id < std::size(kStageNames)) return kStageNames[id];
  return "other";
}

CriticalPath CriticalPath::build(const std::vector<SpanRecord>& spans,
                                 std::uint64_t trace_id,
                                 const CriticalPathOptions& opts) {
  CriticalPath cp;
  cp.trace_id = trace_id;
  cp.mode = opts.mode;
  const bool det = opts.mode == DurationMode::kDeterministic;

  // Deterministic working order regardless of recording interleaving.
  std::vector<const SpanRecord*> recs;
  for (const SpanRecord& s : spans) {
    if (s.trace_id != trace_id) continue;
    if (det && is_tier_shape_span(s.name)) continue;
    recs.push_back(&s);
  }
  std::sort(recs.begin(), recs.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return record_less(*a, *b);
            });

  // Dedupe by span id (first in deterministic order wins).
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  std::vector<const SpanRecord*> nodes;
  by_id.reserve(recs.size());
  for (const SpanRecord* s : recs) {
    auto [it, inserted] = by_id.try_emplace(s->span_id, nodes.size());
    if (!inserted) {
      ++cp.duplicates;
      continue;
    }
    nodes.push_back(s);
  }
  if (nodes.empty()) return cp;

  // Children lists, in deterministic order (nodes is already sorted).
  std::vector<std::vector<std::size_t>> children(nodes.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SpanRecord* s = nodes[i];
    if (s->parent_id == 0) {
      roots.push_back(i);
      continue;
    }
    auto it = by_id.find(s->parent_id);
    if (it == by_id.end() || it->second == i) {
      continue;  // Parent never recorded (or a self-cycle): orphan.
    }
    children[it->second].push_back(i);
  }

  // Inclusive / exclusive weights over the whole forest (iterative DFS —
  // per-monitor fan-out can be wide, keep the stack off the C++ stack).
  std::vector<double> inclusive(nodes.size(), 0.0);
  std::vector<double> exclusive(nodes.size(), 0.0);
  std::vector<std::size_t> subtree(nodes.size(), 0);
  auto compute = [&](std::size_t root) {
    std::vector<std::pair<std::size_t, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [i, done] = stack.back();
      stack.pop_back();
      if (!done) {
        stack.emplace_back(i, true);
        for (std::size_t c : children[i]) stack.emplace_back(c, false);
        continue;
      }
      double child_incl = 0.0;
      subtree[i] = 1;
      for (std::size_t c : children[i]) {
        child_incl += inclusive[c];
        subtree[i] += subtree[c];
      }
      if (det) {
        exclusive[i] = 1.0;
        inclusive[i] = static_cast<double>(subtree[i]);
      } else {
        inclusive[i] = nodes[i]->duration_ms;
        exclusive[i] = inclusive[i] - child_incl;
      }
    }
  };
  for (std::size_t r : roots) compute(r);

  // Primary root: largest subtree, ties broken by deterministic order.
  if (roots.empty()) {
    cp.orphans = nodes.size();  // All spans orphaned; nothing to attribute.
    return cp;
  }
  std::size_t primary = roots[0];
  for (std::size_t r : roots) {
    if (subtree[r] > subtree[primary]) primary = r;
  }

  // Everything not reachable from the primary root (missing parents, extra
  // roots and their subtrees) counts as an orphan.
  std::vector<char> in_tree(nodes.size(), 0);
  {
    std::vector<std::size_t> stack{primary};
    while (!stack.empty()) {
      std::size_t i = stack.back();
      stack.pop_back();
      in_tree[i] = 1;
      for (std::size_t c : children[i]) stack.push_back(c);
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!in_tree[i]) ++cp.orphans;
  }

  cp.root_inclusive_ms = inclusive[primary];
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!in_tree[i]) continue;
    ++cp.span_count;
    cp.total_exclusive_ms += exclusive[i];
  }

  // Per-stage rollup.
  std::vector<StageTime> stages;
  std::unordered_map<std::string_view, std::size_t> stage_ix;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!in_tree[i]) continue;
    auto [it, inserted] = stage_ix.try_emplace(nodes[i]->name, stages.size());
    if (inserted) {
      stages.push_back(StageTime{nodes[i]->name, 0.0, 0.0, 0});
    }
    StageTime& st = stages[it->second];
    st.inclusive_ms += inclusive[i];
    st.exclusive_ms += exclusive[i];
    ++st.spans;
  }
  std::sort(stages.begin(), stages.end(),
            [](const StageTime& a, const StageTime& b) {
              if (a.exclusive_ms != b.exclusive_ms) {
                return a.exclusive_ms > b.exclusive_ms;
              }
              return a.name < b.name;
            });
  cp.stages = std::move(stages);
  for (const StageTime& st : cp.stages) {
    if (st.name == nodes[primary]->name) continue;
    cp.dominant_stage = st.name;
    break;
  }
  if (cp.dominant_stage.empty()) cp.dominant_stage = nodes[primary]->name;

  // Longest-duration path root -> leaf (max-inclusive child each step;
  // nodes order makes tie-breaks deterministic).
  std::size_t cur = primary;
  while (true) {
    cp.path.push_back(PathNode{nodes[cur]->name, nodes[cur]->key,
                               inclusive[cur], exclusive[cur]});
    if (children[cur].empty()) break;
    std::size_t best = children[cur][0];
    for (std::size_t c : children[cur]) {
      if (inclusive[c] > inclusive[best]) best = c;
    }
    cur = best;
  }

  // Sibling-group skew (stragglers are wall-only: unit weights cannot
  // diverge).  Groups keyed by (parent, name) with >= 2 members.
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    if (!in_tree[p] || children[p].empty()) continue;
    // children[p] is in deterministic order; same-name runs are adjacent
    // only if names sort adjacently, so group explicitly.
    std::unordered_map<std::string_view, std::vector<std::size_t>> groups;
    for (std::size_t c : children[p]) groups[nodes[c]->name].push_back(c);
    // Deterministic iteration: walk children in order, handle each name
    // the first time it is seen.
    std::unordered_set<std::string_view> seen;
    for (std::size_t c : children[p]) {
      if (!seen.insert(nodes[c]->name).second) continue;
      const auto& g = groups[nodes[c]->name];
      if (g.size() < 2) continue;
      ++cp.sibling_groups;
      if (det) continue;
      std::vector<double> durs;
      durs.reserve(g.size());
      std::size_t slowest = g[0];
      for (std::size_t i : g) {
        durs.push_back(inclusive[i]);
        if (inclusive[i] > inclusive[slowest]) slowest = i;
      }
      std::sort(durs.begin(), durs.end());
      const std::size_t mid = durs.size() / 2;
      const double median = durs.size() % 2 == 1
                                ? durs[mid]
                                : 0.5 * (durs[mid - 1] + durs[mid]);
      if (median > 0.0 &&
          inclusive[slowest] >= opts.straggler_skew * median) {
        cp.stragglers.push_back(Straggler{std::string(nodes[c]->name),
                                          nodes[slowest]->key,
                                          inclusive[slowest], median,
                                          g.size()});
      }
    }
  }
  std::sort(cp.stragglers.begin(), cp.stragglers.end(),
            [](const Straggler& a, const Straggler& b) {
              if (a.max_ms != b.max_ms) return a.max_ms > b.max_ms;
              if (a.name != b.name) return a.name < b.name;
              return a.key < b.key;
            });
  return cp;
}

std::string CriticalPath::to_text() const {
  const char* unit = mode == DurationMode::kDeterministic ? "units" : "ms";
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "epoch %" PRIu64 ": root %.3f %s over %zu spans (%zu "
                "orphans, %zu duplicates)\n",
                trace_id, root_inclusive_ms, unit, span_count, orphans,
                duplicates);
  out += buf;
  out += "  critical path:";
  for (const PathNode& n : path) {
    std::snprintf(buf, sizeof(buf), " %s[%" PRIu64 "] %.3f", n.name.c_str(),
                  n.key, n.inclusive_ms);
    out += buf;
    if (&n != &path.back()) out += " ->";
  }
  out += '\n';
  for (const StageTime& st : stages) {
    const double pct = root_inclusive_ms > 0.0
                           ? 100.0 * st.exclusive_ms / root_inclusive_ms
                           : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-18s excl %10.3f %s  %5.1f%%  x%zu\n",
                  st.name.c_str(), st.exclusive_ms, unit, pct, st.spans);
    out += buf;
  }
  for (const Straggler& s : stragglers) {
    std::snprintf(buf, sizeof(buf),
                  "  straggler: %s[%" PRIu64 "] %.3f ms vs median %.3f ms "
                  "(group of %zu)\n",
                  s.name.c_str(), s.key, s.max_ms, s.median_ms, s.group_size);
    out += buf;
  }
  return out;
}

void ProfileReport::add(const CriticalPath& cp) {
  ++epochs_;
  total_root_ms_ += cp.root_inclusive_ms;
  stragglers_ += cp.stragglers.size();
  auto row_for = [this](const std::string& name) -> Row& {
    for (auto& [n, row] : rows_) {
      if (n == name) return row;
    }
    rows_.emplace_back(name, Row{});
    return rows_.back().second;
  };
  for (const StageTime& st : cp.stages) {
    Row& row = row_for(st.name);
    row.inclusive_ms += st.inclusive_ms;
    row.exclusive_ms += st.exclusive_ms;
    row.spans += st.spans;
  }
  std::unordered_set<std::string_view> hit;
  for (const PathNode& n : cp.path) {
    if (hit.insert(n.name).second) ++row_for(n.name).path_hits;
  }
}

std::vector<std::pair<std::string, ProfileReport::Row>> ProfileReport::ranked()
    const {
  auto rows = rows_;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.exclusive_ms != b.second.exclusive_ms) {
      return a.second.exclusive_ms > b.second.exclusive_ms;
    }
    return a.first < b.first;
  });
  return rows;
}

std::string ProfileReport::to_text() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "critical-path profile over %zu epochs (total root %.3f, "
                "%zu stragglers)\n",
                epochs_, total_root_ms_, stragglers_);
  out += buf;
  out += "  stage               exclusive        %    path-hits  spans\n";
  for (const auto& [name, row] : ranked()) {
    const double pct =
        total_root_ms_ > 0.0 ? 100.0 * row.exclusive_ms / total_root_ms_ : 0.0;
    std::snprintf(buf, sizeof(buf), "  %-18s %12.3f  %6.1f  %9zu  %5zu\n",
                  name.c_str(), row.exclusive_ms, pct, row.path_hits,
                  row.spans);
    out += buf;
  }
  return out;
}

std::string ProfileReport::to_jsonl() const {
  std::string out;
  char buf[96];
  for (const auto& [name, row] : ranked()) {
    const double pct =
        total_root_ms_ > 0.0 ? 100.0 * row.exclusive_ms / total_root_ms_ : 0.0;
    out += "{\"kind\":\"profile_stage\",\"stage\":\"" + json_escape(name) +
           "\",\"exclusive_ms\":" + fmt_double(row.exclusive_ms) +
           ",\"inclusive_ms\":" + fmt_double(row.inclusive_ms) +
           ",\"percent\":" + fmt_double(pct);
    std::snprintf(buf, sizeof(buf), ",\"path_hits\":%zu,\"spans\":%zu}\n",
                  row.path_hits, row.spans);
    out += buf;
  }
  out += "{\"kind\":\"profile_summary\"";
  std::snprintf(buf, sizeof(buf), ",\"epochs\":%zu", epochs_);
  out += buf;
  out += ",\"total_root_ms\":" + fmt_double(total_root_ms_);
  std::snprintf(buf, sizeof(buf), ",\"stragglers\":%zu}\n", stragglers_);
  out += buf;
  return out;
}

}  // namespace jaal::telemetry
