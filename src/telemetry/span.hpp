// RAII trace spans: causal, deterministic pipeline traces.
//
// Each epoch becomes one trace (trace_id = epoch index) whose spans follow
// the pipeline: observe -> summarize(svd, kmeans) -> ship -> aggregate ->
// infer -> postprocess -> feedback.  Span identity is *derived*, not
// allocated: span_id = fnv64(parent_span_id, name, key), where `key`
// disambiguates siblings with the same name (monitor id, rule sid, ...).
// Derived ids make traces reproducible: two runs of the same seeded
// experiment produce the same span set regardless of thread interleaving,
// so the JSONL export (sorted, wall-clock fields excluded) is
// byte-identical — the determinism contract the telemetry tests pin down.
//
// Durations come from the monotonic clock (steady_clock) and are the only
// nondeterministic field; `sim_time` carries the deterministic simulated
// timestamp where the caller has one (epoch end time, event-queue now()).
//
// The tracer buffers finished spans in per-thread stripes (same
// round-robin stripe map as the metric counters) so shard/monitor pool
// workers never contend on one global mutex; `drain()` moves the stripe
// buffers into a stable archive at epoch close.  Exports sort, so the
// determinism contracts are unchanged.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace jaal::telemetry {

/// Identity handed from a parent span to its children.  sim_time propagates
/// so children inherit the deterministic timestamp by default.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< 0 = no parent (root).
  double sim_time = -1.0;     ///< Simulated seconds; -1 = not set.
};

/// One finished span, as exported.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string name;
  std::uint64_t key = 0;
  double sim_time = -1.0;
  double start_ms = 0.0;     ///< Wall clock, relative to tracer birth.
  double duration_ms = 0.0;  ///< Wall clock (nondeterministic).
  /// Deterministic numeric attributes, in insertion order.
  std::vector<std::pair<std::string, double>> attrs;
};

/// Deterministic span id: FNV-1a over (parent_span_id, name, key).
[[nodiscard]] std::uint64_t derive_span_id(std::uint64_t parent_span_id,
                                           std::string_view name,
                                           std::uint64_t key) noexcept;

class Tracer;

/// RAII span.  A default-constructed Span is inert (all methods no-op), so
/// instrumented code can write
///   telemetry::Span s = tel ? tel->tracer.span("infer", parent) : Span{};
/// and use `s` unconditionally.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name, const SpanContext& parent,
       std::uint64_t key);

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Attaches a deterministic numeric attribute.
  void attr(std::string name, double value);

  /// Overrides the inherited simulated timestamp.
  void set_sim_time(double t) noexcept { rec_.sim_time = t; }

  /// Overrides the measured wall duration (for spans that report an
  /// externally accumulated cost, e.g. summed store appends).
  void set_duration_ms(double ms) noexcept {
    rec_.duration_ms = ms;
    duration_overridden_ = true;
  }

  /// Context for spawning children.
  [[nodiscard]] SpanContext context() const noexcept {
    return {rec_.trace_id, rec_.span_id, rec_.sim_time};
  }

  /// Records the span (idempotent; also called by the destructor).
  void finish();

 private:
  Tracer* tracer_ = nullptr;  ///< Null = inert.
  SpanRecord rec_;
  bool duration_overridden_ = false;
  std::chrono::steady_clock::time_point start_{};
};

/// Collects finished spans.  Appends go to one of kStripes per-thread
/// buffers (round-robin thread -> stripe, shared with the metric
/// counters), so concurrent pool workers rarely touch the same lock.
class Tracer {
 public:
  Tracer();

  /// Starts a span.  A default-constructed parent makes it a root: the
  /// trace id is then taken from `key` (callers pass the epoch index).
  [[nodiscard]] Span span(std::string name, const SpanContext& parent = {},
                          std::uint64_t key = 0) {
    return Span(this, std::move(name), parent, key);
  }

  /// Moves all stripe buffers into the internal archive and returns the
  /// spans drained by *this* call (callers wanting everything so far use
  /// records()).  Called at epoch close, where no span is in flight.
  std::vector<SpanRecord> drain();

  /// All recorded spans: the drained archive plus whatever still sits in
  /// the stripe buffers.  Order is unspecified; exports sort.
  [[nodiscard]] std::vector<SpanRecord> records() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  friend class Span;
  void record(SpanRecord&& rec);

  struct Stripe {
    mutable std::mutex mu;
    std::vector<SpanRecord> records;
  };
  static constexpr std::size_t kTracerStripes = 16;
  std::array<Stripe, kTracerStripes> stripes_;
  mutable std::mutex drained_mu_;
  std::vector<SpanRecord> drained_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace jaal::telemetry
