#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace jaal::telemetry {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return mine;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

double Histogram::upper_bound(std::size_t i) noexcept {
  if (i + 1 >= kBucketCount) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) + kMinExponent);
}

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the first bucket
  // Smallest i with 2^(i + kMinExponent) >= v.  frexp gives v = m * 2^e with
  // m in [0.5, 1): the bound 2^(e-1) equals v exactly when m == 0.5, so the
  // value belongs in that bucket (upper bounds are inclusive).
  int e = 0;
  const double m = std::frexp(v, &e);
  int i = (m == 0.5 ? e - 1 : e) - kMinExponent;
  if (i < 0) i = 0;
  if (i >= static_cast<int>(kBucketCount)) i = kBucketCount - 1;
  return static_cast<std::size_t>(i);
}

void Histogram::observe(double v) noexcept {
#ifndef JAAL_TELEMETRY_DISABLED
  if (!enabled_->load(std::memory_order_relaxed)) return;
  Shard& s = shards_[stripe_index()];
  s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double sum = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(sum, sum + v,
                                      std::memory_order_relaxed)) {
  }
  double seen = s.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !s.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBucketCount, 0);
  for (const Shard& s : shards_) {
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& prev) const {
  std::unordered_map<std::string_view, const Entry*> base;
  base.reserve(prev.entries.size());
  for (const Entry& e : prev.entries) base.emplace(e.name, &e);

  MetricsSnapshot out;
  out.entries.reserve(entries.size());
  for (const Entry& cur : entries) {
    Entry d = cur;
    const auto it = base.find(cur.name);
    const Entry* old =
        it != base.end() && it->second->kind == cur.kind ? it->second : nullptr;
    if (old != nullptr) {
      switch (cur.kind) {
        case MetricKind::kCounter:
          // Monotonic-counter assumption: current < previous means a reset,
          // so the whole current value is new growth.
          d.counter =
              cur.counter >= old->counter ? cur.counter - old->counter
                                          : cur.counter;
          break;
        case MetricKind::kGauge:
          break;  // point-in-time: the current value IS the observation
        case MetricKind::kHistogram: {
          const HistogramSnapshot& c = cur.histogram;
          const HistogramSnapshot& p = old->histogram;
          const bool reset = c.count < p.count;
          d.histogram.count = reset ? c.count : c.count - p.count;
          d.histogram.sum = reset ? c.sum : c.sum - p.sum;
          d.histogram.max = c.max;  // lifetime high-water, not a rate
          for (std::size_t b = 0; b < d.histogram.buckets.size(); ++b) {
            const std::uint64_t pb =
                b < p.buckets.size() && !reset ? p.buckets[b] : 0;
            d.histogram.buckets[b] =
                c.buckets[b] >= pb ? c.buckets[b] - pb : c.buckets[b];
          }
          break;
        }
      }
    }
    out.entries.push_back(std::move(d));
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        MetricKind kind) {
  std::lock_guard lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::invalid_argument(
            "MetricsRegistry: metric '" + std::string(name) +
            "' already registered with a different kind");
      }
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter.reset(new Counter(&enabled_));
      break;
    case MetricKind::kGauge:
      entry->gauge.reset(new Gauge(&enabled_));
      break;
    case MetricKind::kHistogram:
      entry->histogram.reset(new Histogram(&enabled_));
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *find_or_create(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *find_or_create(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *find_or_create(name, MetricKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.entries.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricsSnapshot::Entry out;
    out.name = e->name;
    out.kind = e->kind;
    switch (e->kind) {
      case MetricKind::kCounter:
        out.counter = e->counter->value();
        break;
      case MetricKind::kGauge:
        out.gauge = e->gauge->value();
        break;
      case MetricKind::kHistogram:
        out.histogram = e->histogram->snapshot();
        break;
    }
    snap.entries.push_back(std::move(out));
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace jaal::telemetry
