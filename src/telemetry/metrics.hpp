// Process-wide metrics registry (counters, gauges, histograms).
//
// Hot-path writes are lock-free: every metric is striped into kStripes
// cache-line-padded shards, each thread hashes to one shard (thread-local
// stripe index assigned round-robin), and snapshot() merges the shards.
// Registration (name -> metric) takes a mutex but happens once per metric at
// wiring time; instrumented components cache the returned handle and never
// touch the map again.
//
// Naming scheme (see DESIGN.md "Telemetry"): jaal_<subsystem>_<what>[_total
// for counters | _ms for wall-clock histograms].  Prometheus-style labels
// may be embedded literally in the name ('jaal_netsim_link_drops_total
// {link="3-7"}'); the exporters split them back out.
//
// Disabled modes: compiling with -DJAAL_TELEMETRY_DISABLED turns every
// write into a no-op; at runtime, MetricsRegistry::set_enabled(false) does
// the same via one relaxed atomic load per write.  Components additionally
// treat a null Telemetry pointer as "not attached" and skip instrumentation
// entirely, which is the default (and cheapest) state.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jaal::telemetry {

/// Shard count; a power of two so the stripe index is a cheap mask.
inline constexpr std::size_t kStripes = 16;

/// This thread's shard index in [0, kStripes) — assigned round-robin on
/// first use so concurrent writers spread over different cache lines.
[[nodiscard]] std::size_t stripe_index() noexcept;

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#ifndef JAAL_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over all shards.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
  const std::atomic<bool>* enabled_;
};

/// Point-in-time value; set() is last-writer-wins, update_max() keeps the
/// high-water mark.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef JAAL_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void add(std::int64_t n) noexcept {
#ifndef JAAL_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  void update_max(std::int64_t v) noexcept {
#ifndef JAAL_TELEMETRY_DISABLED
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<std::int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;  ///< 0 when count == 0.
  /// Cumulative-free per-bucket counts; bucket i covers
  /// (upper_bound(i-1), upper_bound(i)], bucket kBucketCount-1 is +Inf.
  std::vector<std::uint64_t> buckets;
};

/// Fixed log-scale (base-2) bucket histogram.  Bucket upper bounds are
/// 2^(i + kMinExponent) for i in [0, kBucketCount - 1); the last bucket is
/// +Inf.  With kMinExponent = -10 the finite bounds span ~0.001 .. ~1.7e7,
/// which covers microsecond-to-minute latencies in ms as well as iteration
/// and byte-per-batch counts.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 36;
  static constexpr int kMinExponent = -10;

  /// Upper bound of bucket i (+Inf for the last bucket).
  [[nodiscard]] static double upper_bound(std::size_t i) noexcept;

  /// Index of the bucket a value lands in: the first bucket whose upper
  /// bound is >= v (values <= the smallest bound land in bucket 0).
  [[nodiscard]] static std::size_t bucket_index(double v) noexcept;

  void observe(double v) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  std::array<Shard, kStripes> shards_;
  const std::atomic<bool>* enabled_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of every registered metric, in registration order.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    std::int64_t gauge = 0;
    HistogramSnapshot histogram;
  };
  std::vector<Entry> entries;

  /// What this snapshot accumulated since `prev`: every entry of *this*
  /// with counters and histogram counts/buckets replaced by their delta
  /// against the same-named entry in `prev` (absent in prev = zero
  /// baseline).  Gauges are point-in-time and keep their current value;
  /// histogram sums subtract (the delta of a deterministic series is
  /// deterministic) and max stays the lifetime max.
  ///
  /// Assumes counters are monotonic — the registry never decrements — so a
  /// current value below the previous one means the counter was reset (a
  /// new registry); the delta then clamps to the current value rather than
  /// wrapping.  Entries whose kinds disagree between the snapshots are
  /// treated as new (prev ignored).
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& prev) const;
};

/// Named metric registry.  Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; re-requesting a name returns the
/// same handle, requesting it as a different kind throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Runtime kill switch: while disabled, every write on every handle is a
  /// no-op (one relaxed load).  Reads still work.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< Registration order.
  std::atomic<bool> enabled_{true};
};

/// The process-wide registry (for code without an explicit Telemetry
/// wiring).  Created on first use; enabled like any other registry.
[[nodiscard]] MetricsRegistry& global_registry();

}  // namespace jaal::telemetry
