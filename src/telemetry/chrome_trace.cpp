#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace jaal::telemetry {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_event(std::string& out, bool& first, const SpanRecord& s,
                  double ts_us, double dur_us, std::uint64_t tid) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"ph\":\"X\",\"cat\":\"jaal\",\"name\":\"" + json_escape(s.name) +
         "\",\"ts\":" + fmt_double(ts_us) + ",\"dur\":" + fmt_double(dur_us);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64
                                  ",\"args\":{\"key\":%" PRIu64,
                s.trace_id, tid, s.key);
  out += buf;
  for (const auto& [name, value] : s.attrs) {
    out += ",\"" + json_escape(name) + "\":" + fmt_double(value);
  }
  out += "}}";
}

/// Wall mode: greedy lane packing.  Spans sorted by (start asc, end desc)
/// visit parents before their children; a span joins the first lane where
/// it either starts after everything open or nests inside the top open
/// interval, so each lane holds properly nested intervals.
void export_wall(std::string& out, bool& first,
                 std::vector<const SpanRecord*> recs) {
  std::sort(recs.begin(), recs.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->trace_id != b->trace_id) return a->trace_id < b->trace_id;
              const double ea = a->start_ms + a->duration_ms;
              const double eb = b->start_ms + b->duration_ms;
              if (a->start_ms != b->start_ms) return a->start_ms < b->start_ms;
              if (ea != eb) return ea > eb;
              if (a->name != b->name) return a->name < b->name;
              if (a->key != b->key) return a->key < b->key;
              return a->span_id < b->span_id;
            });
  constexpr double kEps = 1e-6;
  std::uint64_t cur_trace = 0;
  bool have_trace = false;
  std::vector<std::vector<double>> lanes;  // Per lane: open interval ends.
  for (const SpanRecord* s : recs) {
    if (!have_trace || s->trace_id != cur_trace) {
      lanes.clear();
      cur_trace = s->trace_id;
      have_trace = true;
    }
    const double start = s->start_ms;
    const double end = s->start_ms + s->duration_ms;
    std::size_t lane = lanes.size();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      auto& open = lanes[i];
      while (!open.empty() && open.back() <= start + kEps) open.pop_back();
      if (open.empty() || end <= open.back() + kEps) {
        lane = i;
        break;
      }
    }
    if (lane == lanes.size()) lanes.emplace_back();
    lanes[lane].push_back(end);
    append_event(out, first, *s, start * 1000.0, s->duration_ms * 1000.0,
                 lane + 1);
  }
}

/// Deterministic mode: layout derived only from tree shape.  Width of a
/// span = 1 + sum of child widths (1 unit = 1 us); children are laid out
/// sequentially after the parent's own leading unit, in the deterministic
/// (name, key, span_id) order.
void export_deterministic(std::string& out, bool& first,
                          std::vector<const SpanRecord*> recs) {
  recs.erase(std::remove_if(recs.begin(), recs.end(),
                            [](const SpanRecord* s) {
                              return is_tier_shape_span(s->name);
                            }),
             recs.end());
  std::sort(recs.begin(), recs.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->trace_id != b->trace_id) return a->trace_id < b->trace_id;
              if (a->name != b->name) return a->name < b->name;
              if (a->key != b->key) return a->key < b->key;
              return a->span_id < b->span_id;
            });
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    by_id.try_emplace(recs[i]->span_id, i);  // First (sorted) record wins.
  }
  std::vector<std::vector<std::size_t>> children(recs.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (by_id[recs[i]->span_id] != i) continue;  // Duplicate: dropped.
    if (recs[i]->parent_id == 0) {
      roots.push_back(i);
      continue;
    }
    auto it = by_id.find(recs[i]->parent_id);
    if (it == by_id.end() || it->second == i) continue;  // Orphan: dropped.
    children[it->second].push_back(i);
  }
  // Subtree widths, bottom-up.
  std::vector<double> width(recs.size(), 0.0);
  auto measure = [&](std::size_t root) {
    std::vector<std::pair<std::size_t, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [i, done] = stack.back();
      stack.pop_back();
      if (!done) {
        stack.emplace_back(i, true);
        for (std::size_t c : children[i]) stack.emplace_back(c, false);
        continue;
      }
      width[i] = 1.0;
      for (std::size_t c : children[i]) width[i] += width[c];
    }
  };
  for (std::size_t r : roots) measure(r);
  // Emit DFS, children after the parent's leading unit.
  for (std::size_t r : roots) {
    const double base = recs[r]->sim_time >= 0.0
                            ? recs[r]->sim_time * 1e6
                            : static_cast<double>(recs[r]->trace_id) * 1e6;
    std::vector<std::pair<std::size_t, double>> stack{{r, base}};
    while (!stack.empty()) {
      auto [i, ts] = stack.back();
      stack.pop_back();
      append_event(out, first, *recs[i], ts, width[i], 1);
      double child_ts = ts + 1.0;
      // Push in reverse so children emit in deterministic order.
      std::vector<std::pair<std::size_t, double>> kids;
      for (std::size_t c : children[i]) {
        kids.emplace_back(c, child_ts);
        child_ts += width[c];
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
}

}  // namespace

std::string export_chrome_trace(const std::vector<SpanRecord>& spans,
                                const ChromeTraceOptions& options) {
  std::vector<const SpanRecord*> recs;
  recs.reserve(spans.size());
  for (const SpanRecord& s : spans) recs.push_back(&s);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  if (options.mode == DurationMode::kDeterministic) {
    export_deterministic(out, first, std::move(recs));
  } else {
    export_wall(out, first, std::move(recs));
  }
  out += "\n]}\n";
  return out;
}

}  // namespace jaal::telemetry
