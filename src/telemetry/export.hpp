// Exporters: Prometheus text exposition and JSONL metric/span dump.
//
// Both exporters emit metrics sorted by name and spans sorted by
// (trace_id, name, key, span_id) — a deterministic order that does not
// depend on registration races or thread interleaving.
//
// The JSONL dump has two modes:
//  * include_timings = true  — the operator report: every field, including
//    wall-clock durations and the runtime (scheduler) metrics.
//  * include_timings = false — the deterministic trace: span duration_ms is
//    omitted and wall-clock-derived metrics (any name containing "_ms" and
//    the whole jaal_runtime_* family, whose queue/task interleaving depends
//    on scheduling) are skipped.  Two runs of the same seeded experiment
//    produce byte-identical output in this mode; a tier-1 test pins that.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace jaal::telemetry {

/// Prometheus text exposition (version 0.0.4) of a metrics snapshot.
/// Labels embedded in metric names ('name{k="v"}') are split onto each
/// sample line; histograms expand to _bucket{le=...}/_sum/_count series.
/// Every metric family gets a '# HELP' line from metric_help() ahead of its
/// '# TYPE' line.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// One-line description of a metric family (the base name, labels
/// stripped).  Known jaal_* families come from a fixed registry; unknown
/// names fall back to a generic line derived from the naming convention, so
/// every family always has help text.
[[nodiscard]] std::string metric_help(const std::string& base_name);

struct JsonlOptions {
  bool include_timings = true;
};

/// One JSON object per line: first metrics ({"kind":"counter"|"gauge"|
/// "histogram", ...}), then spans ({"kind":"span", ...}).
[[nodiscard]] std::string to_jsonl(const MetricsSnapshot& metrics,
                                   const std::vector<SpanRecord>& spans,
                                   const JsonlOptions& options = {});

/// True for metrics excluded from the deterministic JSONL mode (wall-clock
/// histograms and the scheduler-dependent jaal_runtime_* family).
[[nodiscard]] bool is_wall_clock_metric(const std::string& name) noexcept;

/// True for metrics that describe the *shape* of the inference tier rather
/// than what the deployment detected (the per-shard jaal_shard_* family).
/// The store's ops stream elides them so persisted metrics deltas stay
/// byte-identical across shard counts.
[[nodiscard]] bool is_tier_shape_metric(const std::string& name) noexcept;

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote, and line feed become \\, \", and \n.
[[nodiscard]] std::string escape_label_value(const std::string& value);

/// Composes a labeled metric name: 'base' -> 'base{key="value"}', or appends
/// to an existing label set ('base{a="1"}' -> 'base{a="1",key="value"}').
/// The value is escaped with escape_label_value; the key must already be a
/// valid label name.  Registering per-label-value series goes through this
/// helper so arbitrary strings (rule messages, scenario names) cannot break
/// the exposition format.
[[nodiscard]] std::string with_label(const std::string& name,
                                     const std::string& key,
                                     const std::string& value);

}  // namespace jaal::telemetry
