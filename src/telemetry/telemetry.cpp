#include "telemetry/telemetry.hpp"

namespace jaal::telemetry {

Telemetry& global() {
  static Telemetry instance;
  return instance;
}

}  // namespace jaal::telemetry
