#include "inference/correlator.hpp"

#include <stdexcept>

namespace jaal::inference {

AlertCorrelator::AlertCorrelator(const CorrelatorConfig& cfg) : cfg_(cfg) {
  if (cfg_.required == 0 || cfg_.required > cfg_.window) {
    throw std::invalid_argument(
        "AlertCorrelator: need 1 <= required <= window");
  }
}

std::vector<Alert> AlertCorrelator::observe(const std::vector<Alert>& alerts) {
  ++epochs_;
  std::set<std::uint32_t> fired;
  for (const Alert& a : alerts) fired.insert(a.sid);
  history_.push_back(std::move(fired));
  while (history_.size() > cfg_.window) history_.pop_front();

  std::vector<Alert> confirmed;
  for (const Alert& a : alerts) {
    std::size_t hits = 0;
    for (const auto& epoch : history_) hits += epoch.count(a.sid);
    if (hits >= cfg_.required) confirmed.push_back(a);
  }
  return confirmed;
}

void AlertCorrelator::reset() {
  history_.clear();
  epochs_ = 0;
}

}  // namespace jaal::inference
