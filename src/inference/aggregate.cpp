#include "inference/aggregate.hpp"

#include <random>
#include <stdexcept>

#include "summarize/kmeans.hpp"

namespace jaal::inference {

void AggregationPolicy::validate() const {
  if (deadline_s < 0.0) {
    throw std::invalid_argument("AggregationPolicy: deadline_s must be >= 0");
  }
}

AggregatedSummary reduce_aggregate(const AggregatedSummary& aggregate,
                                   std::size_t k2, std::uint64_t seed) {
  if (aggregate.empty()) {
    throw std::invalid_argument("reduce_aggregate: empty aggregate");
  }
  if (k2 == 0) {
    throw std::invalid_argument("reduce_aggregate: k2 must be positive");
  }
  std::mt19937_64 rng(seed);
  const auto km = summarize::weighted_kmeans(aggregate.centroids,
                                             aggregate.counts, k2, rng);

  AggregatedSummary out;
  // Drop empty clusters so counts stay meaningful.
  std::size_t live = 0;
  for (std::uint64_t c : km.counts) live += c > 0 ? 1 : 0;
  out.centroids = linalg::Matrix(live, aggregate.centroids.cols());
  out.counts.reserve(live);
  std::size_t row = 0;
  for (std::size_t c = 0; c < km.centroids.rows(); ++c) {
    if (km.counts[c] == 0) continue;
    const auto src = km.centroids.row(c);
    std::copy(src.begin(), src.end(), out.centroids.row(row).begin());
    out.counts.push_back(km.counts[c]);
    out.origin.push_back(kNoOrigin);
    out.local_index.push_back(row);
    ++row;
  }
  return out;
}

std::uint64_t AggregatedSummary::total_packets() const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

void Aggregator::add(const summarize::MonitorSummary& summary) {
  summarize::CombinedSummary combined;
  if (const auto* c = std::get_if<summarize::CombinedSummary>(&summary)) {
    combined = *c;
  } else {
    combined = std::get<summarize::SplitSummary>(summary).reconstruct();
  }
  combined.check_invariants();
  if (!pending_.empty() &&
      pending_.front().centroids.cols() != combined.centroids.cols()) {
    throw std::invalid_argument("Aggregator: field-width mismatch");
  }
  pending_.push_back(std::move(combined));
  ++added_;
}

AggregatedSummary Aggregator::take() {
  AggregatedSummary agg;
  std::size_t total_rows = 0;
  for (const auto& s : pending_) total_rows += s.centroids.rows();
  const std::size_t cols =
      pending_.empty() ? 0 : pending_.front().centroids.cols();
  agg.centroids = linalg::Matrix(total_rows, cols);
  agg.counts.reserve(total_rows);
  agg.origin.reserve(total_rows);
  agg.local_index.reserve(total_rows);

  std::size_t row = 0;
  for (const auto& s : pending_) {
    for (std::size_t i = 0; i < s.centroids.rows(); ++i, ++row) {
      const auto src = s.centroids.row(i);
      std::copy(src.begin(), src.end(), agg.centroids.row(row).begin());
      agg.counts.push_back(s.counts[i]);
      agg.origin.push_back(s.monitor);
      agg.local_index.push_back(i);
    }
  }
  pending_.clear();
  added_ = 0;
  return agg;
}

}  // namespace jaal::inference
