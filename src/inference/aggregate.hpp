// Summary aggregation (§5.1).
//
// The controller concatenates the summaries collected from all monitors into
// a single "tall" aggregated summary S^a = [X~_a | c_a].  Split summaries
// are reconstructed into combined form first.  Each aggregated row remembers
// its origin monitor and local centroid index so the feedback loop can ask
// the right monitor for the raw packets behind an uncertain centroid.
#pragma once

#include <vector>

#include "faults/scenario.hpp"
#include "summarize/summary.hpp"

namespace jaal::inference {

/// Every knob governing how summaries become the aggregate an engine
/// decides over, in one place — shared by the deployment controller, the
/// per-shard aggregation stage, and the cross-shard merge, so the deadline /
/// late-arrival / threshold-scaling behavior cannot drift between tiers.
/// (Previously scattered across JaalConfig and implicit engine behavior.)
struct AggregationPolicy {
  /// Aggregation deadline, in simulated seconds after the epoch close: a
  /// summary arriving later is *late* (counted; late_policy decides its
  /// fate).  0 (default) means one full epoch_seconds.
  double deadline_s = 0.0;
  /// What happens to a late summary: discarded, or rolled forward into the
  /// next epoch's aggregate (stale but not lost).
  faults::LatePolicy late_policy = faults::LatePolicy::kDiscard;
  /// Scale the engine's count thresholds (tau_c) by the epoch's report
  /// fraction: a partial aggregate carries proportionally less of an
  /// attack's mass, so an unscaled threshold would silently miss.  On (the
  /// default) is the PR 4 degraded-mode behavior; off pins thresholds to
  /// their full-epoch values regardless of delivery.
  bool scale_thresholds_by_report_fraction = true;

  /// Throws std::invalid_argument on a negative deadline (construction-time
  /// error policy; see jaal.hpp).
  void validate() const;
};

struct AggregatedSummary {
  linalg::Matrix centroids;                       ///< Up to M*k rows, p cols.
  std::vector<std::uint64_t> counts;              ///< Row weights c_a.
  std::vector<summarize::MonitorId> origin;       ///< Row -> monitor.
  std::vector<std::size_t> local_index;           ///< Row -> centroid idx at origin.

  [[nodiscard]] std::size_t rows() const noexcept { return counts.size(); }
  [[nodiscard]] bool empty() const noexcept { return counts.empty(); }
  /// Total packets represented across all monitors.
  [[nodiscard]] std::uint64_t total_packets() const noexcept;
};

/// Second-level reduction for very large deployments: the aggregate has up
/// to M*k rows, and with hundreds of monitors the per-question matching
/// cost grows linearly in M.  Re-clustering the (count-weighted) centroids
/// down to `k2` rows bounds it again.  The reduced rows no longer map to a
/// single monitor, so `origin` is set to kNoOrigin and the feedback loop is
/// unavailable on a reduced aggregate — use it for the scale tier where raw
/// retrieval would be impractical anyway.
/// Throws std::invalid_argument on an empty aggregate or k2 == 0.
inline constexpr summarize::MonitorId kNoOrigin =
    static_cast<summarize::MonitorId>(-1);

[[nodiscard]] AggregatedSummary reduce_aggregate(
    const AggregatedSummary& aggregate, std::size_t k2,
    std::uint64_t seed = 1);

class Aggregator {
 public:
  /// Appends one monitor summary (reconstructing S2 into S1 form).
  /// Throws std::invalid_argument if the summary's field width differs from
  /// previously added summaries.
  void add(const summarize::MonitorSummary& summary);

  [[nodiscard]] std::size_t summaries_added() const noexcept { return added_; }

  /// Builds the aggregate and resets the collector for the next epoch.
  [[nodiscard]] AggregatedSummary take();

 private:
  std::vector<summarize::CombinedSummary> pending_;
  std::size_t added_ = 0;
};

}  // namespace jaal::inference
