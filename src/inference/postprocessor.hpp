// Postprocessor — Algorithm 2 of the paper.
//
// Snort handles distributed attacks (port scans, DDoS) with preprocessors
// rather than signatures.  Jaal's equivalent measures the count-weighted
// variance of one header field across the matched centroids Q: a large
// spread in, say, destination ports (scan) or source addresses (DDoS)
// indicates a distributed pattern.
#pragma once

#include <span>

#include "inference/aggregate.hpp"
#include "packet/fields.hpp"

namespace jaal::inference {

/// Count-weighted variance of normalized field h over the rows in Q.
/// This is exactly Algorithm 2's var(Z) where x_i(h) is added c_i times.
[[nodiscard]] double matched_variance(const AggregatedSummary& aggregate,
                                      std::span<const std::size_t> matched_rows,
                                      packet::FieldIndex field);

/// Algorithm 2: alert when the variance exceeds tau_v.
[[nodiscard]] bool postprocess(const AggregatedSummary& aggregate,
                               std::span<const std::size_t> matched_rows,
                               packet::FieldIndex field, double tau_v);

}  // namespace jaal::inference
