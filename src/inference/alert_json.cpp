#include "inference/alert_json.hpp"

#include <cstdio>

namespace jaal::inference {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

std::string alert_to_json(const Alert& alert, double epoch_end_time) {
  std::string out = "{\"time\":";
  char num[64];
  std::snprintf(num, sizeof(num), "%.6f", epoch_end_time);
  out += num;
  out += ",\"sid\":" + std::to_string(alert.sid);
  out += ",\"msg\":\"";
  append_escaped(out, alert.msg);
  out += "\",\"matched_packets\":" + std::to_string(alert.matched_packets);
  out += ",\"distributed\":";
  out += alert.distributed ? "true" : "false";
  out += ",\"via_feedback\":";
  out += alert.via_feedback ? "true" : "false";
  std::snprintf(num, sizeof(num), "%.8f", alert.variance);
  out += ",\"variance\":";
  out += num;
  std::snprintf(num, sizeof(num), "%.8f", alert.confidence);
  out += ",\"confidence\":";
  out += num;
  std::snprintf(num, sizeof(num), "%.8f", alert.caution);
  out += ",\"caution\":";
  out += num;
  out += "}";
  return out;
}

}  // namespace jaal::inference
