// Similarity estimation — Algorithm 1 of the paper.
//
// For a question vector q, sum the membership counts of all aggregated
// centroids within distance tau_d of q; alert when the sum reaches tau_c and
// return the matched set Q for the postprocessor / feedback loop.
#pragma once

#include <vector>

#include "inference/aggregate.hpp"
#include "rules/question.hpp"

namespace jaal::inference {

struct SimilarityResult {
  bool alert = false;                    ///< sum >= tau_c.
  std::uint64_t matched_count = 0;       ///< Sum of counts over matched rows.
  std::vector<std::size_t> matched_rows; ///< Q: indices into the aggregate.
  /// Eq. 5 distance of each matched row to q, parallel to matched_rows.
  /// Provenance uses these to record per-centroid threshold margins.
  std::vector<double> matched_distances;
};

/// Runs Algorithm 1 with distance threshold `tau_d`.  `tau_c` defaults to
/// the question's own threshold; pass an explicit value to override (the
/// ROC sweeps scan threshold combinations).
[[nodiscard]] SimilarityResult estimate_similarity(
    const rules::Question& question, const AggregatedSummary& aggregate,
    double tau_d, std::uint64_t tau_c_override = 0);

}  // namespace jaal::inference
