#include "inference/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "packet/wire.hpp"
#include "telemetry/export.hpp"

namespace jaal::inference {
namespace {

/// The rule as applied during raw verification: exact-match evidence uses
/// the rule's jaal_raw_count when given, otherwise a kRawEvidenceFactor
/// fraction of the summary-domain count.
rules::Rule verification_rule(const rules::Rule& rule) {
  rules::Rule v = rule;
  if (v.raw_count) {
    if (!v.detection_filter) v.detection_filter.emplace();
    v.detection_filter->count = *v.raw_count;
  } else if (v.detection_filter) {
    v.detection_filter->count = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::ceil(v.detection_filter->count * kRawEvidenceFactor)));
  }
  return v;
}

}  // namespace

InferenceEngine::InferenceEngine(std::vector<rules::Rule> rules,
                                 EngineConfig config,
                                 AggregationPolicy aggregation)
    : matcher_(std::move(rules)),
      questions_(rules::translate(matcher_.rules())),
      config_(std::move(config)),
      aggregation_(aggregation) {
  aggregation_.validate();
  if (questions_.empty()) {
    throw std::invalid_argument("InferenceEngine: empty rule set");
  }
  auto check = [](const ThresholdPair& t) {
    if (t.tau_d2 < t.tau_d1 || t.tau_d1 < 0.0) {
      throw std::invalid_argument(
          "InferenceEngine: need 0 <= tau_d1 <= tau_d2");
    }
  };
  check(config_.default_thresholds);
  for (const auto& [sid, pair] : config_.per_rule) check(pair);
}

void InferenceEngine::set_telemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  tel_alerts_by_sid_.clear();
  if (tel_ == nullptr) {
    tel_questions_ = tel_questions_matched_ = nullptr;
    tel_alerts_feedback_ = tel_alerts_suppressed_ = nullptr;
    tel_feedback_requests_ = tel_feedback_fallbacks_ = nullptr;
    tel_raw_packets_fetched_ = tel_raw_bytes_fetched_ = nullptr;
    tel_provenance_records_ = nullptr;
    return;
  }
  auto& m = tel_->metrics;
  tel_questions_ = &m.counter("jaal_inference_questions_evaluated_total");
  tel_questions_matched_ = &m.counter("jaal_inference_questions_matched_total");
  // One alert counter per rule, labeled by sid, registered up front so the
  // decision loop only bumps a cached pointer.
  for (const rules::Question& q : questions_) {
    tel_alerts_by_sid_.emplace(
        q.sid, &m.counter(telemetry::with_label("jaal_inference_alerts_total",
                                                "sid",
                                                std::to_string(q.sid))));
  }
  tel_alerts_feedback_ = &m.counter("jaal_inference_alerts_via_feedback_total");
  tel_provenance_records_ =
      &m.counter("jaal_observe_provenance_records_total");
  tel_alerts_suppressed_ = &m.counter("jaal_inference_alerts_suppressed_total");
  tel_feedback_requests_ = &m.counter("jaal_inference_feedback_requests_total");
  tel_feedback_fallbacks_ =
      &m.counter("jaal_inference_feedback_fallbacks_total");
  tel_raw_packets_fetched_ =
      &m.counter("jaal_inference_raw_packets_fetched_total");
  tel_raw_bytes_fetched_ = &m.counter("jaal_inference_raw_bytes_fetched_total");
}

ThresholdPair InferenceEngine::thresholds_for(std::uint32_t sid) const {
  const auto it = config_.per_rule.find(sid);
  return it == config_.per_rule.end() ? config_.default_thresholds : it->second;
}

void InferenceEngine::set_report_fraction(double fraction) noexcept {
  report_fraction_ = std::clamp(fraction, 1e-9, 1.0);
}

void InferenceEngine::set_caution(double caution) noexcept {
  caution_ = std::clamp(caution, 0.0, 1.0);
}

std::uint64_t InferenceEngine::scaled_tau_c(const rules::Question& q) const {
  // A partial aggregate (report_fraction < 1) carries proportionally less
  // attack mass; scale the count threshold with it (policy permitting).  At
  // 1.0 this is the exact full-epoch threshold (multiplying by 1.0 is
  // bit-exact).
  const double fraction =
      aggregation_.scale_thresholds_by_report_fraction ? report_fraction_
                                                       : 1.0;
  const double t =
      static_cast<double>(q.tau_c) * config_.tau_c_scale * fraction;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(t)));
}

std::vector<QuestionMatch> InferenceEngine::match(
    const AggregatedSummary& aggregate) const {
  // Algorithm 1 per question (strict + loose thresholds) is read-only on
  // the aggregate and independent across questions, so it fans out over the
  // pool.  Matched rows depend only on tau_d (the distance threshold); the
  // alert flag additionally compares the count sum against scaled_tau_c.
  std::vector<QuestionMatch> matches(questions_.size());
  const auto match_one = [&](std::size_t qi) {
    const rules::Question& q = questions_[qi];
    const ThresholdPair th = thresholds_for(q.sid);
    const std::uint64_t tau_c = scaled_tau_c(q);
    matches[qi] = {estimate_similarity(q, aggregate, th.tau_d1, tau_c),
                   estimate_similarity(q, aggregate, th.tau_d2, tau_c)};
  };
  if (pool_ && questions_.size() > 1) {
    pool_->parallel_for(0, questions_.size(), match_one, 1);
  } else {
    for (std::size_t qi = 0; qi < questions_.size(); ++qi) match_one(qi);
  }
  return matches;
}

std::vector<Alert> InferenceEngine::infer(
    const AggregatedSummary& aggregate, const RawPacketFetcher& fetch,
    const telemetry::SpanContext& parent) {
  if (aggregate.empty()) return {};
  return decide(aggregate, match(aggregate), fetch, parent);
}

std::vector<Alert> InferenceEngine::decide(
    const AggregatedSummary& aggregate,
    const std::vector<QuestionMatch>& matches, const RawPacketFetcher& fetch,
    const telemetry::SpanContext& parent) {
  std::vector<Alert> alerts;
  if (aggregate.empty()) return alerts;
  if (tel_questions_ != nullptr) tel_questions_->add(questions_.size());

  // Per-pass cache of raw packets fetched by the feedback loop: different
  // questions often flag overlapping centroid sets (e.g. the SYN-family
  // rules), and the monitor only has to ship each centroid's packets once
  // per epoch.  Bytes are accounted on first fetch only.  Failed retrievals
  // (nullopt — transport fault, retries exhausted) are cached too, so one
  // dead monitor costs one retry cycle per centroid, not one per question.
  std::unordered_map<std::uint64_t, RawFetch> fetch_cache;
  // Transport cost of the retrievals made *fresh* since the last reset —
  // the per-alert attempt/backoff accounting provenance records (cache hits
  // were paid for by an earlier alert and contribute 0).
  std::size_t fresh_attempts = 0;
  double fresh_backoff = 0.0;
  auto fetch_cached = [&](summarize::MonitorId monitor,
                          std::size_t centroid) -> const RawFetch& {
    const std::uint64_t key = (std::uint64_t{monitor} << 32) | centroid;
    auto it = fetch_cache.find(key);
    if (it == fetch_cache.end()) {
      RawFetch result = fetch(monitor, {centroid});
      fresh_attempts += result.attempts;
      fresh_backoff += result.backoff_s;
      if (result.packets) {
        stats_.raw_packets_fetched += result.packets->size();
        stats_.raw_bytes_fetched +=
            result.packets->size() * packet::kHeadersBytes;
        if (tel_raw_packets_fetched_ != nullptr) {
          tel_raw_packets_fetched_->add(result.packets->size());
          tel_raw_bytes_fetched_->add(result.packets->size() *
                                      packet::kHeadersBytes);
        }
      }
      it = fetch_cache.emplace(key, std::move(result)).first;
    }
    return it->second;
  };

  // Gathers the raw packets behind `rows`; false when any retrieval failed
  // (the caller then degrades to the summary-only decision).
  auto gather_raw = [&](const std::vector<std::size_t>& rows,
                        std::vector<packet::PacketRecord>& raw) {
    for (std::size_t row : rows) {
      const RawFetch& result =
          fetch_cached(aggregate.origin[row], aggregate.local_index[row]);
      if (!result.packets) return false;
      raw.insert(raw.end(), result.packets->begin(), result.packets->end());
    }
    return true;
  };

  // The decision/feedback phase mutates stats_ and the fetch cache and
  // therefore stays serial, in question order — making the alert stream
  // bit-identical to the poolless path (and, via the tier's merged matches,
  // to the single-engine path at any shard count).
  const auto& rule_list = matcher_.rules();
  for (std::size_t qi = 0; qi < questions_.size(); ++qi) {
    const rules::Question& q = questions_[qi];
    const rules::Rule& rule = rule_list[qi];
    const ThresholdPair th = thresholds_for(q.sid);

    const SimilarityResult& strict = matches[qi].strict;
    const SimilarityResult& loose = matches[qi].loose;

    // Matched sets are nested (tau_d2 >= tau_d1), so t1+ implies t2+.
    if (strict.alert && !loose.alert) ++stats_.case4_anomalies;
    if ((strict.alert || loose.alert) && tel_questions_matched_ != nullptr) {
      tel_questions_matched_->add(1);
    }

    bool fire = false;
    bool via_feedback = false;
    bool verified = false;
    const SimilarityResult* evidence = &strict;
    observe::ThresholdCase threshold_case = observe::ThresholdCase::kStrictMatch;
    observe::FeedbackProvenance fb;

    if (strict.alert) {
      fire = true;  // case 1
      evidence = &strict;
    } else if (!loose.alert) {
      fire = false;  // case 2
    } else {
      // Case 3: uncertain.  Pull raw packets behind the loose-match
      // centroids and let traditional Snort matching decide.
      evidence = &loose;
      threshold_case = observe::ThresholdCase::kUncertainAssumed;
      if (config_.feedback_enabled && fetch) {
        ++stats_.feedback_requests;
        if (tel_feedback_requests_ != nullptr) tel_feedback_requests_->add(1);
        telemetry::Span span =
            tel_ != nullptr
                ? tel_->tracer.span("feedback", parent, q.sid)
                : telemetry::Span{};
        fb.requested = true;
        fresh_attempts = 0;
        fresh_backoff = 0.0;
        std::vector<packet::PacketRecord> raw;
        if (gather_raw(loose.matched_rows, raw)) {
          // Raw verification: exact signature matches over the retrieved
          // packets, against the rule's raw-evidence threshold.
          const auto raw_alerts = rules::RawMatcher({verification_rule(rule)})
                                      .analyze(raw, 0.0, config_.tau_c_scale);
          fire = !raw_alerts.empty();
          via_feedback = true;
          threshold_case = observe::ThresholdCase::kUncertainVerified;
          fb.raw_confirmed = fire;
        } else {
          // Retrieval failed (transport fault, retries exhausted): degrade
          // to summary-only inference — the loose decision stands, exactly
          // as if no fetcher were wired.
          ++stats_.feedback_fallbacks;
          if (tel_feedback_fallbacks_ != nullptr) {
            tel_feedback_fallbacks_->add(1);
          }
          fb.fallback = true;
          fire = true;
        }
        fb.attempts += fresh_attempts;
        fb.backoff_s += fresh_backoff;
        fb.raw_packets += raw.size();
        if (tel_ != nullptr) {
          span.attr("sid", static_cast<double>(q.sid));
          span.attr("raw_packets", static_cast<double>(raw.size()));
          span.attr("failed", via_feedback ? 0.0 : 1.0);
          span.attr("fired", fire ? 1.0 : 0.0);
        }
      } else {
        // No feedback available: accept the loose decision (higher TPR at
        // the cost of FPR), which is the tau_d1 == tau_d2 operating mode.
        fire = true;
      }
    }

    if (!fire) continue;

    // §10 extension: confirm any remaining alert against raw evidence.  A
    // failed retrieval cannot *suppress* an alert — verification degrades
    // to trusting the summary decision instead of silently dropping it.
    if (config_.verify_all_alerts && fetch && !via_feedback) {
      fb.requested = true;
      fresh_attempts = 0;
      fresh_backoff = 0.0;
      std::vector<packet::PacketRecord> raw;
      const bool gathered = gather_raw(evidence->matched_rows, raw);
      fb.attempts += fresh_attempts;
      fb.backoff_s += fresh_backoff;
      fb.raw_packets += raw.size();
      if (gathered) {
        const auto raw_alerts = rules::RawMatcher({verification_rule(rule)})
                                    .analyze(raw, 0.0, config_.tau_c_scale);
        if (raw_alerts.empty()) {
          ++stats_.alerts_suppressed;
          if (tel_alerts_suppressed_ != nullptr) tel_alerts_suppressed_->add(1);
          continue;
        }
        verified = true;
        fb.raw_confirmed = true;
      } else {
        ++stats_.feedback_fallbacks;
        if (tel_feedback_fallbacks_ != nullptr) tel_feedback_fallbacks_->add(1);
        fb.fallback = true;
      }
    }

    Alert alert;
    alert.sid = q.sid;
    alert.msg = q.msg;
    alert.matched_packets = evidence->matched_count;
    alert.via_feedback = via_feedback;
    alert.confidence = report_fraction_;
    alert.caution = caution_;
    if (q.variance) {
      alert.variance =
          matched_variance(aggregate, evidence->matched_rows, q.variance->field);
      alert.distributed = alert.variance >= q.variance->threshold;
      if (!alert.distributed) continue;  // equivalent rule requires spread
    } else {
      // Opportunistic classification: a signature alert whose sources vary
      // widely is flagged distributed (the paper's SYN-flood example, §5.2).
      alert.variance = matched_variance(aggregate, evidence->matched_rows,
                                        packet::FieldIndex::kIpSrcAddr);
      alert.distributed = alert.variance >= 0.005;
    }
    if (config_.record_provenance) {
      alert.provenance = build_provenance(aggregate, q, th, threshold_case,
                                          strict, loose, *evidence, fb,
                                          alert, verified);
      if (tel_provenance_records_ != nullptr) tel_provenance_records_->add(1);
    }
    if (tel_ != nullptr) {
      const auto it = tel_alerts_by_sid_.find(alert.sid);
      if (it != tel_alerts_by_sid_.end()) it->second->add(1);
      if (alert.via_feedback) tel_alerts_feedback_->add(1);
    }
    alerts.push_back(std::move(alert));
  }
  return alerts;
}

std::shared_ptr<const observe::AlertProvenance>
InferenceEngine::build_provenance(
    const AggregatedSummary& aggregate, const rules::Question& q,
    const ThresholdPair& th, observe::ThresholdCase threshold_case,
    const SimilarityResult& strict, const SimilarityResult& loose,
    const SimilarityResult& evidence, const observe::FeedbackProvenance& fb,
    const Alert& alert, bool verified) const {
  auto prov = std::make_shared<observe::AlertProvenance>();
  prov->sid = q.sid;
  prov->threshold_case = threshold_case;
  prov->tau_d1 = th.tau_d1;
  prov->tau_d2 = th.tau_d2;
  prov->tau_c = scaled_tau_c(q);
  prov->tau_c_scale = config_.tau_c_scale;
  prov->strict_count = strict.matched_count;
  prov->loose_count = loose.matched_count;
  prov->report_fraction = report_fraction_;
  prov->caution = caution_;
  prov->centroids.reserve(evidence.matched_rows.size());
  for (std::size_t j = 0; j < evidence.matched_rows.size(); ++j) {
    const std::size_t row = evidence.matched_rows[j];
    observe::CentroidEvidence ce;
    ce.monitor = static_cast<std::uint32_t>(aggregate.origin[row]);
    ce.local_index = aggregate.local_index[row];
    ce.count = aggregate.counts[row];
    ce.distance = evidence.matched_distances[j];
    ce.margin_d1 = th.tau_d1 - ce.distance;
    ce.margin_d2 = th.tau_d2 - ce.distance;
    prov->monitors.push_back(ce.monitor);
    prov->centroids.push_back(ce);
  }
  std::sort(prov->monitors.begin(), prov->monitors.end());
  prov->monitors.erase(
      std::unique(prov->monitors.begin(), prov->monitors.end()),
      prov->monitors.end());
  prov->feedback = fb;
  prov->variance = alert.variance;
  prov->distributed = alert.distributed;
  prov->verified = verified;
  return prov;
}

}  // namespace jaal::inference
