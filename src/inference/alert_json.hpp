// Deterministic single-line JSON encoding of an Alert — the byte format
// shared by the operator log (core::AlertLogger), the persistence layer
// (store::AlertStore), and replay comparisons: two alerts are "the same"
// exactly when their JSON lines are byte-identical.
#pragma once

#include <string>

#include "inference/engine.hpp"

namespace jaal::inference {

/// Renders one alert as a single-line JSON object (no trailing newline):
/// fixed field order, %.6f epoch time, %.8f floats, RFC 8259 string
/// escaping.
[[nodiscard]] std::string alert_to_json(const Alert& alert,
                                        double epoch_end_time);

}  // namespace jaal::inference
