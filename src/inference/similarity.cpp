#include "inference/similarity.hpp"

namespace jaal::inference {

SimilarityResult estimate_similarity(const rules::Question& question,
                                     const AggregatedSummary& aggregate,
                                     double tau_d,
                                     std::uint64_t tau_c_override) {
  SimilarityResult res;
  const std::uint64_t tau_c =
      tau_c_override > 0 ? tau_c_override : question.tau_c;
  for (std::size_t i = 0; i < aggregate.rows(); ++i) {
    const double d = question.distance(aggregate.centroids.row(i));
    if (d <= tau_d) {
      res.matched_count += aggregate.counts[i];
      res.matched_rows.push_back(i);
      res.matched_distances.push_back(d);
    }
  }
  res.alert = res.matched_count >= tau_c;
  return res;
}

}  // namespace jaal::inference
