// Central inference engine (§5) with the two-threshold feedback loop (§5.3).
//
// For every translated rule the engine runs Algorithm 1 twice, with a strict
// threshold tau_d1 (low FPR) and a loose one tau_d2 > tau_d1 (high TPR):
//   t1+, t2+  -> alert (case 1, high confidence);
//   t1-, t2-  -> no alert (case 2);
//   t1-, t2+  -> case 3: fetch the raw packets behind the uncertain
//                centroids and decide with traditional Snort matching;
//   t1+, t2-  -> cannot happen with tau_d2 > tau_d1 (case 4; matched sets
//                are nested), asserted in code.
// Variance-based rules additionally run Algorithm 2 over the matched set;
// plain signature rules run it opportunistically to tag alerts as
// "distributed".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "inference/aggregate.hpp"
#include "inference/postprocessor.hpp"
#include "inference/similarity.hpp"
#include "observe/provenance.hpp"
#include "rules/raw_matcher.hpp"
#include "runtime/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::inference {

/// Per-rule threshold pair; tau_d2 >= tau_d1.
struct ThresholdPair {
  double tau_d1 = 0.02;
  double tau_d2 = 0.05;
};

/// Case-3 raw verification applies rule counts scaled by this factor:
/// exact signature matches over retrieved packets are far more precise
/// evidence than summary-domain centroid matches (whose counts absorb
/// near-miss benign centroids under normalized-field distances).  About a
/// third of the summary threshold in exact matches confirms an attack,
/// while benign retrievals (whose exact matches are a small fraction of
/// their centroid-level matches) fall short.
inline constexpr double kRawEvidenceFactor = 0.35;

struct EngineConfig {
  ThresholdPair default_thresholds;
  /// Per-sid overrides ("attack specific thresholds", §8.1).
  std::unordered_map<std::uint32_t, ThresholdPair> per_rule;
  bool feedback_enabled = true;
  /// Multiplied into every question's tau_c.  Rule counts are calibrated
  /// for a nominal epoch packet volume; windows carrying more or fewer
  /// packets scale proportionally (e.g. window_packets / 2000 for the
  /// built-in ruleset).
  double tau_c_scale = 1.0;
  /// The paper's §10 future-work extension: verify *every* alert (not just
  /// case-3 uncertain ones) against the raw packets behind its matched
  /// centroids before raising it.  Costs extra retrieval bandwidth but
  /// suppresses false positives from near-miss centroid matches (e.g. a
  /// port-80 flood tripping the port-22 rule after normalization collapses
  /// the port distance).  Requires a fetcher.
  bool verify_all_alerts = false;
  /// Attach an AlertProvenance (full causal chain) to every alert.  Off
  /// costs one branch per raised alert; the margins it records come from
  /// distances Algorithm 1 computes anyway.
  bool record_provenance = true;
};

struct Alert {
  std::uint32_t sid = 0;
  std::string msg;
  std::uint64_t matched_packets = 0;
  bool distributed = false;      ///< Postprocessor classification.
  bool via_feedback = false;     ///< Decided by case-3 raw analysis.
  double variance = 0.0;         ///< Measured field variance (if checked).
  /// Fraction of expected monitors whose summaries backed this epoch's
  /// aggregate (1.0 on a full epoch).  Partial epochs — summaries dropped,
  /// late, or monitors crashed — scale it down so consumers can weigh
  /// degraded-mode alerts.
  double confidence = 1.0;
  /// Summary-fidelity caution signal in effect at decision time: the
  /// fraction of monitors whose summaries are currently drifting from
  /// their baseline (0 = all healthy).  Surfaced for consumers; the engine
  /// never auto-acts on it.
  double caution = 0.0;
  /// Full causal chain behind this alert; null when
  /// EngineConfig::record_provenance is off.  Shared (immutable) so alerts
  /// stay cheap to copy.
  std::shared_ptr<const observe::AlertProvenance> provenance;
};

/// Result of one raw-packet retrieval plus what the transport spent on it.
/// `packets` is nullopt when retrieval *failed* (transport fault, retries
/// exhausted) — distinct from an empty vector (retrieval worked, nothing
/// behind the centroid).  Implicitly constructible from the bare payload
/// shapes fetchers historically returned (vector / optional / nullopt), so
/// simple fetchers stay one-liners; transport-backed fetchers also fill
/// attempts/backoff_s and alert provenance surfaces them.
struct RawFetch {
  std::optional<std::vector<packet::PacketRecord>> packets;
  std::size_t attempts = 0;  ///< Transport attempts made (0 = untracked).
  double backoff_s = 0.0;    ///< Simulated retry backoff spent.

  RawFetch() = default;
  RawFetch(std::vector<packet::PacketRecord> p)  // NOLINT(google-explicit-*)
      : packets(std::move(p)) {}
  RawFetch(  // NOLINT(google-explicit-*)
      std::optional<std::vector<packet::PacketRecord>> p)
      : packets(std::move(p)) {}
  RawFetch(std::nullopt_t) {}  // NOLINT(google-explicit-*)
  RawFetch(std::optional<std::vector<packet::PacketRecord>> p,
           std::size_t attempts_, double backoff_s_)
      : packets(std::move(p)), attempts(attempts_), backoff_s(backoff_s_) {}
};

/// Callback the controller wires to monitors: fetch raw packets behind the
/// given centroid indices at one monitor (§7's per-epoch hash table).  On a
/// failed retrieval (RawFetch::packets == nullopt) the engine falls back to
/// summary-only inference: the loose-threshold decision stands, exactly as
/// if no fetcher were wired.
using RawPacketFetcher = std::function<RawFetch(
    summarize::MonitorId, const std::vector<std::size_t>& centroid_indices)>;

/// One question's Algorithm 1 result at both thresholds — the unit of work
/// the matching phase produces and the decision phase consumes.  Shard
/// engines ship these to the tier's cross-shard merge (matched rows are
/// per-row facts, so per-shard partials merge exactly; see shard/tier.hpp).
struct QuestionMatch {
  SimilarityResult strict;  ///< tau_d1 (low FPR).
  SimilarityResult loose;   ///< tau_d2 (high TPR).
};

struct InferenceStats {
  std::uint64_t feedback_requests = 0;   ///< Case-3 occurrences.
  std::uint64_t feedback_fallbacks = 0;  ///< Retrieval failed; summary-only.
  std::uint64_t raw_packets_fetched = 0;
  std::uint64_t raw_bytes_fetched = 0;   ///< Header bytes pulled by feedback.
  std::uint64_t case4_anomalies = 0;     ///< t1+ t2- (expected 0).
  std::uint64_t alerts_suppressed = 0;   ///< Killed by verify_all_alerts.
};

class InferenceEngine {
 public:
  /// `rules` supplies both the question vectors (translated internally) and
  /// the raw-matching semantics for feedback.  `aggregation` governs the
  /// report-fraction threshold scaling (see AggregationPolicy); the default
  /// is the historical behavior.  Throws on empty rules, threshold pairs
  /// with tau_d2 < tau_d1, or an invalid aggregation policy.
  InferenceEngine(std::vector<rules::Rule> rules, EngineConfig config,
                  AggregationPolicy aggregation = {});

  /// Runs the full inference pass over one aggregated summary.  `fetch` may
  /// be null when feedback is disabled; case-3 outcomes then fall back to
  /// the loose-threshold decision (alert, trading FPR for TPR).  `parent`
  /// is the enclosing trace span (the controller's per-epoch infer span);
  /// feedback retrievals become child spans keyed by rule sid.
  /// Equivalent to decide(aggregate, match(aggregate), fetch, parent).
  [[nodiscard]] std::vector<Alert> infer(
      const AggregatedSummary& aggregate, const RawPacketFetcher& fetch,
      const telemetry::SpanContext& parent = {});

  /// Matching phase alone: Algorithm 1 per question (strict + loose), one
  /// QuestionMatch per question in question order.  Read-only on engine
  /// state; fans out over the attached pool.  The sharded tier runs this
  /// per shard and merges the partials before a single decide() at the
  /// root.
  [[nodiscard]] std::vector<QuestionMatch> match(
      const AggregatedSummary& aggregate) const;

  /// Decision phase alone: the serial case-1/2/3 loop, feedback retrievals,
  /// variance postprocessing and provenance over precomputed matches
  /// (matches.size() must equal questions().size(); matched_rows index into
  /// `aggregate`).  Mutates stats and telemetry — run it exactly once per
  /// epoch, at the root of the tier.
  [[nodiscard]] std::vector<Alert> decide(
      const AggregatedSummary& aggregate, const std::vector<QuestionMatch>& matches,
      const RawPacketFetcher& fetch,
      const telemetry::SpanContext& parent = {});

  [[nodiscard]] const InferenceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] const std::vector<rules::Question>& questions() const noexcept {
    return questions_;
  }
  [[nodiscard]] const std::vector<rules::Rule>& rules() const noexcept {
    return matcher_.rules();
  }

  /// Thresholds in effect for a rule.
  [[nodiscard]] ThresholdPair thresholds_for(std::uint32_t sid) const;

  /// Adjusts the tau_c scale at runtime (e.g. per-epoch, when epochs carry
  /// varying packet volumes).
  void set_tau_c_scale(double scale) noexcept { config_.tau_c_scale = scale; }
  [[nodiscard]] double tau_c_scale() const noexcept {
    return config_.tau_c_scale;
  }

  /// Degraded-mode hook: the fraction of expected monitor summaries that
  /// actually backed the aggregate (1.0 = full epoch, the default).  Count
  /// thresholds (tau_c) scale by the fraction — a partial aggregate carries
  /// proportionally less of an attack's mass, so an unscaled threshold
  /// would silently miss — and every alert raised carries it as
  /// Alert::confidence so downstream consumers can re-raise their own bar.
  /// Values are clamped to (0, 1]; 1.0 restores the exact full-epoch
  /// behavior.  Never throws (per-epoch hot path).
  void set_report_fraction(double fraction) noexcept;
  [[nodiscard]] double report_fraction() const noexcept {
    return report_fraction_;
  }

  /// Observability hook: the current drift caution signal (fraction of
  /// monitors whose summary fidelity is drifting, clamped to [0, 1]).  The
  /// engine stamps it on alerts and provenance but never changes a decision
  /// because of it — operators decide what a cautious epoch means.  Never
  /// throws (per-epoch hot path).
  void set_caution(double caution) noexcept;
  [[nodiscard]] double caution() const noexcept { return caution_; }

  /// Attaches the shared execution runtime: question-vector matching
  /// (Algorithm 1 per rule, strict + loose) fans out over the pool; the
  /// decision/feedback pass stays serial in rule order, so alerts are
  /// bit-identical with or without a pool.  Null detaches.
  void set_pool(std::shared_ptr<runtime::ThreadPool> pool) noexcept {
    pool_ = std::move(pool);
  }

  /// Attaches telemetry: question/alert/feedback counters and per-sid
  /// feedback retrieval spans.  Null detaches (the default).
  void set_telemetry(telemetry::Telemetry* tel);

  /// The count threshold in effect for a question right now (tau_c scaled
  /// by tau_c_scale and — policy permitting — the report fraction).  Public
  /// so the cross-shard merge can re-derive the alert flag over merged
  /// counts with the exact root-engine threshold.
  [[nodiscard]] std::uint64_t scaled_tau_c(const rules::Question& q) const;

 private:
  /// Assembles the causal chain for one raised alert from plain data the
  /// decision loop already computed (no re-matching, no clocks).
  [[nodiscard]] std::shared_ptr<const observe::AlertProvenance>
  build_provenance(const AggregatedSummary& aggregate,
                   const rules::Question& q, const ThresholdPair& th,
                   observe::ThresholdCase threshold_case,
                   const SimilarityResult& strict,
                   const SimilarityResult& loose,
                   const SimilarityResult& evidence,
                   const observe::FeedbackProvenance& fb, const Alert& alert,
                   bool verified) const;

  rules::RawMatcher matcher_;
  std::vector<rules::Question> questions_;
  EngineConfig config_;
  AggregationPolicy aggregation_;
  double report_fraction_ = 1.0;
  double caution_ = 0.0;
  InferenceStats stats_;
  std::shared_ptr<runtime::ThreadPool> pool_;
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Counter* tel_questions_ = nullptr;
  telemetry::Counter* tel_questions_matched_ = nullptr;
  /// Per-sid alert counters, registered once at set_telemetry time as
  /// 'jaal_inference_alerts_total{sid="..."}' so the hot path never touches
  /// the registry.
  std::unordered_map<std::uint32_t, telemetry::Counter*> tel_alerts_by_sid_;
  telemetry::Counter* tel_alerts_feedback_ = nullptr;
  telemetry::Counter* tel_provenance_records_ = nullptr;
  telemetry::Counter* tel_alerts_suppressed_ = nullptr;
  telemetry::Counter* tel_feedback_requests_ = nullptr;
  telemetry::Counter* tel_feedback_fallbacks_ = nullptr;
  telemetry::Counter* tel_raw_packets_fetched_ = nullptr;
  telemetry::Counter* tel_raw_bytes_fetched_ = nullptr;
};

}  // namespace jaal::inference
