#include "inference/postprocessor.hpp"

#include "linalg/stats.hpp"

namespace jaal::inference {

double matched_variance(const AggregatedSummary& aggregate,
                        std::span<const std::size_t> matched_rows,
                        packet::FieldIndex field) {
  linalg::RunningStats stats;
  const std::size_t col = packet::index(field);
  for (std::size_t row : matched_rows) {
    stats.add(aggregate.centroids(row, col), aggregate.counts[row]);
  }
  return stats.variance();
}

bool postprocess(const AggregatedSummary& aggregate,
                 std::span<const std::size_t> matched_rows,
                 packet::FieldIndex field, double tau_v) {
  return matched_variance(aggregate, matched_rows, field) >= tau_v;
}

}  // namespace jaal::inference
