// Multi-window alert correlation (§10, "False Positives").
//
// The paper proposes reducing the FPR by "using multiple windows of packet
// summaries and correlating the inferences from those windows".  This
// correlator holds a sliding window of per-epoch alert sets and only
// surfaces an alert once its rule has fired in at least `required` of the
// last `window` epochs.  Sporadic benign threshold crossings (composition
// drift) rarely repeat; sustained attacks do.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "inference/engine.hpp"

namespace jaal::inference {

struct CorrelatorConfig {
  std::size_t window = 4;    ///< Epochs of history considered.
  std::size_t required = 2;  ///< Firings needed within the window.
};

class AlertCorrelator {
 public:
  /// Throws std::invalid_argument unless 1 <= required <= window.
  explicit AlertCorrelator(const CorrelatorConfig& cfg);

  /// Feeds one epoch's raw alerts; returns the alerts that satisfy the
  /// correlation requirement as of this epoch (latest instance of each).
  [[nodiscard]] std::vector<Alert> observe(const std::vector<Alert>& alerts);

  /// Epochs seen so far.
  [[nodiscard]] std::size_t epochs() const noexcept { return epochs_; }

  /// Clears all history.
  void reset();

 private:
  CorrelatorConfig cfg_;
  std::deque<std::set<std::uint32_t>> history_;  ///< Sids fired per epoch.
  std::size_t epochs_ = 0;
};

}  // namespace jaal::inference
