// Mirai case study (§2 synopsis, §8 case study).
//
// Two pieces:
//  * MiraiScan — a PacketSource emitting the botnet's TCP SYN scan aimed at
//    destination ports 23 and 2323 across wide random address ranges, the
//    behaviour the paper extracted from the published Mirai source
//    (mirai/bot/scanner.c).  Feeds the detection pipeline.
//  * MiraiOutbreak — an epidemic simulation of scan-driven infection spread
//    with and without Jaal's detect-and-shut-off response, regenerating
//    Fig. 8 (unchecked infections vs infections with Jaal).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "attack/generators.hpp"

namespace jaal::attack {

/// Scan traffic from a set of infected bots.  Destination IPs are uniform
/// over the IPv4 unicast space; destination port is 23 (90%) or 2323 (10%),
/// matching the ratios hard-coded in the Mirai scanner.
class MiraiScan final : public AttackSource {
 public:
  /// `bot_ips`: currently infected devices doing the scanning; if empty, a
  /// pool of cfg.source_count synthetic bot addresses is used.
  MiraiScan(const AttackConfig& cfg, std::vector<std::uint32_t> bot_ips = {});

 private:
  void fill(packet::PacketRecord& pkt) override;
  std::vector<std::uint32_t> bots_;
};

/// Epidemic model parameters.
struct MiraiConfig {
  std::size_t device_count = 2000;      ///< Addressable devices in the region.
  std::size_t vulnerable_count = 150;   ///< Paper: 150 vulnerable nodes.
  std::size_t initially_infected = 1;
  double scan_rate_per_bot = 100.0;     ///< Scan probes per second per bot.
  double hit_probability = 0.05;        ///< P(scan probe lands on a device).
  double duration = 120.0;              ///< Simulated seconds.
  double tick = 0.25;                   ///< Simulation step.
  std::uint64_t seed = 7;
};

/// Jaal's response loop for the case study: the scan is detected with
/// `detection_probability` within `detection_latency` seconds of a bot
/// becoming active; detection re-tries every latency interval (the paper:
/// "infected devices are detected within 3s regardless"), after which the
/// administrator shuts the device off.
struct ResponsePolicy {
  bool enabled = false;
  double detection_latency = 3.0;
  double detection_probability = 0.95;
};

/// One sample of the outbreak trajectory.
struct OutbreakPoint {
  double time = 0.0;
  std::size_t total_infected = 0;   ///< Cumulative infections.
  std::size_t active_bots = 0;      ///< Infected and not yet shut off.
  std::size_t shut_off = 0;         ///< Disabled by the response.
};

/// Runs the epidemic and returns the trajectory sampled every tick.
[[nodiscard]] std::vector<OutbreakPoint> simulate_outbreak(
    const MiraiConfig& cfg, const ResponsePolicy& response);

}  // namespace jaal::attack
