#include "attack/generators.hpp"

#include <stdexcept>

namespace jaal::attack {

using packet::AttackType;
using packet::PacketRecord;
using packet::TcpFlag;

AttackSource::AttackSource(const AttackConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      interarrival_(cfg.packets_per_second),
      next_time_(cfg.start_time) {
  if (cfg.packets_per_second <= 0.0) {
    throw std::invalid_argument("AttackSource: non-positive rate");
  }
  if (cfg.source_count == 0) {
    throw std::invalid_argument("AttackSource: need at least one source");
  }
  sources_.reserve(cfg.source_count);
  for (std::size_t i = 0; i < cfg.source_count; ++i) {
    // One host per distinct /16 so attack flows enter via different edges.
    const auto subnet = static_cast<std::uint16_t>(rng_() % 60000 + 1024);
    const auto host = static_cast<std::uint16_t>(rng_() % 65000 + 2);
    sources_.push_back((std::uint32_t{subnet} << 16) | host);
  }
  next_time_ += interarrival_(rng_);
}

PacketRecord AttackSource::next() {
  PacketRecord pkt;
  pkt.timestamp = next_time_;
  next_time_ += interarrival_(rng_);
  pkt.ip.flags = 2;  // DF
  pkt.ip.ttl = static_cast<std::uint8_t>(48 + rng_() % 16);
  pkt.ip.identification = static_cast<std::uint16_t>(rng_());
  fill(pkt);
  return pkt;
}

// --- SynFlood -------------------------------------------------------------

SynFlood::SynFlood(const AttackConfig& cfg, std::uint16_t victim_port)
    : AttackSource(cfg), victim_port_(victim_port) {
  attacker_ip_ = random_source();
}

void SynFlood::fill(PacketRecord& pkt) {
  pkt.label = AttackType::kSynFlood;
  pkt.ip.src_ip = attacker_ip_;
  pkt.ip.dst_ip = cfg_.victim_ip;
  pkt.ip.total_length = 40;
  pkt.tcp.src_port = static_cast<std::uint16_t>(1024 + rng_() % 64000);
  pkt.tcp.dst_port = victim_port_;
  pkt.tcp.seq = static_cast<std::uint32_t>(rng_());
  pkt.tcp.ack = 0;
  pkt.tcp.set(TcpFlag::kSyn);
  pkt.tcp.window = 512;  // hping3-style fixed small window
}

// --- DistributedSynFlood ---------------------------------------------------

DistributedSynFlood::DistributedSynFlood(const AttackConfig& cfg,
                                         std::uint16_t victim_port)
    : AttackSource(cfg), victim_port_(victim_port) {}

void DistributedSynFlood::fill(PacketRecord& pkt) {
  pkt.label = AttackType::kDistributedSynFlood;
  pkt.ip.src_ip = random_source();
  pkt.ip.dst_ip = cfg_.victim_ip;
  pkt.ip.total_length = 40;
  pkt.tcp.src_port = static_cast<std::uint16_t>(1024 + rng_() % 64000);
  pkt.tcp.dst_port = victim_port_;
  pkt.tcp.seq = static_cast<std::uint32_t>(rng_());
  pkt.tcp.ack = 0;
  pkt.tcp.set(TcpFlag::kSyn);
  pkt.tcp.window = 512;
}

// --- MimicrySynFlood ---------------------------------------------------------

MimicrySynFlood::MimicrySynFlood(const AttackConfig& cfg,
                                 std::uint16_t victim_port)
    : AttackSource(cfg), victim_port_(victim_port) {}

void MimicrySynFlood::fill(PacketRecord& pkt) {
  pkt.label = AttackType::kDistributedSynFlood;
  pkt.ip.src_ip = random_source();
  pkt.ip.dst_ip = cfg_.victim_ip;
  pkt.tcp.src_port = static_cast<std::uint16_t>(32768 + rng_() % 28232);
  pkt.tcp.dst_port = victim_port_;
  pkt.tcp.seq = static_cast<std::uint32_t>(rng_());
  pkt.tcp.ack = 0;
  pkt.tcp.set(TcpFlag::kSyn);
  // Mimicry: everything a real client SYN would carry.
  pkt.ip.total_length = 60;          // SYN with options
  pkt.tcp.data_offset = 10;
  pkt.ip.ttl = static_cast<std::uint8_t>(64 - 4 - rng_() % 18);
  constexpr std::uint16_t kBenignSynWindows[] = {29200, 64240, 8192, 4128};
  pkt.tcp.window = kBenignSynWindows[rng_() % std::size(kBenignSynWindows)];
}

// --- PortScan ---------------------------------------------------------------

PortScan::PortScan(const AttackConfig& cfg) : AttackSource(cfg) {}

const std::vector<std::uint16_t>& PortScan::nmap_default_ports() {
  // The most common service ports Nmap probes by default (subset of its
  // top-1000 frequency list, nmap-services).
  static const std::vector<std::uint16_t> kPorts = {
      1,     3,     7,     9,     13,    17,    19,    21,    22,    23,
      25,    26,    37,    53,    79,    80,    81,    88,    106,   110,
      111,   113,   119,   135,   139,   143,   144,   179,   199,   389,
      427,   443,   444,   445,   465,   513,   514,   515,   543,   544,
      548,   554,   587,   631,   646,   873,   990,   993,   995,   1025,
      1026,  1027,  1028,  1029,  1110,  1433,  1720,  1723,  1755,  1900,
      2000,  2001,  2049,  2121,  2717,  3000,  3128,  3306,  3389,  3986,
      4899,  5000,  5009,  5051,  5060,  5101,  5190,  5357,  5432,  5631,
      5666,  5800,  5900,  6000,  6001,  6646,  7070,  8000,  8008,  8009,
      8080,  8081,  8443,  8888,  9100,  9999,  10000, 32768, 49152, 49153,
      49154, 49155, 49156, 49157,
  };
  return kPorts;
}

void PortScan::fill(PacketRecord& pkt) {
  const auto& ports = nmap_default_ports();
  pkt.label = AttackType::kPortScan;
  pkt.ip.src_ip = random_source();
  pkt.ip.dst_ip = cfg_.victim_ip;
  pkt.ip.total_length = 44;  // Nmap SYN probe carries 4 bytes of options
  pkt.tcp.src_port = static_cast<std::uint16_t>(32768 + rng_() % 28000);
  pkt.tcp.dst_port = ports[cursor_++ % ports.size()];
  pkt.tcp.seq = static_cast<std::uint32_t>(rng_());
  pkt.tcp.ack = 0;
  pkt.tcp.set(TcpFlag::kSyn);
  pkt.tcp.window = 1024;  // Nmap default SYN-scan window
}

// --- SshBruteForce ----------------------------------------------------------

SshBruteForce::SshBruteForce(const AttackConfig& cfg)
    : AttackSource(cfg), state_(cfg.source_count) {}

void SshBruteForce::fill(PacketRecord& pkt) {
  const std::size_t idx = rng_() % sources().size();
  SourceState& st = state_[idx];
  pkt.label = AttackType::kSshBruteForce;
  pkt.ip.src_ip = sources()[idx];
  pkt.ip.dst_ip = cfg_.victim_ip;
  pkt.tcp.src_port = static_cast<std::uint16_t>(32768 + (idx * 7) % 28000);
  pkt.tcp.dst_port = 22;
  pkt.tcp.window = 29200;
  switch (st.stage) {
    case 0:  // new connection attempt
      pkt.tcp.set(TcpFlag::kSyn);
      pkt.ip.total_length = 60;
      st.seq = static_cast<std::uint32_t>(rng_());
      pkt.tcp.seq = st.seq;
      pkt.tcp.ack = 0;
      st.stage = 1;
      break;
    case 1:  // handshake-completing ACK
      pkt.tcp.set(TcpFlag::kAck);
      pkt.ip.total_length = 40;
      st.seq += 1;
      pkt.tcp.seq = st.seq;
      pkt.tcp.ack = static_cast<std::uint32_t>(rng_());
      st.stage = 2;
      break;
    default: {  // banner/auth data: "SSH-..." then password guess
      pkt.tcp.set(TcpFlag::kPsh);
      pkt.tcp.set(TcpFlag::kAck);
      const std::uint16_t payload = static_cast<std::uint16_t>(48 + rng_() % 48);
      pkt.ip.total_length = static_cast<std::uint16_t>(40 + payload);
      pkt.tcp.seq = st.seq;
      pkt.tcp.ack = static_cast<std::uint32_t>(rng_());
      st.seq += payload;
      // After a failed guess the server drops us; retry with a new SYN.
      st.stage = (st.stage >= 3) ? 0 : st.stage + 1;
      break;
    }
  }
}

// --- Sockstress -------------------------------------------------------------

Sockstress::Sockstress(const AttackConfig& cfg, std::uint16_t victim_port)
    : AttackSource(cfg), victim_port_(victim_port), state_(cfg.source_count) {
  // Sockstress holds connections open indefinitely: by the time a monitor
  // looks, nearly every source is past its handshake and trickling
  // zero-window probes.  Start the pool in that steady state.
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i].stage = 1 + static_cast<int>(i % 6);
    state_[i].seq = static_cast<std::uint32_t>(rng_());
  }
}

void Sockstress::fill(PacketRecord& pkt) {
  const std::size_t idx = rng_() % sources().size();
  SourceState& st = state_[idx];
  pkt.label = AttackType::kSockstress;
  pkt.ip.src_ip = sources()[idx];
  pkt.ip.dst_ip = cfg_.victim_ip;
  pkt.tcp.src_port = static_cast<std::uint16_t>(1024 + (idx * 13) % 60000);
  pkt.tcp.dst_port = victim_port_;
  pkt.ip.total_length = 40;
  switch (st.stage) {
    case 0:
      pkt.tcp.set(TcpFlag::kSyn);
      st.seq = static_cast<std::uint32_t>(rng_());
      pkt.tcp.seq = st.seq;
      pkt.tcp.ack = 0;
      pkt.tcp.window = 512;
      st.stage = 1;
      break;
    default:
      // The sockstress signature: established connection advertising a
      // zero receive window, forcing the server to hold state forever.
      pkt.tcp.set(TcpFlag::kAck);
      pkt.tcp.seq = ++st.seq;
      pkt.tcp.ack = static_cast<std::uint32_t>(rng_());
      pkt.tcp.window = 0;
      st.stage = (st.stage >= 6) ? 0 : st.stage + 1;  // occasionally reconnect
      break;
  }
}

}  // namespace jaal::attack
