#include "attack/mirai.hpp"

#include <algorithm>
#include <cmath>

namespace jaal::attack {

using packet::AttackType;
using packet::PacketRecord;
using packet::TcpFlag;

MiraiScan::MiraiScan(const AttackConfig& cfg, std::vector<std::uint32_t> bot_ips)
    : AttackSource(cfg), bots_(std::move(bot_ips)) {
  if (bots_.empty()) bots_ = sources();
}

void MiraiScan::fill(PacketRecord& pkt) {
  pkt.label = AttackType::kMiraiScan;
  pkt.ip.src_ip = bots_[rng_() % bots_.size()];
  // Mirai scans (nearly) the whole IPv4 space; exclude multicast/reserved
  // ranges the real scanner also skips.
  for (;;) {
    const auto ip = static_cast<std::uint32_t>(rng_());
    const std::uint8_t first = static_cast<std::uint8_t>(ip >> 24);
    if (first == 0 || first == 10 || first == 127 || first >= 224) continue;
    pkt.ip.dst_ip = ip;
    break;
  }
  pkt.ip.total_length = 40;
  pkt.tcp.src_port = static_cast<std::uint16_t>(1024 + rng_() % 64000);
  // scanner.c: 10 attempts target 23, one in ~10 targets 2323.
  pkt.tcp.dst_port = (rng_() % 10 == 0) ? 2323 : 23;
  // Mirai's scanner sets seq = dst address (a known fingerprint).
  pkt.tcp.seq = pkt.ip.dst_ip;
  pkt.tcp.ack = 0;
  pkt.tcp.set(TcpFlag::kSyn);
  pkt.tcp.window = static_cast<std::uint16_t>(rng_());
}

std::vector<OutbreakPoint> simulate_outbreak(const MiraiConfig& cfg,
                                             const ResponsePolicy& response) {
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  enum class DeviceState : std::uint8_t { kClean, kInfected, kShutOff };
  struct Device {
    DeviceState state = DeviceState::kClean;
    bool vulnerable = false;
    double infected_at = 0.0;
    double next_detection_attempt = 0.0;
  };

  std::vector<Device> devices(cfg.device_count);
  // Vulnerable devices are a random subset.
  std::vector<std::size_t> order(cfg.device_count);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  const std::size_t vulnerable =
      std::min(cfg.vulnerable_count, cfg.device_count);
  for (std::size_t i = 0; i < vulnerable; ++i) {
    devices[order[i]].vulnerable = true;
  }
  std::size_t infected_total = 0;
  for (std::size_t i = 0;
       i < std::min(cfg.initially_infected, vulnerable); ++i) {
    Device& d = devices[order[i]];
    d.state = DeviceState::kInfected;
    d.infected_at = 0.0;
    d.next_detection_attempt = response.detection_latency;
    ++infected_total;
  }

  std::vector<OutbreakPoint> trajectory;
  for (double t = 0.0; t <= cfg.duration + 1e-9; t += cfg.tick) {
    std::size_t active = 0, off = 0;
    for (const Device& d : devices) {
      if (d.state == DeviceState::kInfected) ++active;
      if (d.state == DeviceState::kShutOff) ++off;
    }
    trajectory.push_back({t, infected_total, active, off});

    // Each active bot emits scan probes this tick; a probe that lands on a
    // clean vulnerable device compromises it (default credentials).
    const double probes_per_bot = cfg.scan_rate_per_bot * cfg.tick;
    std::poisson_distribution<int> probe_count(probes_per_bot *
                                               cfg.hit_probability);
    for (std::size_t bot = 0; bot < devices.size(); ++bot) {
      if (devices[bot].state != DeviceState::kInfected) continue;
      const int hits = probe_count(rng);
      for (int h = 0; h < hits; ++h) {
        Device& target = devices[rng() % devices.size()];
        if (target.vulnerable && target.state == DeviceState::kClean) {
          target.state = DeviceState::kInfected;
          target.infected_at = t;
          target.next_detection_attempt = t + response.detection_latency;
          ++infected_total;
        }
      }
    }

    // Jaal response: per detection window, each active bot's scan is flagged
    // with the configured probability and the device is disconnected.
    if (response.enabled) {
      for (Device& d : devices) {
        if (d.state != DeviceState::kInfected) continue;
        while (d.next_detection_attempt <= t) {
          if (unit(rng) < response.detection_probability) {
            d.state = DeviceState::kShutOff;
            break;
          }
          d.next_detection_attempt += response.detection_latency;
        }
      }
    }
  }
  return trajectory;
}

}  // namespace jaal::attack
