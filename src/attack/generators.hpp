// Packet-level generators for the five attack classes evaluated in §8:
// SYN flood (DoS), distributed SYN flood (DDoS), distributed port scan,
// distributed SSH brute force, and Sockstress.  Each emits the header
// stream the real tools (hping3, Nmap, SSH dictionaries, sockstress) put on
// the wire, labelled with ground truth for TPR/FPR accounting.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "trace/background.hpp"

namespace jaal::attack {

/// Parameters shared by all attack generators.
struct AttackConfig {
  std::uint32_t victim_ip = 0;        ///< Target host.
  double start_time = 0.0;            ///< Seconds; first packet at/after this.
  double packets_per_second = 5000.0; ///< Aggregate attack rate.
  std::size_t source_count = 200;     ///< Distinct attacking IPs (paper: ~200).
  std::uint64_t seed = 1;
};

/// Base with the bookkeeping every generator shares: exponential packet
/// interarrivals from `start_time` and a pool of attacker IPs drawn from
/// distinct /16 subnets (the paper randomizes sources across subnets so
/// packets traverse different monitors).
class AttackSource : public trace::PacketSource {
 public:
  explicit AttackSource(const AttackConfig& cfg);

  [[nodiscard]] double peek_time() const final { return next_time_; }
  [[nodiscard]] packet::PacketRecord next() final;

  [[nodiscard]] const std::vector<std::uint32_t>& sources() const noexcept {
    return sources_;
  }

 protected:
  /// Fills in the attack-specific header fields; base has set timestamp.
  virtual void fill(packet::PacketRecord& pkt) = 0;

  [[nodiscard]] std::uint32_t random_source() {
    return sources_[rng_() % sources_.size()];
  }

  AttackConfig cfg_;
  std::mt19937_64 rng_;

 private:
  std::exponential_distribution<double> interarrival_;
  std::vector<std::uint32_t> sources_;
  double next_time_;
};

/// Classic single-source SYN flood (DoS): one spoof-stable source hammering
/// one victim port with SYNs from random ephemeral ports.
class SynFlood final : public AttackSource {
 public:
  SynFlood(const AttackConfig& cfg, std::uint16_t victim_port = 80);

 private:
  void fill(packet::PacketRecord& pkt) override;
  std::uint16_t victim_port_;
  std::uint32_t attacker_ip_;
};

/// Distributed SYN flood (DDoS): ~200 sources across subnets, same victim.
class DistributedSynFlood final : public AttackSource {
 public:
  DistributedSynFlood(const AttackConfig& cfg, std::uint16_t victim_port = 80);

 private:
  void fill(packet::PacketRecord& pkt) override;
  std::uint16_t victim_port_;
};

/// Adaptive attacker (§10, "Adaptive attackers"): a distributed SYN flood
/// whose free header fields mimic benign handshake traffic — realistic OS
/// windows, option-bearing SYN lengths/offsets, benign-like TTLs — to pull
/// its packets into benign clusters and bias the summarization.  The
/// essential fields (victim address/port, the SYN flag) cannot be disguised
/// without neutering the attack.
class MimicrySynFlood final : public AttackSource {
 public:
  MimicrySynFlood(const AttackConfig& cfg, std::uint16_t victim_port = 80);

 private:
  void fill(packet::PacketRecord& pkt) override;
  std::uint16_t victim_port_;
};

/// Distributed port scan: sources sweep the victim's ports following the
/// Nmap default port list (§8 uses Nmap defaults).
class PortScan final : public AttackSource {
 public:
  explicit PortScan(const AttackConfig& cfg);

  /// The embedded Nmap-style default port list (most common service ports).
  [[nodiscard]] static const std::vector<std::uint16_t>& nmap_default_ports();

 private:
  void fill(packet::PacketRecord& pkt) override;
  std::size_t cursor_ = 0;
};

/// Distributed SSH brute force: repeated short login attempts to victim:22.
/// Each source cycles SYN -> ACK -> PSH|ACK ("SSH-" banner + auth attempt)
/// so the victim sees >=5 attempts per source per minute (Snort sid 19559).
class SshBruteForce final : public AttackSource {
 public:
  explicit SshBruteForce(const AttackConfig& cfg);

 private:
  void fill(packet::PacketRecord& pkt) override;
  struct SourceState {
    std::uint32_t seq = 0;
    int stage = 0;  // 0=SYN, 1=handshake ACK, 2..4=auth attempt packets
  };
  std::vector<SourceState> state_;
};

/// Sockstress: completes the TCP handshake, then advertises a zero receive
/// window and trickles window-probe ACKs, pinning server-side connections.
/// Low-rate by design (the paper exempts it from the 10% cap).
class Sockstress final : public AttackSource {
 public:
  Sockstress(const AttackConfig& cfg, std::uint16_t victim_port = 80);

 private:
  void fill(packet::PacketRecord& pkt) override;
  std::uint16_t victim_port_;
  struct SourceState {
    std::uint32_t seq = 0;
    int stage = 0;  // 0=SYN, 1=final ACK (win 0), >=2 zero-window probes
  };
  std::vector<SourceState> state_;
};

}  // namespace jaal::attack
