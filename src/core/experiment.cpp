#include "core/experiment.hpp"

#include <memory>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "attack/generators.hpp"
#include "attack/mirai.hpp"
#include "trace/mix.hpp"

namespace jaal::core {

using packet::AttackType;

rules::RuleVars evaluation_rule_vars() {
  rules::RuleVars vars;
  vars.home_net =
      rules::AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  return vars;
}

std::uint32_t evaluation_victim_ip() { return packet::make_ip(203, 0, 10, 5); }

const std::vector<std::uint32_t>& sids_for(AttackType type) {
  static const std::unordered_map<AttackType, std::vector<std::uint32_t>> kMap = {
      {AttackType::kSynFlood, {1000001}},
      {AttackType::kDistributedSynFlood, {1000002}},
      {AttackType::kPortScan, {1000003}},
      {AttackType::kSshBruteForce, {19559}},
      {AttackType::kSockstress, {1000005}},
      {AttackType::kMiraiScan, {1000006, 1000007}},
  };
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = kMap.find(type);
  return it == kMap.end() ? kEmpty : it->second;
}

std::span<const AttackType> evaluation_attacks() {
  static const AttackType kAttacks[] = {
      AttackType::kSynFlood,       AttackType::kDistributedSynFlood,
      AttackType::kPortScan,       AttackType::kSshBruteForce,
      AttackType::kSockstress,
  };
  return kAttacks;
}

namespace {

/// Instantiates the attack source for a trial (nullptr for benign trials).
std::unique_ptr<attack::AttackSource> make_attack(AttackType type,
                                                  const TrialConfig& cfg,
                                                  std::uint64_t seed) {
  attack::AttackConfig acfg;
  acfg.victim_ip = evaluation_victim_ip();
  acfg.packets_per_second = cfg.attack_rate_pps;
  acfg.seed = seed;
  switch (type) {
    case AttackType::kNone:
      return nullptr;
    case AttackType::kSynFlood:
      acfg.source_count = 1;
      return std::make_unique<attack::SynFlood>(acfg);
    case AttackType::kDistributedSynFlood:
      return std::make_unique<attack::DistributedSynFlood>(acfg);
    case AttackType::kPortScan:
      return std::make_unique<attack::PortScan>(acfg);
    case AttackType::kSshBruteForce:
      return std::make_unique<attack::SshBruteForce>(acfg);
    case AttackType::kSockstress:
      // Stealthy and low-rate by design (§8: the 10% cap is not needed).
      acfg.packets_per_second = cfg.attack_rate_pps / 8.0;
      return std::make_unique<attack::Sockstress>(acfg);
    case AttackType::kMiraiScan:
      return std::make_unique<attack::MiraiScan>(acfg);
  }
  return nullptr;
}

}  // namespace

inference::RawPacketFetcher Trial::fetcher() const {
  return [this](summarize::MonitorId monitor,
                const std::vector<std::size_t>& centroids) {
    std::vector<packet::PacketRecord> out;
    if (monitor >= monitor_packets.size()) return out;
    const auto& packets = monitor_packets[monitor];
    const auto& assignment = monitor_assignment[monitor];
    for (std::size_t i = 0; i < packets.size(); ++i) {
      for (std::size_t c : centroids) {
        if (assignment[i] == c) {
          out.push_back(packets[i]);
          break;
        }
      }
    }
    return out;
  };
}

Trial make_trial(AttackType attack, const TrialConfig& cfg,
                 std::uint64_t seed) {
  trace::BackgroundTraffic background(cfg.profile, seed);
  // Attack intensity for this trial (the 10% quota is a cap, not a floor).
  std::mt19937_64 intensity_rng(seed ^ 0x17EA51ULL);
  TrialConfig trial_cfg = cfg;
  trial_cfg.attack_rate_pps *= std::uniform_real_distribution<double>(
      cfg.attack_intensity_min, cfg.attack_intensity_max)(intensity_rng);
  auto attacker = make_attack(attack, trial_cfg, seed ^ 0xA77AC4ULL);
  std::vector<trace::PacketSource*> attack_list;
  if (attacker) attack_list.push_back(attacker.get());
  trace::TrafficMix mix(background, attack_list, cfg.attack_fraction);

  // One inference window's worth of traffic: enough for every monitor to
  // accumulate a nominal batch.
  const std::size_t total_packets =
      cfg.monitor_count * cfg.summarizer.batch_size;

  Trial trial;
  trial.injected = attack;
  trial.monitor_packets.resize(cfg.monitor_count);
  trial.monitor_assignment.resize(cfg.monitor_count);
  for (std::size_t i = 0; i < total_packets; ++i) {
    const packet::PacketRecord pkt = mix.next();
    const std::size_t m =
        packet::FlowKeyHash{}(pkt.flow()) % cfg.monitor_count;
    trial.monitor_packets[m].push_back(pkt);
  }

  inference::Aggregator aggregator;
  for (std::size_t m = 0; m < cfg.monitor_count; ++m) {
    auto& batch = trial.monitor_packets[m];
    trial.raw_header_bytes += batch.size() * packet::kHeadersBytes;
    if (batch.size() < cfg.summarizer.min_batch) {
      trial.monitor_assignment[m].assign(batch.size(), 0);
      continue;  // silent monitor (§5.1)
    }
    summarize::SummarizerConfig scfg = cfg.summarizer;
    scfg.seed = seed * 1315423911ULL + m;
    summarize::Summarizer summarizer(scfg,
                                     static_cast<summarize::MonitorId>(m));
    summarize::SummarizeOutput out = summarizer.summarize(batch);
    trial.summary_bytes += summarize::wire_bytes(out.summary);
    trial.monitor_assignment[m] = std::move(out.assignment);
    aggregator.add(out.summary);
  }
  trial.aggregate = aggregator.take();
  return trial;
}

std::vector<Trial> make_trial_set(std::span<const AttackType> attacks,
                                  std::size_t positives, std::size_t negatives,
                                  const TrialConfig& cfg) {
  std::vector<Trial> trials;
  trials.reserve(attacks.size() * positives + negatives);
  std::uint64_t salt = cfg.seed;
  for (AttackType a : attacks) {
    for (std::size_t i = 0; i < positives; ++i) {
      trials.push_back(make_trial(a, cfg, ++salt * 2654435761ULL));
    }
  }
  for (std::size_t i = 0; i < negatives; ++i) {
    trials.push_back(make_trial(AttackType::kNone, cfg,
                                ++salt * 2654435761ULL));
  }
  return trials;
}

double tau_c_scale_for(const TrialConfig& cfg) {
  const double window_packets = static_cast<double>(
      cfg.monitor_count * cfg.summarizer.batch_size);
  return window_packets / 2000.0;
}

bool detect(const Trial& trial, AttackType target,
            const std::vector<rules::Rule>& ruleset,
            const inference::EngineConfig& engine_cfg) {
  inference::InferenceEngine engine(ruleset, engine_cfg);
  const auto alerts =
      engine.infer(trial.aggregate,
                   engine_cfg.feedback_enabled ? trial.fetcher() : nullptr);
  const auto& sids = sids_for(target);
  for (const auto& alert : alerts) {
    for (std::uint32_t sid : sids) {
      if (alert.sid == sid) return true;
    }
  }
  return false;
}

std::span<const double> default_tau_c_scales() {
  static const double kScales[] = {0.35, 0.5, 0.7, 1.0, 1.4, 2.0, 3.0};
  return kScales;
}

RocCurve roc_sweep(std::span<const Trial> trials, AttackType target,
                   const std::vector<rules::Rule>& ruleset,
                   std::span<const double> tau_ds,
                   std::span<const double> tau_c_scales,
                   double volume_scale) {
  RocCurve curve;
  curve.label = packet::attack_name(target);
  for (double tau : tau_ds) {
    for (double cscale : tau_c_scales) {
      inference::EngineConfig cfg;
      cfg.default_thresholds = {tau, tau};
      cfg.feedback_enabled = false;
      cfg.tau_c_scale = cscale * volume_scale;
      const ConfusionCounts counts = evaluate(trials, target, ruleset, cfg);
      curve.points.push_back({tau, cscale, counts.fpr(), counts.tpr()});
    }
  }
  return curve;
}

ConfusionCounts evaluate(std::span<const Trial> trials, AttackType target,
                         const std::vector<rules::Rule>& ruleset,
                         const inference::EngineConfig& engine_cfg) {
  ConfusionCounts counts;
  for (const Trial& trial : trials) {
    // Per-attack TPR/FPR: positives are trials with this attack injected,
    // negatives are benign trials; trials carrying other attacks are not
    // counted against this target.
    if (trial.injected != target && trial.injected != AttackType::kNone) {
      continue;
    }
    const bool actual = trial.injected == target;
    const bool predicted = detect(trial, target, ruleset, engine_cfg);
    counts.add(predicted, actual);
  }
  return counts;
}

FeedbackOutcome evaluate_with_feedback(
    std::span<const Trial> trials, std::span<const AttackType> targets,
    const std::vector<rules::Rule>& ruleset,
    const inference::EngineConfig& engine_cfg) {
  FeedbackOutcome outcome;
  std::uint64_t raw_bytes = 0, jaal_bytes = 0;
  for (const Trial& trial : trials) {
    inference::InferenceEngine engine(ruleset, engine_cfg);
    const auto alerts = engine.infer(
        trial.aggregate,
        engine_cfg.feedback_enabled ? trial.fetcher() : nullptr);
    raw_bytes += trial.raw_header_bytes;
    jaal_bytes += trial.summary_bytes + engine.stats().raw_bytes_fetched;

    for (AttackType target : targets) {
      if (trial.injected != target && trial.injected != AttackType::kNone) {
        continue;
      }
      const auto& sids = sids_for(target);
      bool predicted = false;
      for (const auto& alert : alerts) {
        for (std::uint32_t sid : sids) predicted |= alert.sid == sid;
      }
      outcome.confusion.add(predicted, trial.injected == target);
    }
  }
  outcome.comm_overhead_ratio =
      raw_bytes == 0 ? 0.0
                     : static_cast<double>(jaal_bytes) /
                           static_cast<double>(raw_bytes);
  return outcome;
}

}  // namespace jaal::core
