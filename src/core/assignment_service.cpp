#include "core/assignment_service.hpp"

#include <stdexcept>

namespace jaal::core {

AssignmentService::AssignmentService(std::vector<assign::MonitorGroup> groups,
                                     std::size_t monitor_count)
    : groups_(std::move(groups)),
      reported_(monitor_count, 0.0),
      optimistic_(monitor_count, 0.0) {
  if (monitor_count == 0) {
    throw std::invalid_argument("AssignmentService: zero monitors");
  }
  if (groups_.empty()) {
    throw std::invalid_argument("AssignmentService: no monitor groups");
  }
  for (const auto& g : groups_) {
    if (g.monitors.empty()) {
      throw std::invalid_argument("AssignmentService: empty group");
    }
    for (assign::MonitorIndex m : g.monitors) {
      if (m >= monitor_count) {
        throw std::invalid_argument(
            "AssignmentService: group references unknown monitor");
      }
    }
  }
}

void AssignmentService::on_load_update(const proto::LoadUpdate& update) {
  if (update.monitor >= reported_.size()) {
    throw std::out_of_range("AssignmentService: unknown monitor in update");
  }
  reported_[update.monitor] = update.load_pps;
  optimistic_[update.monitor] = 0.0;  // the report supersedes local guesses
}

assign::MonitorIndex AssignmentService::assign(std::size_t group,
                                               double weight_estimate) {
  if (group >= groups_.size()) {
    throw std::out_of_range("AssignmentService: bad group index");
  }
  const auto& monitors = groups_[group].monitors;
  assign::MonitorIndex best = monitors.front();
  for (assign::MonitorIndex m : monitors) {
    if (visible_load(m) < visible_load(best)) best = m;
  }
  optimistic_[best] += weight_estimate;
  ++assignments_;
  return best;
}

double AssignmentService::visible_load(assign::MonitorIndex m) const {
  if (m >= reported_.size()) {
    throw std::out_of_range("AssignmentService: bad monitor index");
  }
  return reported_[m] + optimistic_[m];
}

}  // namespace jaal::core
