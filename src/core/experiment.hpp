// Evaluation harness (§8): trial generation and threshold sweeps.
//
// A *trial* is one inference window: background traffic (optionally with one
// injected attack) split across monitors by flow hash, each monitor batch
// summarized, and the summaries aggregated.  Building trials is the
// expensive part (SVD + k-means); sweeping detection thresholds over
// already-built trials is cheap, which is how the ROC figures are produced.
#pragma once

#include <span>
#include <vector>

#include "core/controller.hpp"
#include "core/metrics.hpp"

namespace jaal::core {

/// The home network every evaluation rule protects: the synthetic traces
/// place all servers (and thus attack victims) in 203.0.0.0/16.
[[nodiscard]] rules::RuleVars evaluation_rule_vars();

/// The victim host attacks are aimed at (inside the home network).
[[nodiscard]] std::uint32_t evaluation_victim_ip();

/// Snort sids that indicate each attack type, per the built-in ruleset.
[[nodiscard]] const std::vector<std::uint32_t>& sids_for(
    packet::AttackType type);

/// Trial-building knobs.  The deployment-shape knobs (summarizer,
/// monitor_count, epoch_seconds) live in the shared DeploymentConfig base —
/// the same struct JaalConfig extends — so the harness and the live
/// controller can no longer drift apart on them.
struct TrialConfig : DeploymentConfig {
  TrialConfig() { monitor_count = 3; }  ///< §8 evaluates 3-monitor trials.

  trace::TraceProfile profile;          ///< Background traffic preset.
  double attack_fraction = 0.10;        ///< The paper's 10% injection cap.
  double attack_rate_pps = 5000.0;
  /// Per-trial attack intensity multiplier range: injected attacks are
  /// throttled to *at most* attack_fraction (§8); actual intensity varies
  /// from trial to trial within [min, max] x attack_rate_pps.
  double attack_intensity_min = 0.35;
  double attack_intensity_max = 1.0;
  std::uint64_t seed = 1;
};

struct Trial {
  inference::AggregatedSummary aggregate;
  packet::AttackType injected = packet::AttackType::kNone;
  /// Raw batches and centroid assignments per monitor, for feedback.
  std::vector<std::vector<packet::PacketRecord>> monitor_packets;
  std::vector<std::vector<std::size_t>> monitor_assignment;
  std::uint64_t summary_bytes = 0;
  std::uint64_t raw_header_bytes = 0;

  /// Fetcher resolving centroid indices to this trial's raw packets.
  [[nodiscard]] inference::RawPacketFetcher fetcher() const;
};

/// Builds one trial.  `attack == kNone` produces a benign (negative) trial.
[[nodiscard]] Trial make_trial(packet::AttackType attack,
                               const TrialConfig& cfg, std::uint64_t seed);

/// Builds `positives` trials per attack in `attacks` plus `negatives`
/// benign trials, with per-trial seeds derived from cfg.seed.
[[nodiscard]] std::vector<Trial> make_trial_set(
    std::span<const packet::AttackType> attacks, std::size_t positives,
    std::size_t negatives, const TrialConfig& cfg);

/// tau_c scale factor matching a trial's window volume against the nominal
/// ~2000-packet epoch the built-in rule counts are calibrated for.
[[nodiscard]] double tau_c_scale_for(const TrialConfig& cfg);

/// Decision for one trial at the given engine configuration: does any alert
/// carry a sid associated with `target`?  Runs the real inference engine
/// (feedback honored when cfg.feedback_enabled and the trial has raw data).
[[nodiscard]] bool detect(const Trial& trial, packet::AttackType target,
                          const std::vector<rules::Rule>& ruleset,
                          const inference::EngineConfig& engine_cfg);

/// ROC sweep for one attack, matching the §8.1 methodology: every
/// (tau_d, tau_c) threshold combination is one operating point
/// (tau_d1 = tau_d2 = tau_d, no feedback).  `tau_c_scales` multiply the
/// per-rule counts on top of `volume_scale` (the window-volume adjustment);
/// pass a single 1.0 to sweep tau_d only.
[[nodiscard]] RocCurve roc_sweep(std::span<const Trial> trials,
                                 packet::AttackType target,
                                 const std::vector<rules::Rule>& ruleset,
                                 std::span<const double> tau_ds,
                                 std::span<const double> tau_c_scales,
                                 double volume_scale = 1.0);

/// The tau_c multipliers used by the evaluation ROC sweeps.
[[nodiscard]] std::span<const double> default_tau_c_scales();

/// Confusion counts for one attack at a fixed engine configuration.
[[nodiscard]] ConfusionCounts evaluate(std::span<const Trial> trials,
                                       packet::AttackType target,
                                       const std::vector<rules::Rule>& ruleset,
                                       const inference::EngineConfig& engine_cfg);

/// Feedback-loop operating point (Fig. 6): TPR/FPR plus total bytes
/// (summaries + feedback raw retrievals) relative to shipping raw headers.
struct FeedbackOutcome {
  ConfusionCounts confusion;
  double comm_overhead_ratio = 0.0;  ///< (summary+feedback) / raw bytes.
};

[[nodiscard]] FeedbackOutcome evaluate_with_feedback(
    std::span<const Trial> trials,
    std::span<const packet::AttackType> targets,
    const std::vector<rules::Rule>& ruleset,
    const inference::EngineConfig& engine_cfg);

/// The five §8 evaluation attacks, in paper order.
[[nodiscard]] std::span<const packet::AttackType> evaluation_attacks();

}  // namespace jaal::core
