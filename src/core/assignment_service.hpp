// Flow-assignment service — the controller-side state of §7's deployment:
// monitors report loads over their long-lived connections (proto
// LoadUpdate, polled every P seconds); incoming flows are assigned greedily
// to the least-loaded monitor of their monitor group.
//
// Between load reports the service works with *visible* loads plus an
// optimistic local increment for every assignment it makes — without it,
// all flows arriving within one poll period would herd onto the same
// monitor (the thundering-herd artifact of stale load data).
#pragma once

#include <cstdint>
#include <vector>

#include "assign/assigner.hpp"
#include "proto/messages.hpp"

namespace jaal::core {

class AssignmentService {
 public:
  /// Throws std::invalid_argument on empty groups, zero monitors, or group
  /// entries referencing out-of-range monitors.
  AssignmentService(std::vector<assign::MonitorGroup> groups,
                    std::size_t monitor_count);

  /// Ingests a monitor's load report (replaces the visible load and clears
  /// the optimistic increments accumulated since the last report).
  void on_load_update(const proto::LoadUpdate& update);

  /// Assigns a new flow from `group`; `weight_estimate` is added to the
  /// optimistic local view (use the expected flow rate, or a fixed nominal
  /// value when unknown — the greedy policy needs no true weights).
  /// Throws std::out_of_range on a bad group index.
  [[nodiscard]] assign::MonitorIndex assign(std::size_t group,
                                            double weight_estimate);

  /// Visible load of a monitor (last report + optimistic increments).
  [[nodiscard]] double visible_load(assign::MonitorIndex m) const;

  [[nodiscard]] std::size_t monitor_count() const noexcept {
    return reported_.size();
  }
  [[nodiscard]] const std::vector<assign::MonitorGroup>& groups()
      const noexcept {
    return groups_;
  }
  [[nodiscard]] std::uint64_t assignments() const noexcept {
    return assignments_;
  }

 private:
  std::vector<assign::MonitorGroup> groups_;
  std::vector<double> reported_;    ///< Last LoadUpdate per monitor.
  std::vector<double> optimistic_;  ///< Assignments since that update.
  std::uint64_t assignments_ = 0;
};

}  // namespace jaal::core
