// Operator-facing alert log: one JSON object per line (JSONL), the format
// SIEM pipelines ingest.  The §10 discussion expects "analysts to parse
// logs just as they would for an enterprise IDS" — this is that log.
#pragma once

#include <iosfwd>
#include <string>

#include "inference/engine.hpp"

namespace jaal::core {

/// Renders one alert as a single-line JSON object (no trailing newline).
/// Strings are escaped per RFC 8259 (quotes, backslashes, control chars).
[[nodiscard]] std::string alert_to_json(const inference::Alert& alert,
                                        double epoch_end_time);

/// Streaming JSONL sink.  Not thread-safe; one logger per engine loop.
class AlertLogger {
 public:
  /// The stream must outlive the logger.
  explicit AlertLogger(std::ostream& out);

  /// Writes every alert of an epoch; returns lines written.
  std::size_t log_epoch(double epoch_end_time,
                        const std::vector<inference::Alert>& alerts);

  [[nodiscard]] std::uint64_t lines_written() const noexcept {
    return lines_;
  }

 private:
  std::ostream* out_;
  std::uint64_t lines_ = 0;
};

}  // namespace jaal::core
