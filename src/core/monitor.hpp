// Monitor node (§7, "Monitors").
//
// A monitor buffers headers of the flows assigned to it, summarizes each
// epoch's batch, and keeps a per-epoch map from centroid index to the raw
// packets behind it (the hash table of §7) so the inference engine's
// feedback loop can retrieve raw evidence.  The map is discarded when the
// next epoch begins.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/metrics.hpp"
#include "packet/wire.hpp"
#include "summarize/summarizer.hpp"

namespace jaal::core {

class Monitor {
 public:
  Monitor(summarize::MonitorId id, const summarize::SummarizerConfig& cfg);

  [[nodiscard]] summarize::MonitorId id() const noexcept { return id_; }

  /// Attaches the shared execution runtime (forwarded to the summarizer's
  /// k-means step); null detaches.  Summaries are bit-identical either way.
  void set_pool(std::shared_ptr<runtime::ThreadPool> pool) noexcept {
    summarizer_.set_pool(std::move(pool));
  }

  /// Attaches telemetry: packet/batch counters here plus the summarizer's
  /// SVD/k-means instrumentation.  Null detaches (the default).
  void set_telemetry(telemetry::Telemetry* tel);

  /// Pins the summarizer's RNG stream to (seed, epoch) so this epoch's
  /// summary does not depend on how many epochs ran before it — the
  /// restart-determinism contract of the store (see
  /// summarize::Summarizer::begin_epoch).  The controller calls this at
  /// every epoch close before flushing.
  void begin_epoch(std::uint64_t epoch) noexcept {
    summarizer_.begin_epoch(epoch);
  }

  /// Buffers one observed packet.  Malformed headers (non-IPv4, non-TCP,
  /// truncated lengths) and oversized frames (> 9000-byte jumbo bound) are
  /// dropped and counted instead of buffered — garbage rows would poison
  /// the batch normalization.
  void observe(const packet::PacketRecord& pkt);

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }

  /// True when the buffer reached the configured batch size n.
  [[nodiscard]] bool batch_ready() const noexcept;

  /// Ends the epoch: summarizes the buffered batch (nullopt when fewer than
  /// n_min packets accumulated — such monitors stay silent, §5.1), retains
  /// the centroid -> packets map for feedback, clears the buffer, and
  /// updates communication accounting.  `parent` is the enclosing trace
  /// span (the controller's per-epoch summarize span).
  [[nodiscard]] std::optional<summarize::MonitorSummary> flush_epoch(
      const telemetry::SpanContext& parent = {});

  /// Crash simulation (fault scenarios): throws away the buffered epoch and
  /// the previous epoch's feedback store, as a monitor process restart
  /// would.  The discarded packets are counted in packets_lost_to_crash().
  void discard_epoch();

  /// Raw packets behind the given centroids of the *last flushed* epoch
  /// (the feedback path).  Unknown indices are ignored.
  [[nodiscard]] std::vector<packet::PacketRecord> raw_packets_for(
      const std::vector<std::size_t>& centroid_indices) const;

  /// Bytes accounting: raw_header_bytes accrues for every observed packet
  /// (what a copy-everything design would ship), summary_bytes for every
  /// summary actually produced.
  [[nodiscard]] const CommStats& comm() const noexcept { return comm_; }

  [[nodiscard]] std::uint64_t packets_observed() const noexcept {
    return observed_;
  }

  /// Packets rejected by observe() for inconsistent headers.
  [[nodiscard]] std::uint64_t packets_malformed() const noexcept {
    return malformed_;
  }

  /// Packets rejected by observe() for exceeding the jumbo-frame bound.
  [[nodiscard]] std::uint64_t packets_oversized() const noexcept {
    return oversized_;
  }

  /// Buffered packets thrown away by discard_epoch() (crash scenarios).
  [[nodiscard]] std::uint64_t packets_lost_to_crash() const noexcept {
    return lost_to_crash_;
  }

  /// Summary fidelity of the last flushed epoch (drift monitoring input).
  /// nullopt when the monitor stayed silent, crashed, or fidelity recording
  /// is off; the epoch field is left 0 for the controller to stamp.
  [[nodiscard]] const std::optional<observe::FidelityStats>& last_fidelity()
      const noexcept {
    return last_fidelity_;
  }

 private:
  summarize::MonitorId id_;
  summarize::Summarizer summarizer_;
  std::vector<packet::PacketRecord> buffer_;
  /// Last epoch's packets grouped by centroid index, in CSR form: packets
  /// of centroid c are store_packets_[store_offsets_[c] ..
  /// store_offsets_[c+1]).  Two flat allocations instead of one vector per
  /// centroid (k = 200 per epoch made the per-epoch churn measurable).
  std::vector<std::size_t> store_offsets_;
  std::vector<packet::PacketRecord> store_packets_;
  std::optional<observe::FidelityStats> last_fidelity_;
  CommStats comm_;
  std::uint64_t observed_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t oversized_ = 0;
  std::uint64_t lost_to_crash_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Counter* tel_observed_ = nullptr;
  telemetry::Counter* tel_malformed_ = nullptr;
  telemetry::Counter* tel_oversized_ = nullptr;
  telemetry::Counter* tel_batches_ = nullptr;
  telemetry::Counter* tel_silent_epochs_ = nullptr;
  telemetry::Counter* tel_summary_bytes_ = nullptr;
};

}  // namespace jaal::core
