// Monitor node (§7, "Monitors").
//
// A monitor buffers headers of the flows assigned to it, summarizes each
// epoch's batch, and keeps a per-epoch map from centroid index to the raw
// packets behind it (the hash table of §7) so the inference engine's
// feedback loop can retrieve raw evidence.  The map is discarded when the
// next epoch begins.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/metrics.hpp"
#include "packet/wire.hpp"
#include "summarize/summarizer.hpp"

namespace jaal::core {

class Monitor {
 public:
  Monitor(summarize::MonitorId id, const summarize::SummarizerConfig& cfg);

  [[nodiscard]] summarize::MonitorId id() const noexcept { return id_; }

  /// Attaches the shared execution runtime (forwarded to the summarizer's
  /// k-means step); null detaches.  Summaries are bit-identical either way.
  void set_pool(std::shared_ptr<runtime::ThreadPool> pool) noexcept {
    summarizer_.set_pool(std::move(pool));
  }

  /// Buffers one observed packet.
  void observe(const packet::PacketRecord& pkt);

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }

  /// True when the buffer reached the configured batch size n.
  [[nodiscard]] bool batch_ready() const noexcept;

  /// Ends the epoch: summarizes the buffered batch (nullopt when fewer than
  /// n_min packets accumulated — such monitors stay silent, §5.1), retains
  /// the centroid -> packets map for feedback, clears the buffer, and
  /// updates communication accounting.
  [[nodiscard]] std::optional<summarize::MonitorSummary> flush_epoch();

  /// Raw packets behind the given centroids of the *last flushed* epoch
  /// (the feedback path).  Unknown indices are ignored.
  [[nodiscard]] std::vector<packet::PacketRecord> raw_packets_for(
      const std::vector<std::size_t>& centroid_indices) const;

  /// Bytes accounting: raw_header_bytes accrues for every observed packet
  /// (what a copy-everything design would ship), summary_bytes for every
  /// summary actually produced.
  [[nodiscard]] const CommStats& comm() const noexcept { return comm_; }

  [[nodiscard]] std::uint64_t packets_observed() const noexcept {
    return observed_;
  }

 private:
  summarize::MonitorId id_;
  summarize::Summarizer summarizer_;
  std::vector<packet::PacketRecord> buffer_;
  /// Last epoch's packets grouped by centroid index.
  std::vector<std::vector<packet::PacketRecord>> epoch_store_;
  CommStats comm_;
  std::uint64_t observed_ = 0;
};

}  // namespace jaal::core
