#include "core/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace jaal::core {

void ConfusionCounts::add(bool predicted, bool actual) noexcept {
  if (actual) {
    predicted ? ++tp : ++fn;
  } else {
    predicted ? ++fp : ++tn;
  }
}

double ConfusionCounts::tpr() const noexcept {
  const std::uint64_t pos = tp + fn;
  return pos == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(pos);
}

double ConfusionCounts::fpr() const noexcept {
  const std::uint64_t neg = fp + tn;
  return neg == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(neg);
}

double ConfusionCounts::accuracy() const noexcept {
  const std::uint64_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& rhs) noexcept {
  tp += rhs.tp;
  fp += rhs.fp;
  tn += rhs.tn;
  fn += rhs.fn;
  return *this;
}

RocCurve RocCurve::envelope() const {
  std::vector<RocPoint> pts = points;
  std::sort(pts.begin(), pts.end(), [](const RocPoint& a, const RocPoint& b) {
    if (a.fpr != b.fpr) return a.fpr < b.fpr;
    return a.tpr > b.tpr;
  });
  RocCurve env;
  env.label = label;
  double best_tpr = -1.0;
  for (const RocPoint& p : pts) {
    if (p.tpr > best_tpr) {
      env.points.push_back(p);
      best_tpr = p.tpr;
    }
  }
  return env;
}

double RocCurve::auc() const {
  const RocCurve env = envelope();
  double area = 0.0;
  double last_fpr = 0.0, last_tpr = 0.0;
  for (const RocPoint& p : env.points) {
    area += (p.fpr - last_fpr) * (p.tpr + last_tpr) / 2.0;
    last_fpr = p.fpr;
    last_tpr = p.tpr;
  }
  area += (1.0 - last_fpr) * (1.0 + last_tpr) / 2.0;
  return area;
}

double RocCurve::tpr_at_fpr(double limit) const {
  double best = 0.0;
  for (const RocPoint& p : points) {
    if (p.fpr <= limit) best = std::max(best, p.tpr);
  }
  return best;
}

double CommStats::overhead_ratio() const noexcept {
  if (raw_header_bytes == 0) return 0.0;
  return static_cast<double>(summary_bytes + feedback_bytes) /
         static_cast<double>(raw_header_bytes);
}

double CommStats::savings() const noexcept { return 1.0 - overhead_ratio(); }

CommStats& CommStats::operator+=(const CommStats& rhs) noexcept {
  raw_header_bytes += rhs.raw_header_bytes;
  summary_bytes += rhs.summary_bytes;
  feedback_bytes += rhs.feedback_bytes;
  return *this;
}

std::string describe(const runtime::RuntimeStatsSnapshot& snap) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "runtime: threads=%zu tasks=%llu/%llu parallel_for=%llu "
                "queue_high_water=%zu\n",
                snap.threads,
                static_cast<unsigned long long>(snap.tasks_completed),
                static_cast<unsigned long long>(snap.tasks_submitted),
                static_cast<unsigned long long>(snap.parallel_for_calls),
                snap.queue_depth_high_water);
  out += line;
  for (const runtime::StageSnapshot& s : snap.stages) {
    std::snprintf(line, sizeof(line),
                  "  stage %-14s calls=%-6llu total=%9.2fms mean=%8.3fms "
                  "max=%8.3fms\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.calls),
                  s.total_ms, s.mean_ms(), s.max_ms);
    out += line;
  }
  return out;
}

}  // namespace jaal::core
