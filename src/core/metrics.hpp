// Detection-quality and communication-cost metrics used across the
// evaluation (§8): TPR/FPR confusion counting, ROC curves, and byte
// accounting for the summary-vs-raw overhead comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/runtime_stats.hpp"

namespace jaal::core {

struct ConfusionCounts {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  void add(bool predicted, bool actual) noexcept;

  /// True positive rate (recall); 0 when no positives were seen.
  [[nodiscard]] double tpr() const noexcept;
  /// False positive rate; 0 when no negatives were seen.
  [[nodiscard]] double fpr() const noexcept;
  [[nodiscard]] double accuracy() const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept {
    return tp + fp + tn + fn;
  }

  ConfusionCounts& operator+=(const ConfusionCounts& rhs) noexcept;
};

/// One operating point on a ROC curve.  The paper sweeps combinations of
/// thresholds ("each combination of threshold values (tau_d, tau_c, tau_v)
/// is a single point on the graph", §8.1): tau_d is the distance threshold
/// and tau_c_scale multiplies the per-rule count thresholds.
struct RocPoint {
  double tau_d = 0.0;
  double tau_c_scale = 1.0;
  double fpr = 0.0;
  double tpr = 0.0;
};

struct RocCurve {
  std::string label;
  std::vector<RocPoint> points;

  /// Upper envelope of the point cloud: for increasing FPR, the best TPR
  /// achieved by any threshold combination (the curve one would plot).
  [[nodiscard]] RocCurve envelope() const;

  /// Area under the envelope by trapezoid rule, anchored at (0,0), (1,1).
  [[nodiscard]] double auc() const;

  /// Best TPR over measured points with fpr <= limit (0 if none).
  [[nodiscard]] double tpr_at_fpr(double limit) const;
};

/// Communication accounting: what monitors would have shipped raw vs what
/// Jaal actually shipped.
struct CommStats {
  std::uint64_t raw_header_bytes = 0;     ///< Baseline: all headers copied.
  std::uint64_t summary_bytes = 0;        ///< Summaries actually sent.
  std::uint64_t feedback_bytes = 0;       ///< Raw packets pulled by feedback.

  /// Jaal bytes as a fraction of the raw baseline (~0.35 in the paper).
  [[nodiscard]] double overhead_ratio() const noexcept;
  /// 1 - overhead_ratio (~0.65 in the paper).
  [[nodiscard]] double savings() const noexcept;

  CommStats& operator+=(const CommStats& rhs) noexcept;
};

/// Renders an execution-runtime snapshot as the multi-line block the
/// benches print next to detection quality and communication cost:
/// task/queue counters plus one line per timed pipeline stage.
[[nodiscard]] std::string describe(const runtime::RuntimeStatsSnapshot& snap);

}  // namespace jaal::core
