#include "core/controller.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "runtime/channel.hpp"

namespace jaal::core {

JaalController::JaalController(const JaalConfig& cfg,
                               std::vector<rules::Rule> rules)
    : cfg_(cfg), engine_(std::move(rules), cfg.engine) {
  if (cfg_.monitor_count == 0) {
    throw std::invalid_argument("JaalController: need at least one monitor");
  }
  const std::size_t threads =
      cfg_.threads == 0 ? runtime::threads_from_env(1) : cfg_.threads;
  if (threads > 1) {
    pool_ = std::make_shared<runtime::ThreadPool>(threads);
    engine_.set_pool(pool_);
  }
  if (cfg_.telemetry != nullptr) {
    engine_.set_telemetry(cfg_.telemetry);
    // One stats system: the pool's runtime counters land in the same
    // registry (and the same exports) as every other jaal metric.
    if (pool_) pool_->stats().bind(&cfg_.telemetry->metrics);
  }
  monitors_.reserve(cfg_.monitor_count);
  for (std::size_t i = 0; i < cfg_.monitor_count; ++i) {
    summarize::SummarizerConfig scfg = cfg_.summarizer;
    scfg.seed = cfg_.summarizer.seed + i;  // decorrelate k-means seeding
    monitors_.emplace_back(static_cast<summarize::MonitorId>(i), scfg);
    if (pool_) monitors_.back().set_pool(pool_);
    if (cfg_.telemetry != nullptr) {
      monitors_.back().set_telemetry(cfg_.telemetry);
    }
  }
}

std::optional<runtime::RuntimeStatsSnapshot> JaalController::runtime_stats()
    const {
  if (!pool_) return std::nullopt;
  return pool_->stats().snapshot(pool_->threads());
}

void JaalController::ingest(const packet::PacketRecord& pkt) {
  const std::size_t m =
      packet::FlowKeyHash{}(pkt.flow()) % monitors_.size();
  monitors_[m].observe(pkt);
  ++epoch_packets_;
}

EpochResult JaalController::close_epoch(double now) {
  inference::Aggregator aggregator;
  EpochResult result;
  result.end_time = now;
  result.packets = epoch_packets_;
  epoch_packets_ = 0;

  // One trace per epoch: the root span's trace id is the epoch index, and
  // the simulated end time rides along so traces line up across runs even
  // though wall-clock durations differ.
  telemetry::Telemetry* tel = cfg_.telemetry;
  telemetry::Span epoch_span =
      tel != nullptr ? tel->tracer.span("epoch", {}, epoch_index_)
                     : telemetry::Span{};
  ++epoch_index_;
  epoch_span.set_sim_time(now);
  epoch_span.attr("packets", static_cast<double>(result.packets));
  const telemetry::SpanContext epoch_ctx = epoch_span.context();
  if (tel != nullptr) {
    // The observe phase happened during ingest(); record it as a
    // zero-duration span carrying the epoch's packet count.
    telemetry::Span observe = tel->tracer.span("observe", epoch_ctx);
    observe.attr("packets", static_cast<double>(result.packets));
  }

  telemetry::Span summarize_span =
      tel != nullptr ? tel->tracer.span("summarize", epoch_ctx)
                     : telemetry::Span{};
  const telemetry::SpanContext summarize_ctx = summarize_span.context();
  std::uint64_t ship_bytes = 0;

  if (pool_) {
    // Concurrent monitor→engine pipeline: one flush task per monitor
    // (summarization of N monitors is embarrassingly parallel — each
    // Monitor owns its buffer and its seeded RNG), results streaming
    // through a bounded channel whose capacity throttles producers to what
    // the aggregation side is consuming.  Summaries land in a slot table
    // and are reduced in monitor order, so the aggregate — and everything
    // downstream — is bit-identical to the serial loop.
    runtime::StageTimer timer(&pool_->stats(), "flush_epoch");
    using Flushed =
        std::pair<std::size_t, std::optional<summarize::MonitorSummary>>;
    runtime::Channel<Flushed> channel(
        std::max<std::size_t>(std::size_t{2}, pool_->threads()));
    std::mutex error_mu;
    std::exception_ptr error;
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
      (void)pool_->submit([this, i, summarize_ctx, &channel, &error_mu,
                           &error] {
        std::optional<summarize::MonitorSummary> summary;
        try {
          summary = monitors_[i].flush_epoch(summarize_ctx);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!error) error = std::current_exception();
        }
        channel.push({i, std::move(summary)});
      });
    }
    std::vector<std::optional<summarize::MonitorSummary>> slots(
        monitors_.size());
    for (std::size_t received = 0; received < monitors_.size(); ++received) {
      auto item = channel.pop();
      slots[item->first] = std::move(item->second);
    }
    channel.close();
    if (error) std::rethrow_exception(error);
    for (auto& summary : slots) {
      if (summary) {
        ship_bytes += summarize::wire_bytes(*summary);
        aggregator.add(*summary);
        ++result.monitors_reporting;
      }
    }
  } else {
    for (Monitor& m : monitors_) {
      if (auto summary = m.flush_epoch(summarize_ctx)) {
        ship_bytes += summarize::wire_bytes(*summary);
        aggregator.add(*summary);
        ++result.monitors_reporting;
      }
    }
  }
  summarize_span.attr("monitors_reporting",
                      static_cast<double>(result.monitors_reporting));
  summarize_span.finish();
  if (tel != nullptr) {
    // The ship leg: summary bytes crossing the monitor->controller links.
    telemetry::Span ship = tel->tracer.span("ship", epoch_ctx);
    ship.attr("summary_bytes", static_cast<double>(ship_bytes));
    ship.attr("monitors_reporting",
              static_cast<double>(result.monitors_reporting));
  }
  if (result.monitors_reporting == 0) return result;

  telemetry::Span aggregate_span =
      tel != nullptr ? tel->tracer.span("aggregate", epoch_ctx)
                     : telemetry::Span{};
  const inference::AggregatedSummary aggregate = aggregator.take();
  aggregate_span.attr("rows", static_cast<double>(aggregate.origin.size()));
  aggregate_span.finish();

  const inference::RawPacketFetcher fetch =
      [this](summarize::MonitorId id,
             const std::vector<std::size_t>& centroids) {
        return monitors_.at(id).raw_packets_for(centroids);
      };
  // Scale rule counts to this epoch's actual packet volume (counts are
  // calibrated for a nominal 2000-packet window), on top of the deployment's
  // configured headroom factor.
  engine_.set_tau_c_scale(cfg_.engine.tau_c_scale *
                          static_cast<double>(result.packets) / 2000.0);
  {
    telemetry::Span infer_span =
        tel != nullptr ? tel->tracer.span("infer", epoch_ctx)
                       : telemetry::Span{};
    runtime::StageTimer timer(pool_ ? &pool_->stats() : nullptr, "infer");
    result.alerts = engine_.infer(aggregate, fetch, infer_span.context());
    infer_span.attr("alerts", static_cast<double>(result.alerts.size()));
  }
  if (tel != nullptr) {
    // The postprocess leg: distributed/feedback classification tallies.
    std::size_t distributed = 0, via_feedback = 0;
    for (const inference::Alert& a : result.alerts) {
      distributed += a.distributed ? 1 : 0;
      via_feedback += a.via_feedback ? 1 : 0;
    }
    telemetry::Span post = tel->tracer.span("postprocess", epoch_ctx);
    post.attr("alerts", static_cast<double>(result.alerts.size()));
    post.attr("distributed", static_cast<double>(distributed));
    post.attr("via_feedback", static_cast<double>(via_feedback));
  }
  return result;
}

std::vector<EpochResult> JaalController::run(trace::PacketSource& source,
                                             double duration) {
  std::vector<EpochResult> epochs;
  const double start = source.peek_time();

  if (cfg_.trigger == EpochTrigger::kBatchTriggered) {
    // §5.1 second mode: when any monitor reaches a full batch of n packets,
    // the controller requests summaries from everyone (monitors below
    // n_min stay silent and keep buffering).
    while (source.peek_time() - start < duration) {
      const packet::PacketRecord pkt = source.next();
      ingest(pkt);
      for (const Monitor& m : monitors_) {
        if (m.batch_ready()) {
          epochs.push_back(close_epoch(pkt.timestamp));
          break;
        }
      }
    }
    epochs.push_back(close_epoch(start + duration));
    return epochs;
  }

  double epoch_end = start + cfg_.epoch_seconds;
  while (source.peek_time() - start < duration) {
    if (source.peek_time() >= epoch_end) {
      epochs.push_back(close_epoch(epoch_end));
      epoch_end += cfg_.epoch_seconds;
      continue;
    }
    ingest(source.next());
  }
  epochs.push_back(close_epoch(epoch_end));
  return epochs;
}

CommStats JaalController::comm() const {
  CommStats total;
  for (const Monitor& m : monitors_) total += m.comm();
  total.feedback_bytes += engine_.stats().raw_bytes_fetched;
  return total;
}

}  // namespace jaal::core
