#include "core/controller.hpp"

#include <stdexcept>

namespace jaal::core {

JaalController::JaalController(const JaalConfig& cfg,
                               std::vector<rules::Rule> rules)
    : cfg_(cfg), engine_(std::move(rules), cfg.engine) {
  if (cfg_.monitor_count == 0) {
    throw std::invalid_argument("JaalController: need at least one monitor");
  }
  monitors_.reserve(cfg_.monitor_count);
  for (std::size_t i = 0; i < cfg_.monitor_count; ++i) {
    summarize::SummarizerConfig scfg = cfg_.summarizer;
    scfg.seed = cfg_.summarizer.seed + i;  // decorrelate k-means seeding
    monitors_.emplace_back(static_cast<summarize::MonitorId>(i), scfg);
  }
}

void JaalController::ingest(const packet::PacketRecord& pkt) {
  const std::size_t m =
      packet::FlowKeyHash{}(pkt.flow()) % monitors_.size();
  monitors_[m].observe(pkt);
  ++epoch_packets_;
}

EpochResult JaalController::close_epoch(double now) {
  inference::Aggregator aggregator;
  EpochResult result;
  result.end_time = now;
  result.packets = epoch_packets_;
  epoch_packets_ = 0;

  for (Monitor& m : monitors_) {
    if (auto summary = m.flush_epoch()) {
      aggregator.add(*summary);
      ++result.monitors_reporting;
    }
  }
  if (result.monitors_reporting == 0) return result;

  const inference::AggregatedSummary aggregate = aggregator.take();
  const inference::RawPacketFetcher fetch =
      [this](summarize::MonitorId id,
             const std::vector<std::size_t>& centroids) {
        return monitors_.at(id).raw_packets_for(centroids);
      };
  // Scale rule counts to this epoch's actual packet volume (counts are
  // calibrated for a nominal 2000-packet window), on top of the deployment's
  // configured headroom factor.
  engine_.set_tau_c_scale(cfg_.engine.tau_c_scale *
                          static_cast<double>(result.packets) / 2000.0);
  result.alerts = engine_.infer(aggregate, fetch);
  return result;
}

std::vector<EpochResult> JaalController::run(trace::PacketSource& source,
                                             double duration) {
  std::vector<EpochResult> epochs;
  const double start = source.peek_time();

  if (cfg_.trigger == EpochTrigger::kBatchTriggered) {
    // §5.1 second mode: when any monitor reaches a full batch of n packets,
    // the controller requests summaries from everyone (monitors below
    // n_min stay silent and keep buffering).
    while (source.peek_time() - start < duration) {
      const packet::PacketRecord pkt = source.next();
      ingest(pkt);
      for (const Monitor& m : monitors_) {
        if (m.batch_ready()) {
          epochs.push_back(close_epoch(pkt.timestamp));
          break;
        }
      }
    }
    epochs.push_back(close_epoch(start + duration));
    return epochs;
  }

  double epoch_end = start + cfg_.epoch_seconds;
  while (source.peek_time() - start < duration) {
    if (source.peek_time() >= epoch_end) {
      epochs.push_back(close_epoch(epoch_end));
      epoch_end += cfg_.epoch_seconds;
      continue;
    }
    ingest(source.next());
  }
  epochs.push_back(close_epoch(epoch_end));
  return epochs;
}

CommStats JaalController::comm() const {
  CommStats total;
  for (const Monitor& m : monitors_) total += m.comm();
  total.feedback_bytes += engine_.stats().raw_bytes_fetched;
  return total;
}

}  // namespace jaal::core
