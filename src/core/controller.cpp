#include "core/controller.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "runtime/channel.hpp"

namespace jaal::core {
namespace {

/// The deployment-level ObserveConfig::provenance toggle gates the engine's
/// own record_provenance knob (both default on; either turns capture off).
inference::EngineConfig merged_engine_config(const JaalConfig& cfg) {
  inference::EngineConfig e = cfg.engine;
  e.record_provenance = e.record_provenance && cfg.observe.provenance;
  return e;
}

}  // namespace

JaalController::JaalController(const JaalConfig& cfg,
                               std::vector<rules::Rule> rules)
    : cfg_(cfg),
      transport_(cfg.faults, cfg.monitor_count),
      tier_(cfg.sharding, std::move(rules), merged_engine_config(cfg),
            cfg.aggregation, cfg.faults.shard_crashes),
      health_(cfg.observe, std::max<std::size_t>(cfg.monitor_count, 1)) {
  if (cfg_.monitor_count == 0) {
    throw std::invalid_argument("JaalController: need at least one monitor");
  }
  const std::size_t threads =
      cfg_.threads == 0 ? runtime::threads_from_env(1) : cfg_.threads;
  if (threads > 1) {
    pool_ = std::make_shared<runtime::ThreadPool>(threads);
    tier_.set_pool(pool_);
  }
  if (cfg_.observe.flight_recorder) {
    flight_ = std::make_unique<observe::FlightRecorder>(
        cfg_.observe.flight_capacity);
  }
  if (cfg_.observe.slo) {
    slo_ = std::make_unique<observe::SloTracker>(cfg_.observe.slo_config);
  }
  if (cfg_.telemetry != nullptr) {
    tier_.set_telemetry(cfg_.telemetry);
    transport_.set_telemetry(cfg_.telemetry);
    auto& m = cfg_.telemetry->metrics;
    tel_degraded_epochs_ = &m.counter("jaal_faults_degraded_epochs_total");
    tel_rolled_forward_ =
        &m.counter("jaal_faults_summaries_rolled_forward_total");
    tel_packets_lost_ = &m.counter("jaal_faults_packets_lost_total");
    tel_drift_events_ = &m.counter("jaal_observe_drift_events_total");
    tel_monitors_drifting_ = &m.gauge("jaal_observe_monitors_drifting");
    tel_caution_permille_ = &m.gauge("jaal_observe_caution_permille");
    if (cfg_.observe.flight_recorder || cfg_.store_metrics) {
      tel_flight_events_ = &m.counter("jaal_observe_flight_events_total");
      tel_flight_dropped_ = &m.counter("jaal_observe_flight_dropped_total");
      tel_flight_dumps_ = &m.counter("jaal_observe_flight_dumps_total");
    }
    if (cfg_.observe.slo) {
      tel_slo_epochs_ = &m.counter("jaal_slo_epochs_observed_total");
      tel_slo_rf_breaches_ =
          &m.counter("jaal_slo_report_fraction_breaches_total");
      tel_slo_lat_breaches_ = &m.counter("jaal_slo_stage_ms_breaches_total");
      tel_slo_burn_ = &m.gauge("jaal_slo_burn_rate_permille");
      tel_slo_rf_budget_ =
          &m.gauge("jaal_slo_report_fraction_budget_remaining_permille");
      tel_slo_lat_budget_ =
          &m.gauge("jaal_slo_stage_ms_budget_remaining_permille");
    }
    if (cfg_.observe.profile) {
      tel_profile_path_ms_ = &m.histogram("jaal_profile_critical_path_ms");
      tel_profile_epochs_ = &m.counter("jaal_profile_epochs_total");
      tel_profile_stragglers_ = &m.counter("jaal_profile_stragglers_total");
    }
    // One stats system: the pool's runtime counters land in the same
    // registry (and the same exports) as every other jaal metric.
    if (pool_) pool_->stats().bind(&cfg_.telemetry->metrics);
  }
  if (!cfg_.store_dir.empty()) {
    // Open (and recover) the persistence layer before any epoch runs: torn
    // shard tails and uncommitted epochs are truncated here, and the epoch
    // counter resumes after the last durable epoch so a relaunched
    // deployment continues the same epoch sequence.
    store_ = std::make_unique<store::DeploymentStore>(
        store::StoreConfig{cfg_.store_dir, cfg_.store_epochs_per_shard},
        /*writable=*/true, cfg_.telemetry);
    if (const auto last = store_->last_committed_epoch()) {
      epoch_index_ = *last + 1;
    }
    // Summary persistence rides the tier's accept path: a summary refused
    // by a down shard is lost, not stored — the log records exactly what
    // was aggregated.
    tier_.set_store(store_.get());
  }
  monitors_.reserve(cfg_.monitor_count);
  for (std::size_t i = 0; i < cfg_.monitor_count; ++i) {
    summarize::SummarizerConfig scfg = cfg_.summarizer;
    scfg.seed = cfg_.summarizer.seed + i;  // decorrelate k-means seeding
    // Fidelity stats only matter to the drift monitors; skip the extra
    // energy pass when drift monitoring is off.
    scfg.record_fidelity = scfg.record_fidelity && cfg_.observe.drift;
    monitors_.emplace_back(static_cast<summarize::MonitorId>(i), scfg);
    if (pool_) monitors_.back().set_pool(pool_);
    if (cfg_.telemetry != nullptr) {
      monitors_.back().set_telemetry(cfg_.telemetry);
    }
  }
}

std::optional<runtime::RuntimeStatsSnapshot> JaalController::runtime_stats()
    const {
  if (!pool_) return std::nullopt;
  return pool_->stats().snapshot(pool_->threads());
}

void JaalController::ingest(const packet::PacketRecord& pkt) {
  const std::size_t m =
      packet::FlowKeyHash{}(pkt.flow()) % monitors_.size();
  if (!transport_.monitor_up(m, epoch_index_)) {
    // The vantage point is dark: packets routed to a crashed monitor are
    // lost, not rerouted (a second monitor never sees these flows, §6).
    ++epoch_lost_packets_;
    if (tel_packets_lost_ != nullptr) tel_packets_lost_->add(1);
    return;
  }
  monitors_[m].observe(pkt);
  ++epoch_packets_;
}

EpochResult JaalController::close_epoch(double now) {
  // Wall clock only feeds the latency SLI (never any persisted or
  // deterministic output); skip the clock reads entirely when SLO is off.
  const auto wall_start = slo_ ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  // Per-epoch feedback-fallback delta for the health ledger (engine stats
  // are monotonic across epochs).
  const std::uint64_t fallbacks_before =
      tier_.engine().stats().feedback_fallbacks;
  EpochResult result;
  result.end_time = now;
  result.packets = epoch_packets_;
  result.packets_lost = epoch_lost_packets_;
  epoch_packets_ = 0;
  epoch_lost_packets_ = 0;
  const std::uint64_t epoch = epoch_index_;
  ++epoch_index_;

  // Flight events: recorded into the ring (flight_recorder on) and/or
  // collected for the store's per-epoch kEvents batch (store_metrics on).
  // All emission points sit in the serial phases of this function, so the
  // event sequence is deterministic across runs and thread counts.
  const bool persist_ops = store_ != nullptr && cfg_.store_metrics;
  std::vector<observe::FlightEvent> fr_events;
  const auto fev = [&](observe::FlightEvent ev) {
    if (flight_ == nullptr && !persist_ops) return;
    ev.epoch = epoch;
    ev.seq = flight_seq_++;
    if (flight_) flight_->record(ev);
    if (persist_ops) fr_events.push_back(ev);
    if (tel_flight_events_ != nullptr) tel_flight_events_->add(1);
  };
  const auto span_event = [&](std::uint32_t stage) {
    observe::FlightEvent ev;
    ev.kind = observe::FlightEventKind::kSpan;
    ev.actor = stage;
    ev.a = now;
    fev(ev);
  };

  // One trace per epoch: the root span's trace id is the epoch index, and
  // the simulated end time rides along so traces line up across runs even
  // though wall-clock durations differ.
  telemetry::Telemetry* tel = cfg_.telemetry;
  const bool profiling = tel != nullptr && cfg_.observe.profile;
  telemetry::Span epoch_span =
      tel != nullptr ? tel->tracer.span("epoch", {}, epoch)
                     : telemetry::Span{};
  epoch_span.set_sim_time(now);
  epoch_span.attr("packets", static_cast<double>(result.packets));
  const telemetry::SpanContext epoch_ctx = epoch_span.context();
  if (store_) {
    // Store appends/commits below emit store_append/store_commit/
    // index_finalize spans under this epoch's trace when profiling; the
    // default context keeps the store span-free.
    store_->set_trace_context(profiling ? epoch_ctx
                                        : telemetry::SpanContext{});
  }
  if (tel != nullptr) {
    // The observe phase happened during ingest(); record it as a
    // zero-duration span carrying the epoch's packet count.
    telemetry::Span observe = tel->tracer.span("observe", epoch_ctx);
    observe.attr("packets", static_cast<double>(result.packets));
  }
  span_event(0);  // observe

  // Crash windows: a monitor that is down this epoch loses its buffered
  // packets (a process restart) and ships nothing.
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    if (!transport_.monitor_up(i, epoch)) {
      monitors_[i].discard_epoch();
      ++result.monitors_crashed;
    } else {
      // Pin this epoch's summarization RNG stream to (seed, epoch): the
      // summary then depends only on the epoch's batch, not on how many
      // epochs ran before — the restart-determinism contract of the store.
      monitors_[i].begin_epoch(epoch);
    }
  }
  transport_.note_crashed(result.monitors_crashed);

  const double deadline =
      now + (cfg_.aggregation.deadline_s > 0.0 ? cfg_.aggregation.deadline_s
                                               : cfg_.epoch_seconds);
  transport_.begin_epoch(epoch, now, deadline);
  tier_.begin_epoch(epoch);

  telemetry::Span summarize_span =
      tel != nullptr ? tel->tracer.span("summarize", epoch_ctx)
                     : telemetry::Span{};
  const telemetry::SpanContext summarize_ctx = summarize_span.context();

  // Summarize phase: flush every live monitor into a slot table, in
  // parallel when a pool is attached (summarization of N monitors is
  // embarrassingly parallel — each Monitor owns its buffer and its seeded
  // RNG), results streaming through a bounded channel whose capacity
  // throttles producers to what the reduction side consumes.  The slot
  // table is reduced in monitor order below, so everything downstream is
  // bit-identical to the serial loop.
  std::vector<std::optional<summarize::MonitorSummary>> slots(
      monitors_.size());
  if (pool_) {
    runtime::StageTimer timer(&pool_->stats(), "flush_epoch");
    using Flushed =
        std::pair<std::size_t, std::optional<summarize::MonitorSummary>>;
    runtime::Channel<Flushed> channel(
        std::max<std::size_t>(std::size_t{2}, pool_->threads()));
    std::mutex error_mu;
    std::exception_ptr error;
    std::size_t submitted = 0;
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
      if (!transport_.monitor_up(i, epoch)) continue;
      ++submitted;
      (void)pool_->submit([this, i, summarize_ctx, &channel, &error_mu,
                           &error] {
        std::optional<summarize::MonitorSummary> summary;
        try {
          summary = monitors_[i].flush_epoch(summarize_ctx);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!error) error = std::current_exception();
        }
        channel.push({i, std::move(summary)});
      });
    }
    for (std::size_t received = 0; received < submitted; ++received) {
      auto item = channel.pop();
      slots[item->first] = std::move(item->second);
    }
    channel.close();
    if (error) std::rethrow_exception(error);
  } else {
    for (std::size_t i = 0; i < monitors_.size(); ++i) {
      if (!transport_.monitor_up(i, epoch)) continue;
      slots[i] = monitors_[i].flush_epoch(summarize_ctx);
    }
  }

  // Drift monitoring: feed each flushed monitor's summary fidelity to the
  // health ledger, serially in monitor order (determinism), *before*
  // inference so this epoch's caution signal reflects this epoch's
  // summaries.
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    if (!slots[i]) continue;
    if (const auto& f = monitors_[i].last_fidelity()) {
      observe::FidelityStats fs = *f;
      fs.epoch = epoch;
      health_.observe_fidelity(fs);
      result.fidelity.push_back(fs);
      observe::FlightEvent ev;
      ev.kind = observe::FlightEventKind::kFidelity;
      ev.actor = fs.monitor;
      ev.a = fs.svd_energy_retained;
      ev.b = fs.kmeans_inertia;
      ev.c = fs.reconstruction_error;
      ev.u[0] = fs.batch_packets;
      fev(ev);
    }
  }

  // Ship + aggregate phase, serial in monitor order: the transport decides
  // each summary's fate (its draws depend only on seed/epoch/monitor, so
  // the outcome is identical across runs and thread counts).  The tier
  // routes each accepted summary to its owning shard (and persists it);
  // a refusal means the shard is down this epoch.  Late summaries rolled
  // forward from earlier epochs aggregate first.
  for (summarize::MonitorSummary& s : carry_) {
    if (tier_.add_summary(s)) {
      ++result.summaries_rolled_in;
    } else {
      ++result.summaries_lost_shard;
    }
  }
  carry_.clear();
  if (result.summaries_rolled_in > 0 && tel_rolled_forward_ != nullptr) {
    tel_rolled_forward_->add(result.summaries_rolled_in);
  }

  std::uint64_t ship_bytes = 0;
  std::size_t produced = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i]) continue;
    ++produced;
    const std::size_t bytes = summarize::wire_bytes(*slots[i]);
    const faults::ShipOutcome outcome = transport_.ship(i, bytes);
    switch (outcome.status) {
      case faults::ShipStatus::kDelivered: {
        ship_bytes += bytes;  // it crossed the link either way
        if (tier_.add_summary(*slots[i])) {
          ++result.monitors_reporting;
        } else {
          // Delivered, but the owning inference shard is down: the summary
          // dies at the tier's door, degrading report_fraction like any
          // other loss.
          ++result.summaries_lost_shard;
          observe::FlightEvent ev;
          ev.kind = observe::FlightEventKind::kShip;
          ev.actor = static_cast<std::uint32_t>(i);
          ev.u[0] = 4;  // shard down
          fev(ev);
        }
        break;
      }
      case faults::ShipStatus::kDropped: {
        ++result.summaries_dropped;
        observe::FlightEvent ev;
        ev.kind = observe::FlightEventKind::kShip;
        ev.actor = static_cast<std::uint32_t>(i);
        ev.u[0] = 1;  // dropped
        fev(ev);
        break;
      }
      case faults::ShipStatus::kLate: {
        ++result.summaries_late;
        const bool roll =
            cfg_.aggregation.late_policy == faults::LatePolicy::kRollForward;
        if (roll) {
          ship_bytes += bytes;  // it did cross the link, just slowly
          carry_.push_back(std::move(*slots[i]));
        }
        observe::FlightEvent ev;
        ev.kind = observe::FlightEventKind::kShip;
        ev.actor = static_cast<std::uint32_t>(i);
        ev.u[0] = roll ? 3 : 2;  // rolled forward : late
        fev(ev);
        break;
      }
    }
  }

  // Degraded-mode accounting: what fraction of the summaries this epoch
  // *should* have aggregated actually made it in time.  Crashed monitors
  // count against the epoch (they would plausibly have reported).
  const std::size_t expected = produced + result.monitors_crashed;
  result.report_fraction =
      expected == 0
          ? 1.0
          : static_cast<double>(result.monitors_reporting) /
                static_cast<double>(expected);
  if (result.degraded() && tel_degraded_epochs_ != nullptr) {
    tel_degraded_epochs_->add(1);
  }

  summarize_span.attr("monitors_reporting",
                      static_cast<double>(result.monitors_reporting));
  summarize_span.finish();
  span_event(1);  // summarize
  if (tel != nullptr) {
    // The ship leg: summary bytes crossing the monitor->controller links.
    // Since the fault transport it can fail — dropped/late arrivals are
    // recorded on the span next to what got through.
    telemetry::Span ship = tel->tracer.span("ship", epoch_ctx);
    ship.attr("summary_bytes", static_cast<double>(ship_bytes));
    ship.attr("monitors_reporting",
              static_cast<double>(result.monitors_reporting));
    if (result.summaries_dropped > 0 || result.summaries_late > 0 ||
        result.monitors_crashed > 0 || result.summaries_lost_shard > 0) {
      ship.attr("dropped", static_cast<double>(result.summaries_dropped));
      ship.attr("late", static_cast<double>(result.summaries_late));
      ship.attr("crashed", static_cast<double>(result.monitors_crashed));
      if (result.summaries_lost_shard > 0) {
        ship.attr("shard_lost",
                  static_cast<double>(result.summaries_lost_shard));
      }
      ship.attr("report_fraction", result.report_fraction);
    }
  }
  span_event(2);  // ship
  // The caution signal the engine surfaces on this epoch's alerts, and the
  // close-out that folds the epoch into the health ledger on every exit
  // path (the drift events it returns belong to this epoch).
  result.caution = health_.caution();
  tier_.set_caution(result.caution);
  const auto close_health = [&] {
    observe::HealthTracker::EpochDegradation deg;
    deg.report_fraction = result.report_fraction;
    deg.monitors_crashed = result.monitors_crashed;
    deg.summaries_dropped = result.summaries_dropped;
    deg.summaries_late = result.summaries_late;
    deg.summaries_rolled_in = result.summaries_rolled_in;
    deg.packets_lost = result.packets_lost;
    deg.feedback_fallbacks =
        tier_.engine().stats().feedback_fallbacks - fallbacks_before;
    deg.alerts = result.alerts.size();
    result.drift_events = health_.end_epoch(epoch, deg);
    if (tel_drift_events_ != nullptr) {
      if (!result.drift_events.empty()) {
        tel_drift_events_->add(result.drift_events.size());
      }
      tel_monitors_drifting_->set(
          static_cast<std::int64_t>(health_.monitors_drifting()));
      tel_caution_permille_->set(
          static_cast<std::int64_t>(result.caution * 1000.0 + 0.5));
    }
    // Drift transitions, then the feedback and close events — the order the
    // offline replay (store/doctor) relies on: fidelity before close.
    for (const observe::HealthEvent& e : result.drift_events) {
      observe::FlightEvent ev;
      ev.kind = e.kind == observe::HealthEventKind::kDriftStart
                    ? observe::FlightEventKind::kDriftStart
                    : observe::FlightEventKind::kDriftEnd;
      ev.actor = e.monitor;
      ev.a = e.value;
      ev.b = e.baseline;
      ev.c = e.z;
      ev.u[0] = observe::drift_metric_id(e.metric);
      fev(ev);
    }
    if (deg.feedback_fallbacks > 0) {
      observe::FlightEvent ev;
      ev.kind = observe::FlightEventKind::kFeedback;
      ev.u[0] = deg.feedback_fallbacks;
      fev(ev);
    }
    {
      observe::FlightEvent ev;
      ev.kind = observe::FlightEventKind::kEpochClose;
      ev.actor = static_cast<std::uint32_t>(deg.alerts);
      ev.a = result.report_fraction;
      ev.b = result.caution;
      ev.c = static_cast<double>(cfg_.monitor_count);
      ev.u[0] = deg.monitors_crashed;
      ev.u[1] = deg.summaries_dropped;
      ev.u[2] = deg.summaries_late;
      ev.u[3] = deg.summaries_rolled_in;
      ev.u[4] = deg.packets_lost;
      ev.u[5] = deg.feedback_fallbacks;
      fev(ev);
    }
    if (slo_) {
      const double latency_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start)
              .count();
      slo_->observe_epoch(epoch, result.report_fraction, latency_ms);
      if (tel_slo_epochs_ != nullptr) {
        tel_slo_epochs_->add(1);
        tel_slo_rf_breaches_->add(slo_->rf_breaches() -
                                  slo_prev_rf_breaches_);
        tel_slo_lat_breaches_->add(slo_->latency_breaches() -
                                   slo_prev_lat_breaches_);
        slo_prev_rf_breaches_ = slo_->rf_breaches();
        slo_prev_lat_breaches_ = slo_->latency_breaches();
        tel_slo_burn_->set(slo_->rf_burn_rate_permille());
        tel_slo_rf_budget_->set(slo_->rf_budget_remaining_permille());
        tel_slo_lat_budget_->set(slo_->latency_budget_remaining_permille());
      }
    }
    if (flight_) {
      // Regression trigger: the health report's worst finding got worse
      // than anything seen before — capture the ring before later epochs
      // overwrite the lead-up.
      const auto findings = health_.report().ranked_findings();
      const double severity =
          findings.empty() ? 0.0 : findings.front().severity;
      if (severity > last_top_severity_) {
        last_top_severity_ = severity;
        last_flight_dump_ = flight_->dump_jsonl();
        if (tel_flight_dumps_ != nullptr) tel_flight_dumps_->add(1);
      }
      if (tel_flight_dropped_ != nullptr) {
        tel_flight_dropped_->add(flight_->dropped() - flight_dropped_prev_);
        flight_dropped_prev_ = flight_->dropped();
      }
    }
  };

  // Store commit: alerts and provenance land first, then the EpochMeta
  // record in the summaries log marks the epoch durable — a crash between
  // any of these appends leaves an uncommitted epoch that recovery
  // truncates wholesale on the next open.
  const auto commit_store = [&] {
    if (!store_) return;
    for (const inference::Alert& a : result.alerts) {
      store_->put_alert(epoch, a, result.end_time);
      if (a.provenance) {
        store_->put_provenance(epoch, a.sid, *a.provenance);
      }
    }
    if (persist_ops) {
      // Ops stream: the flight events raised closing this epoch and the
      // registry's delta since the previous commit, both riding under this
      // epoch's EpochMeta (an uncommitted epoch rolls them back).
      if (!fr_events.empty()) store_->put_events(epoch, fr_events);
      if (cfg_.telemetry != nullptr) {
        telemetry::MetricsSnapshot cur = cfg_.telemetry->metrics.snapshot();
        store_->put_metrics(epoch, cur.diff(prev_metrics_));
        prev_metrics_ = std::move(cur);
      }
    }
    store::EpochMeta meta{epoch, result.end_time, result.packets,
                          result.report_fraction, result.caution};
    meta.shard_count = tier_.shard_count();
    store_->commit_epoch(meta);
  };

  // Shared close-out for every exit path: the critical-path profile
  // brackets close_health/commit_store so the deterministic digest lands in
  // this epoch's ops stream while the wall-clock profile still covers the
  // store commit itself.
  const auto close_out = [&] {
    if (!profiling) {
      close_health();
      commit_store();
      result.shards = tier_.shard_stats();
      return;
    }
    // Deterministic digest first, before anything is persisted: drain the
    // spans recorded so far and rebuild the tree.  The epoch root is still
    // open (it must cover the store commit), so synthesize its record —
    // deterministic mode only needs the tree shape, never durations.
    std::vector<telemetry::SpanRecord> spans = tel->tracer.drain();
    {
      telemetry::SpanRecord root;
      root.name = "epoch";
      root.key = epoch;
      root.trace_id = epoch;
      root.span_id = epoch_ctx.span_id;
      root.parent_id = 0;
      root.sim_time = now;
      spans.push_back(root);
    }
    telemetry::CriticalPathOptions det_opts;
    det_opts.mode = telemetry::DurationMode::kDeterministic;
    const telemetry::CriticalPath det =
        telemetry::CriticalPath::build(spans, epoch, det_opts);
    {
      observe::FlightEvent ev;
      ev.kind = observe::FlightEventKind::kProfile;
      ev.actor = telemetry::profile_stage_id(det.dominant_stage);
      ev.a = det.root_inclusive_ms;
      ev.b = static_cast<double>(det.path.size());
      ev.u[0] = det.span_count;
      ev.u[1] = det.sibling_groups;
      fev(ev);
    }
    close_health();
    commit_store();
    // Close the root and take the wall-clock profile over the complete
    // epoch — including the store spans the commit just recorded.
    epoch_span.finish();
    spans.pop_back();  // synthesized root; the finished one follows
    {
      std::vector<telemetry::SpanRecord> rest = tel->tracer.drain();
      spans.insert(spans.end(), rest.begin(), rest.end());
    }
    telemetry::CriticalPath wall =
        telemetry::CriticalPath::build(spans, epoch, {});
    if (tel_profile_epochs_ != nullptr) {
      tel_profile_epochs_->add(1);
      tel_profile_path_ms_->observe(wall.root_inclusive_ms);
      if (!wall.stragglers.empty()) {
        tel_profile_stragglers_->add(wall.stragglers.size());
      }
      for (const telemetry::StageTime& st : wall.stages) {
        telemetry::Histogram* h = nullptr;
        for (auto& [name, handle] : tel_profile_stage_) {
          if (name == st.name) {
            h = handle;
            break;
          }
        }
        if (h == nullptr) {
          h = &tel->metrics.histogram("jaal_profile_stage_exclusive_ms{stage=\"" +
                                      st.name + "\"}");
          tel_profile_stage_.emplace_back(st.name, h);
        }
        // Exclusive self-time can go negative when siblings overlap on the
        // pool (parallelism credit); the histogram records the spent side.
        h->observe(std::max(0.0, st.exclusive_ms));
      }
    }
    if (slo_) slo_->attribute_latency(wall.dominant_stage);
    result.profile = std::move(wall);
    result.shards = tier_.shard_stats();
  };

  if (tier_.pending() == 0) {
    close_out();
    return result;
  }

  telemetry::Span aggregate_span =
      tel != nullptr ? tel->tracer.span("aggregate", epoch_ctx)
                     : telemetry::Span{};
  // The tier builds the aggregate hierarchy: per-shard aggregates, then the
  // cross-shard merge (at one shard, exactly the old flat Aggregator) —
  // with per-shard shard_aggregate spans under this stage's span when the
  // tier is genuinely sharded.
  const inference::AggregatedSummary& aggregate =
      tier_.aggregate_epoch(aggregate_span.context());
  aggregate_span.attr("rows", static_cast<double>(aggregate.origin.size()));
  aggregate_span.finish();
  span_event(3);  // aggregate

  const inference::RawPacketFetcher fetch =
      [this](summarize::MonitorId id,
             const std::vector<std::size_t>& centroids) -> inference::RawFetch {
    faults::FetchResult fetched = transport_.fetch(
        id, [&](std::size_t) { return monitors_.at(id).raw_packets_for(centroids); });
    // Carry the retry accounting along so alert provenance can show what
    // the feedback round-trip actually cost.
    return {std::move(fetched.packets), fetched.attempts, fetched.backoff_s};
  };
  // Scale rule counts to this epoch's actual packet volume (counts are
  // calibrated for a nominal 2000-packet window), on top of the deployment's
  // configured headroom factor; partial epochs additionally scale by the
  // report fraction so a missing monitor raises sensitivity instead of
  // silently missing.
  tier_.set_tau_c_scale(cfg_.engine.tau_c_scale *
                        static_cast<double>(result.packets) / 2000.0);
  tier_.set_report_fraction(result.report_fraction);
  {
    telemetry::Span infer_span =
        tel != nullptr ? tel->tracer.span("infer", epoch_ctx)
                       : telemetry::Span{};
    runtime::StageTimer timer(pool_ ? &pool_->stats() : nullptr, "infer");
    result.alerts = tier_.infer_epoch(fetch, infer_span.context());
    infer_span.attr("alerts", static_cast<double>(result.alerts.size()));
  }
  span_event(4);  // infer
  if (tel != nullptr) {
    // The postprocess leg: distributed/feedback classification tallies.
    std::size_t distributed = 0, via_feedback = 0;
    for (const inference::Alert& a : result.alerts) {
      distributed += a.distributed ? 1 : 0;
      via_feedback += a.via_feedback ? 1 : 0;
    }
    telemetry::Span post = tel->tracer.span("postprocess", epoch_ctx);
    post.attr("alerts", static_cast<double>(result.alerts.size()));
    post.attr("distributed", static_cast<double>(distributed));
    post.attr("via_feedback", static_cast<double>(via_feedback));
  }
  span_event(5);  // postprocess
  close_out();
  return result;
}

std::vector<EpochResult> JaalController::run(trace::PacketSource& source,
                                             double duration) {
  std::vector<EpochResult> epochs;
  const double start = source.peek_time();

  if (cfg_.trigger == EpochTrigger::kBatchTriggered) {
    // §5.1 second mode: when any monitor reaches a full batch of n packets,
    // the controller requests summaries from everyone (monitors below
    // n_min stay silent and keep buffering).
    while (source.peek_time() - start < duration) {
      const packet::PacketRecord pkt = source.next();
      ingest(pkt);
      for (const Monitor& m : monitors_) {
        if (m.batch_ready()) {
          epochs.push_back(close_epoch(pkt.timestamp));
          break;
        }
      }
    }
    epochs.push_back(close_epoch(start + duration));
    return epochs;
  }

  double epoch_end = start + cfg_.epoch_seconds;
  while (source.peek_time() - start < duration) {
    if (source.peek_time() >= epoch_end) {
      epochs.push_back(close_epoch(epoch_end));
      epoch_end += cfg_.epoch_seconds;
      continue;
    }
    ingest(source.next());
  }
  epochs.push_back(close_epoch(epoch_end));
  return epochs;
}

CommStats JaalController::comm() const {
  CommStats total;
  for (const Monitor& m : monitors_) total += m.comm();
  total.feedback_bytes += tier_.engine().stats().raw_bytes_fetched;
  return total;
}

}  // namespace jaal::core
