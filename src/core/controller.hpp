// JaalController: end-to-end orchestration of one deployment (Fig. 1).
//
// Distributes a packet stream across monitors (each flow observed by exactly
// one monitor — here via consistent flow hashing, which realizes the §6
// "monitored exactly once" invariant; path-aware load balancing is evaluated
// separately in jaal_assign), drives epochs, aggregates summaries, runs the
// inference engine with the feedback loop wired to the monitors, and
// accounts every byte moved.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/monitor.hpp"
#include "inference/engine.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/background.hpp"

namespace jaal::core {

/// §5.1 names two ways the controller fetches summaries: periodically, or
/// when some monitor accumulates a full batch of n packets (at which point
/// every other monitor with at least n_min packets reports too).
enum class EpochTrigger : std::uint8_t { kPeriodic, kBatchTriggered };

struct JaalConfig {
  summarize::SummarizerConfig summarizer;
  inference::EngineConfig engine;
  std::size_t monitor_count = 4;
  EpochTrigger trigger = EpochTrigger::kPeriodic;
  double epoch_seconds = 2.0;  ///< The §7 epoch (periodic trigger).
  /// Execution-runtime width.  0 resolves from the JAAL_THREADS environment
  /// variable (default 1); 1 is the serial path (no pool, no extra
  /// threads); >1 creates a shared ThreadPool and runs epoch flushes,
  /// k-means assignment, and question matching on it.  Results are
  /// bit-identical across all settings — threads only change wall clock.
  std::size_t threads = 0;
  /// Deployment-wide telemetry sink.  When set, every layer is wired in at
  /// construction: monitors (packet/batch counters, SVD/k-means
  /// instrumentation), the inference engine (question/alert/feedback
  /// counters and spans), the thread pool's RuntimeStats (rebound into this
  /// registry), and close_epoch() emits one trace per epoch
  /// (observe -> summarize -> ship -> aggregate -> infer -> postprocess).
  /// Null (the default) keeps the pipeline telemetry-free: the overhead is
  /// one pointer check at the instrumented sites.  Must outlive the
  /// controller.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Everything observed during one epoch.
struct EpochResult {
  double end_time = 0.0;
  std::vector<inference::Alert> alerts;
  std::size_t monitors_reporting = 0;
  std::uint64_t packets = 0;
};

class JaalController {
 public:
  /// Throws std::invalid_argument for zero monitors.
  JaalController(const JaalConfig& cfg, std::vector<rules::Rule> rules);

  /// Feeds packets from `source` until `duration` simulated seconds elapse,
  /// closing an epoch every cfg.epoch_seconds.  Returns per-epoch results.
  [[nodiscard]] std::vector<EpochResult> run(trace::PacketSource& source,
                                             double duration);

  /// Routes one packet to its monitor (flow-hash); exposed for tests and
  /// for callers that drive epochs manually.
  void ingest(const packet::PacketRecord& pkt);

  /// Closes the current epoch: flush monitors, aggregate, infer.
  [[nodiscard]] EpochResult close_epoch(double now);

  /// Aggregate communication statistics over all monitors plus feedback.
  [[nodiscard]] CommStats comm() const;

  [[nodiscard]] const inference::InferenceEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const std::vector<Monitor>& monitors() const noexcept {
    return monitors_;
  }

  /// Resolved execution-runtime width (1 when running serial).
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_ ? pool_->threads() : 1;
  }

  /// Runtime counters (tasks, queue high-water, per-stage latency); nullopt
  /// when running serial.
  [[nodiscard]] std::optional<runtime::RuntimeStatsSnapshot> runtime_stats()
      const;

 private:
  JaalConfig cfg_;
  std::shared_ptr<runtime::ThreadPool> pool_;  ///< Null when threads == 1.
  std::vector<Monitor> monitors_;
  inference::InferenceEngine engine_;
  std::uint64_t epoch_packets_ = 0;
  std::uint64_t epoch_index_ = 0;  ///< Trace id of the next epoch's trace.
};

}  // namespace jaal::core
