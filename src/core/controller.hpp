// JaalController: end-to-end orchestration of one deployment (Fig. 1).
//
// Distributes a packet stream across monitors (each flow observed by exactly
// one monitor — here via consistent flow hashing, which realizes the §6
// "monitored exactly once" invariant; path-aware load balancing is evaluated
// separately in jaal_assign), drives epochs, aggregates summaries, runs the
// inference engine with the feedback loop wired to the monitors, and
// accounts every byte moved.
//
// Fault tolerance: every monitor->engine summary and every feedback
// retrieval crosses a faults::SummaryTransport.  close_epoch() aggregates
// whatever arrived by the epoch deadline into a (possibly partial)
// AggregatedSummary, scales the engine's match thresholds by the fraction of
// monitors reporting, and counts everything that went missing.  With the
// default fault-free scenario the pipeline is bit-identical to a perfect
// in-process hand-off.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/monitor.hpp"
#include "faults/transport.hpp"
#include "inference/engine.hpp"
#include "observe/observe.hpp"
#include "runtime/thread_pool.hpp"
#include "shard/tier.hpp"
#include "store/store.hpp"
#include "telemetry/profile.hpp"
#include "trace/background.hpp"

namespace jaal::core {

/// §5.1 names two ways the controller fetches summaries: periodically, or
/// when some monitor accumulates a full batch of n packets (at which point
/// every other monitor with at least n_min packets reports too).
enum class EpochTrigger : std::uint8_t { kPeriodic, kBatchTriggered };

/// Knobs shared by every way of standing up a deployment.  Both the live
/// controller (JaalConfig) and the evaluation harness (core::TrialConfig)
/// extend this one struct, so a deployment knob cannot drift between the
/// harness and the controller.
struct DeploymentConfig {
  summarize::SummarizerConfig summarizer;
  std::size_t monitor_count = 4;
  double epoch_seconds = 2.0;  ///< The §7 epoch (periodic trigger).
};

struct JaalConfig : DeploymentConfig {
  inference::EngineConfig engine;
  EpochTrigger trigger = EpochTrigger::kPeriodic;
  /// Execution-runtime width.  0 resolves from the JAAL_THREADS environment
  /// variable (default 1); 1 is the serial path (no pool, no extra
  /// threads); >1 creates a shared ThreadPool and runs epoch flushes,
  /// k-means assignment, and question matching on it.  Results are
  /// bit-identical across all settings — threads only change wall clock.
  std::size_t threads = 0;
  /// Deployment-wide telemetry sink.  When set, every layer is wired in at
  /// construction: monitors (packet/batch counters, SVD/k-means
  /// instrumentation), the inference engine (question/alert/feedback
  /// counters and spans), the summary transport (jaal_faults_* counters),
  /// the thread pool's RuntimeStats (rebound into this registry), and
  /// close_epoch() emits one trace per epoch
  /// (observe -> summarize -> ship -> aggregate -> infer -> postprocess).
  /// Null (the default) keeps the pipeline telemetry-free: the overhead is
  /// one pointer check at the instrumented sites.  Must outlive the
  /// controller.
  telemetry::Telemetry* telemetry = nullptr;
  /// Seeded failure scenario on the monitor->engine control plane.  The
  /// default is fault-free: perfect delivery, no retries, the historical
  /// behavior bit-for-bit.  FaultScenario::shard_crashes flows to the
  /// inference tier (shard outages), everything else to the transport.
  faults::FaultScenario faults;
  /// The aggregation knobs — deadline, late-summary fate, report-fraction
  /// threshold scaling — shared by the transport deadline and both tier
  /// merge stages (see inference::AggregationPolicy; previously the
  /// scattered summary_deadline_s / late_policy fields).
  inference::AggregationPolicy aggregation;
  /// Inference-tier shape: shard count, hash-ring seed, merge policy.  The
  /// default single shard is the historical one-engine deployment,
  /// bit-for-bit (see shard::InferenceTier).
  shard::ShardingConfig sharding;
  /// Detection observability: alert provenance capture and summary-quality
  /// drift monitoring (both default on; provenance additionally requires
  /// engine.record_provenance, fidelity recording summarizer.record_fidelity
  /// — all default on).
  observe::ObserveConfig observe;
  /// Persistence (src/store): when non-empty, every closed epoch's
  /// aggregated summaries, alerts and provenance are appended to
  /// time-sharded mmap'd logs under this directory, with one EpochMeta
  /// commit record per epoch.  A controller constructed over an existing
  /// store resumes at the epoch after the last committed one (torn shard
  /// tails and uncommitted epochs are truncated on open); subsequent
  /// epochs are byte-identical to an uninterrupted run with the default
  /// stateless backends (kJacobi + kLloyd) and the default
  /// LatePolicy::kDiscard.  Under kRollForward, late summaries still
  /// awaiting roll-forward at the moment of the crash live only in memory
  /// and are not replayed, so the first resumed epoch aggregates without
  /// them.  Empty (default) = no
  /// persistence.  Store I/O failures never interrupt the deployment: the
  /// store goes inert (see store::DeploymentStore::failed).
  std::string store_dir;
  /// Epochs per .jstore shard file (shard roll = msync + truncate of the
  /// finished shard).
  std::uint64_t store_epochs_per_shard = 64;
  /// Persist the operational timeline: one kMetrics record (the metrics
  /// registry's delta since the previous commit — deterministic metrics
  /// only, see store/metrics_codec) and one kEvents flight-event batch per
  /// epoch, committed under the epoch's EpochMeta.  jaal_doctor --store
  /// replays them offline into the exact live HealthReport / SLO summary.
  /// Requires store_dir; the metrics side additionally requires telemetry.
  /// Off by default (the ops log then stays empty).
  bool store_metrics = false;
};

/// Everything observed during one epoch.  The degraded-mode fields are all
/// zero / 1.0 on a fault-free epoch.
struct EpochResult {
  double end_time = 0.0;
  std::vector<inference::Alert> alerts;
  /// Summaries aggregated on time this epoch.
  std::size_t monitors_reporting = 0;
  std::uint64_t packets = 0;
  std::size_t monitors_crashed = 0;   ///< In a crash window this epoch.
  std::size_t summaries_dropped = 0;  ///< Lost on the transport.
  std::size_t summaries_late = 0;     ///< Arrived past the deadline.
  std::size_t summaries_rolled_in = 0;  ///< Late arrivals carried in from
                                        ///< earlier epochs (kRollForward).
  std::uint64_t packets_lost = 0;     ///< Ingress lost to crashed monitors.
  /// Summaries delivered by the transport but refused because their owning
  /// inference shard was down (faults::ShardCrashWindow).  They count
  /// against report_fraction exactly like transport drops.
  std::size_t summaries_lost_shard = 0;
  /// Per-shard accounting (shard::InferenceTier::shard_stats); one entry
  /// per shard, in shard order, every epoch.
  std::vector<shard::ShardEpochStats> shards;
  /// Summaries delivered in time over summaries expected (produced plus
  /// crashed); the engine scales its count thresholds by it and stamps it
  /// on every alert as Alert::confidence.
  double report_fraction = 1.0;
  /// Per-monitor summary fidelity this epoch (monitor order; silent and
  /// crashed monitors absent).  Empty when fidelity recording is off.
  std::vector<observe::FidelityStats> fidelity;
  /// Drift transitions raised while closing this epoch.
  std::vector<observe::HealthEvent> drift_events;
  /// The caution signal in effect for this epoch's inference (fraction of
  /// monitors whose summary fidelity is drifting).
  double caution = 0.0;
  /// Wall-clock critical path of this epoch's close (telemetry + profiling
  /// on; nullopt otherwise).  Stage self-times, the longest root->leaf
  /// path, and straggler attribution across sibling spans — see
  /// telemetry::CriticalPath.
  std::optional<telemetry::CriticalPath> profile;

  [[nodiscard]] bool degraded() const noexcept {
    return report_fraction < 1.0;
  }
};

class JaalController {
 public:
  /// Throws std::invalid_argument for zero monitors or an invalid fault
  /// scenario (construction-time misconfiguration only; the per-epoch path
  /// never throws — see the error policy in jaal.hpp).
  JaalController(const JaalConfig& cfg, std::vector<rules::Rule> rules);

  /// Feeds packets from `source` until `duration` simulated seconds elapse,
  /// closing an epoch every cfg.epoch_seconds.  Returns per-epoch results.
  [[nodiscard]] std::vector<EpochResult> run(trace::PacketSource& source,
                                             double duration);

  /// Routes one packet to its monitor (flow-hash); exposed for tests and
  /// for callers that drive epochs manually.  Packets bound for a monitor
  /// inside a crash window are lost (counted, never observed).
  void ingest(const packet::PacketRecord& pkt);

  /// Closes the current epoch: flush monitors, ship summaries through the
  /// fault transport, aggregate what arrived in time, infer.
  [[nodiscard]] EpochResult close_epoch(double now);

  /// Aggregate communication statistics over all monitors plus feedback.
  [[nodiscard]] CommStats comm() const;

  /// The inference tier the controller drives (shard topology, per-shard
  /// stats, the root engine).
  [[nodiscard]] const shard::InferenceTier& tier() const noexcept {
    return tier_;
  }
  /// The tier's root engine (stats, questions, thresholds) — the seam every
  /// pre-tier consumer used; kept so alerting pipelines don't care whether
  /// the deployment is sharded.
  [[nodiscard]] const inference::InferenceEngine& engine() const noexcept {
    return tier_.engine();
  }
  [[nodiscard]] const std::vector<Monitor>& monitors() const noexcept {
    return monitors_;
  }
  /// Transport-level fault accounting (drops, lateness, retry totals).
  [[nodiscard]] const faults::TransportStats& fault_stats() const noexcept {
    return transport_.stats();
  }

  /// The deployment's health ledger (fidelity baselines, drift state,
  /// degradation accounting) — close_epoch feeds it every epoch.
  [[nodiscard]] const observe::HealthTracker& health() const noexcept {
    return health_;
  }
  /// Assembles the epoch health report from everything seen so far.  The
  /// scoreboard is left empty (a live deployment has no labels); harnesses
  /// with labeled trials fill it in (see examples/jaal_doctor).
  [[nodiscard]] observe::HealthReport health_report() const {
    return health_.report();
  }

  /// Resolved execution-runtime width (1 when running serial).
  [[nodiscard]] std::size_t threads() const noexcept {
    return pool_ ? pool_->threads() : 1;
  }

  /// The epoch close_epoch() will stamp next.  0 on a fresh deployment;
  /// last committed + 1 when resumed from a store.
  [[nodiscard]] std::uint64_t next_epoch() const noexcept {
    return epoch_index_;
  }

  /// The persistence layer, when JaalConfig::store_dir is set (null
  /// otherwise).  Exposed for health checks: store()->failed(),
  /// torn_bytes_truncated(), last_committed_epoch().
  [[nodiscard]] const store::DeploymentStore* store() const noexcept {
    return store_.get();
  }

  /// Runtime counters (tasks, queue high-water, per-stage latency); nullopt
  /// when running serial.
  [[nodiscard]] std::optional<runtime::RuntimeStatsSnapshot> runtime_stats()
      const;

  /// The flight recorder, when ObserveConfig::flight_recorder is on (null
  /// otherwise).  dump_jsonl() gives the on-demand dump.
  [[nodiscard]] const observe::FlightRecorder* flight_recorder()
      const noexcept {
    return flight_.get();
  }
  /// The SLO tracker, when ObserveConfig::slo is on (null otherwise).
  [[nodiscard]] const observe::SloTracker* slo() const noexcept {
    return slo_.get();
  }
  /// The most recent automatic flight dump — taken when an epoch close
  /// raises the health report's top finding severity above its previous
  /// high-water mark.  Empty until the first regression.
  [[nodiscard]] const std::string& last_flight_dump() const noexcept {
    return last_flight_dump_;
  }

 private:
  JaalConfig cfg_;
  std::shared_ptr<runtime::ThreadPool> pool_;  ///< Null when threads == 1.
  std::vector<Monitor> monitors_;
  faults::SummaryTransport transport_;
  shard::InferenceTier tier_;
  observe::HealthTracker health_;
  /// Persistence sink (JaalConfig::store_dir); null when persistence is
  /// off.
  std::unique_ptr<store::DeploymentStore> store_;
  /// Late summaries awaiting the next epoch (LatePolicy::kRollForward).
  std::vector<summarize::MonitorSummary> carry_;
  /// Flight recorder (ObserveConfig::flight_recorder); null when off.
  std::unique_ptr<observe::FlightRecorder> flight_;
  /// SLO tracker (ObserveConfig::slo); null when off.
  std::unique_ptr<observe::SloTracker> slo_;
  /// Baseline for per-epoch metrics deltas (store_metrics): the registry
  /// snapshot at the previous commit (empty at construction, so the first
  /// epoch's delta covers everything since startup).
  telemetry::MetricsSnapshot prev_metrics_;
  /// Seq counter for *persisted* flight events (the recorder keeps its own;
  /// this one stays deterministic even when the ring is off).
  std::uint64_t flight_seq_ = 0;
  /// High-water severity of the health report's top finding; an epoch
  /// raising it triggers an automatic flight dump.
  double last_top_severity_ = 0.0;
  std::string last_flight_dump_;
  std::uint64_t epoch_packets_ = 0;
  std::uint64_t epoch_lost_packets_ = 0;
  std::uint64_t epoch_index_ = 0;  ///< Trace id of the next epoch's trace.
  std::uint64_t slo_prev_rf_breaches_ = 0;
  std::uint64_t slo_prev_lat_breaches_ = 0;
  std::uint64_t flight_dropped_prev_ = 0;
  telemetry::Counter* tel_degraded_epochs_ = nullptr;
  telemetry::Counter* tel_rolled_forward_ = nullptr;
  telemetry::Counter* tel_packets_lost_ = nullptr;
  telemetry::Counter* tel_drift_events_ = nullptr;
  telemetry::Gauge* tel_monitors_drifting_ = nullptr;
  telemetry::Gauge* tel_caution_permille_ = nullptr;
  telemetry::Counter* tel_flight_events_ = nullptr;
  telemetry::Counter* tel_flight_dropped_ = nullptr;
  telemetry::Counter* tel_flight_dumps_ = nullptr;
  telemetry::Counter* tel_slo_epochs_ = nullptr;
  telemetry::Counter* tel_slo_rf_breaches_ = nullptr;
  telemetry::Counter* tel_slo_lat_breaches_ = nullptr;
  telemetry::Gauge* tel_slo_burn_ = nullptr;
  telemetry::Gauge* tel_slo_rf_budget_ = nullptr;
  telemetry::Gauge* tel_slo_lat_budget_ = nullptr;
  /// jaal_profile_* family (telemetry + ObserveConfig::profile).
  telemetry::Histogram* tel_profile_path_ms_ = nullptr;
  telemetry::Counter* tel_profile_epochs_ = nullptr;
  telemetry::Counter* tel_profile_stragglers_ = nullptr;
  /// Lazily-bound per-stage exclusive-time histograms, keyed by stage
  /// name (labels are interned by the registry; this cache just avoids
  /// re-formatting the label on every epoch).
  std::vector<std::pair<std::string, telemetry::Histogram*>>
      tel_profile_stage_;
};

}  // namespace jaal::core
