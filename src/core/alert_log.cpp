#include "core/alert_log.hpp"

#include <ostream>

#include "inference/alert_json.hpp"

namespace jaal::core {

std::string alert_to_json(const inference::Alert& alert,
                          double epoch_end_time) {
  // The encoder lives in inference:: so the persistence layer (src/store)
  // can share the exact byte format without depending on jaal_core.
  return inference::alert_to_json(alert, epoch_end_time);
}

AlertLogger::AlertLogger(std::ostream& out) : out_(&out) {}

std::size_t AlertLogger::log_epoch(double epoch_end_time,
                                   const std::vector<inference::Alert>& alerts) {
  for (const auto& alert : alerts) {
    *out_ << core::alert_to_json(alert, epoch_end_time) << '\n';
    ++lines_;
  }
  return alerts.size();
}

}  // namespace jaal::core
