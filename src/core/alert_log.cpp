#include "core/alert_log.hpp"

#include <cstdio>
#include <ostream>

namespace jaal::core {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

std::string alert_to_json(const inference::Alert& alert,
                          double epoch_end_time) {
  std::string out = "{\"time\":";
  char num[64];
  std::snprintf(num, sizeof(num), "%.6f", epoch_end_time);
  out += num;
  out += ",\"sid\":" + std::to_string(alert.sid);
  out += ",\"msg\":\"";
  append_escaped(out, alert.msg);
  out += "\",\"matched_packets\":" + std::to_string(alert.matched_packets);
  out += ",\"distributed\":";
  out += alert.distributed ? "true" : "false";
  out += ",\"via_feedback\":";
  out += alert.via_feedback ? "true" : "false";
  std::snprintf(num, sizeof(num), "%.8f", alert.variance);
  out += ",\"variance\":";
  out += num;
  out += "}";
  return out;
}

AlertLogger::AlertLogger(std::ostream& out) : out_(&out) {}

std::size_t AlertLogger::log_epoch(double epoch_end_time,
                                   const std::vector<inference::Alert>& alerts) {
  for (const auto& alert : alerts) {
    *out_ << alert_to_json(alert, epoch_end_time) << '\n';
    ++lines_;
  }
  return alerts.size();
}

}  // namespace jaal::core
