#include "core/monitor.hpp"

#include <algorithm>

namespace jaal::core {

Monitor::Monitor(summarize::MonitorId id,
                 const summarize::SummarizerConfig& cfg)
    : id_(id), summarizer_(cfg, id) {}

void Monitor::observe(const packet::PacketRecord& pkt) {
  // Reserve the full batch up front on the first packet of an epoch, so the
  // per-packet hot path never reallocates mid-batch (clear() after a flush
  // keeps the capacity, so this branch is effectively free afterwards).
  if (buffer_.capacity() < summarizer_.config().batch_size) {
    buffer_.reserve(summarizer_.config().batch_size);
  }
  buffer_.push_back(pkt);
  ++observed_;
  comm_.raw_header_bytes += packet::kHeadersBytes;
}

bool Monitor::batch_ready() const noexcept {
  return buffer_.size() >= summarizer_.config().batch_size;
}

std::optional<summarize::MonitorSummary> Monitor::flush_epoch() {
  epoch_store_.clear();
  if (buffer_.size() < summarizer_.config().min_batch) {
    // Below n_min the SVD/clustering quality collapses (§5.1): keep
    // buffering; the packets roll into the next epoch.
    return std::nullopt;
  }
  summarize::SummarizeOutput out = summarizer_.summarize(buffer_);

  // Build the per-epoch centroid -> raw packet map (§7's hash table).
  std::size_t k = 0;
  for (std::size_t c : out.assignment) k = std::max(k, c + 1);
  epoch_store_.assign(k, {});
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    epoch_store_[out.assignment[i]].push_back(buffer_[i]);
  }
  buffer_.clear();

  comm_.summary_bytes += summarize::wire_bytes(out.summary);
  return std::move(out.summary);
}

std::vector<packet::PacketRecord> Monitor::raw_packets_for(
    const std::vector<std::size_t>& centroid_indices) const {
  std::vector<packet::PacketRecord> out;
  for (std::size_t c : centroid_indices) {
    if (c >= epoch_store_.size()) continue;
    out.insert(out.end(), epoch_store_[c].begin(), epoch_store_[c].end());
  }
  return out;
}

}  // namespace jaal::core
