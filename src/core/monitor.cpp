#include "core/monitor.hpp"

#include <algorithm>

namespace jaal::core {
namespace {

/// Largest frame a monitor will buffer: jumbo-frame MTU.  Legitimate traffic
/// in the experiments tops out at standard Ethernet sizes (~1500 bytes).
constexpr std::uint16_t kMaxFrameBytes = 9000;

/// Header consistency: IPv4 + TCP with lengths that can actually hold the
/// headers they declare.
bool is_malformed(const packet::PacketRecord& pkt) noexcept {
  if (pkt.ip.version != 4 || pkt.ip.protocol != 6) return true;
  if (pkt.ip.ihl < 5 || pkt.tcp.data_offset < 5) return true;
  const std::uint32_t min_len =
      4u * (std::uint32_t{pkt.ip.ihl} + std::uint32_t{pkt.tcp.data_offset});
  return pkt.ip.total_length < min_len;
}

}  // namespace

Monitor::Monitor(summarize::MonitorId id,
                 const summarize::SummarizerConfig& cfg)
    : id_(id), summarizer_(cfg, id) {}

void Monitor::set_telemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  summarizer_.set_telemetry(tel);
  if (tel_ == nullptr) {
    tel_observed_ = tel_malformed_ = tel_oversized_ = nullptr;
    tel_batches_ = tel_silent_epochs_ = tel_summary_bytes_ = nullptr;
    return;
  }
  tel_observed_ = &tel_->metrics.counter("jaal_monitor_packets_observed_total");
  tel_malformed_ =
      &tel_->metrics.counter("jaal_monitor_packets_malformed_total");
  tel_oversized_ =
      &tel_->metrics.counter("jaal_monitor_packets_oversized_total");
  tel_batches_ = &tel_->metrics.counter("jaal_monitor_batches_flushed_total");
  tel_silent_epochs_ =
      &tel_->metrics.counter("jaal_monitor_silent_epochs_total");
  tel_summary_bytes_ = &tel_->metrics.counter("jaal_monitor_summary_bytes_total");
}

void Monitor::observe(const packet::PacketRecord& pkt) {
  if (is_malformed(pkt)) {
    ++malformed_;
    if (tel_malformed_ != nullptr) tel_malformed_->add(1);
    return;
  }
  if (pkt.ip.total_length > kMaxFrameBytes) {
    ++oversized_;
    if (tel_oversized_ != nullptr) tel_oversized_->add(1);
    return;
  }
  // Reserve the full batch up front on the first packet of an epoch, so the
  // per-packet hot path never reallocates mid-batch (clear() after a flush
  // keeps the capacity, so this branch is effectively free afterwards).
  if (buffer_.capacity() < summarizer_.config().batch_size) {
    buffer_.reserve(summarizer_.config().batch_size);
  }
  buffer_.push_back(pkt);
  ++observed_;
  if (tel_observed_ != nullptr) tel_observed_->add(1);
  comm_.raw_header_bytes += packet::kHeadersBytes;
}

bool Monitor::batch_ready() const noexcept {
  return buffer_.size() >= summarizer_.config().batch_size;
}

std::optional<summarize::MonitorSummary> Monitor::flush_epoch(
    const telemetry::SpanContext& parent) {
  store_offsets_.clear();
  store_packets_.clear();
  last_fidelity_.reset();
  if (buffer_.size() < summarizer_.config().min_batch) {
    // Below n_min the SVD/clustering quality collapses (§5.1): keep
    // buffering; the packets roll into the next epoch.
    if (tel_silent_epochs_ != nullptr) tel_silent_epochs_->add(1);
    return std::nullopt;
  }
  summarize::SummarizeOutput out = summarizer_.summarize(buffer_, parent);
  last_fidelity_ = out.fidelity;

  // Build the per-epoch centroid -> raw packet map (§7's hash table) as a
  // CSR layout via counting sort on the assignment: one pass to count, one
  // prefix sum, one pass to scatter.
  std::size_t k = 0;
  for (std::size_t c : out.assignment) k = std::max(k, c + 1);
  store_offsets_.assign(k + 1, 0);
  for (std::size_t c : out.assignment) ++store_offsets_[c + 1];
  for (std::size_t c = 0; c < k; ++c) {
    store_offsets_[c + 1] += store_offsets_[c];
  }
  store_packets_.resize(buffer_.size());
  std::vector<std::size_t> cursor(store_offsets_.begin(),
                                  store_offsets_.end() - 1);
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    store_packets_[cursor[out.assignment[i]]++] = buffer_[i];
  }
  buffer_.clear();

  const std::size_t bytes = summarize::wire_bytes(out.summary);
  comm_.summary_bytes += bytes;
  if (tel_batches_ != nullptr) {
    tel_batches_->add(1);
    tel_summary_bytes_->add(bytes);
  }
  return std::move(out.summary);
}

void Monitor::discard_epoch() {
  lost_to_crash_ += buffer_.size();
  buffer_.clear();
  store_offsets_.clear();
  store_packets_.clear();
  last_fidelity_.reset();
}

std::vector<packet::PacketRecord> Monitor::raw_packets_for(
    const std::vector<std::size_t>& centroid_indices) const {
  std::vector<packet::PacketRecord> out;
  const std::size_t k =
      store_offsets_.empty() ? 0 : store_offsets_.size() - 1;
  for (std::size_t c : centroid_indices) {
    if (c >= k) continue;
    out.insert(out.end(),
               store_packets_.begin() +
                   static_cast<std::ptrdiff_t>(store_offsets_[c]),
               store_packets_.begin() +
                   static_cast<std::ptrdiff_t>(store_offsets_[c + 1]));
  }
  return out;
}

}  // namespace jaal::core
