#include "shard/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace jaal::shard {

std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer: full-avalanche, fixed-width, branch-free.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void ShardingConfig::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("ShardingConfig: shards must be >= 1");
  }
  if (virtual_nodes == 0) {
    throw std::invalid_argument("ShardingConfig: virtual_nodes must be >= 1");
  }
  if (merge == MergePolicy::kReduced && reduce_rows == 0) {
    throw std::invalid_argument(
        "ShardingConfig: MergePolicy::kReduced needs reduce_rows >= 1");
  }
}

HashRing::HashRing(const ShardingConfig& cfg)
    : shards_(cfg.shards), seed_(cfg.hash_seed) {
  cfg.validate();
  points_.reserve(cfg.shards * cfg.virtual_nodes);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    for (std::size_t r = 0; r < cfg.virtual_nodes; ++r) {
      const std::uint64_t position =
          mix64(seed_ ^ mix64((std::uint64_t{s} << 32) | r));
      points_.push_back({position, static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Position collisions (astronomically unlikely) break to the
              // lower shard so the ring order is still total.
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
}

std::size_t HashRing::owner(summarize::MonitorId monitor) const noexcept {
  if (shards_ == 1) return 0;
  const std::uint64_t h = mix64(seed_ ^ (0xA110C8ED00000000ULL | monitor));
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t pos) { return p.position < pos; });
  // Clockwise successor; wrap to the first point past the top of the circle.
  return it == points_.end() ? points_.front().shard : it->shard;
}

}  // namespace jaal::shard
