// Consistent monitor -> shard assignment for the sharded inference tier.
//
// The ring places `virtual_nodes` seeded points per shard on the 64-bit hash
// circle; a monitor is owned by the shard whose point is the clockwise
// successor of the monitor's hashed position.  Consistent hashing keeps the
// assignment stable under resizing: growing from N to N+1 shards moves only
// the monitors that land on the new shard's points, so per-shard state
// (engine caches, telemetry series) survives a scale-out mostly intact.
//
// Determinism: every point is a pure function of (hash_seed, shard, replica)
// and lookups are pure functions of the monitor id — no wall clock, no
// global state — so an assignment replays byte-identically across runs,
// thread counts, and platforms (the mixer is fixed-width integer math).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "summarize/summary.hpp"

namespace jaal::shard {

/// How the tier combines per-shard aggregates into the one the root engine
/// decides over.
enum class MergePolicy : std::uint8_t {
  /// Interleave every shard's rows back into global arrival order and merge
  /// the per-shard match results exactly — alerts, provenance and store
  /// contents are byte-identical to the single-engine path at any shard
  /// count.  The default.
  kExact,
  /// Re-cluster each shard's aggregate down to ShardingConfig::reduce_rows
  /// rows first (the bench_ext_hierarchy reduction), then concatenate.  The
  /// scale mode for very large deployments: matching cost stops growing
  /// with monitor count, but reduced rows no longer map to a single monitor
  /// (origin = kNoOrigin), the feedback loop is unavailable, and results
  /// are *not* byte-identical to the exact path.
  kReduced,
};

/// Configuration of the sharded inference tier.  The default (one shard,
/// exact merge) is the degenerate single-engine deployment, bit-for-bit.
struct ShardingConfig {
  std::size_t shards = 1;
  /// Seeds the ring's point placement; deployments that must agree on the
  /// assignment (e.g. a replayer reasoning about a live run) share the seed.
  std::uint64_t hash_seed = 0x9A41C0DE;
  /// Ring points per shard.  More points smooth the monitor distribution at
  /// the cost of a larger (still tiny) ring.
  std::size_t virtual_nodes = 16;
  MergePolicy merge = MergePolicy::kExact;
  /// Target rows per shard after reduction (MergePolicy::kReduced only).
  std::size_t reduce_rows = 0;

  /// Throws std::invalid_argument on zero shards / virtual nodes, or a
  /// reduced merge without a row target (construction-time error policy).
  void validate() const;
};

/// The ring itself.  Built once at tier construction; lookups are O(log
/// points) binary searches.
class HashRing {
 public:
  /// Throws via ShardingConfig::validate.
  explicit HashRing(const ShardingConfig& cfg);

  /// The shard owning this monitor.
  [[nodiscard]] std::size_t owner(summarize::MonitorId monitor) const noexcept;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };
  std::vector<Point> points_;  ///< Sorted by position.
  std::size_t shards_ = 1;
  std::uint64_t seed_ = 0;
};

/// The fixed 64-bit mixer behind the ring (splitmix64 finalizer) — exposed
/// so tests can pin the placement function itself.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace jaal::shard
