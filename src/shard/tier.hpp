// The sharded inference tier — the deployment-facing detection API.
//
// One InferenceEngine is the scalability ceiling for "millions of users":
// per-question matching cost grows linearly with aggregate rows, i.e. with
// monitor count.  The tier partitions monitors across N engine shards by
// consistent hashing over the monitor id (shard/hash_ring), buffers each
// shard's summaries as they arrive, aggregates hierarchically — a per-shard
// aggregate first, then a cross-shard merge — and runs the shards
// concurrently on the runtime/ channel pool.  The controller (and any other
// deployment code) talks only to this tier; a single-engine deployment is
// the shards == 1 degenerate case, bit-for-bit.
//
// Determinism argument (MergePolicy::kExact): every accepted summary gets an
// arrival sequence number, and the cross-shard merge interleaves shard row
// blocks back into sequence order — reproducing, byte-for-byte, the one tall
// aggregate the single engine would have built.  Algorithm 1's matched rows
// are per-row facts (a full scan; each row's distance depends only on that
// row's bytes and the question) and its matched count is an exact integer
// sum, so per-shard partial matches merge into exactly the global
// SimilarityResult: map shard-local rows to global rows, merge ascending,
// sum the counts, re-derive the alert flag against the root engine's
// scaled_tau_c.  The serial decision/feedback/postprocess phase then runs
// once, at the root, over that merged state — alerts, provenance, and store
// contents are byte-identical to the single-engine path at any shard count
// and any thread count.
//
// Shard loss (faults::ShardCrashWindow): a down shard refuses the summaries
// it owns — they are not aggregated and not persisted, the epoch's report
// fraction drops, thresholds rescale, and inference proceeds over the
// surviving shards.  Degradation, never a crash.
//
// Error policy (jaal.hpp): construction throws std::invalid_argument on an
// invalid ShardingConfig / AggregationPolicy / shard fault window; the
// per-epoch path (begin_epoch / add_summary / aggregate_epoch / infer_epoch)
// never throws.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/scenario.hpp"
#include "inference/engine.hpp"
#include "runtime/thread_pool.hpp"
#include "shard/hash_ring.hpp"
#include "store/store.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::shard {

/// Per-shard accounting for one epoch (EpochResult::shards).
struct ShardEpochStats {
  std::size_t shard = 0;
  std::size_t summaries = 0;  ///< Accepted into this epoch's aggregate.
  std::size_t rows = 0;       ///< Centroid rows those summaries contributed.
  std::uint64_t packets = 0;  ///< Packets represented by those rows.
  /// Summaries refused because the shard was down (ShardCrashWindow).
  std::size_t summaries_lost = 0;
  bool down = false;  ///< In a crash window this epoch.
};

class InferenceTier final {
 public:
  /// `rules` + `engine` configure the root engine (and, at shards > 1, the
  /// per-shard matching engines); `aggregation` is the shared
  /// AggregationPolicy; `shard_faults` the scenario's shard outage windows
  /// (windows naming a shard >= sharding.shards throw).
  InferenceTier(const ShardingConfig& sharding, std::vector<rules::Rule> rules,
                const inference::EngineConfig& engine,
                const inference::AggregationPolicy& aggregation = {},
                std::vector<faults::ShardCrashWindow> shard_faults = {});

  // ---- per-epoch flow (the controller's order) ---------------------------

  /// Opens an epoch: resets buffers and per-shard stats, evaluates crash
  /// windows.  Summaries added before the first begin_epoch land in epoch 0.
  void begin_epoch(std::uint64_t epoch);

  /// Routes one summary to its owning shard.  Returns false when that shard
  /// is down this epoch (the summary is lost and counted); true means it is
  /// buffered for aggregation — and, when a store is attached, persisted in
  /// arrival order (the single-engine aggregation order, so replay and
  /// cross-shard-count store bytes line up).
  bool add_summary(const summarize::MonitorSummary& summary);

  /// Summaries buffered for the current epoch across all shards.
  [[nodiscard]] std::size_t pending() const noexcept;

  /// Builds this epoch's aggregate hierarchy: per-shard aggregates (in
  /// parallel when a pool is attached), then the cross-shard result —
  /// sequence-interleaved under MergePolicy::kExact (byte-identical to the
  /// single-engine Aggregator), per-shard reduced + concatenated under
  /// kReduced.  The returned reference is valid until the next begin_epoch.
  /// At shards > 1 with telemetry attached, per-shard 'shard_aggregate'
  /// spans (key = shard) and a 'cross_shard_merge' span are recorded under
  /// `parent` (the controller's aggregate span).
  [[nodiscard]] const inference::AggregatedSummary& aggregate_epoch(
      const telemetry::SpanContext& parent = {});

  /// Runs inference over the aggregate built by aggregate_epoch: per-shard
  /// matching fans out over the pool, partial matches merge exactly, and
  /// the root engine's serial decision/feedback phase runs once.  Under
  /// kReduced the feedback loop is unavailable (`fetch` is ignored).  At
  /// shards > 1 with telemetry attached, per-shard 'shard_match' spans and
  /// a 'cross_shard_merge' span are recorded under `parent`.
  [[nodiscard]] std::vector<inference::Alert> infer_epoch(
      const inference::RawPacketFetcher& fetch,
      const telemetry::SpanContext& parent = {});

  /// Per-shard accounting for the current epoch (valid any time after
  /// begin_epoch; reset by the next one).
  [[nodiscard]] const std::vector<ShardEpochStats>& shard_stats()
      const noexcept {
    return stats_;
  }

  // ---- one-shot inference (replay- and workbench-style callers) ----------

  /// Runs the root engine over a pre-built aggregate, bypassing the
  /// epoch/shard flow — for callers that already hold one aggregate
  /// (retroactive replay, rule workbenches).  Identical to
  /// InferenceEngine::infer.
  [[nodiscard]] std::vector<inference::Alert> infer(
      const inference::AggregatedSummary& aggregate,
      const inference::RawPacketFetcher& fetch,
      const telemetry::SpanContext& parent = {}) {
    return root_.infer(aggregate, fetch, parent);
  }

  // ---- topology ----------------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return ring_.shards();
  }
  [[nodiscard]] std::size_t shard_of(summarize::MonitorId m) const noexcept {
    return ring_.owner(m);
  }
  /// Whether a shard is up in the current epoch.
  [[nodiscard]] bool shard_up(std::size_t s) const noexcept {
    return s < stats_.size() && !stats_[s].down;
  }
  [[nodiscard]] const ShardingConfig& sharding() const noexcept {
    return sharding_;
  }

  // ---- root-engine surface (forwarded knobs) -----------------------------

  /// The root engine: decision phase, stats, questions, rules.  The mutable
  /// overload exists for replay-style callers (store::StoreReplayer takes
  /// an engine); deployment code should not need it.
  [[nodiscard]] const inference::InferenceEngine& engine() const noexcept {
    return root_;
  }
  [[nodiscard]] inference::InferenceEngine& engine() noexcept { return root_; }

  void set_tau_c_scale(double scale) noexcept {
    root_.set_tau_c_scale(scale);
  }
  void set_report_fraction(double fraction) noexcept {
    root_.set_report_fraction(fraction);
  }
  void set_caution(double caution) noexcept { root_.set_caution(caution); }

  /// Attaches the shared runtime: the tier fans per-shard aggregation and
  /// matching out over it, and the root engine parallelizes its own
  /// matching in the shards == 1 path.  Null detaches (serial).
  void set_pool(std::shared_ptr<runtime::ThreadPool> pool);

  /// Attaches telemetry to the root engine, plus — at shards > 1 —
  /// per-shard 'jaal_shard_*{shard="..."}' series.  (Registered only for a
  /// genuinely sharded tier so a shards == 1 deployment's metric set is
  /// unchanged; the persisted ops timeline excludes them either way, see
  /// telemetry::is_tier_shape_metric.)
  void set_telemetry(telemetry::Telemetry* tel);

  /// Attaches the persistence sink: add_summary persists every *accepted*
  /// summary under the current epoch (refused ones are lost, matching the
  /// aggregate).  Null detaches.  Must outlive the tier.
  void set_store(store::DeploymentStore* store) noexcept { store_ = store; }

 private:
  struct Shard {
    /// Buffered summaries in arrival order, already reconstructed to
    /// combined form; seq[i] is buf[i]'s global arrival number.
    std::vector<summarize::CombinedSummary> buf;
    std::vector<std::uint64_t> seq;
    /// This epoch's shard-level aggregate and its row map into the global
    /// aggregate (MergePolicy::kExact, shards > 1 only).
    inference::AggregatedSummary agg;
    std::vector<std::size_t> to_global;
    /// Matching engine (shards > 1, kExact only; never decides, no
    /// telemetry, no pool — shards themselves run concurrently).
    std::unique_ptr<inference::InferenceEngine> engine;
    telemetry::Counter* tel_summaries = nullptr;
    telemetry::Counter* tel_rows = nullptr;
    telemetry::Counter* tel_lost = nullptr;
    telemetry::Counter* tel_down_epochs = nullptr;
  };

  /// Builds one shard's aggregate from its buffer (concatenation in arrival
  /// order — the shard-level Aggregator).
  [[nodiscard]] static inference::AggregatedSummary build_shard_aggregate(
      const Shard& s);

  ShardingConfig sharding_;
  HashRing ring_;
  inference::InferenceEngine root_;
  std::vector<Shard> shards_;
  std::vector<ShardEpochStats> stats_;
  std::vector<faults::ShardCrashWindow> shard_faults_;
  telemetry::Telemetry* tel_ = nullptr;
  std::shared_ptr<runtime::ThreadPool> pool_;
  store::DeploymentStore* store_ = nullptr;
  inference::AggregatedSummary global_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  bool aggregated_ = false;  ///< aggregate_epoch ran for the current epoch.
};

}  // namespace jaal::shard
