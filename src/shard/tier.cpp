#include "shard/tier.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/channel.hpp"
#include "telemetry/export.hpp"

namespace jaal::shard {
namespace {

summarize::CombinedSummary to_combined(const summarize::MonitorSummary& s) {
  if (const auto* c = std::get_if<summarize::CombinedSummary>(&s)) return *c;
  return std::get<summarize::SplitSummary>(s).reconstruct();
}

}  // namespace

InferenceTier::InferenceTier(const ShardingConfig& sharding,
                             std::vector<rules::Rule> rules,
                             const inference::EngineConfig& engine,
                             const inference::AggregationPolicy& aggregation,
                             std::vector<faults::ShardCrashWindow> shard_faults)
    : sharding_(sharding),
      ring_(sharding),  // validates the config
      root_(rules, engine, aggregation),
      shards_(sharding.shards),
      stats_(sharding.shards),
      shard_faults_(std::move(shard_faults)) {
  for (const faults::ShardCrashWindow& w : shard_faults_) {
    if (w.restart_epoch < w.crash_epoch) {
      throw std::invalid_argument(
          "InferenceTier: shard crash window restart_epoch < crash_epoch");
    }
    if (w.shard >= sharding_.shards) {
      throw std::invalid_argument(
          "InferenceTier: shard crash window names a shard >= shards");
    }
  }
  // Per-shard matching engines, exact merge only: they run Algorithm 1 over
  // their shard's aggregate; the root engine owns the decision phase.  A
  // reduced tier matches at the root over the concatenated reduction, and a
  // single-shard tier is just the root engine.
  if (sharding_.shards > 1 && sharding_.merge == MergePolicy::kExact) {
    for (std::size_t s = 0; s < sharding_.shards; ++s) {
      shards_[s].engine = std::make_unique<inference::InferenceEngine>(
          rules, engine, aggregation);
    }
  }
  for (std::size_t s = 0; s < stats_.size(); ++s) stats_[s].shard = s;
}

void InferenceTier::set_pool(std::shared_ptr<runtime::ThreadPool> pool) {
  pool_ = std::move(pool);
  root_.set_pool(pool_);
}

void InferenceTier::set_telemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  root_.set_telemetry(tel);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    if (tel == nullptr || sharding_.shards == 1) {
      sh.tel_summaries = sh.tel_rows = nullptr;
      sh.tel_lost = sh.tel_down_epochs = nullptr;
      continue;
    }
    auto& m = tel->metrics;
    const std::string label = std::to_string(s);
    sh.tel_summaries = &m.counter(telemetry::with_label(
        "jaal_shard_summaries_total", "shard", label));
    sh.tel_rows = &m.counter(
        telemetry::with_label("jaal_shard_rows_total", "shard", label));
    sh.tel_lost = &m.counter(telemetry::with_label(
        "jaal_shard_summaries_lost_total", "shard", label));
    sh.tel_down_epochs = &m.counter(
        telemetry::with_label("jaal_shard_down_epochs_total", "shard", label));
  }
}

void InferenceTier::begin_epoch(std::uint64_t epoch) {
  epoch_ = epoch;
  next_seq_ = 0;
  aggregated_ = false;
  global_ = {};
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    sh.buf.clear();
    sh.seq.clear();
    sh.agg = {};
    sh.to_global.clear();
    ShardEpochStats st;
    st.shard = s;
    for (const faults::ShardCrashWindow& w : shard_faults_) {
      if (w.covers(s, epoch)) st.down = true;
    }
    if (st.down && sh.tel_down_epochs != nullptr) sh.tel_down_epochs->add(1);
    stats_[s] = st;
  }
}

bool InferenceTier::add_summary(const summarize::MonitorSummary& summary) {
  const summarize::MonitorId monitor =
      std::visit([](const auto& v) { return v.monitor; }, summary);
  const std::size_t si = ring_.owner(monitor);
  Shard& sh = shards_[si];
  ShardEpochStats& st = stats_[si];
  if (st.down) {
    // The owning shard is dark: the summary is refused, never aggregated
    // and never persisted — it shows up only in the loss accounting (and,
    // through the caller, in the epoch's report fraction).
    ++st.summaries_lost;
    if (sh.tel_lost != nullptr) sh.tel_lost->add(1);
    return false;
  }
  summarize::CombinedSummary combined = to_combined(summary);
  combined.check_invariants();
  // Field-width mismatches are programming errors, same as Aggregator::add.
  for (const Shard& other : shards_) {
    if (!other.buf.empty() &&
        other.buf.front().centroids.cols() != combined.centroids.cols()) {
      throw std::invalid_argument("InferenceTier: field-width mismatch");
    }
  }
  if (store_ != nullptr) store_->put_summary(epoch_, summary);
  ++st.summaries;
  st.rows += combined.centroids.rows();
  for (const std::uint64_t c : combined.counts) st.packets += c;
  if (sh.tel_summaries != nullptr) {
    sh.tel_summaries->add(1);
    sh.tel_rows->add(combined.centroids.rows());
  }
  sh.seq.push_back(next_seq_++);
  sh.buf.push_back(std::move(combined));
  return true;
}

std::size_t InferenceTier::pending() const noexcept {
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.buf.size();
  return total;
}

inference::AggregatedSummary InferenceTier::build_shard_aggregate(
    const Shard& s) {
  inference::AggregatedSummary agg;
  std::size_t total_rows = 0;
  for (const auto& b : s.buf) total_rows += b.centroids.rows();
  const std::size_t cols = s.buf.empty() ? 0 : s.buf.front().centroids.cols();
  agg.centroids = linalg::Matrix(total_rows, cols);
  agg.counts.reserve(total_rows);
  agg.origin.reserve(total_rows);
  agg.local_index.reserve(total_rows);
  std::size_t row = 0;
  for (const auto& b : s.buf) {
    for (std::size_t i = 0; i < b.centroids.rows(); ++i, ++row) {
      const auto src = b.centroids.row(i);
      std::copy(src.begin(), src.end(), agg.centroids.row(row).begin());
      agg.counts.push_back(b.counts[i]);
      agg.origin.push_back(b.monitor);
      agg.local_index.push_back(i);
    }
  }
  return agg;
}

const inference::AggregatedSummary& InferenceTier::aggregate_epoch(
    const telemetry::SpanContext& parent) {
  aggregated_ = true;
  const bool exact = sharding_.merge == MergePolicy::kExact;
  // Tier-shape spans exist only for a genuinely sharded tier, so the
  // shards == 1 span set (and the deterministic exports, which elide them
  // either way) is unchanged.
  const bool trace = tel_ != nullptr && shards_.size() > 1;

  if (shards_.size() == 1 && exact) {
    // Degenerate tier: the shard aggregate IS the global aggregate —
    // byte-identical to the single-engine Aggregator (arrival order).
    global_ = build_shard_aggregate(shards_[0]);
    return global_;
  }

  // Level 1: per-shard aggregates, concurrently on the channel runtime
  // when a pool is attached.  Each task touches only its own shard's
  // buffers; results reduce serially below, so the hierarchy is
  // bit-identical to the serial build.
  const auto build_one = [&](std::size_t s) {
    telemetry::Span span = trace
                               ? tel_->tracer.span("shard_aggregate", parent, s)
                               : telemetry::Span{};
    inference::AggregatedSummary agg = build_shard_aggregate(shards_[s]);
    if (!exact && !agg.empty()) {
      // Hierarchical reduction (the bench_ext_hierarchy extension): bound
      // this shard's contribution to reduce_rows re-clustered rows.  The
      // seed is a pure function of (hash_seed, shard, epoch).
      agg = inference::reduce_aggregate(
          agg, sharding_.reduce_rows,
          mix64(sharding_.hash_seed ^ (std::uint64_t{s} << 40) ^ epoch_));
    }
    span.attr("rows", static_cast<double>(agg.rows()));
    return agg;
  };
  if (pool_ && shards_.size() > 1) {
    using Built = std::pair<std::size_t, inference::AggregatedSummary>;
    runtime::Channel<Built> channel(
        std::max<std::size_t>(std::size_t{2}, pool_->threads()));
    std::mutex error_mu;
    std::exception_ptr error;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      (void)pool_->submit([&, s] {
        inference::AggregatedSummary agg;
        try {
          agg = build_one(s);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!error) error = std::current_exception();
        }
        channel.push({s, std::move(agg)});
      });
    }
    for (std::size_t received = 0; received < shards_.size(); ++received) {
      auto item = channel.pop();
      shards_[item->first].agg = std::move(item->second);
    }
    channel.close();
    if (error) std::rethrow_exception(error);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].agg = build_one(s);
    }
  }

  // Level 2: the cross-shard merge.
  telemetry::Span merge_span =
      trace ? tel_->tracer.span("cross_shard_merge", parent)
            : telemetry::Span{};
  std::size_t total_rows = 0;
  std::size_t cols = 0;
  for (const Shard& sh : shards_) {
    total_rows += sh.agg.rows();
    if (cols == 0) cols = sh.agg.centroids.cols();
  }
  global_ = {};
  global_.centroids = linalg::Matrix(total_rows, cols);
  global_.counts.reserve(total_rows);
  global_.origin.reserve(total_rows);
  global_.local_index.reserve(total_rows);

  if (!exact) {
    // Reduced merge: concatenate the reductions in shard order.  Rows no
    // longer map to a monitor (origin == kNoOrigin); local_index becomes
    // the global row so rows stay uniquely addressable in provenance.
    std::size_t row = 0;
    for (Shard& sh : shards_) {
      for (std::size_t i = 0; i < sh.agg.rows(); ++i, ++row) {
        const auto src = sh.agg.centroids.row(i);
        std::copy(src.begin(), src.end(), global_.centroids.row(row).begin());
        global_.counts.push_back(sh.agg.counts[i]);
        global_.origin.push_back(inference::kNoOrigin);
        global_.local_index.push_back(row);
      }
    }
    return global_;
  }

  // Exact merge: interleave shard row blocks back into arrival (sequence)
  // order, rebuilding byte-for-byte the one tall aggregate the single
  // engine would have produced, and record each shard's local-row ->
  // global-row map for the match merge.
  struct Ref {
    std::uint64_t seq;
    std::uint32_t shard;
    std::uint32_t entry;
  };
  std::vector<Ref> order;
  order.reserve(total_rows);
  std::vector<std::vector<std::size_t>> entry_base(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    sh.to_global.assign(sh.agg.rows(), 0);
    entry_base[s].reserve(sh.buf.size());
    std::size_t base = 0;
    for (std::size_t e = 0; e < sh.buf.size(); ++e) {
      entry_base[s].push_back(base);
      base += sh.buf[e].centroids.rows();
      order.push_back({sh.seq[e], static_cast<std::uint32_t>(s),
                       static_cast<std::uint32_t>(e)});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const Ref& a, const Ref& b) { return a.seq < b.seq; });

  std::size_t row = 0;
  for (const Ref& ref : order) {
    Shard& sh = shards_[ref.shard];
    const std::size_t base = entry_base[ref.shard][ref.entry];
    const std::size_t k = sh.buf[ref.entry].centroids.rows();
    for (std::size_t i = 0; i < k; ++i, ++row) {
      const auto src = sh.agg.centroids.row(base + i);
      std::copy(src.begin(), src.end(), global_.centroids.row(row).begin());
      global_.counts.push_back(sh.agg.counts[base + i]);
      global_.origin.push_back(sh.agg.origin[base + i]);
      global_.local_index.push_back(sh.agg.local_index[base + i]);
      sh.to_global[base + i] = row;
    }
  }
  return global_;
}

std::vector<inference::Alert> InferenceTier::infer_epoch(
    const inference::RawPacketFetcher& fetch,
    const telemetry::SpanContext& parent) {
  if (!aggregated_) (void)aggregate_epoch(parent);
  if (global_.empty()) return {};
  const bool exact = sharding_.merge == MergePolicy::kExact;
  const bool trace = tel_ != nullptr && shards_.size() > 1;

  if (shards_.size() == 1 || !exact) {
    // Single engine over the merged aggregate.  A reduced aggregate has no
    // row -> monitor mapping, so the feedback loop is off (null fetch): the
    // scale tier where raw retrieval would be impractical anyway.
    return root_.infer(global_, exact ? fetch : nullptr, parent);
  }

  // Per-shard matching, concurrently on the channel runtime.  Each shard
  // engine runs Algorithm 1 over its shard aggregate only.
  std::vector<std::vector<inference::QuestionMatch>> parts(shards_.size());
  const auto match_one = [&](std::size_t s) {
    telemetry::Span span = trace ? tel_->tracer.span("shard_match", parent, s)
                                 : telemetry::Span{};
    return shards_[s].agg.empty() ? std::vector<inference::QuestionMatch>{}
                                  : shards_[s].engine->match(shards_[s].agg);
  };
  if (pool_) {
    using Matched =
        std::pair<std::size_t, std::vector<inference::QuestionMatch>>;
    runtime::Channel<Matched> channel(
        std::max<std::size_t>(std::size_t{2}, pool_->threads()));
    std::mutex error_mu;
    std::exception_ptr error;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      (void)pool_->submit([&, s] {
        std::vector<inference::QuestionMatch> matched;
        try {
          matched = match_one(s);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!error) error = std::current_exception();
        }
        channel.push({s, std::move(matched)});
      });
    }
    for (std::size_t received = 0; received < shards_.size(); ++received) {
      auto item = channel.pop();
      parts[item->first] = std::move(item->second);
    }
    channel.close();
    if (error) std::rethrow_exception(error);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) parts[s] = match_one(s);
  }

  // Exact cross-shard match merge: matched rows are per-row facts and the
  // matched count is an integer sum, so the global SimilarityResult is the
  // union of the per-shard partials mapped through to_global, re-sorted
  // into global row order, with the alert flag re-derived against the root
  // engine's threshold.
  telemetry::Span merge_span =
      trace ? tel_->tracer.span("cross_shard_merge", parent)
            : telemetry::Span{};
  const auto& questions = root_.questions();
  const auto merge_part = [&](std::size_t qi, bool strict_part,
                              std::uint64_t tau_c) {
    inference::SimilarityResult out;
    std::vector<std::pair<std::size_t, double>> rows;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (parts[s].empty()) continue;
      const inference::SimilarityResult& part =
          strict_part ? parts[s][qi].strict : parts[s][qi].loose;
      out.matched_count += part.matched_count;
      for (std::size_t j = 0; j < part.matched_rows.size(); ++j) {
        rows.emplace_back(shards_[s].to_global[part.matched_rows[j]],
                          part.matched_distances[j]);
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.matched_rows.reserve(rows.size());
    out.matched_distances.reserve(rows.size());
    for (const auto& [r, d] : rows) {
      out.matched_rows.push_back(r);
      out.matched_distances.push_back(d);
    }
    out.alert = out.matched_count >= tau_c;
    return out;
  };
  std::vector<inference::QuestionMatch> merged(questions.size());
  for (std::size_t qi = 0; qi < questions.size(); ++qi) {
    const std::uint64_t tau_c = root_.scaled_tau_c(questions[qi]);
    merged[qi].strict = merge_part(qi, /*strict_part=*/true, tau_c);
    merged[qi].loose = merge_part(qi, /*strict_part=*/false, tau_c);
  }

  merge_span.finish();

  // One serial decision/feedback/postprocess pass, at the root.
  return root_.decide(global_, merged, fetch, parent);
}

}  // namespace jaal::shard
