// Structure-of-arrays (column-major) companion to the row-major Matrix.
//
// The SIMD kernels in linalg/simd.hpp vectorize across *rows* (points) of a
// batch, which needs each field's values contiguous: column j of an
// n x p batch is one array of n doubles.  SoaMatrix stores exactly that,
// with each column padded to a multiple of 8 doubles so 4/8-wide kernels
// can be pointed at any column without alignment gymnastics (the padding is
// zero-filled and never addressed by the kernels, which take explicit n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace jaal::linalg {

class SoaMatrix {
 public:
  SoaMatrix() = default;

  /// Zero-initialized rows x cols, column-major with padded column stride.
  SoaMatrix(std::size_t rows, std::size_t cols);

  /// Transposing copy of a row-major matrix.
  [[nodiscard]] static SoaMatrix from_rows(const Matrix& m);

  /// Transposing copy back to row-major.
  [[nodiscard]] Matrix to_rows() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Doubles between the starts of adjacent columns (>= rows()).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Start of column c (contiguous; rows() live values, padding after).
  [[nodiscard]] double* col(std::size_t c) noexcept {
    return data_.data() + c * stride_;
  }
  [[nodiscard]] const double* col(std::size_t c) const noexcept {
    return data_.data() + c * stride_;
  }
  [[nodiscard]] std::span<double> col_span(std::size_t c) noexcept {
    return {col(c), rows_};
  }
  [[nodiscard]] std::span<const double> col_span(std::size_t c) const noexcept {
    return {col(c), rows_};
  }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[c * stride_ + r];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[c * stride_ + r];
  }

  /// Base pointer for the SIMD kernels: column j lives at data() + j*stride().
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_;
};

}  // namespace jaal::linalg
