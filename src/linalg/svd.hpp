// Singular value decomposition via one-sided Jacobi rotations.
//
// Jaal decomposes batches of normalized packet headers (n x p, p = 18) to
// reduce the fields mode (§4.2 of the paper).  One-sided Jacobi is a good
// fit: it is simple, numerically robust, and fast when p is small even if n
// is large (cost is O(n p^2) per sweep).
#pragma once

#include <cstddef>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"

namespace jaal::linalg {

/// Thin SVD of an n x p matrix A = U * diag(sigma) * V^T where U is n x m,
/// V is p x m, m = min(n, p) and sigma is sorted descending.
struct SvdResult {
  Matrix u;                    ///< Left singular vectors, n x m.
  std::vector<double> sigma;   ///< Singular values, descending, size m.
  Matrix v;                    ///< Right singular vectors, p x m.
  int sweeps = 0;              ///< Jacobi sweeps spent (telemetry).

  /// Reconstruct U * diag(sigma) * V^T.
  [[nodiscard]] Matrix reconstruct() const;

  /// Reconstruct the optimal rank-r approximation (Eckart-Young).
  /// Throws std::invalid_argument if r > sigma.size().
  [[nodiscard]] Matrix reconstruct_rank(std::size_t r) const;

  /// Smallest rank whose retained singular values carry at least `fraction`
  /// of the total energy (sum of squared singular values).  §4.2 uses 0.90.
  [[nodiscard]] std::size_t rank_for_energy(double fraction) const;
};

struct SvdOptions {
  double tolerance = 1e-12;   ///< Column-orthogonality stopping threshold.
  int max_sweeps = 60;        ///< Hard cap on Jacobi sweeps.
};

/// Computes the thin SVD of `a`.  Throws std::invalid_argument on an empty
/// matrix and std::runtime_error if Jacobi fails to converge (never observed
/// for matrices in [0,1]^{n x p}; the cap is a safety net).
[[nodiscard]] SvdResult svd(const Matrix& a, const SvdOptions& opts = {});

/// Truncated SVD keeping the top-r singular triplets: U_r (n x r),
/// sigma_r (r), V_r (p x r).  Throws if r == 0 or r > min(n, p).
[[nodiscard]] SvdResult truncated_svd(const Matrix& a, std::size_t r,
                                      const SvdOptions& opts = {});

/// Randomized truncated SVD (Halko, Martinsson & Tropp 2011): sketches the
/// range of `a` with a Gaussian test matrix of r + oversample columns
/// (refined by power iterations), orthonormalizes it, and runs the exact
/// Jacobi SVD on the small projected matrix.  Cost is O(n p (r+oversample))
/// instead of O(n p^2) per sweep — useful for monitors running large
/// batches or wide field spaces (e.g. payload term matrices).
/// Accuracy: near-exact when the spectrum decays (packet matrices do;
/// Fig. 10).  Throws if r == 0 or r > min(n, p).
[[nodiscard]] SvdResult randomized_svd(const Matrix& a, std::size_t r,
                                       std::mt19937_64& rng,
                                       std::size_t oversample = 6,
                                       int power_iterations = 2);

}  // namespace jaal::linalg
