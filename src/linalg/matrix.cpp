#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace jaal::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size does not match rows*cols");
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer rows");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix multiply: inner dimensions differ");
  }
  Matrix out(rows_, rhs.cols_);
  // ikj loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rhs_row = rhs.data_.data() + k * rhs.cols_;
      double* out_row = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out_row[j] += a * rhs_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix add: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix subtract: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix out(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) out(i, i) = diag[i];
  return out;
}

Matrix Matrix::top_rows(std::size_t r) const {
  if (r > rows_) throw std::invalid_argument("Matrix::top_rows: r > rows()");
  Matrix out(r, cols_);
  std::copy_n(data_.begin(), r * cols_, out.data_.begin());
  return out;
}

Matrix Matrix::left_cols(std::size_t c) const {
  if (c > cols_) throw std::invalid_argument("Matrix::left_cols: c > cols()");
  Matrix out(rows_, c);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_), c,
                out.data_.begin() + static_cast<std::ptrdiff_t>(r * c));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")";
  if (m.rows() <= 8 && m.cols() <= 8) {
    os << " [";
    for (std::size_t r = 0; r < m.rows(); ++r) {
      os << (r == 0 ? "[" : " [");
      for (std::size_t c = 0; c < m.cols(); ++c) {
        os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
      }
      os << "]" << (r + 1 < m.rows() ? "\n" : "");
    }
    os << "]";
  }
  return os;
}

}  // namespace jaal::linalg
