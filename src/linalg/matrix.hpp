// Dense row-major matrix of doubles.
//
// Deliberately small: Jaal only needs the operations the summarization
// pipeline uses (products, transpose, row views, norms).  All dimensions are
// checked; violations throw std::invalid_argument because they are caller
// programming errors that we want to surface loudly in tests.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

namespace jaal::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled from `data` in row-major order.
  /// Throws std::invalid_argument if data.size() != rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  /// Brace construction from nested lists: Matrix{{1,2},{3,4}}.
  /// Throws std::invalid_argument on ragged rows.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r);
  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  /// Underlying row-major storage.
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product; throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(double scalar) const;

  bool operator==(const Matrix& rhs) const = default;

  /// Frobenius norm: sqrt(sum of squared entries).
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max |a_ij - b_ij|; throws std::invalid_argument on shape mismatch.
  [[nodiscard]] double max_abs_diff(const Matrix& rhs) const;

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector of diagonal entries.
  [[nodiscard]] static Matrix diagonal(std::span<const double> diag);

  /// Keep the first `r` rows (view-copy).  Throws if r > rows().
  [[nodiscard]] Matrix top_rows(std::size_t r) const;

  /// Keep the first `c` columns (view-copy).  Throws if c > cols().
  [[nodiscard]] Matrix left_cols(std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace jaal::linalg
