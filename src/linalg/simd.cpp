#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>
#include <utility>

// Compiled with -ffp-contract=off (see src/CMakeLists.txt): fused
// multiply-adds would let one dispatch level contract a*b+c where another
// does not, breaking the bit-identity contract between levels.

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define JAAL_SIMD_X86 1
#endif

namespace jaal::linalg::simd {
namespace {

#ifdef JAAL_SIMD_X86
typedef double v4d __attribute__((vector_size(32)));
typedef double v8d __attribute__((vector_size(64)));
#endif

template <class VD>
[[gnu::always_inline]] inline VD broadcast(double x) noexcept {
  VD v;
  for (std::size_t l = 0; l < sizeof(VD) / sizeof(double); ++l) v[l] = x;
  return v;
}

template <class VI>
[[gnu::always_inline]] inline VI broadcast_i(long long x) noexcept {
  VI v;
  for (std::size_t l = 0; l < sizeof(VI) / sizeof(long long); ++l) v[l] = x;
  return v;
}

// ---------------------------------------------------------------------------
// nearest_centroids: lanes are points (SoA batch), reduction over fields is
// serial per lane, so every level is bit-identical to the scalar scan.

[[gnu::always_inline]] inline void nearest_one(
    const double* x, std::size_t stride, std::size_t d,
    const double* centroids, std::size_t k, std::size_t i,
    std::size_t* assignment, double* best_dist) noexcept {
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const double* cen = centroids + c * d;
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = x[j * stride + i] - cen[j];
      acc += diff * diff;
    }
    if (acc < best) {
      best = acc;
      best_c = c;
    }
  }
  assignment[i] = best_c;
  best_dist[i] = best;
}

void nearest_centroids_scalar(const double* x, std::size_t stride,
                              std::size_t d, const double* centroids,
                              std::size_t k, std::size_t begin,
                              std::size_t end, std::size_t* assignment,
                              double* best_dist) noexcept {
  for (std::size_t i = begin; i < end; ++i) {
    nearest_one(x, stride, d, centroids, k, i, assignment, best_dist);
  }
}

#ifdef JAAL_SIMD_X86
template <class VD>
[[gnu::always_inline]] inline void nearest_centroids_impl(
    const double* x, std::size_t stride, std::size_t d,
    const double* centroids, std::size_t k, std::size_t begin,
    std::size_t end, std::size_t* assignment, double* best_dist) noexcept {
  constexpr std::size_t kW = sizeof(VD) / sizeof(double);
  using VI = decltype(std::declval<VD>() < std::declval<VD>());
  std::size_t i = begin;
  for (; i + kW <= end; i += kW) {
    VD best = broadcast<VD>(std::numeric_limits<double>::max());
    VI best_c = broadcast_i<VI>(0);
    for (std::size_t c = 0; c < k; ++c) {
      const double* cen = centroids + c * d;
      VD acc = broadcast<VD>(0.0);
      for (std::size_t j = 0; j < d; ++j) {
        VD xv;
        std::memcpy(&xv, x + j * stride + i, sizeof xv);
        const VD diff = xv - broadcast<VD>(cen[j]);
        acc += diff * diff;
      }
      const VI closer = acc < best;
      best = closer ? acc : best;
      best_c = closer ? broadcast_i<VI>(static_cast<long long>(c)) : best_c;
    }
    for (std::size_t l = 0; l < kW; ++l) {
      assignment[i + l] = static_cast<std::size_t>(best_c[l]);
      best_dist[i + l] = best[l];
    }
  }
  for (; i < end; ++i) {
    nearest_one(x, stride, d, centroids, k, i, assignment, best_dist);
  }
}

__attribute__((target("avx2"))) void nearest_centroids_avx2(
    const double* x, std::size_t stride, std::size_t d,
    const double* centroids, std::size_t k, std::size_t begin,
    std::size_t end, std::size_t* assignment, double* best_dist) noexcept {
  nearest_centroids_impl<v4d>(x, stride, d, centroids, k, begin, end,
                              assignment, best_dist);
}

__attribute__((target("avx512f"))) void nearest_centroids_avx512(
    const double* x, std::size_t stride, std::size_t d,
    const double* centroids, std::size_t k, std::size_t begin,
    std::size_t end, std::size_t* assignment, double* best_dist) noexcept {
  nearest_centroids_impl<v8d>(x, stride, d, centroids, k, begin, end,
                              assignment, best_dist);
}
#endif  // JAAL_SIMD_X86

// ---------------------------------------------------------------------------
// nearest_point: lanes are centroids (dimension-major storage); the arg-min
// extracts lanes in ascending centroid order so ties resolve exactly like
// the scalar first-index-wins scan.

Nearest nearest_point_scalar(const double* dims, std::size_t stride,
                             std::size_t d, std::size_t k,
                             const double* v) noexcept {
  Nearest out;
  out.dist = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = v[j] - dims[j * stride + c];
      acc += diff * diff;
    }
    if (acc < out.dist) {
      out.dist = acc;
      out.index = c;
    }
  }
  return out;
}

#ifdef JAAL_SIMD_X86
template <class VD>
[[gnu::always_inline]] inline Nearest nearest_point_impl(
    const double* dims, std::size_t stride, std::size_t d, std::size_t k,
    const double* v) noexcept {
  constexpr std::size_t kW = sizeof(VD) / sizeof(double);
  Nearest out;
  out.dist = std::numeric_limits<double>::max();
  std::size_t c = 0;
  for (; c + kW <= k; c += kW) {
    VD acc = broadcast<VD>(0.0);
    for (std::size_t j = 0; j < d; ++j) {
      VD cv;
      std::memcpy(&cv, dims + j * stride + c, sizeof cv);
      const VD diff = broadcast<VD>(v[j]) - cv;
      acc += diff * diff;
    }
    for (std::size_t l = 0; l < kW; ++l) {
      if (acc[l] < out.dist) {
        out.dist = acc[l];
        out.index = c + l;
      }
    }
  }
  for (; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = v[j] - dims[j * stride + c];
      acc += diff * diff;
    }
    if (acc < out.dist) {
      out.dist = acc;
      out.index = c;
    }
  }
  return out;
}

__attribute__((target("avx2"))) Nearest nearest_point_avx2(
    const double* dims, std::size_t stride, std::size_t d, std::size_t k,
    const double* v) noexcept {
  return nearest_point_impl<v4d>(dims, stride, d, k, v);
}

__attribute__((target("avx512f"))) Nearest nearest_point_avx512(
    const double* dims, std::size_t stride, std::size_t d, std::size_t k,
    const double* v) noexcept {
  return nearest_point_impl<v8d>(dims, stride, d, k, v);
}
#endif  // JAAL_SIMD_X86

// ---------------------------------------------------------------------------
// Reductions: canonical 4-accumulator order at EVERY level.  Virtual lane
// l accumulates elements i with i % 4 == l in ascending i; the final
// combine is (l0 + l1) + (l2 + l3).  The scalar body below IS the
// specification; the AVX2 body reproduces it with one vector accumulator.
// There is deliberately no 8-wide reduction: folding 8 lanes into 4 would
// regroup the partial sums and break bit-identity with this order.

double dot_scalar(const double* a, const double* b, std::size_t n) noexcept {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lane[0] += a[i] * b[i];
    lane[1] += a[i + 1] * b[i + 1];
    lane[2] += a[i + 2] * b[i + 2];
    lane[3] += a[i + 3] * b[i + 3];
  }
  for (std::size_t t = 0; i + t < n; ++t) lane[t] += a[i + t] * b[i + t];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

PairDots pair_dots_scalar(const double* a, const double* b,
                          std::size_t n) noexcept {
  double la[4] = {0.0, 0.0, 0.0, 0.0};
  double lb[4] = {0.0, 0.0, 0.0, 0.0};
  double lg[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      la[l] += a[i + l] * a[i + l];
      lb[l] += b[i + l] * b[i + l];
      lg[l] += a[i + l] * b[i + l];
    }
  }
  for (std::size_t t = 0; i + t < n; ++t) {
    la[t] += a[i + t] * a[i + t];
    lb[t] += b[i + t] * b[i + t];
    lg[t] += a[i + t] * b[i + t];
  }
  PairDots out;
  out.alpha = (la[0] + la[1]) + (la[2] + la[3]);
  out.beta = (lb[0] + lb[1]) + (lb[2] + lb[3]);
  out.gamma = (lg[0] + lg[1]) + (lg[2] + lg[3]);
  return out;
}

#ifdef JAAL_SIMD_X86
__attribute__((target("avx2"))) double dot_avx2(const double* a,
                                                const double* b,
                                                std::size_t n) noexcept {
  v4d acc = broadcast<v4d>(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    v4d av, bv;
    std::memcpy(&av, a + i, sizeof av);
    std::memcpy(&bv, b + i, sizeof bv);
    acc += av * bv;
  }
  double lane[4] = {acc[0], acc[1], acc[2], acc[3]};
  for (std::size_t t = 0; i + t < n; ++t) lane[t] += a[i + t] * b[i + t];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) PairDots pair_dots_avx2(
    const double* a, const double* b, std::size_t n) noexcept {
  v4d aa = broadcast<v4d>(0.0);
  v4d bb = broadcast<v4d>(0.0);
  v4d ab = broadcast<v4d>(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    v4d av, bv;
    std::memcpy(&av, a + i, sizeof av);
    std::memcpy(&bv, b + i, sizeof bv);
    aa += av * av;
    bb += bv * bv;
    ab += av * bv;
  }
  double la[4] = {aa[0], aa[1], aa[2], aa[3]};
  double lb[4] = {bb[0], bb[1], bb[2], bb[3]};
  double lg[4] = {ab[0], ab[1], ab[2], ab[3]};
  for (std::size_t t = 0; i + t < n; ++t) {
    la[t] += a[i + t] * a[i + t];
    lb[t] += b[i + t] * b[i + t];
    lg[t] += a[i + t] * b[i + t];
  }
  PairDots out;
  out.alpha = (la[0] + la[1]) + (la[2] + la[3]);
  out.beta = (lb[0] + lb[1]) + (lb[2] + lb[3]);
  out.gamma = (lg[0] + lg[1]) + (lg[2] + lg[3]);
  return out;
}
#endif  // JAAL_SIMD_X86

// ---------------------------------------------------------------------------
// rotate_pair: elementwise, so any width is bit-identical.

void rotate_pair_scalar(double* a, double* b, std::size_t n, double cs,
                        double sn) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double ai = a[i];
    a[i] = cs * ai - sn * b[i];
    b[i] = sn * ai + cs * b[i];
  }
}

#ifdef JAAL_SIMD_X86
template <class VD>
[[gnu::always_inline]] inline void rotate_pair_impl(double* a, double* b,
                                                    std::size_t n, double cs,
                                                    double sn) noexcept {
  constexpr std::size_t kW = sizeof(VD) / sizeof(double);
  const VD csv = broadcast<VD>(cs);
  const VD snv = broadcast<VD>(sn);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    VD av, bv;
    std::memcpy(&av, a + i, sizeof av);
    std::memcpy(&bv, b + i, sizeof bv);
    const VD ar = csv * av - snv * bv;
    const VD br = snv * av + csv * bv;
    std::memcpy(a + i, &ar, sizeof ar);
    std::memcpy(b + i, &br, sizeof br);
  }
  for (; i < n; ++i) {
    const double ai = a[i];
    a[i] = cs * ai - sn * b[i];
    b[i] = sn * ai + cs * b[i];
  }
}

__attribute__((target("avx2"))) void rotate_pair_avx2(
    double* a, double* b, std::size_t n, double cs, double sn) noexcept {
  rotate_pair_impl<v4d>(a, b, n, cs, sn);
}

__attribute__((target("avx512f"))) void rotate_pair_avx512(
    double* a, double* b, std::size_t n, double cs, double sn) noexcept {
  rotate_pair_impl<v8d>(a, b, n, cs, sn);
}
#endif  // JAAL_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch state.

Level detect_cpu() noexcept {
#ifdef JAAL_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level clamp(Level level) noexcept {
  return level <= detected() ? level : detected();
}

Level env_level(Level best) noexcept {
  const char* env = std::getenv("JAAL_SIMD");
  if (env == nullptr) return best;
  const std::string_view v(env);
  if (v == "scalar" || v == "off" || v == "0") return Level::kScalar;
  if (v == "avx2") return clamp(Level::kAvx2);
  if (v == "avx512") return clamp(Level::kAvx512);
  return best;  // unknown value: keep the detected level
}

std::atomic<Level>& active_state() noexcept {
  static std::atomic<Level> state{env_level(detect_cpu())};
  return state;
}

}  // namespace

Level detected() noexcept {
  static const Level level = detect_cpu();
  return level;
}

Level active() noexcept {
  return active_state().load(std::memory_order_relaxed);
}

Level force_level(Level level) noexcept {
  const Level effective = clamp(level);
  active_state().store(effective, std::memory_order_relaxed);
  return effective;
}

std::string_view level_name(Level level) noexcept {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
    case Level::kScalar:
      break;
  }
  return "scalar";
}

double dot(const double* a, const double* b, std::size_t n) noexcept {
#ifdef JAAL_SIMD_X86
  // Reductions dispatch to the 4-wide body at most (determinism contract).
  if (active() != Level::kScalar) return dot_avx2(a, b, n);
#endif
  return dot_scalar(a, b, n);
}

PairDots pair_dots(const double* a, const double* b, std::size_t n) noexcept {
#ifdef JAAL_SIMD_X86
  if (active() != Level::kScalar) return pair_dots_avx2(a, b, n);
#endif
  return pair_dots_scalar(a, b, n);
}

void rotate_pair(double* a, double* b, std::size_t n, double cs,
                 double sn) noexcept {
#ifdef JAAL_SIMD_X86
  switch (active()) {
    case Level::kAvx512:
      return rotate_pair_avx512(a, b, n, cs, sn);
    case Level::kAvx2:
      return rotate_pair_avx2(a, b, n, cs, sn);
    case Level::kScalar:
      break;
  }
#endif
  rotate_pair_scalar(a, b, n, cs, sn);
}

void nearest_centroids(const double* x, std::size_t stride, std::size_t d,
                       const double* centroids, std::size_t k,
                       std::size_t begin, std::size_t end,
                       std::size_t* assignment, double* best_dist) noexcept {
#ifdef JAAL_SIMD_X86
  switch (active()) {
    case Level::kAvx512:
      return nearest_centroids_avx512(x, stride, d, centroids, k, begin, end,
                                      assignment, best_dist);
    case Level::kAvx2:
      return nearest_centroids_avx2(x, stride, d, centroids, k, begin, end,
                                    assignment, best_dist);
    case Level::kScalar:
      break;
  }
#endif
  nearest_centroids_scalar(x, stride, d, centroids, k, begin, end, assignment,
                           best_dist);
}

Nearest nearest_point(const double* dims, std::size_t stride, std::size_t d,
                      std::size_t k, const double* v) noexcept {
#ifdef JAAL_SIMD_X86
  switch (active()) {
    case Level::kAvx512:
      return nearest_point_avx512(dims, stride, d, k, v);
    case Level::kAvx2:
      return nearest_point_avx2(dims, stride, d, k, v);
    case Level::kScalar:
      break;
  }
#endif
  return nearest_point_scalar(dims, stride, d, k, v);
}

}  // namespace jaal::linalg::simd
