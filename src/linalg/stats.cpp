#include "linalg/stats.hpp"

#include <stdexcept>

namespace jaal::linalg {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - m) * (v - m);
  return sum / static_cast<double>(values.size());
}

double weighted_mean(std::span<const double> values,
                     std::span<const std::uint64_t> weights) {
  if (values.size() != weights.size()) {
    throw std::invalid_argument("weighted_mean: size mismatch");
  }
  double sum = 0.0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += values[i] * static_cast<double>(weights[i]);
    total += weights[i];
  }
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double weighted_variance(std::span<const double> values,
                         std::span<const std::uint64_t> weights) {
  if (values.size() != weights.size()) {
    throw std::invalid_argument("weighted_variance: size mismatch");
  }
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;
  if (total < 2) return 0.0;
  const double m = weighted_mean(values, weights);
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += static_cast<double>(weights[i]) * (values[i] - m) * (values[i] - m);
  }
  return sum / static_cast<double>(total);
}

void RunningStats::add(double x) noexcept { add(x, 1); }

void RunningStats::add(double x, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  // Chan et al. weighted update, equivalent to `weight` Welford steps.
  const double w = static_cast<double>(weight);
  const double total = static_cast<double>(count_) + w;
  const double delta = x - mean_;
  mean_ += delta * w / total;
  m2_ += delta * delta * w * static_cast<double>(count_) / total;
  count_ += weight;
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

}  // namespace jaal::linalg
