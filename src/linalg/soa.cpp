#include "linalg/soa.hpp"

namespace jaal::linalg {
namespace {

constexpr std::size_t pad8(std::size_t n) noexcept { return (n + 7) & ~std::size_t{7}; }

}  // namespace

SoaMatrix::SoaMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), stride_(pad8(rows)),
      data_(stride_ * cols, 0.0) {}

SoaMatrix SoaMatrix::from_rows(const Matrix& m) {
  SoaMatrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) out(r, c) = row[c];
  }
  return out;
}

Matrix SoaMatrix::to_rows() const {
  Matrix out(rows_, cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double* column = col(c);
    for (std::size_t r = 0; r < rows_; ++r) out(r, c) = column[r];
  }
  return out;
}

}  // namespace jaal::linalg
