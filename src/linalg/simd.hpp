// Runtime-dispatched SIMD kernels for the summarization hot path.
//
// Two loop families dominate a monitor's epoch latency: the k-means
// point-to-centroid distance search (O(n k p) per Lloyd iteration) and the
// one-sided Jacobi column sweeps of the SVD (O(n p^2) per sweep).  This
// header exposes portable 4/8-wide kernels for both, written with GCC
// vector extensions and dispatched at runtime (scalar everywhere, AVX2 /
// AVX-512 on x86-64 hosts that support them; JAAL_SIMD=scalar|avx2|avx512
// overrides, force_level() pins a level for tests and benches).
//
// Determinism contract (see DESIGN.md "SIMD kernels & SoA layout"):
//  * Per-point kernels (nearest_centroids, nearest_point) reduce over the
//    p fields serially per lane, and lanes never interact — results are
//    bit-identical to the scalar path at every dispatch level.
//  * Reduction kernels (dot, pair_dots) use a fixed canonical 4-accumulator
//    order at every level; the 8-wide level deliberately runs the 4-wide
//    reduction body because folding 8 lanes to 4 would regroup the sums.
//  * Elementwise kernels (rotate_pair) perform the same arithmetic per
//    element in every lane — trivially bit-identical.
// Together: seeded Summarizer output is byte-identical across dispatch
// levels and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace jaal::linalg::simd {

/// Dispatch level, ordered by vector width.  kAvx2 runs 4 doubles per
/// operation, kAvx512 runs 8 (except reductions, which stay 4-wide — see
/// the determinism contract above).
enum class Level : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Best level this CPU supports (computed once).
[[nodiscard]] Level detected() noexcept;

/// Level the kernels currently dispatch to: detected(), lowered by the
/// JAAL_SIMD environment variable (read once) or force_level().
[[nodiscard]] Level active() noexcept;

/// Pins the dispatch level (clamped to detected()); for tests/benches
/// comparing scalar vs SIMD on the same host.  Returns the level actually
/// in effect after clamping.
Level force_level(Level level) noexcept;

[[nodiscard]] std::string_view level_name(Level level) noexcept;

/// alpha = <a,a>, beta = <b,b>, gamma = <a,b> in one pass — the Gram block
/// a Jacobi rotation needs for one column pair.
struct PairDots {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;
};

/// Dot product over n entries, canonical 4-accumulator reduction order.
[[nodiscard]] double dot(const double* a, const double* b,
                         std::size_t n) noexcept;

/// The three Jacobi dot products in one fused pass (same canonical order).
[[nodiscard]] PairDots pair_dots(const double* a, const double* b,
                                 std::size_t n) noexcept;

/// Elementwise plane rotation: (a[i], b[i]) <- (cs*a[i] - sn*b[i],
/// sn*a[i] + cs*b[i]).
void rotate_pair(double* a, double* b, std::size_t n, double cs,
                 double sn) noexcept;

/// Nearest-centroid search for points [begin, end) of an SoA batch: column
/// j of the batch lives at x + j*stride.  `centroids` is row-major k x d.
/// Fills assignment[i] (first index wins ties, matching the scalar scan)
/// and best_dist[i] for i in [begin, end).  Lanes are points, so any block
/// decomposition of [0, n) yields identical bits.
void nearest_centroids(const double* x, std::size_t stride, std::size_t d,
                       const double* centroids, std::size_t k,
                       std::size_t begin, std::size_t end,
                       std::size_t* assignment, double* best_dist) noexcept;

struct Nearest {
  std::size_t index = 0;
  double dist = 0.0;
};

/// Nearest centroid for ONE point v (length d) against centroids stored
/// dimension-major: coordinate j of centroid c lives at dims[j*stride + c].
/// Lanes are centroids; the arg-min scan is first-index-wins like the
/// scalar loop.  This is the streaming mini-batch inner loop.
[[nodiscard]] Nearest nearest_point(const double* dims, std::size_t stride,
                                    std::size_t d, std::size_t k,
                                    const double* v) noexcept;

}  // namespace jaal::linalg::simd
