// Statistical helpers used by the postprocessor (Algorithm 2) and the
// variance-estimation experiments (Fig. 11).
#pragma once

#include <cstdint>
#include <span>

namespace jaal::linalg {

/// Arithmetic mean.  Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

/// Population variance.  Returns 0 for spans of size < 2.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Mean of values where values[i] occurs weights[i] times (weights >= 0).
/// Throws std::invalid_argument on size mismatch.
[[nodiscard]] double weighted_mean(std::span<const double> values,
                                   std::span<const std::uint64_t> weights);

/// Population variance of the expanded multiset where values[i] occurs
/// weights[i] times.  This is exactly what Algorithm 2 computes when it adds
/// x_i(h) to Z c_i times.  Throws std::invalid_argument on size mismatch.
[[nodiscard]] double weighted_variance(std::span<const double> values,
                                       std::span<const std::uint64_t> weights);

/// Streaming mean/variance accumulator (Welford).  Single pass, numerically
/// stable; used by monitors that track per-field spread online.
class RunningStats {
 public:
  void add(double x) noexcept;
  void add(double x, std::uint64_t weight) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 if fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace jaal::linalg
