// Incremental per-batch SVD for the fields-mode reduction (§4.2).
//
// The exact pipeline runs one-sided Jacobi over every n x p batch from
// scratch: ~O(sweeps * n * p^2) with sweeps ≈ 6–10 on cold data.  A monitor
// sees statistically similar batches epoch after epoch, so the right
// singular basis V barely moves.  IncrementalSvd exploits that: it computes
// the batch Gram matrix C = X^T X (one SIMD pass, O(n p^2)), rotates it
// into the previous epoch's basis — where C is already nearly diagonal —
// and finishes with a tiny p x p Jacobi eigensolve that converges in a
// sweep or two.  Singular values and factors are those of the *current*
// batch (no history mixing): sigma = sqrt(eig(C)), V from the accumulated
// rotations, U = X V Sigma^-1.
//
// Accuracy: the Gram route squares the condition number, so tiny singular
// values (sigma ~ sqrt(eps) * sigma_max) lose relative precision.  Jaal
// truncates at rank r = 12 of 18 on normalized [0,1] data whose spectrum
// decays smoothly (Fig. 10), where the route is accurate to ~1e-8 — see
// tests/test_incremental_svd.cpp.  A true Brand-style rank-update is
// overkill at p = 18: the p x p eigensolve is already nearly free; what
// dominates is the single Gram pass, which is the minimum work needed to
// look at every entry of the batch once.
#pragma once

#include <cstddef>

#include "linalg/svd.hpp"

namespace jaal::linalg {

class IncrementalSvd {
 public:
  /// `dims` = p, the field-vector width.  Throws std::invalid_argument on
  /// zero dims.
  explicit IncrementalSvd(std::size_t dims, SvdOptions opts = {});

  /// Thin truncated SVD (top `rank` triplets) of the batch `x` (n x dims).
  /// The first call is a cold eigensolve; subsequent calls warm-start from
  /// the previous batch's basis.  Deterministic: no RNG, single-threaded,
  /// SIMD reductions in canonical lane order.  Throws std::invalid_argument
  /// on shape mismatch or rank outside [1, min(n, dims)].
  [[nodiscard]] SvdResult update(const Matrix& x, std::size_t rank);

  /// Drops the accumulated basis; the next update() is a cold start.
  void reset() noexcept;

  /// True once a basis has been accumulated (next update is warm).
  [[nodiscard]] bool warm() const noexcept { return warm_; }

  /// Jacobi sweeps spent by the last update (telemetry; warm updates
  /// typically take 1–2 vs. ~6+ cold).
  [[nodiscard]] int last_sweeps() const noexcept { return last_sweeps_; }

  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

 private:
  std::size_t dims_;
  SvdOptions opts_;
  Matrix basis_;  ///< p x p accumulated right-singular basis.
  bool warm_ = false;
  int last_sweeps_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace jaal::linalg
