#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "linalg/soa.hpp"

namespace jaal::linalg {
namespace {

/// One-sided Jacobi on an n x p matrix with n >= p.  Orthogonalizes the
/// columns of a working copy W by plane rotations, accumulating them in V;
/// afterwards W = U * diag(sigma).  The two O(n) inner loops — the Gram
/// dot products and the rotation itself — run through the dispatched SIMD
/// kernels; reductions use the canonical lane order of linalg/simd.hpp so
/// the result is bit-identical at every dispatch level.
SvdResult jacobi_tall(const Matrix& a, const SvdOptions& opts) {
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();

  // Column-major working copy: Jacobi touches column pairs, so keep each
  // column contiguous (and padded for the vector kernels).
  SoaMatrix w = SoaMatrix::from_rows(a);
  Matrix v = Matrix::identity(p);

  int sweeps_used = 0;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    ++sweeps_used;
    bool rotated = false;
    for (std::size_t i = 0; i + 1 < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        const simd::PairDots dots = simd::pair_dots(w.col(i), w.col(j), n);
        const double alpha = dots.alpha;
        const double beta = dots.beta;
        const double gamma = dots.gamma;
        // Numerically-zero columns (rank deficiency) rotate against noise
        // forever; skip them outright.
        if (alpha < 1e-30 || beta < 1e-30) continue;
        if (std::abs(gamma) <= opts.tolerance * std::sqrt(alpha * beta)) {
          continue;
        }
        rotated = true;
        // Rotation angle that zeroes the off-diagonal of the 2x2 Gram block.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(
            1.0 / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        simd::rotate_pair(w.col(i), w.col(j), n, cs, sn);
        for (std::size_t r = 0; r < p; ++r) {
          const double vi = v(r, i);
          v(r, i) = cs * vi - sn * v(r, j);
          v(r, j) = sn * vi + cs * v(r, j);
        }
      }
    }
    if (!rotated) break;
    if (sweep + 1 == opts.max_sweeps) {
      throw std::runtime_error("svd: Jacobi did not converge");
    }
  }

  // Extract sigma = column norms, U = normalized columns; sort descending.
  std::vector<double> sigma(p);
  for (std::size_t c = 0; c < p; ++c) {
    sigma[c] = std::sqrt(simd::dot(w.col(c), w.col(c), n));
  }
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.sweeps = sweeps_used;
  out.sigma.resize(p);
  out.u = Matrix(n, p);
  out.v = Matrix(p, p);
  for (std::size_t c = 0; c < p; ++c) {
    const std::size_t src = order[c];
    out.sigma[c] = sigma[src];
    // A numerically zero singular value gets a zero U column; reconstruction
    // is unaffected because it is scaled by sigma = 0.
    const double inv = sigma[src] > 0.0 ? 1.0 / sigma[src] : 0.0;
    const double* col = w.col(src);
    for (std::size_t r = 0; r < n; ++r) out.u(r, c) = col[r] * inv;
    for (std::size_t r = 0; r < p; ++r) out.v(r, c) = v(r, src);
  }
  return out;
}

}  // namespace

Matrix SvdResult::reconstruct() const { return reconstruct_rank(sigma.size()); }

Matrix SvdResult::reconstruct_rank(std::size_t r) const {
  if (r > sigma.size()) {
    throw std::invalid_argument("SvdResult::reconstruct_rank: r too large");
  }
  Matrix out(u.rows(), v.rows());
  for (std::size_t i = 0; i < u.rows(); ++i) {
    for (std::size_t k = 0; k < r; ++k) {
      const double scaled = u(i, k) * sigma[k];
      if (scaled == 0.0) continue;
      for (std::size_t j = 0; j < v.rows(); ++j) {
        out(i, j) += scaled * v(j, k);
      }
    }
  }
  return out;
}

std::size_t SvdResult::rank_for_energy(double fraction) const {
  double total = 0.0;
  for (double s : sigma) total += s * s;
  if (total == 0.0) return 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    acc += sigma[i] * sigma[i];
    if (acc >= fraction * total) return i + 1;
  }
  return sigma.size();
}

SvdResult svd(const Matrix& a, const SvdOptions& opts) {
  if (a.empty()) throw std::invalid_argument("svd: empty matrix");
  if (a.rows() >= a.cols()) return jacobi_tall(a, opts);
  // Wide matrix: decompose the transpose and swap the factor roles.
  SvdResult t = jacobi_tall(a.transposed(), opts);
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.sigma = std::move(t.sigma);
  out.sweeps = t.sweeps;
  return out;
}

SvdResult truncated_svd(const Matrix& a, std::size_t r, const SvdOptions& opts) {
  if (r == 0) throw std::invalid_argument("truncated_svd: r must be positive");
  SvdResult full = svd(a, opts);
  if (r > full.sigma.size()) {
    throw std::invalid_argument("truncated_svd: r exceeds min(n, p)");
  }
  SvdResult out;
  out.u = full.u.left_cols(r);
  out.v = full.v.left_cols(r);
  out.sigma.assign(full.sigma.begin(),
                   full.sigma.begin() + static_cast<std::ptrdiff_t>(r));
  out.sweeps = full.sweeps;
  return out;
}

namespace {

/// Modified Gram-Schmidt: orthonormalizes the columns of m in place.
/// Numerically-zero columns are left zero (rank deficiency).
void orthonormalize_columns(Matrix& m) {
  const std::size_t n = m.rows();
  const std::size_t cols = m.cols();
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (std::size_t r = 0; r < n; ++r) dot += m(r, c) * m(r, prev);
      for (std::size_t r = 0; r < n; ++r) m(r, c) -= dot * m(r, prev);
    }
    double norm = 0.0;
    for (std::size_t r = 0; r < n; ++r) norm += m(r, c) * m(r, c);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (std::size_t r = 0; r < n; ++r) m(r, c) = 0.0;
      continue;
    }
    for (std::size_t r = 0; r < n; ++r) m(r, c) /= norm;
  }
}

}  // namespace

SvdResult randomized_svd(const Matrix& a, std::size_t r, std::mt19937_64& rng,
                         std::size_t oversample, int power_iterations) {
  if (a.empty()) throw std::invalid_argument("randomized_svd: empty matrix");
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  const std::size_t m = std::min(n, p);
  if (r == 0 || r > m) {
    throw std::invalid_argument("randomized_svd: r outside [1, min(n, p)]");
  }
  const std::size_t l = std::min(m, r + oversample);

  // Stage A: sketch the range.  Y = A * Omega, refined by power iterations
  // (A A^T)^q Y with re-orthonormalization for stability.
  std::normal_distribution<double> gauss(0.0, 1.0);
  Matrix omega(p, l);
  for (double& v : omega.data()) v = gauss(rng);
  Matrix y = a * omega;
  orthonormalize_columns(y);
  const Matrix at = a.transposed();
  for (int q = 0; q < power_iterations; ++q) {
    Matrix z = at * y;
    orthonormalize_columns(z);
    y = a * z;
    orthonormalize_columns(y);
  }

  // Stage B: exact SVD of the small projected matrix B = Q^T A  (l x p).
  const Matrix b = y.transposed() * a;
  SvdResult small = svd(b);

  SvdResult out;
  out.sigma.assign(small.sigma.begin(),
                   small.sigma.begin() + static_cast<std::ptrdiff_t>(r));
  out.v = small.v.left_cols(r);
  out.u = y * small.u.left_cols(r);
  out.sweeps = small.sweeps;
  return out;
}

}  // namespace jaal::linalg
