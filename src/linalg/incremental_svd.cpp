#include "linalg/incremental_svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "linalg/simd.hpp"
#include "linalg/soa.hpp"

namespace jaal::linalg {
namespace {

/// Classical two-sided Jacobi eigensolve of a symmetric p x p matrix `b`
/// (diagonalized in place), accumulating the rotations into `j` (which must
/// start as the identity).  Returns the sweeps spent.
int jacobi_eigensolve(Matrix& b, Matrix& j, const SvdOptions& opts) {
  const std::size_t p = b.rows();
  int sweeps_used = 0;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    ++sweeps_used;
    bool rotated = false;
    for (std::size_t q = 0; q + 1 < p; ++q) {
      for (std::size_t r = q + 1; r < p; ++r) {
        const double off = b(q, r);
        const double dq = b(q, q);
        const double dr = b(r, r);
        if (dq * dr < 1e-60 && std::abs(off) < 1e-30) continue;
        if (std::abs(off) <= opts.tolerance * std::sqrt(std::abs(dq * dr))) {
          continue;
        }
        rotated = true;
        const double zeta = (dr - dq) / (2.0 * off);
        const double t = std::copysign(
            1.0 / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        // B <- G^T B G for the (q, r) plane rotation G.
        for (std::size_t m = 0; m < p; ++m) {
          const double bmq = b(m, q);
          b(m, q) = cs * bmq - sn * b(m, r);
          b(m, r) = sn * bmq + cs * b(m, r);
        }
        for (std::size_t m = 0; m < p; ++m) {
          const double bqm = b(q, m);
          b(q, m) = cs * bqm - sn * b(r, m);
          b(r, m) = sn * bqm + cs * b(r, m);
        }
        // Exact symmetry for the rotated pair (the two-step update leaves
        // roundoff-level asymmetry that would otherwise accumulate).
        b(r, q) = b(q, r);
        for (std::size_t m = 0; m < p; ++m) {
          const double jmq = j(m, q);
          j(m, q) = cs * jmq - sn * j(m, r);
          j(m, r) = sn * jmq + cs * j(m, r);
        }
      }
    }
    if (!rotated) return sweeps_used;
    if (sweep + 1 == opts.max_sweeps) {
      throw std::runtime_error("incremental_svd: eigensolve did not converge");
    }
  }
  return sweeps_used;
}

/// Modified Gram-Schmidt re-orthonormalization: the basis is a product of
/// orthogonal rotations and drifts only at roundoff speed, but a monitor
/// runs for unbounded epochs, so scrub occasionally.
void reorthonormalize(Matrix& m) {
  const std::size_t n = m.rows();
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t prev = 0; prev < c; ++prev) {
      double proj = 0.0;
      for (std::size_t r = 0; r < n; ++r) proj += m(r, c) * m(r, prev);
      for (std::size_t r = 0; r < n; ++r) m(r, c) -= proj * m(r, prev);
    }
    double norm = 0.0;
    for (std::size_t r = 0; r < n; ++r) norm += m(r, c) * m(r, c);
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;
    for (std::size_t r = 0; r < n; ++r) m(r, c) /= norm;
  }
}

}  // namespace

IncrementalSvd::IncrementalSvd(std::size_t dims, SvdOptions opts)
    : dims_(dims), opts_(opts) {
  if (dims_ == 0) {
    throw std::invalid_argument("IncrementalSvd: dims must be positive");
  }
}

void IncrementalSvd::reset() noexcept {
  warm_ = false;
  basis_ = Matrix{};
  last_sweeps_ = 0;
  updates_ = 0;
}

SvdResult IncrementalSvd::update(const Matrix& x, std::size_t rank) {
  if (x.cols() != dims_) {
    throw std::invalid_argument("IncrementalSvd::update: dims mismatch");
  }
  if (x.empty()) {
    throw std::invalid_argument("IncrementalSvd::update: empty batch");
  }
  const std::size_t n = x.rows();
  const std::size_t p = dims_;
  if (rank == 0 || rank > std::min(n, p)) {
    throw std::invalid_argument(
        "IncrementalSvd::update: rank outside [1, min(n, p)]");
  }

  // Gram matrix C = X^T X: the only O(n) stage, one fused SIMD pass per
  // column pair over the SoA copy.
  const SoaMatrix xs = SoaMatrix::from_rows(x);
  Matrix c(p, p);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      const double dot = simd::dot(xs.col(a), xs.col(b), n);
      c(a, b) = dot;
      c(b, a) = dot;
    }
  }

  // Rotate into the accumulated basis, where C is nearly diagonal for
  // batches resembling the previous ones, then finish diagonalizing.
  Matrix b = warm_ ? basis_.transposed() * c * basis_ : std::move(c);
  Matrix j = Matrix::identity(p);
  last_sweeps_ = jacobi_eigensolve(b, j, opts_);
  Matrix v = warm_ ? basis_ * j : std::move(j);

  // Sign canonicalization: make each basis column's largest-magnitude entry
  // positive.  U flips with V, so U Sigma V^T is unchanged; it keeps the
  // warm-start basis (and downstream centroids of U rows) from flapping
  // between equivalent sign choices across epochs.
  for (std::size_t col = 0; col < p; ++col) {
    double extreme = 0.0;
    for (std::size_t r = 0; r < p; ++r) {
      if (std::abs(v(r, col)) > std::abs(extreme)) extreme = v(r, col);
    }
    if (extreme < 0.0) {
      for (std::size_t r = 0; r < p; ++r) v(r, col) = -v(r, col);
    }
  }

  // Order by eigenvalue (= squared singular value) descending.
  std::vector<double> eig(p);
  for (std::size_t d = 0; d < p; ++d) eig[d] = b(d, d);
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t z) {
    return eig[a] > eig[z];
  });

  Matrix sorted(p, p);
  for (std::size_t col = 0; col < p; ++col) {
    for (std::size_t r = 0; r < p; ++r) sorted(r, col) = v(r, order[col]);
  }
  basis_ = std::move(sorted);
  warm_ = true;
  if (++updates_ % 256 == 0) reorthonormalize(basis_);

  SvdResult out;
  out.sweeps = last_sweeps_;
  out.sigma.resize(rank);
  out.v = Matrix(p, rank);
  for (std::size_t col = 0; col < rank; ++col) {
    out.sigma[col] = std::sqrt(std::max(0.0, eig[order[col]]));
    for (std::size_t r = 0; r < p; ++r) out.v(r, col) = basis_(r, col);
  }

  // U = X V Sigma^-1, accumulated column-by-column over the SoA batch so
  // the inner loop is a contiguous axpy.
  out.u = Matrix(n, rank);
  std::vector<double> u_col(n);
  for (std::size_t col = 0; col < rank; ++col) {
    const double sigma = out.sigma[col];
    if (sigma <= 0.0) continue;  // zero singular value -> zero U column
    std::fill(u_col.begin(), u_col.end(), 0.0);
    const double inv = 1.0 / sigma;
    for (std::size_t field = 0; field < p; ++field) {
      const double scale = out.v(field, col);
      if (scale == 0.0) continue;
      const double* column = xs.col(field);
      for (std::size_t r = 0; r < n; ++r) u_col[r] += scale * column[r];
    }
    for (std::size_t r = 0; r < n; ++r) out.u(r, col) = u_col[r] * inv;
  }
  return out;
}

}  // namespace jaal::linalg
