#include "assign/assigner.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace jaal::assign {

MonitorIndex GreedyAssigner::choose(const MonitorGroup& group,
                                    const std::vector<double>& visible_loads,
                                    double /*true_weight*/) {
  MonitorIndex best = group.monitors.front();
  for (MonitorIndex m : group.monitors) {
    if (visible_loads[m] < visible_loads[best]) best = m;
  }
  return best;
}

MonitorIndex RandomAssigner::choose(const MonitorGroup& group,
                                    const std::vector<double>& /*loads*/,
                                    double /*true_weight*/) {
  return group.monitors[rng_() % group.monitors.size()];
}

RobinHoodAssigner::RobinHoodAssigner(std::size_t monitor_count)
    : monitor_count_(monitor_count), rich_since_(monitor_count, 0) {}

MonitorIndex RobinHoodAssigner::choose(const MonitorGroup& group,
                                       const std::vector<double>& visible_loads,
                                       double true_weight) {
  ++arrivals_;
  total_weight_ += true_weight;
  // Refresh the OPT lower bound: no schedule can beat the largest single
  // job, nor the average load if weight were spread perfectly.
  opt_bound_ = std::max({opt_bound_, true_weight,
                         total_weight_ / static_cast<double>(monitor_count_)});
  const double rich_line =
      std::sqrt(static_cast<double>(monitor_count_)) * opt_bound_;

  // Track rich transitions for the whole pool.
  for (std::size_t m = 0; m < monitor_count_; ++m) {
    const bool rich = visible_loads[m] >= rich_line;
    if (rich && rich_since_[m] == 0) {
      rich_since_[m] = arrivals_;
    } else if (!rich) {
      rich_since_[m] = 0;
    }
  }

  // Prefer the least-loaded poor machine in the group.
  MonitorIndex best_poor = group.monitors.front();
  bool found_poor = false;
  for (MonitorIndex m : group.monitors) {
    if (rich_since_[m] == 0) {
      if (!found_poor || visible_loads[m] < visible_loads[best_poor]) {
        best_poor = m;
        found_poor = true;
      }
    }
  }
  if (found_poor) return best_poor;

  // All rich: pick the one that became rich most recently.
  MonitorIndex newest = group.monitors.front();
  for (MonitorIndex m : group.monitors) {
    if (rich_since_[m] > rich_since_[newest]) newest = m;
  }
  return newest;
}

AssignmentOutcome simulate_assignment(Assigner& policy,
                                      std::vector<FlowEvent> flows,
                                      const std::vector<MonitorGroup>& groups,
                                      std::size_t monitor_count,
                                      double update_period) {
  for (const MonitorGroup& g : groups) {
    if (g.monitors.empty()) {
      throw std::invalid_argument("simulate_assignment: empty monitor group");
    }
    for (MonitorIndex m : g.monitors) {
      if (m >= monitor_count) {
        throw std::invalid_argument("simulate_assignment: monitor out of range");
      }
    }
  }
  std::sort(flows.begin(), flows.end(),
            [](const FlowEvent& a, const FlowEvent& b) {
              return a.arrival < b.arrival;
            });

  std::vector<double> true_load(monitor_count, 0.0);
  std::vector<double> visible_load(monitor_count, 0.0);
  std::vector<double> load_time_integral(monitor_count, 0.0);

  // Departure queue: (time, monitor, weight, group).
  struct Departure {
    double time;
    MonitorIndex monitor;
    double weight;
    std::size_t group;
  };
  auto later = [](const Departure& a, const Departure& b) {
    return a.time > b.time;
  };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)>
      departures(later);

  double now = 0.0;
  double last_update = 0.0;
  double peak = 0.0;

  auto advance_to = [&](double t) {
    const double dt = t - now;
    if (dt > 0.0) {
      for (std::size_t m = 0; m < monitor_count; ++m) {
        load_time_integral[m] += true_load[m] * dt;
      }
      now = t;
    }
    // Periodic visibility refresh (P in §7; the controller polls loads).
    if (update_period <= 0.0) {
      visible_load = true_load;
    } else {
      while (last_update + update_period <= now) {
        last_update += update_period;
        visible_load = true_load;
      }
    }
  };

  for (const FlowEvent& flow : flows) {
    if (flow.group >= groups.size()) {
      throw std::invalid_argument("simulate_assignment: group out of range");
    }
    // Process departures before this arrival.
    while (!departures.empty() && departures.top().time <= flow.arrival) {
      const Departure d = departures.top();
      departures.pop();
      advance_to(d.time);
      true_load[d.monitor] -= d.weight;
    }
    advance_to(flow.arrival);

    const MonitorIndex m =
        policy.choose(groups[flow.group],
                      update_period <= 0.0 ? true_load : visible_load,
                      flow.weight);
    true_load[m] += flow.weight;
    peak = std::max(peak, true_load[m]);
    departures.push({flow.arrival + flow.duration, m, flow.weight, flow.group});
  }
  while (!departures.empty()) {
    const Departure d = departures.top();
    departures.pop();
    advance_to(d.time);
    true_load[d.monitor] -= d.weight;
  }

  AssignmentOutcome out;
  const double horizon = now > 0.0 ? now : 1.0;
  out.time_avg_load.resize(monitor_count);
  for (std::size_t m = 0; m < monitor_count; ++m) {
    out.time_avg_load[m] = load_time_integral[m] / horizon;
    out.max_time_avg_load = std::max(out.max_time_avg_load,
                                     out.time_avg_load[m]);
  }
  // Per-group view: mean time-averaged load across the group's monitors.
  out.group_avg_load.resize(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double sum = 0.0;
    for (MonitorIndex m : groups[g].monitors) sum += out.time_avg_load[m];
    out.group_avg_load[g] = sum / static_cast<double>(groups[g].monitors.size());
  }
  out.peak_load = peak;
  return out;
}

Workload make_workload(const WorkloadConfig& cfg) {
  std::mt19937_64 rng(cfg.seed);
  std::exponential_distribution<double> gap(1.0 / cfg.mean_arrival_gap);
  std::exponential_distribution<double> duration(1.0 / cfg.mean_duration);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  Workload w;
  w.groups.resize(cfg.group_count);
  for (std::size_t g = 0; g < cfg.group_count; ++g) {
    const std::size_t size = 2 + rng() % 4;  // groups of 2-5 monitors
    std::vector<MonitorIndex> chosen;
    while (chosen.size() < size) {
      const MonitorIndex m = rng() % cfg.monitor_count;
      if (std::find(chosen.begin(), chosen.end(), m) == chosen.end()) {
        chosen.push_back(m);
      }
    }
    w.groups[g].monitors = std::move(chosen);
  }

  double t = 0.0;
  w.flows.reserve(cfg.flow_count);
  for (std::size_t i = 0; i < cfg.flow_count; ++i) {
    t += gap(rng);
    FlowEvent f;
    f.arrival = t;
    f.duration = duration(rng);
    // Pareto(1.5) weights: elephants and mice.
    f.weight = cfg.mean_weight / 3.0 / std::pow(1.0 - unit(rng), 1.0 / 1.5);
    f.weight = std::min(f.weight, cfg.mean_weight * 50.0);
    f.group = rng() % cfg.group_count;
    w.flows.push_back(f);
  }
  return w;
}

}  // namespace jaal::assign
