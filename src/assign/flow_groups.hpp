// Monitor-group construction from actual routing (§6).
//
// A flow group is a set of flows that traverse a common set of monitors;
// its monitor group is that subset of monitors.  This module derives the
// groups from a topology, a monitor placement, and a set of origin-
// destination pairs — the production path from routing state to the flow
// assignment module's input.  It also provides a greedy coverage-maximizing
// monitor placement (the paper assumes placement is given; this is the
// obvious way to produce one).
#pragma once

#include <utility>
#include <vector>

#include "assign/assigner.hpp"
#include "netsim/replication.hpp"
#include "netsim/topology.hpp"

namespace jaal::assign {

struct RoutedGroups {
  /// Distinct monitor groups, deduplicated.
  std::vector<MonitorGroup> groups;
  /// groups index for each input OD pair; kUncovered when no monitor lies
  /// on the pair's path.
  std::vector<std::size_t> group_of_pair;
  static constexpr std::size_t kUncovered = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t uncovered_pairs() const;
};

/// Routes every OD pair on the topology and groups them by the set of
/// monitors their shortest path crosses.  `monitor_sites[i]` is the
/// topology node hosting assign-module monitor index i.
/// Throws std::invalid_argument on out-of-range nodes.
[[nodiscard]] RoutedGroups derive_monitor_groups(
    const netsim::Topology& topo,
    const std::vector<netsim::NodeId>& monitor_sites,
    const std::vector<std::pair<netsim::NodeId, netsim::NodeId>>& od_pairs);

/// Greedy maximum-coverage monitor placement: repeatedly picks the node
/// whose addition covers the most yet-uncovered demand (by pps).  Returns
/// `count` topology nodes.  Throws std::invalid_argument for count == 0 or
/// empty demands.
[[nodiscard]] std::vector<netsim::NodeId> place_monitors_coverage(
    const netsim::Topology& topo, const std::vector<netsim::Demand>& demands,
    std::size_t count);

/// Fraction of demand pps whose path crosses at least one of `sites`.
[[nodiscard]] double coverage_fraction(
    const netsim::Topology& topo, const std::vector<netsim::Demand>& demands,
    const std::vector<netsim::NodeId>& sites);

}  // namespace jaal::assign
