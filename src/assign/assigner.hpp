// Flow assignment (§6): map flows to monitors so that every flow is
// monitored exactly once and the maximum monitor load is minimized.
//
// Three policies:
//  * Greedy — assign to the least-loaded monitor in the flow's monitor
//    group, using load values refreshed every P seconds (Jaal's choice;
//    competitive ratio (3M)^{2/3}/2 (1+o(1))).
//  * Robin Hood — the optimal online algorithm for unknown-duration tasks
//    with assignment restrictions (competitive ratio O(sqrt(M))); needs the
//    true flow weights at arrival, which is impractical but serves as the
//    paper's reference ("ideal but impractical scenario", §8.2).
//  * Random — uniform choice within the monitor group (lower baseline).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace jaal::assign {

using MonitorIndex = std::size_t;

/// A flow group is identified by the subset of monitors on its path (§6);
/// every flow in the group may be assigned to any of them.
struct MonitorGroup {
  std::vector<MonitorIndex> monitors;
};

/// One flow's lifecycle for the offline simulation.
struct FlowEvent {
  double arrival = 0.0;
  double duration = 0.0;
  double weight = 0.0;        ///< Packet rate contributed while active.
  std::size_t group = 0;      ///< Index into the monitor-group table.
};

class Assigner {
 public:
  virtual ~Assigner() = default;

  /// Chooses a monitor for a new flow.  `visible_loads` is the load
  /// information available to the policy (possibly stale for greedy);
  /// `true_weight` is only meaningful to Robin Hood.
  [[nodiscard]] virtual MonitorIndex choose(
      const MonitorGroup& group, const std::vector<double>& visible_loads,
      double true_weight) = 0;
};

class GreedyAssigner final : public Assigner {
 public:
  [[nodiscard]] MonitorIndex choose(const MonitorGroup& group,
                                    const std::vector<double>& visible_loads,
                                    double true_weight) override;
};

class RandomAssigner final : public Assigner {
 public:
  explicit RandomAssigner(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] MonitorIndex choose(const MonitorGroup& group,
                                    const std::vector<double>& visible_loads,
                                    double true_weight) override;

 private:
  std::mt19937_64 rng_;
};

/// Robin Hood (Azar, Kalyanasundaram, Plotkin, Pruhs, Waarts 1997).
/// Maintains a lower bound L on the optimal max load; a machine is "rich"
/// when its load >= sqrt(M) * L.  New jobs go to a poor machine in their
/// group if one exists, otherwise to the machine that became rich most
/// recently.
class RobinHoodAssigner final : public Assigner {
 public:
  explicit RobinHoodAssigner(std::size_t monitor_count);
  [[nodiscard]] MonitorIndex choose(const MonitorGroup& group,
                                    const std::vector<double>& visible_loads,
                                    double true_weight) override;

 private:
  std::size_t monitor_count_;
  double opt_bound_ = 0.0;          ///< L: lower bound estimate of OPT.
  double total_weight_ = 0.0;       ///< Aggregate of arrived weights.
  std::vector<std::uint64_t> rich_since_;  ///< Arrival index when it became rich.
  std::uint64_t arrivals_ = 0;
};

/// Outcome of replaying a flow sequence against a policy.
struct AssignmentOutcome {
  std::vector<double> time_avg_load;   ///< Per monitor.
  /// Per monitor group: mean time-averaged load over the group's monitors
  /// (the quantity Fig. 9 plots — it reflects how well the policy balanced
  /// the monitors each group can use).
  std::vector<double> group_avg_load;
  double peak_load = 0.0;              ///< Max instantaneous monitor load.
  double max_time_avg_load = 0.0;
};

/// Replays `flows` (sorted or not; sorted internally by arrival) against the
/// policy.  Greedy-style policies see loads refreshed every
/// `update_period` seconds; pass 0 for always-fresh loads.
/// Throws std::invalid_argument on empty groups or out-of-range indices.
[[nodiscard]] AssignmentOutcome simulate_assignment(
    Assigner& policy, std::vector<FlowEvent> flows,
    const std::vector<MonitorGroup>& groups, std::size_t monitor_count,
    double update_period);

/// Generates a random flow workload over `group_count` monitor groups drawn
/// from `monitor_count` monitors (each group: 2-5 monitors).  Flow weights
/// are heavy-tailed, durations exponential.
struct WorkloadConfig {
  std::size_t monitor_count = 25;
  std::size_t group_count = 12;
  std::size_t flow_count = 5000;
  double mean_arrival_gap = 0.01;
  double mean_duration = 8.0;
  double mean_weight = 100.0;
  std::uint64_t seed = 11;
};

struct Workload {
  std::vector<FlowEvent> flows;
  std::vector<MonitorGroup> groups;
};

[[nodiscard]] Workload make_workload(const WorkloadConfig& cfg);

}  // namespace jaal::assign
