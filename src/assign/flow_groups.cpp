#include "assign/flow_groups.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace jaal::assign {

std::size_t RoutedGroups::uncovered_pairs() const {
  std::size_t n = 0;
  for (std::size_t g : group_of_pair) n += (g == kUncovered) ? 1 : 0;
  return n;
}

RoutedGroups derive_monitor_groups(
    const netsim::Topology& topo,
    const std::vector<netsim::NodeId>& monitor_sites,
    const std::vector<std::pair<netsim::NodeId, netsim::NodeId>>& od_pairs) {
  for (netsim::NodeId site : monitor_sites) {
    if (site >= topo.node_count()) {
      throw std::invalid_argument("derive_monitor_groups: bad monitor site");
    }
  }
  // node -> monitor index, for O(1) path scanning.
  std::vector<std::size_t> monitor_at(topo.node_count(),
                                      RoutedGroups::kUncovered);
  for (std::size_t i = 0; i < monitor_sites.size(); ++i) {
    monitor_at[monitor_sites[i]] = i;
  }

  RoutedGroups out;
  out.group_of_pair.reserve(od_pairs.size());
  for (const auto& [src, dst] : od_pairs) {
    std::vector<MonitorIndex> on_path;
    for (netsim::NodeId node : topo.shortest_path(src, dst)) {
      if (monitor_at[node] != RoutedGroups::kUncovered) {
        on_path.push_back(monitor_at[node]);
      }
    }
    if (on_path.empty()) {
      out.group_of_pair.push_back(RoutedGroups::kUncovered);
      continue;
    }
    std::sort(on_path.begin(), on_path.end());
    on_path.erase(std::unique(on_path.begin(), on_path.end()), on_path.end());

    std::size_t group_index = out.groups.size();
    for (std::size_t g = 0; g < out.groups.size(); ++g) {
      if (out.groups[g].monitors == on_path) {
        group_index = g;
        break;
      }
    }
    if (group_index == out.groups.size()) {
      out.groups.push_back(MonitorGroup{std::move(on_path)});
    }
    out.group_of_pair.push_back(group_index);
  }
  return out;
}

std::vector<netsim::NodeId> place_monitors_coverage(
    const netsim::Topology& topo, const std::vector<netsim::Demand>& demands,
    std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument("place_monitors_coverage: count == 0");
  }
  if (demands.empty()) {
    throw std::invalid_argument("place_monitors_coverage: no demands");
  }

  // Precompute each demand's path node set.
  std::vector<std::vector<netsim::NodeId>> paths;
  paths.reserve(demands.size());
  for (const auto& d : demands) {
    paths.push_back(topo.shortest_path(d.src, d.dst));
  }

  std::vector<bool> covered(demands.size(), false);
  std::vector<netsim::NodeId> chosen;
  chosen.reserve(count);
  for (std::size_t round = 0; round < count; ++round) {
    // Gain of adding each node = pps of uncovered demands through it.
    std::vector<double> gain(topo.node_count(), 0.0);
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (covered[d]) continue;
      for (netsim::NodeId n : paths[d]) gain[n] += demands[d].pps;
    }
    netsim::NodeId best = 0;
    for (std::size_t n = 1; n < topo.node_count(); ++n) {
      if (gain[n] > gain[best]) best = static_cast<netsim::NodeId>(n);
    }
    // Skip already-chosen nodes (their gain is 0 once demands are covered,
    // but guard against degenerate all-covered rounds).
    if (std::find(chosen.begin(), chosen.end(), best) != chosen.end()) {
      // Everything coverable is covered; fill with highest-degree unused.
      for (std::size_t n = 0; n < topo.node_count(); ++n) {
        const auto id = static_cast<netsim::NodeId>(n);
        if (std::find(chosen.begin(), chosen.end(), id) == chosen.end()) {
          best = id;
          break;
        }
      }
    }
    chosen.push_back(best);
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (covered[d]) continue;
      if (std::find(paths[d].begin(), paths[d].end(), best) !=
          paths[d].end()) {
        covered[d] = true;
      }
    }
  }
  return chosen;
}

double coverage_fraction(const netsim::Topology& topo,
                         const std::vector<netsim::Demand>& demands,
                         const std::vector<netsim::NodeId>& sites) {
  const std::unordered_set<netsim::NodeId> site_set(sites.begin(),
                                                    sites.end());
  double covered = 0.0, total = 0.0;
  for (const auto& d : demands) {
    total += d.pps;
    for (netsim::NodeId n : topo.shortest_path(d.src, d.dst)) {
      if (site_set.count(n)) {
        covered += d.pps;
        break;
      }
    }
  }
  return total > 0.0 ? covered / total : 0.0;
}

}  // namespace jaal::assign
