#include "netsim/topology.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace jaal::netsim {

Topology::Topology(std::string name, std::vector<Router> routers,
                   std::vector<LinkSpec> links)
    : name_(std::move(name)),
      routers_(std::move(routers)),
      links_(std::move(links)),
      adjacency_(routers_.size()) {
  for (const LinkSpec& l : links_) {
    if (l.a >= routers_.size() || l.b >= routers_.size()) {
      throw std::invalid_argument("Topology: link endpoint out of range");
    }
    if (l.a == l.b) throw std::invalid_argument("Topology: self-loop");
    adjacency_[l.a].push_back(l.b);
    adjacency_[l.b].push_back(l.a);
  }
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  // Connectivity check (BFS from node 0).
  if (!routers_.empty()) {
    std::vector<bool> seen(routers_.size(), false);
    std::deque<NodeId> queue{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!queue.empty()) {
      const NodeId n = queue.front();
      queue.pop_front();
      for (NodeId nb : adjacency_[n]) {
        if (!seen[nb]) {
          seen[nb] = true;
          ++visited;
          queue.push_back(nb);
        }
      }
    }
    if (visited != routers_.size()) {
      throw std::invalid_argument("Topology: graph is disconnected");
    }
  }
}

const std::vector<NodeId>& Topology::neighbors(NodeId n) const {
  if (n >= adjacency_.size()) throw std::out_of_range("Topology::neighbors");
  return adjacency_[n];
}

std::vector<NodeId> Topology::shortest_path(NodeId src, NodeId dst) const {
  if (src >= routers_.size() || dst >= routers_.size()) {
    throw std::out_of_range("Topology::shortest_path");
  }
  if (src == dst) return {src};
  constexpr NodeId kUnset = static_cast<NodeId>(-1);
  std::vector<NodeId> parent(routers_.size(), kUnset);
  std::deque<NodeId> queue{src};
  parent[src] = src;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    if (n == dst) break;
    for (NodeId nb : adjacency_[n]) {  // adjacency sorted => deterministic
      if (parent[nb] == kUnset) {
        parent[nb] = n;
        queue.push_back(nb);
      }
    }
  }
  if (parent[dst] == kUnset) {
    throw std::runtime_error("Topology::shortest_path: unreachable");
  }
  std::vector<NodeId> path{dst};
  for (NodeId n = dst; n != src; n = parent[n]) path.push_back(parent[n]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::size_t> Topology::link_between(NodeId a, NodeId b) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if ((links_[i].a == a && links_[i].b == b) ||
        (links_[i].a == b && links_[i].b == a)) {
      return i;
    }
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::edge_nodes() const {
  std::vector<NodeId> out;
  for (const Router& r : routers_) {
    if (r.role == RouterRole::kEdge) out.push_back(r.id);
  }
  return out;
}

std::vector<NodeId> Topology::default_monitor_sites(std::size_t count) const {
  // Highest-degree non-edge routers first: these see the most transit
  // traffic, the natural monitor locations (§2: co-located with routers or
  // at IXPs).
  std::vector<NodeId> candidates;
  for (const Router& r : routers_) {
    if (r.role != RouterRole::kEdge) candidates.push_back(r.id);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](NodeId a, NodeId b) {
                     return adjacency_[a].size() > adjacency_[b].size();
                   });
  if (count > candidates.size()) count = candidates.size();
  candidates.resize(count);
  return candidates;
}

IspProfile abovenet_profile() {
  IspProfile p;
  p.name = "abovenet";
  p.pop_count = 22;
  p.routers_per_pop_min = 8;
  p.routers_per_pop_max = 28;
  p.backbone_extra_link_fraction = 0.40;
  p.target_router_count = 367;
  return p;
}

IspProfile exodus_profile() {
  IspProfile p;
  p.name = "exodus";
  p.pop_count = 24;
  p.routers_per_pop_min = 6;
  p.routers_per_pop_max = 24;
  p.backbone_extra_link_fraction = 0.30;
  p.target_router_count = 338;
  return p;
}

Topology make_isp_topology(const IspProfile& profile, std::uint64_t seed) {
  if (profile.pop_count < 3) {
    throw std::invalid_argument("make_isp_topology: need at least 3 PoPs");
  }
  if (profile.target_router_count < profile.pop_count * 2) {
    throw std::invalid_argument("make_isp_topology: too few routers for PoPs");
  }
  std::mt19937_64 rng(seed);
  std::vector<Router> routers;
  std::vector<LinkSpec> links;

  // Pass 1: size each PoP, then rescale so totals hit the target exactly.
  std::vector<std::uint32_t> pop_sizes(profile.pop_count);
  std::uniform_int_distribution<std::uint32_t> size_pick(
      profile.routers_per_pop_min, profile.routers_per_pop_max);
  std::uint32_t total = 0;
  for (auto& s : pop_sizes) {
    s = size_pick(rng);
    total += s;
  }
  // Adjust sizes one by one until the sum matches the target.
  while (total != profile.target_router_count) {
    auto& s = pop_sizes[rng() % pop_sizes.size()];
    if (total < profile.target_router_count) {
      ++s;
      ++total;
    } else if (s > 2) {
      --s;
      --total;
    }
  }

  // Pass 2: build each PoP: 1-2 backbone routers, a few aggregation
  // routers, rest edge.  Edge connects to aggregation, aggregation to
  // backbone (a tree inside the PoP plus one redundant uplink).
  std::vector<NodeId> backbone;  // all backbone routers, for the core mesh
  for (std::uint32_t pop = 0; pop < profile.pop_count; ++pop) {
    const std::uint32_t size = pop_sizes[pop];
    const std::uint32_t n_backbone = size >= 16 ? 2 : 1;
    const std::uint32_t n_agg = std::max<std::uint32_t>(1, size / 6);

    std::vector<NodeId> pop_backbone, pop_agg;
    for (std::uint32_t i = 0; i < size; ++i) {
      Router r;
      r.id = static_cast<NodeId>(routers.size());
      r.pop = pop;
      if (i < n_backbone) {
        r.role = RouterRole::kBackbone;
        pop_backbone.push_back(r.id);
        backbone.push_back(r.id);
      } else if (i < n_backbone + n_agg) {
        r.role = RouterRole::kAggregation;
        pop_agg.push_back(r.id);
      } else {
        r.role = RouterRole::kEdge;
      }
      routers.push_back(r);
    }
    // Backbone routers inside a PoP are directly linked.
    for (std::size_t i = 1; i < pop_backbone.size(); ++i) {
      links.push_back({pop_backbone[i - 1], pop_backbone[i],
                       profile.backbone_capacity_pps});
    }
    // Aggregation dual-homes to backbone where possible.
    for (std::size_t i = 0; i < pop_agg.size(); ++i) {
      links.push_back({pop_agg[i], pop_backbone[i % pop_backbone.size()],
                       profile.backbone_capacity_pps});
      if (pop_backbone.size() > 1) {
        links.push_back({pop_agg[i],
                         pop_backbone[(i + 1) % pop_backbone.size()],
                         profile.backbone_capacity_pps});
      }
    }
    // Edge routers home to a random aggregation router.
    for (std::uint32_t i = n_backbone + n_agg; i < size; ++i) {
      const NodeId edge_id = routers[routers.size() - size + i].id;
      links.push_back({edge_id, pop_agg[rng() % pop_agg.size()],
                       profile.edge_capacity_pps});
    }
  }

  // Pass 3: backbone — ring over PoPs for connectivity, then extra chords
  // for the meshy RocketFuel look.
  std::vector<NodeId> pop_gateway(profile.pop_count);
  for (const Router& r : routers) {
    if (r.role == RouterRole::kBackbone) pop_gateway[r.pop] = r.id;
  }
  for (std::uint32_t pop = 0; pop < profile.pop_count; ++pop) {
    const NodeId a = pop_gateway[pop];
    const NodeId b = pop_gateway[(pop + 1) % profile.pop_count];
    links.push_back({a, b, profile.backbone_capacity_pps});
  }
  const auto extra = static_cast<std::size_t>(
      profile.backbone_extra_link_fraction * static_cast<double>(backbone.size()));
  for (std::size_t i = 0; i < extra; ++i) {
    const NodeId a = backbone[rng() % backbone.size()];
    const NodeId b = backbone[rng() % backbone.size()];
    if (a != b) links.push_back({a, b, profile.backbone_capacity_pps});
  }

  return Topology(profile.name, std::move(routers), std::move(links));
}

}  // namespace jaal::netsim
