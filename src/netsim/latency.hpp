// Summary-delivery latency model: how long after an epoch closes does the
// central engine have everything it needs?
//
// The paper reports detecting the Mirai scan "within 3s": one 2-second
// epoch plus collection/aggregation.  This model computes the wire part of
// that budget: each monitor's summary traverses its shortest path to the
// engine, paying per-hop propagation plus transmission at each link's
// capacity; the engine can only aggregate when the LAST summary arrives.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/topology.hpp"

namespace jaal::netsim {

struct LatencyModel {
  double per_hop_propagation_s = 0.002;   ///< 2 ms/hop (WAN scale).
  double serialization_overhead_s = 0.0005;  ///< Framing/syscall per message.
  /// Bits per second available to control traffic on each link, as a
  /// fraction of the link's packet capacity x a nominal packet size.
  double control_plane_fraction = 0.05;
  double nominal_packet_bits = 12000.0;   ///< 1500 B.
};

/// Delivery latency of one message of `payload_bytes` from `src` to `dst`.
/// Throws std::out_of_range on bad nodes.
[[nodiscard]] double delivery_latency(const Topology& topo, NodeId src,
                                      NodeId dst, std::size_t payload_bytes,
                                      const LatencyModel& model = {});

struct CollectionLatency {
  double worst = 0.0;   ///< The engine waits for the slowest monitor.
  double mean = 0.0;
  std::vector<double> per_monitor;
};

/// Latency for the engine at `engine` to collect one summary of
/// `summary_bytes` from every monitor (§5.1's "controller requests every
/// other monitor to send its summary").
[[nodiscard]] CollectionLatency collection_latency(
    const Topology& topo, const std::vector<NodeId>& monitors, NodeId engine,
    std::size_t summary_bytes, const LatencyModel& model = {});

/// End-to-end detection latency estimate: epoch length (evidence
/// accumulation) + summary collection + inference compute.
[[nodiscard]] double detection_latency_estimate(
    double epoch_seconds, const CollectionLatency& collection,
    double inference_seconds);

}  // namespace jaal::netsim
