#include "netsim/event.hpp"

#include <stdexcept>

namespace jaal::netsim {

void EventQueue::schedule(double when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue::schedule: time in the past");
  }
  heap_.push(Entry{when, next_sequence_++, std::move(cb)});
}

void EventQueue::schedule_in(double delay, Callback cb) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventQueue::schedule_in: negative delay");
  }
  schedule(now_ + delay, std::move(cb));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move is safe because we pop immediately.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.when;
  e.cb();
  return true;
}

std::size_t EventQueue::run_until(double until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace jaal::netsim
