// ISP topology substrate.
//
// The paper evaluates on two RocketFuel ISP maps realized as Open vSwitch
// networks: Abovenet ("topology 1", 367 routers) and Exodus ("topology 2",
// 338 routers).  We reproduce their two-level PoP structure with a
// deterministic generator: a meshed backbone of PoP core routers plus
// aggregation/edge routers inside each PoP, with a long-tailed degree
// distribution like the measured maps.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

namespace jaal::netsim {

using NodeId = std::uint32_t;

enum class RouterRole : std::uint8_t { kBackbone, kAggregation, kEdge };

struct Router {
  NodeId id = 0;
  RouterRole role = RouterRole::kEdge;
  std::uint32_t pop = 0;  ///< Point-of-presence this router belongs to.
};

struct LinkSpec {
  NodeId a = 0;
  NodeId b = 0;
  double capacity_pps = 1.0e6;  ///< Packets per second the link sustains.
};

/// Immutable router-level graph with all-pairs shortest paths on demand.
class Topology {
 public:
  /// Builds from explicit routers/links.  Throws std::invalid_argument on
  /// out-of-range endpoints, self-loops, or a disconnected graph.
  Topology(std::string name, std::vector<Router> routers,
           std::vector<LinkSpec> links);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return routers_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const std::vector<Router>& routers() const noexcept {
    return routers_;
  }
  [[nodiscard]] const std::vector<LinkSpec>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId n) const;

  /// Hop-count shortest path (BFS, deterministic tie-break by node id),
  /// including both endpoints.  src == dst yields {src}.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src, NodeId dst) const;

  /// Link index between adjacent nodes, if any.
  [[nodiscard]] std::optional<std::size_t> link_between(NodeId a,
                                                        NodeId b) const;

  /// Nodes with role kEdge — where customer traffic enters/leaves.
  [[nodiscard]] std::vector<NodeId> edge_nodes() const;

  /// Picks `count` monitor locations spread over the highest-degree
  /// aggregation/backbone routers (deterministic given the topology).
  [[nodiscard]] std::vector<NodeId> default_monitor_sites(std::size_t count) const;

 private:
  std::string name_;
  std::vector<Router> routers_;
  std::vector<LinkSpec> links_;
  std::vector<std::vector<NodeId>> adjacency_;
};

/// Parameters for the RocketFuel-like generator.
struct IspProfile {
  std::string name;
  std::uint32_t pop_count = 20;
  std::uint32_t routers_per_pop_min = 8;
  std::uint32_t routers_per_pop_max = 28;
  double backbone_extra_link_fraction = 0.35;  ///< Mesh density beyond a ring.
  double backbone_capacity_pps = 4.0e6;
  double edge_capacity_pps = 1.0e6;
  std::uint32_t target_router_count = 367;
};

/// Abovenet-like profile: 367 routers ("topology 1" in §8).
[[nodiscard]] IspProfile abovenet_profile();

/// Exodus-like profile: 338 routers ("topology 2" in §8).
[[nodiscard]] IspProfile exodus_profile();

/// Deterministically generates an ISP topology from a profile and seed.
/// The router count matches profile.target_router_count exactly.
[[nodiscard]] Topology make_isp_topology(const IspProfile& profile,
                                         std::uint64_t seed);

}  // namespace jaal::netsim
