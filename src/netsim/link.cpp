#include "netsim/link.hpp"

#include <stdexcept>

namespace jaal::netsim {

LinkQueue::LinkQueue(EventQueue& events, LinkConfig cfg)
    : events_(&events), cfg_(std::move(cfg)) {
  if (cfg_.rate_bytes_per_s <= 0.0) {
    throw std::invalid_argument("LinkQueue: rate must be positive");
  }
  if (cfg_.queue_limit_bytes == 0) {
    throw std::invalid_argument("LinkQueue: queue limit must be positive");
  }
}

void LinkQueue::set_telemetry(telemetry::Telemetry* tel) {
  if (tel == nullptr) {
    tel_messages_ = tel_bytes_ = tel_drops_ = tel_dropped_bytes_ = nullptr;
    tel_high_water_ = nullptr;
    return;
  }
  const std::string label = "{link=\"" + cfg_.name + "\"}";
  tel_messages_ = &tel->metrics.counter(
      "jaal_netsim_link_messages_forwarded_total" + label);
  tel_bytes_ =
      &tel->metrics.counter("jaal_netsim_link_bytes_forwarded_total" + label);
  tel_drops_ = &tel->metrics.counter("jaal_netsim_link_drops_total" + label);
  tel_dropped_bytes_ =
      &tel->metrics.counter("jaal_netsim_link_dropped_bytes_total" + label);
  tel_high_water_ = &tel->metrics.gauge(
      "jaal_netsim_link_queue_depth_high_water_bytes" + label);
}

bool LinkQueue::offer(std::size_t bytes) {
  if (queued_bytes_ + bytes > cfg_.queue_limit_bytes) {
    dropped_bytes_ += bytes;
    drops_.push_back({events_->now(), bytes});
    if (tel_drops_ != nullptr) {
      tel_drops_->add(1);
      tel_dropped_bytes_->add(bytes);
    }
    return false;
  }
  queue_.push_back(bytes);
  queued_bytes_ += bytes;
  if (queued_bytes_ > queue_high_water_) {
    queue_high_water_ = queued_bytes_;
    if (tel_high_water_ != nullptr) {
      tel_high_water_->update_max(static_cast<std::int64_t>(queue_high_water_));
    }
  }
  if (!busy_) start_service();
  return true;
}

void LinkQueue::start_service() {
  busy_ = true;
  const std::size_t bytes = queue_.front();
  const double transmit_s =
      static_cast<double>(bytes) / cfg_.rate_bytes_per_s;
  events_->schedule_in(transmit_s, [this, bytes] {
    queue_.pop_front();
    queued_bytes_ -= bytes;
    ++messages_forwarded_;
    bytes_forwarded_ += bytes;
    if (tel_messages_ != nullptr) {
      tel_messages_->add(1);
      tel_bytes_->add(bytes);
    }
    if (deliver_) {
      events_->schedule_in(cfg_.propagation_s, [this, bytes] {
        deliver_(bytes, events_->now());
      });
    }
    if (!queue_.empty()) {
      start_service();
    } else {
      busy_ = false;
    }
  });
}

}  // namespace jaal::netsim
