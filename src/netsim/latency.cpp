#include "netsim/latency.hpp"

#include <stdexcept>

namespace jaal::netsim {

double delivery_latency(const Topology& topo, NodeId src, NodeId dst,
                        std::size_t payload_bytes, const LatencyModel& model) {
  if (src == dst) return model.serialization_overhead_s;
  const auto path = topo.shortest_path(src, dst);
  double latency = model.serialization_overhead_s;
  for (std::size_t i = 1; i < path.size(); ++i) {
    latency += model.per_hop_propagation_s;
    const auto link = topo.link_between(path[i - 1], path[i]);
    if (!link) throw std::runtime_error("delivery_latency: broken path");
    // Control-plane share of the link, in bits/s.
    const double bps = topo.links()[*link].capacity_pps *
                       model.nominal_packet_bits *
                       model.control_plane_fraction;
    latency += static_cast<double>(payload_bytes) * 8.0 / bps;
  }
  return latency;
}

CollectionLatency collection_latency(const Topology& topo,
                                     const std::vector<NodeId>& monitors,
                                     NodeId engine, std::size_t summary_bytes,
                                     const LatencyModel& model) {
  if (monitors.empty()) {
    throw std::invalid_argument("collection_latency: no monitors");
  }
  CollectionLatency out;
  out.per_monitor.reserve(monitors.size());
  double sum = 0.0;
  for (NodeId m : monitors) {
    const double latency =
        delivery_latency(topo, m, engine, summary_bytes, model);
    out.per_monitor.push_back(latency);
    out.worst = std::max(out.worst, latency);
    sum += latency;
  }
  out.mean = sum / static_cast<double>(monitors.size());
  return out;
}

double detection_latency_estimate(double epoch_seconds,
                                  const CollectionLatency& collection,
                                  double inference_seconds) {
  return epoch_seconds + collection.worst + inference_seconds;
}

}  // namespace jaal::netsim
