#include "netsim/replication.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jaal::netsim {
namespace {

/// Link ids along the shortest path between two nodes.
std::vector<std::size_t> path_links(const Topology& topo, NodeId src,
                                    NodeId dst) {
  std::vector<std::size_t> out;
  const auto path = topo.shortest_path(src, dst);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto link = topo.link_between(path[i - 1], path[i]);
    if (!link) throw std::runtime_error("path_links: missing link on path");
    out.push_back(*link);
  }
  return out;
}

}  // namespace

std::vector<Demand> random_demands(const Topology& topo, std::size_t count,
                                   double mean_pps, std::uint64_t seed) {
  const auto edges = topo.edge_nodes();
  if (edges.size() < 2) {
    throw std::invalid_argument("random_demands: topology has <2 edge nodes");
  }
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> size(1.0 / mean_pps);
  std::vector<Demand> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Demand d;
    d.src = edges[rng() % edges.size()];
    do {
      d.dst = edges[rng() % edges.size()];
    } while (d.dst == d.src);
    d.pps = size(rng);
    out.push_back(d);
  }
  return out;
}

ReplicationExperiment::ReplicationExperiment(const Topology& topo,
                                             std::vector<NodeId> monitors,
                                             NodeId engine,
                                             std::vector<Demand> demands,
                                             double engine_capacity_pps,
                                             double router_headroom)
    : topo_(&topo),
      monitors_(std::move(monitors)),
      engine_(engine),
      demands_(std::move(demands)),
      engine_capacity_pps_(engine_capacity_pps),
      router_headroom_(router_headroom) {
  if (monitors_.empty()) {
    throw std::invalid_argument("ReplicationExperiment: no monitors");
  }
  if (engine_ >= topo.node_count()) {
    throw std::invalid_argument("ReplicationExperiment: bad engine node");
  }
  if (engine_capacity_pps_ <= 0.0) {
    throw std::invalid_argument("ReplicationExperiment: bad engine capacity");
  }
  if (router_headroom_ <= 1.0) {
    throw std::invalid_argument(
        "ReplicationExperiment: headroom must exceed 1");
  }

  demand_links_.reserve(demands_.size());
  demand_nodes_.reserve(demands_.size());
  monitored_pps_.assign(monitors_.size(), 0.0);
  router_base_work_.assign(topo.node_count(), 0.0);
  for (const Demand& d : demands_) {
    demand_links_.push_back(path_links(*topo_, d.src, d.dst));
    const auto path = topo_->shortest_path(d.src, d.dst);
    for (NodeId n : path) router_base_work_[n] += d.pps;
    // Unique assignment: the first monitor on the demand's path observes it.
    for (NodeId n : path) {
      const auto it = std::find(monitors_.begin(), monitors_.end(), n);
      if (it != monitors_.end()) {
        monitored_pps_[static_cast<std::size_t>(it - monitors_.begin())] +=
            d.pps;
        break;
      }
    }
    demand_nodes_.push_back(path);
  }
  monitor_links_.reserve(monitors_.size());
  monitor_nodes_.reserve(monitors_.size());
  router_copy_full_.assign(topo.node_count(), 0.0);
  for (std::size_t m = 0; m < monitors_.size(); ++m) {
    monitor_links_.push_back(path_links(*topo_, monitors_[m], engine_));
    monitor_nodes_.push_back(topo_->shortest_path(monitors_[m], engine_));
    router_copy_full_[monitors_[m]] += monitored_pps_[m];  // duplication work
    for (NodeId n : monitor_nodes_[m]) router_copy_full_[n] += monitored_pps_[m];
  }
}

ReplicationResult ReplicationExperiment::evaluate(
    double replication_fraction) const {
  if (replication_fraction < 0.0 || replication_fraction > 1.0) {
    throw std::invalid_argument("evaluate: fraction outside [0, 1]");
  }
  const std::size_t n_links = topo_->link_count();

  // Fixed point: copy traffic that is dropped upstream does not load
  // downstream links, so iterate offered load -> loss -> offered load.
  std::vector<double> loss(n_links, 0.0);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<double> offered(n_links, 0.0);
    // Customer traffic: attenuated by loss on upstream links of its path.
    for (std::size_t d = 0; d < demands_.size(); ++d) {
      double rate = demands_[d].pps;
      for (std::size_t link : demand_links_[d]) {
        offered[link] += rate;
        rate *= 1.0 - loss[link];
      }
    }
    // Copy traffic from each monitor toward the engine.
    for (std::size_t m = 0; m < monitors_.size(); ++m) {
      double rate = replication_fraction * monitored_pps_[m];
      for (std::size_t link : monitor_links_[m]) {
        offered[link] += rate;
        rate *= 1.0 - loss[link];
      }
    }
    double delta = 0.0;
    for (std::size_t l = 0; l < n_links; ++l) {
      const double cap = topo_->links()[l].capacity_pps;
      const double new_loss =
          offered[l] > cap ? 1.0 - cap / offered[l] : 0.0;
      delta = std::max(delta, std::abs(new_loss - loss[l]));
      loss[l] = new_loss;
    }
    if (delta < 1e-9) break;
  }

  ReplicationResult r;
  r.replication_fraction = replication_fraction;

  // Customer throughput after loss.
  double offered_total = 0.0, delivered_total = 0.0, worst = 0.0;
  for (std::size_t d = 0; d < demands_.size(); ++d) {
    double through = 1.0;
    for (std::size_t link : demand_links_[d]) through *= 1.0 - loss[link];
    offered_total += demands_[d].pps;
    delivered_total += demands_[d].pps * through;
    worst = std::max(worst, 1.0 - through);
  }
  r.throughput_loss =
      offered_total > 0.0 ? 1.0 - delivered_total / offered_total : 0.0;
  r.worst_demand_loss = worst;

  // Copy delivery to the engine.
  double copies_sent = 0.0, copies_arrived = 0.0;
  for (std::size_t m = 0; m < monitors_.size(); ++m) {
    const double sent = replication_fraction * monitored_pps_[m];
    double through = 1.0;
    for (std::size_t link : monitor_links_[m]) through *= 1.0 - loss[link];
    copies_sent += sent;
    copies_arrived += sent * through;
  }
  r.copy_delivery_fraction =
      copies_sent > 0.0 ? copies_arrived / copies_sent : 1.0;

  // Router-processing view: the duplicating monitor does the copy work and
  // every router on the copy's path forwards it, eating into forwarding
  // headroom provisioned relative to the baseline workload.
  std::vector<double> router_work = router_base_work_;
  for (std::size_t m = 0; m < monitors_.size(); ++m) {
    const double copy_rate = replication_fraction * monitored_pps_[m];
    router_work[monitors_[m]] += copy_rate;  // duplication work at the tap
    for (NodeId n : monitor_nodes_[m]) router_work[n] += copy_rate;
  }
  std::vector<double> router_ok(topo_->node_count(), 1.0);
  for (std::size_t n = 0; n < topo_->node_count(); ++n) {
    const double cap =
        router_headroom_ * (router_base_work_[n] +
                            kProvisionedReplication * router_copy_full_[n]);
    if (router_work[n] > cap && router_work[n] > 0.0) {
      router_ok[n] = cap / router_work[n];
    }
  }
  double weighted_through = 0.0, worst_router = 0.0;
  for (std::size_t d = 0; d < demands_.size(); ++d) {
    double through = 1.0;
    for (NodeId n : demand_nodes_[d]) through *= router_ok[n];
    weighted_through += demands_[d].pps * through;
    worst_router = std::max(worst_router, 1.0 - through);
  }
  r.router_throughput_loss =
      offered_total > 0.0 ? 1.0 - weighted_through / offered_total : 0.0;
  r.worst_router_demand_loss = worst_router;
  r.engine_processing_fraction =
      copies_arrived > engine_capacity_pps_
          ? engine_capacity_pps_ / copies_arrived
          : 1.0;
  // Relative to lossless full-packet DPI: the engine only sees the sampled,
  // surviving, processable share of the evidence.
  r.detection_accuracy = replication_fraction * r.copy_delivery_fraction *
                         r.engine_processing_fraction;
  return r;
}

}  // namespace jaal::netsim
