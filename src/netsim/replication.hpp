// Raw-packet replication feasibility model (Fig. 7).
//
// Models the "vanilla" alternative to Jaal: every monitor copies a fraction
// of the traffic it observes and forwards the copies to a central inference
// engine.  Copies share link capacity with customer traffic, so replication
// congests the paths toward the engine; the engine itself has finite DPI
// capacity (open-source IDSs collapse past ~20 Gbps, §2).  The model
// computes the resulting customer throughput loss and the fraction of
// attack evidence that actually reaches and is processed by the engine.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "netsim/topology.hpp"

namespace jaal::netsim {

/// One aggregate customer demand between two edge routers.
struct Demand {
  NodeId src = 0;
  NodeId dst = 0;
  double pps = 0.0;
};

/// Generates `count` random edge-to-edge demands with exponential sizes
/// around mean_pps (deterministic for a given seed).
[[nodiscard]] std::vector<Demand> random_demands(const Topology& topo,
                                                 std::size_t count,
                                                 double mean_pps,
                                                 std::uint64_t seed);

struct ReplicationResult {
  double replication_fraction = 0.0;
  /// 1 - (delivered customer pps / offered customer pps), averaged over
  /// demands ("loss in throughput" on Fig. 7's y-axis).
  double throughput_loss = 0.0;
  /// Worst single-demand throughput loss.
  double worst_demand_loss = 0.0;
  /// Router-processing view (the paper's testbed metric: "the average rate
  /// at which normal traffic is processed at each switch ... takes a hit
  /// when it processes the copied traffic"): every copy consumes forwarding
  /// capacity at the duplicating monitor and at every router en route to
  /// the engine.  Routers are provisioned with limited headroom over their
  /// baseline workload, as in the paper's NFV testbed.
  double router_throughput_loss = 0.0;  ///< Average over demands.
  double worst_router_demand_loss = 0.0;
  /// Fraction of generated copies that survive the network path.
  double copy_delivery_fraction = 1.0;
  /// Fraction of arriving copies the engine can process.
  double engine_processing_fraction = 1.0;
  /// Detection accuracy relative to lossless full-packet analysis:
  /// replication_fraction x copy delivery x engine processing.
  double detection_accuracy = 1.0;
};

class ReplicationExperiment {
 public:
  /// `monitors`: nodes that copy traffic; `engine`: where copies are sent.
  /// `engine_capacity_pps`: DPI throughput of the central engine.
  /// `router_headroom`: forwarding capacity of each router as a multiple of
  /// its provisioned workload.  Routers are provisioned for their customer
  /// baseline plus a kProvisionedReplication share of monitoring export —
  /// an operator plans for moderate telemetry, not for wholesale packet
  /// duplication.  Throws std::invalid_argument on empty monitors or bad
  /// node ids.
  ReplicationExperiment(const Topology& topo, std::vector<NodeId> monitors,
                        NodeId engine, std::vector<Demand> demands,
                        double engine_capacity_pps,
                        double router_headroom = 1.3);

  /// Replication share routers are provisioned to carry comfortably.
  static constexpr double kProvisionedReplication = 0.35;

  /// Evaluates the steady state at a given replication fraction in [0, 1].
  /// Fixed-point iteration: link losses reduce offered copy load, which
  /// changes losses; iterate until stable.
  [[nodiscard]] ReplicationResult evaluate(double replication_fraction) const;

  /// Per-monitor observed traffic (pps), after unique flow-to-monitor
  /// assignment (first monitor on each demand's path).
  [[nodiscard]] const std::vector<double>& monitored_pps() const noexcept {
    return monitored_pps_;
  }

 private:
  const Topology* topo_;
  std::vector<NodeId> monitors_;
  NodeId engine_;
  std::vector<Demand> demands_;
  double engine_capacity_pps_;
  double router_headroom_;
  std::vector<std::vector<std::size_t>> demand_links_;    ///< Link ids per demand.
  std::vector<std::vector<std::size_t>> monitor_links_;   ///< Monitor->engine link ids.
  std::vector<std::vector<NodeId>> demand_nodes_;         ///< Routers per demand.
  std::vector<std::vector<NodeId>> monitor_nodes_;        ///< Routers, monitor->engine.
  std::vector<double> monitored_pps_;                     ///< Per monitor.
  std::vector<double> router_base_work_;                  ///< Baseline pps per router.
  std::vector<double> router_copy_full_;                  ///< Copy pps at f = 1.
};

}  // namespace jaal::netsim
