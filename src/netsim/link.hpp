// Instrumented point-to-point link with a finite FIFO queue.
//
// The latency/replication models in this directory are analytic (steady
// state); LinkQueue is the packet-level counterpart for studying *transient*
// congestion on the monitor->engine control path: messages (summaries, raw
// feedback responses) are serialized at the link rate, queue behind each
// other in a bounded byte buffer, and are dropped — visibly, counted — when
// the buffer is full.  Driven by the discrete-event EventQueue, so every
// statistic is keyed by simulated time and is deterministic across runs and
// platforms (the determinism rule all telemetry in this repo follows: only
// wall-clock durations may vary).
//
// Telemetry: per-link counters/gauges are published under labeled names
// (jaal_netsim_link_*_total{link="<name>"}) when a Telemetry bundle is
// attached; local accessors work either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "netsim/event.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::netsim {

struct LinkConfig {
  std::string name = "link";       ///< Label for telemetry ("src-dst").
  double rate_bytes_per_s = 1e6;   ///< Serialization rate.
  std::size_t queue_limit_bytes = 64 * 1024;  ///< Tail-drop beyond this.
  double propagation_s = 0.002;    ///< Added after serialization completes.
};

/// One dropped message: when (simulated seconds) and how big.
struct LinkDrop {
  double sim_time = 0.0;
  std::size_t bytes = 0;
};

class LinkQueue {
 public:
  /// Called when a message finishes crossing the link (at simulated time
  /// `now`, which includes propagation).
  using DeliverFn = std::function<void(std::size_t bytes, double now)>;

  /// Throws std::invalid_argument on a non-positive rate or zero queue.
  LinkQueue(EventQueue& events, LinkConfig cfg);

  /// Publishes this link's counters into `tel` (null detaches).
  void set_telemetry(telemetry::Telemetry* tel);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Offers one message at the current simulated time.  Returns false (and
  /// counts a drop) when the message does not fit in the queue.
  bool offer(std::size_t bytes);

  [[nodiscard]] const LinkConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t messages_forwarded() const noexcept {
    return messages_forwarded_;
  }
  [[nodiscard]] std::uint64_t bytes_forwarded() const noexcept {
    return bytes_forwarded_;
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_.size(); }
  [[nodiscard]] std::uint64_t dropped_bytes() const noexcept {
    return dropped_bytes_;
  }
  /// Every drop, keyed by simulated time (deterministic).
  [[nodiscard]] const std::vector<LinkDrop>& drop_log() const noexcept {
    return drops_;
  }
  [[nodiscard]] std::size_t queue_depth_bytes() const noexcept {
    return queued_bytes_;
  }
  [[nodiscard]] std::size_t queue_high_water_bytes() const noexcept {
    return queue_high_water_;
  }

 private:
  void start_service();

  EventQueue* events_;
  LinkConfig cfg_;
  DeliverFn deliver_;
  std::deque<std::size_t> queue_;  ///< Message sizes awaiting service.
  std::size_t queued_bytes_ = 0;
  std::size_t queue_high_water_ = 0;
  bool busy_ = false;

  std::uint64_t messages_forwarded_ = 0;
  std::uint64_t bytes_forwarded_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::vector<LinkDrop> drops_;

  telemetry::Counter* tel_messages_ = nullptr;
  telemetry::Counter* tel_bytes_ = nullptr;
  telemetry::Counter* tel_drops_ = nullptr;
  telemetry::Counter* tel_dropped_bytes_ = nullptr;
  telemetry::Gauge* tel_high_water_ = nullptr;
};

}  // namespace jaal::netsim
