// Discrete-event engine.
//
// A minimal deterministic event loop: events fire in timestamp order with
// FIFO tie-breaking (insertion order), which keeps simulations reproducible
// across runs and platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace jaal::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when`.  Throws std::invalid_argument
  /// if `when` is before the current simulation time.
  void schedule(double when, Callback cb);

  /// Schedules `cb` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Callback cb);

  /// Current simulation time (time of the last event run, 0 initially).
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Runs the next event; returns false if none are pending.
  bool step();

  /// Runs events until the queue drains or `until` is passed; events
  /// scheduled during the run are honored.  Advances now() to min(until,
  /// last event time).  Returns the number of events executed.
  std::size_t run_until(double until);

  /// Drains the queue completely.  Returns the number of events executed.
  std::size_t run();

 private:
  struct Entry {
    double when;
    std::uint64_t sequence;  // FIFO among equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
  double now_ = 0.0;
};

}  // namespace jaal::netsim
