#include "store/store.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "inference/alert_json.hpp"

namespace jaal::store {
namespace {

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_u64_le(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[i]} << (8 * i);
  return v;
}

std::uint64_t double_bits(double d) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string_view as_view(std::span<const std::uint8_t> bytes) noexcept {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

}  // namespace

std::vector<std::uint8_t> encode_epoch_meta(const EpochMeta& m) {
  std::vector<std::uint8_t> out;
  out.reserve(40);
  put_u64_le(out, double_bits(m.end_time));
  put_u64_le(out, m.packets);
  put_u64_le(out, double_bits(m.report_fraction));
  put_u64_le(out, double_bits(m.caution));
  // Sharded deployments append their shard count; the one-shard encoding is
  // byte-identical to the pre-sharding format.
  if (m.shard_count != 1) put_u64_le(out, m.shard_count);
  return out;
}

std::optional<EpochMeta> decode_epoch_meta(
    std::uint64_t epoch, std::span<const std::uint8_t> payload) {
  if (payload.size() != 32 && payload.size() != 40) return std::nullopt;
  EpochMeta m;
  m.epoch = epoch;
  m.end_time = bits_double(get_u64_le(payload.data()));
  m.packets = get_u64_le(payload.data() + 8);
  m.report_fraction = bits_double(get_u64_le(payload.data() + 16));
  m.caution = bits_double(get_u64_le(payload.data() + 24));
  if (payload.size() == 40) {
    m.shard_count = get_u64_le(payload.data() + 32);
    if (m.shard_count == 0) return std::nullopt;
  }
  return m;
}

DeploymentStore::DeploymentStore(const StoreConfig& cfg, bool writable,
                                 telemetry::Telemetry* tel)
    : writable_(writable), tel_(tel) {
  summaries_ = std::make_unique<TimeShardLog>(
      TimeShardConfig{cfg.dir, "summaries", cfg.epochs_per_shard}, writable,
      tel);
  alerts_ = std::make_unique<TimeShardLog>(
      TimeShardConfig{cfg.dir, "alerts", cfg.epochs_per_shard}, writable,
      tel);
  provenance_ = std::make_unique<TimeShardLog>(
      TimeShardConfig{cfg.dir, "provenance", cfg.epochs_per_shard}, writable,
      tel);
  ops_ = std::make_unique<TimeShardLog>(
      TimeShardConfig{cfg.dir, "ops", cfg.epochs_per_shard}, writable, tel);
  // The last EpochMeta in the summaries log is the store's commit horizon.
  summaries_->for_each([&](const RecordView& rec) {
    if (rec.kind == RecordKind::kEpochMeta) last_committed_ = rec.epoch;
    return true;
  });
  if (writable) {
    // Drop everything newer than the horizon from all four logs: records
    // of a half-written epoch (summaries appended, meta never landed — or
    // alerts / metrics persisted for an epoch whose meta was torn away)
    // must not resurface as data after a restart.
    (void)summaries_->truncate_after_epoch(last_committed_);
    (void)alerts_->truncate_after_epoch(last_committed_);
    (void)provenance_->truncate_after_epoch(last_committed_);
    (void)ops_->truncate_after_epoch(last_committed_);
  }
}

void DeploymentStore::timed_append(TimeShardLog& log, std::uint64_t epoch,
                                   std::uint32_t stream, RecordKind kind,
                                   std::span<const std::uint8_t> payload) {
  if (!profiling()) {
    (void)log.append(epoch, stream, kind, payload);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  (void)log.append(epoch, stream, kind, payload);
  append_ms_ += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  ++append_records_;
  append_bytes_ += payload.size();
}

void DeploymentStore::put_summary(std::uint64_t epoch,
                                  const summarize::MonitorSummary& s) {
  // Full float64 fidelity: replaying these bytes must rebuild the exact
  // in-memory aggregate the live controller matched against.
  const std::vector<std::uint8_t> bytes =
      summarize::serialize(s, summarize::WirePrecision::kFloat64);
  const std::uint32_t monitor =
      std::visit([](const auto& v) { return v.monitor; }, s);
  timed_append(*summaries_, epoch, monitor, RecordKind::kSummary, bytes);
}

void DeploymentStore::put_alert(std::uint64_t epoch,
                                const inference::Alert& a,
                                double epoch_end_time) {
  const std::string line = inference::alert_to_json(a, epoch_end_time);
  timed_append(*alerts_, epoch, a.sid, RecordKind::kAlert, as_bytes(line));
}

void DeploymentStore::put_provenance(std::uint64_t epoch, std::uint32_t sid,
                                     const observe::AlertProvenance& p) {
  const std::string line = observe::to_json(p);
  timed_append(*provenance_, epoch, sid, RecordKind::kProvenance,
               as_bytes(line));
}

void DeploymentStore::put_metrics(std::uint64_t epoch,
                                  const telemetry::MetricsSnapshot& delta) {
  const std::vector<std::uint8_t> payload = encode_metrics_delta(delta);
  timed_append(*ops_, epoch, 0, RecordKind::kMetrics, payload);
}

void DeploymentStore::put_events(
    std::uint64_t epoch, std::span<const observe::FlightEvent> events) {
  const std::vector<std::uint8_t> payload = encode_flight_events(events);
  timed_append(*ops_, epoch, 0, RecordKind::kEvents, payload);
}

void DeploymentStore::commit_epoch(const EpochMeta& meta) {
  const std::vector<std::uint8_t> payload = encode_epoch_meta(meta);
  if (!profiling()) {
    if (summaries_->append(meta.epoch, 0, RecordKind::kEpochMeta, payload)) {
      last_committed_ = meta.epoch;
    }
    return;
  }
  // One 'store_append' span carries the epoch's accumulated append cost
  // (its duration is the summed wall time, not this instant).
  {
    telemetry::Span append_span =
        tel_->tracer.span("store_append", trace_ctx_);
    append_span.set_duration_ms(append_ms_);
    append_span.attr("records", static_cast<double>(append_records_));
    append_span.attr("bytes", static_cast<double>(append_bytes_));
  }
  {
    telemetry::Span commit_span =
        tel_->tracer.span("store_commit", trace_ctx_);
    if (summaries_->append(meta.epoch, 0, RecordKind::kEpochMeta, payload)) {
      last_committed_ = meta.epoch;
    }
  }
  // Shard rolls (truncate + msync + sidecar index) since the last commit,
  // including one the commit append itself may have triggered.
  double fin_ms = 0.0;
  std::uint64_t fins = 0;
  for (TimeShardLog* log :
       {summaries_.get(), alerts_.get(), provenance_.get(), ops_.get()}) {
    const auto [ms, n] = log->take_finalize_stats();
    fin_ms += ms;
    fins += n;
  }
  if (fins > 0) {
    telemetry::Span fin_span =
        tel_->tracer.span("index_finalize", trace_ctx_);
    fin_span.set_duration_ms(fin_ms);
    fin_span.attr("finalizes", static_cast<double>(fins));
  }
  append_ms_ = 0.0;
  append_records_ = 0;
  append_bytes_ = 0;
}

void DeploymentStore::sync() {
  (void)summaries_->sync();
  (void)alerts_->sync();
  (void)provenance_->sync();
  (void)ops_->sync();
}

bool DeploymentStore::failed() const noexcept {
  return summaries_->failed() || alerts_->failed() ||
         provenance_->failed() || ops_->failed();
}

std::uint64_t DeploymentStore::torn_bytes_truncated() const noexcept {
  return summaries_->torn_bytes_truncated() +
         alerts_->torn_bytes_truncated() +
         provenance_->torn_bytes_truncated() + ops_->torn_bytes_truncated();
}

void DeploymentStore::each_summary(
    const std::function<bool(std::uint64_t, std::uint32_t,
                             const summarize::MonitorSummary&)>& fn) const {
  summaries_->for_each([&](const RecordView& rec) {
    if (rec.kind != RecordKind::kSummary) return true;
    // Epochs are non-decreasing, so the first record past the commit
    // horizon ends the committed prefix.
    if (!visible(rec.epoch)) return false;
    return fn(rec.epoch, rec.stream, summarize::deserialize(rec.payload));
  });
}

void DeploymentStore::each_epoch_meta(
    const std::function<bool(const EpochMeta&)>& fn) const {
  summaries_->for_each([&](const RecordView& rec) {
    if (rec.kind != RecordKind::kEpochMeta) return true;
    const auto meta = decode_epoch_meta(rec.epoch, rec.payload);
    return !meta || fn(*meta);
  });
}

void DeploymentStore::each_alert_line(
    const std::function<bool(std::uint64_t, std::uint32_t, std::string_view)>&
        fn) const {
  alerts_->for_each([&](const RecordView& rec) {
    if (rec.kind != RecordKind::kAlert) return true;
    if (!visible(rec.epoch)) return false;
    return fn(rec.epoch, rec.stream, as_view(rec.payload));
  });
}

void DeploymentStore::each_provenance_line(
    const std::function<bool(std::uint64_t, std::uint32_t, std::string_view)>&
        fn) const {
  provenance_->for_each([&](const RecordView& rec) {
    if (rec.kind != RecordKind::kProvenance) return true;
    if (!visible(rec.epoch)) return false;
    return fn(rec.epoch, rec.stream, as_view(rec.payload));
  });
}

namespace {

[[noreturn]] void refuse_ops_payload(const char* what) {
  throw std::runtime_error(std::string("DeploymentStore: ") + what +
                           " payload refused (unknown magic or version — "
                           "written by an incompatible build)");
}

}  // namespace

void DeploymentStore::each_metrics_delta(
    const std::function<bool(std::uint64_t,
                             const telemetry::MetricsSnapshot&)>& fn) const {
  ops_->for_each([&](const RecordView& rec) {
    if (rec.kind != RecordKind::kMetrics) return true;
    if (!visible(rec.epoch)) return false;
    const auto snap = decode_metrics_delta(rec.payload);
    if (!snap) refuse_ops_payload("kMetrics");
    return fn(rec.epoch, *snap);
  });
}

void DeploymentStore::each_flight_events(
    const std::function<bool(std::uint64_t,
                             const std::vector<observe::FlightEvent>&)>& fn)
    const {
  ops_->for_each([&](const RecordView& rec) {
    if (rec.kind != RecordKind::kEvents) return true;
    if (!visible(rec.epoch)) return false;
    const auto events = decode_flight_events(rec.payload);
    if (!events) refuse_ops_payload("kEvents");
    return fn(rec.epoch, *events);
  });
}

std::optional<EpochMeta> DeploymentStore::epoch_meta_at(
    std::uint64_t epoch) const {
  if (!visible(epoch)) return std::nullopt;
  std::optional<EpochMeta> out;
  summaries_->for_each_in_epoch(epoch, [&](const RecordView& rec) {
    if (rec.kind != RecordKind::kEpochMeta) return true;
    out = decode_epoch_meta(rec.epoch, rec.payload);
    return false;
  });
  return out;
}

std::optional<telemetry::MetricsSnapshot> DeploymentStore::metrics_delta_at(
    std::uint64_t epoch) const {
  if (!visible(epoch)) return std::nullopt;
  std::optional<telemetry::MetricsSnapshot> out;
  bool refused = false;
  ops_->for_each_in_epoch(epoch, [&](const RecordView& rec) {
    if (rec.kind != RecordKind::kMetrics) return true;
    out = decode_metrics_delta(rec.payload);
    refused = !out.has_value();
    return false;
  });
  if (refused) refuse_ops_payload("kMetrics");
  return out;
}

std::vector<observe::FlightEvent> DeploymentStore::events_at(
    std::uint64_t epoch) const {
  std::vector<observe::FlightEvent> out;
  if (!visible(epoch)) return out;
  ops_->for_each_in_epoch(epoch, [&](const RecordView& rec) {
    if (rec.kind != RecordKind::kEvents) return true;
    if (auto events = decode_flight_events(rec.payload)) {
      out = std::move(*events);
    }
    return false;
  });
  return out;
}

void DeploymentStore::each_alert_line_in_epoch(
    std::uint64_t epoch,
    const std::function<bool(std::uint32_t, std::string_view)>& fn) const {
  if (!visible(epoch)) return;
  alerts_->for_each_in_epoch(epoch, [&](const RecordView& rec) {
    if (rec.kind != RecordKind::kAlert) return true;
    return fn(rec.stream, as_view(rec.payload));
  });
}

}  // namespace jaal::store
