#include "store/doctor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "telemetry/profile.hpp"

namespace jaal::store {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool bits_equal(double a, double b) noexcept {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

observe::FidelityStats fidelity_from_event(const observe::FlightEvent& ev) {
  observe::FidelityStats stats;
  stats.epoch = ev.epoch;
  stats.monitor = ev.actor;
  stats.batch_packets = static_cast<std::size_t>(ev.u[0]);
  stats.svd_energy_retained = ev.a;
  stats.kmeans_inertia = ev.b;
  stats.reconstruction_error = ev.c;
  return stats;
}

observe::HealthTracker::EpochDegradation degradation_from_event(
    const observe::FlightEvent& ev) {
  observe::HealthTracker::EpochDegradation d;
  d.report_fraction = ev.a;
  d.monitors_crashed = static_cast<std::size_t>(ev.u[0]);
  d.summaries_dropped = static_cast<std::size_t>(ev.u[1]);
  d.summaries_late = static_cast<std::size_t>(ev.u[2]);
  d.summaries_rolled_in = static_cast<std::size_t>(ev.u[3]);
  d.packets_lost = ev.u[4];
  d.feedback_fallbacks = ev.u[5];
  d.alerts = static_cast<std::size_t>(ev.actor);
  return d;
}

/// One stored drift transition == one re-derived HealthEvent, field for
/// field (doubles compared by bit pattern: the store round-trips exact
/// bits, so any difference is a real divergence, not formatting).
bool drift_matches(const observe::FlightEvent& stored,
                   const observe::HealthEvent& derived) {
  const bool stored_start =
      stored.kind == observe::FlightEventKind::kDriftStart;
  const bool derived_start =
      derived.kind == observe::HealthEventKind::kDriftStart;
  return stored_start == derived_start && stored.epoch == derived.epoch &&
         stored.actor == derived.monitor &&
         observe::drift_metric_name(stored.u[0]) == derived.metric &&
         bits_equal(stored.a, derived.value) &&
         bits_equal(stored.b, derived.baseline) &&
         bits_equal(stored.c, derived.z);
}

/// Folds one stored delta into the running cumulative snapshot (counters
/// and histogram counts/buckets/sums add; gauges are last-writer-wins; max
/// is a lifetime high-water, so it only ratchets up).
void accumulate(std::map<std::string, telemetry::MetricsSnapshot::Entry>& acc,
                const telemetry::MetricsSnapshot& delta) {
  for (const auto& e : delta.entries) {
    auto [it, inserted] = acc.try_emplace(e.name, e);
    if (inserted) continue;
    auto& cur = it->second;
    if (cur.kind != e.kind) {  // foreign mix-up; keep the newer shape
      cur = e;
      continue;
    }
    switch (e.kind) {
      case telemetry::MetricKind::kCounter:
        cur.counter += e.counter;
        break;
      case telemetry::MetricKind::kGauge:
        cur.gauge = e.gauge;
        break;
      case telemetry::MetricKind::kHistogram: {
        cur.histogram.count += e.histogram.count;
        cur.histogram.sum += e.histogram.sum;
        cur.histogram.max = std::max(cur.histogram.max, e.histogram.max);
        if (cur.histogram.buckets.size() < e.histogram.buckets.size()) {
          cur.histogram.buckets.resize(e.histogram.buckets.size(), 0);
        }
        for (std::size_t i = 0; i < e.histogram.buckets.size(); ++i) {
          cur.histogram.buckets[i] += e.histogram.buckets[i];
        }
        break;
      }
    }
  }
}

}  // namespace

StoreDiagnosis diagnose_store(const DeploymentStore& store,
                              const StoreDiagnosisConfig& cfg) {
  StoreDiagnosis out;

  store.each_epoch_meta([&](const EpochMeta& m) {
    out.metas.push_back(m);
    if (m.shard_count > out.shard_count) out.shard_count = m.shard_count;
    return true;
  });
  out.epochs = out.metas.size();
  store.each_alert_line(
      [&](std::uint64_t, std::uint32_t, std::string_view) {
        ++out.alerts;
        return true;
      });
  store.each_provenance_line(
      [&](std::uint64_t, std::uint32_t, std::string_view) {
        ++out.provenance_records;
        return true;
      });

  // Gather the stored event batches (ascending by epoch; one batch per
  // epoch the live controller closed with the recorder on).
  std::vector<std::pair<std::uint64_t, std::vector<observe::FlightEvent>>>
      batches;
  store.each_flight_events(
      [&](std::uint64_t epoch, const std::vector<observe::FlightEvent>& evs) {
        out.flight_events += evs.size();
        batches.emplace_back(epoch, evs);
        return true;
      });

  // Monitor count: explicit override, else the kEpochClose events carry it,
  // else the summary stream ids bound it.
  std::size_t monitors = cfg.monitor_count;
  if (monitors == 0) {
    for (const auto& [epoch, evs] : batches) {
      for (const auto& ev : evs) {
        if (ev.kind == observe::FlightEventKind::kEpochClose && ev.c > 0) {
          monitors = std::max(monitors, static_cast<std::size_t>(ev.c));
        }
        if (ev.kind == observe::FlightEventKind::kFidelity) {
          monitors = std::max(monitors, static_cast<std::size_t>(ev.actor) + 1);
        }
      }
    }
  }
  if (monitors == 0) {
    store.each_summary([&](std::uint64_t, std::uint32_t monitor,
                           const summarize::MonitorSummary&) {
      monitors = std::max(monitors, static_cast<std::size_t>(monitor) + 1);
      return true;
    });
  }
  if (monitors == 0) monitors = 1;
  out.monitor_count = monitors;

  // Replay: feed a fresh tracker exactly what the live one saw, in the
  // stored (= live) order, and cross-check the drift transitions it
  // re-derives against the stored ones.
  observe::HealthTracker tracker(cfg.observe, monitors);
  std::map<std::uint64_t, const std::vector<observe::FlightEvent>*> by_epoch;
  for (const auto& [epoch, evs] : batches) by_epoch[epoch] = &evs;

  std::uint64_t epochs_closed = 0;
  std::string timeline;
  for (const auto& meta : out.metas) {
    const auto it = by_epoch.find(meta.epoch);
    const observe::FlightEvent* close = nullptr;
    const observe::FlightEvent* profile = nullptr;
    std::vector<const observe::FlightEvent*> stored_drift;
    if (it != by_epoch.end()) {
      for (const auto& ev : *it->second) {
        switch (ev.kind) {
          case observe::FlightEventKind::kFidelity:
            tracker.observe_fidelity(fidelity_from_event(ev));
            break;
          case observe::FlightEventKind::kDriftStart:
          case observe::FlightEventKind::kDriftEnd:
            stored_drift.push_back(&ev);
            break;
          case observe::FlightEventKind::kEpochClose:
            close = &ev;
            break;
          case observe::FlightEventKind::kProfile:
            profile = &ev;
            break;
          default:
            break;  // kShip/kFeedback/kSpan: timeline color, not state
        }
      }
    }
    std::vector<observe::HealthEvent> derived;
    if (close != nullptr) {
      derived = tracker.end_epoch(meta.epoch, degradation_from_event(*close));
      ++epochs_closed;
      bool match = derived.size() == stored_drift.size();
      for (std::size_t i = 0; match && i < derived.size(); ++i) {
        match = drift_matches(*stored_drift[i], derived[i]);
      }
      if (!match) ++out.drift_mismatches;
    }

    timeline += "{\"kind\":\"epoch\",\"epoch\":" + std::to_string(meta.epoch) +
                ",\"end_time\":" + fmt_double(meta.end_time) +
                ",\"packets\":" + std::to_string(meta.packets) +
                ",\"report_fraction\":" + fmt_double(meta.report_fraction) +
                ",\"caution\":" + fmt_double(meta.caution);
    if (close != nullptr) {
      timeline += ",\"alerts\":" + std::to_string(close->actor) +
                  ",\"monitors_crashed\":" + std::to_string(close->u[0]) +
                  ",\"summaries_dropped\":" + std::to_string(close->u[1]) +
                  ",\"summaries_late\":" + std::to_string(close->u[2]) +
                  ",\"summaries_rolled_in\":" + std::to_string(close->u[3]) +
                  ",\"packets_lost\":" + std::to_string(close->u[4]) +
                  ",\"feedback_fallbacks\":" + std::to_string(close->u[5]) +
                  ",\"drift_events\":" + std::to_string(derived.size());
    }
    if (profile != nullptr) {
      // Critical-path digest (live runs with profiling on): the stage that
      // dominated the deterministic span tree, plus the tree's shape.  All
      // fields come from the deterministic-mode profile, so the timeline
      // stays byte-identical across runs, thread counts and shard counts.
      timeline += ",\"dominant_stage\":\"";
      timeline += telemetry::profile_stage_name(
          static_cast<std::uint8_t>(profile->actor));
      timeline += "\",\"path_depth\":" +
                  std::to_string(static_cast<std::uint64_t>(profile->b)) +
                  ",\"spans\":" + std::to_string(profile->u[0]);
    }
    timeline += "}\n";
  }
  out.health_complete = out.epochs > 0 && epochs_closed == out.epochs;
  out.health = tracker.report();

  if (cfg.observe.slo) {
    observe::SloTracker slo(cfg.observe.slo_config);
    for (const auto& meta : out.metas) {
      // No latency sample offline: wall clock is deliberately not persisted.
      slo.observe_epoch(meta.epoch, meta.report_fraction, -1.0);
    }
    out.slo_jsonl = slo.to_jsonl();
  }

  std::map<std::string, telemetry::MetricsSnapshot::Entry> acc;
  store.each_metrics_delta(
      [&](std::uint64_t, const telemetry::MetricsSnapshot& delta) {
        ++out.metrics_records;
        accumulate(acc, delta);
        return true;
      });
  out.cumulative_metrics.entries.reserve(acc.size());
  for (auto& [name, entry] : acc) {
    out.cumulative_metrics.entries.push_back(std::move(entry));
  }

  out.timeline_jsonl = std::move(timeline);
  out.timeline_jsonl += out.health.to_jsonl();
  out.timeline_jsonl += out.slo_jsonl;
  return out;
}

}  // namespace jaal::store
