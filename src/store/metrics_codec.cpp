#include "store/metrics_codec.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "telemetry/export.hpp"

namespace jaal::store {
namespace {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_double(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF));
  }
}

/// Streaming reader over a payload; every get_* reports failure by flipping
/// ok, so decoders can chain reads and check once.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t get_u8() noexcept {
    if (pos >= data.size()) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }

  std::uint64_t get_varint() noexcept {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos >= data.size()) {
        ok = false;
        return 0;
      }
      const std::uint8_t b = data[pos++];
      v |= std::uint64_t{b & 0x7Fu} << shift;
      if ((b & 0x80u) == 0) return v;
    }
    ok = false;  // more than 10 continuation bytes: malformed
    return 0;
  }

  double get_double() noexcept {
    if (pos + 8 > data.size()) {
      ok = false;
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= std::uint64_t{data[pos + static_cast<std::size_t>(i)]}
              << (8 * i);
    }
    pos += 8;
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  std::string get_string(std::size_t len) {
    if (pos + len > data.size()) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data.data() + pos), len);
    pos += len;
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_metrics_delta(
    const telemetry::MetricsSnapshot& delta) {
  using telemetry::MetricKind;
  std::vector<const telemetry::MetricsSnapshot::Entry*> kept;
  kept.reserve(delta.entries.size());
  for (const auto& e : delta.entries) {
    if (telemetry::is_wall_clock_metric(e.name)) continue;
    // Per-shard tier-shape series depend on the shard count, not on what the
    // deployment detected — eliding them keeps stores byte-identical across
    // shard counts.
    if (telemetry::is_tier_shape_metric(e.name)) continue;
    // The store's own I/O accounting is self-referential (each append grows
    // it, and the commit record's size depends on the tier shape), so
    // persisting it would also leak the shard count into the ops bytes.
    // The live registry still exports the family.
    if (e.name.rfind("jaal_store_", 0) == 0) continue;
    if (e.kind == MetricKind::kCounter && e.counter == 0) continue;
    if (e.kind == MetricKind::kHistogram && e.histogram.count == 0) continue;
    kept.push_back(&e);
  }
  std::sort(kept.begin(), kept.end(),
            [](const auto* a, const auto* b) { return a->name < b->name; });

  std::vector<std::uint8_t> out;
  out.push_back(kMetricsPayloadMagic);
  out.push_back(kMetricsPayloadVersion);
  put_varint(out, kept.size());
  for (const auto* e : kept) {
    put_varint(out, e->name.size());
    out.insert(out.end(), e->name.begin(), e->name.end());
    switch (e->kind) {
      case MetricKind::kCounter:
        out.push_back(0);
        put_varint(out, e->counter);
        break;
      case MetricKind::kGauge:
        out.push_back(1);
        put_varint(out, zigzag(e->gauge));
        break;
      case MetricKind::kHistogram: {
        out.push_back(2);
        put_varint(out, e->histogram.count);
        put_double(out, e->histogram.sum);
        put_double(out, e->histogram.max);
        std::uint64_t nonzero = 0;
        for (const std::uint64_t b : e->histogram.buckets) {
          if (b != 0) ++nonzero;
        }
        put_varint(out, nonzero);
        for (std::size_t b = 0; b < e->histogram.buckets.size(); ++b) {
          if (e->histogram.buckets[b] == 0) continue;
          put_varint(out, b);
          put_varint(out, e->histogram.buckets[b]);
        }
        break;
      }
    }
  }
  return out;
}

std::optional<telemetry::MetricsSnapshot> decode_metrics_delta(
    std::span<const std::uint8_t> payload) {
  using telemetry::MetricKind;
  Reader r{payload};
  if (r.get_u8() != kMetricsPayloadMagic ||
      r.get_u8() != kMetricsPayloadVersion || !r.ok) {
    return std::nullopt;
  }
  const std::uint64_t count = r.get_varint();
  telemetry::MetricsSnapshot snap;
  for (std::uint64_t i = 0; r.ok && i < count; ++i) {
    telemetry::MetricsSnapshot::Entry e;
    const std::uint64_t name_len = r.get_varint();
    if (!r.ok || name_len > payload.size()) return std::nullopt;
    e.name = r.get_string(static_cast<std::size_t>(name_len));
    const std::uint8_t kind = r.get_u8();
    switch (kind) {
      case 0:
        e.kind = MetricKind::kCounter;
        e.counter = r.get_varint();
        break;
      case 1:
        e.kind = MetricKind::kGauge;
        e.gauge = unzigzag(r.get_varint());
        break;
      case 2: {
        e.kind = MetricKind::kHistogram;
        e.histogram.count = r.get_varint();
        e.histogram.sum = r.get_double();
        e.histogram.max = r.get_double();
        e.histogram.buckets.assign(telemetry::Histogram::kBucketCount, 0);
        const std::uint64_t nonzero = r.get_varint();
        for (std::uint64_t b = 0; r.ok && b < nonzero; ++b) {
          const std::uint64_t idx = r.get_varint();
          const std::uint64_t cnt = r.get_varint();
          if (idx >= e.histogram.buckets.size()) return std::nullopt;
          e.histogram.buckets[idx] = cnt;
        }
        break;
      }
      default:
        return std::nullopt;
    }
    if (!r.ok) return std::nullopt;
    snap.entries.push_back(std::move(e));
  }
  if (!r.ok || r.pos != payload.size()) return std::nullopt;
  return snap;
}

std::vector<std::uint8_t> encode_flight_events(
    std::span<const observe::FlightEvent> events) {
  std::vector<std::uint8_t> out;
  out.push_back(kEventsPayloadMagic);
  out.push_back(kEventsPayloadVersion);
  put_varint(out, events.size());
  for (const observe::FlightEvent& e : events) {
    put_varint(out, e.seq);
    put_varint(out, e.epoch);
    out.push_back(static_cast<std::uint8_t>(e.kind));
    put_varint(out, e.actor);
    put_double(out, e.a);
    put_double(out, e.b);
    put_double(out, e.c);
    for (const std::uint64_t u : e.u) put_varint(out, u);
  }
  return out;
}

std::optional<std::vector<observe::FlightEvent>> decode_flight_events(
    std::span<const std::uint8_t> payload) {
  Reader r{payload};
  if (r.get_u8() != kEventsPayloadMagic ||
      r.get_u8() != kEventsPayloadVersion || !r.ok) {
    return std::nullopt;
  }
  const std::uint64_t count = r.get_varint();
  std::vector<observe::FlightEvent> out;
  for (std::uint64_t i = 0; r.ok && i < count; ++i) {
    observe::FlightEvent e;
    e.seq = r.get_varint();
    e.epoch = r.get_varint();
    const std::uint8_t kind = r.get_u8();
    if (kind < static_cast<std::uint8_t>(
                   observe::FlightEventKind::kEpochClose) ||
        kind > static_cast<std::uint8_t>(observe::FlightEventKind::kProfile)) {
      return std::nullopt;
    }
    e.kind = static_cast<observe::FlightEventKind>(kind);
    e.actor = static_cast<std::uint32_t>(r.get_varint());
    e.a = r.get_double();
    e.b = r.get_double();
    e.c = r.get_double();
    for (std::uint64_t& u : e.u) u = r.get_varint();
    if (!r.ok) return std::nullopt;
    out.push_back(e);
  }
  if (!r.ok || r.pos != payload.size()) return std::nullopt;
  return out;
}

}  // namespace jaal::store
