// Offline store diagnosis: rebuild the operational timeline — health,
// drift, SLO, telemetry — of a deployment purely from its DeploymentStore,
// without rerunning any traffic.
//
// How reconstruction works: the live controller persists, per epoch, the
// flight events it raised while closing that epoch (kEvents) and the
// registry's metrics delta (kMetrics), both committed under the epoch's
// EpochMeta.  Feeding a fresh HealthTracker the stored kFidelity events (in
// stored order) and each kEpochClose event's degradation numbers replays
// the exact arithmetic the live tracker ran, so the reconstructed
// HealthReport::to_jsonl() is byte-identical to the live one; the same
// holds for the SloTracker re-fed from the EpochMeta report fractions.  The
// stored kDriftStart/kDriftEnd events are cross-checked against the
// re-derived transitions — a mismatch means the store and the build
// disagree about the drift arithmetic and is surfaced, not hidden.
//
// Stores written without the ops stream (older deployments, or
// store_metrics off) still diagnose: epoch/alert/SLO timeline from
// EpochMeta and the alert log, with health_complete() false.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "observe/health.hpp"
#include "observe/slo.hpp"
#include "store/store.hpp"
#include "telemetry/metrics.hpp"

namespace jaal::store {

struct StoreDiagnosisConfig {
  /// Must match the live deployment's observability knobs (drift config
  /// feeds the reconstructed detectors).
  observe::ObserveConfig observe;
  /// Monitors in the deployment; 0 derives it from the stored kEpochClose
  /// events (which carry it) or, failing that, the summary stream ids.
  std::size_t monitor_count = 0;
};

struct StoreDiagnosis {
  std::uint64_t epochs = 0;           ///< Committed epochs.
  std::uint64_t alerts = 0;           ///< Stored alert records.
  std::uint64_t provenance_records = 0;
  std::uint64_t flight_events = 0;    ///< Stored events across all epochs.
  std::uint64_t metrics_records = 0;  ///< Stored kMetrics deltas.
  /// Epochs whose stored drift events disagree with the re-derived ones.
  std::uint64_t drift_mismatches = 0;
  /// True when every committed epoch carried a kEpochClose event — i.e. the
  /// health reconstruction saw everything the live tracker saw.
  bool health_complete = false;
  std::size_t monitor_count = 0;      ///< As used for reconstruction.
  /// Largest inference-tier shard count any committed epoch ran with (1 for
  /// single-engine and pre-sharding stores).  Purely informational: the
  /// diagnosis arithmetic is shard-agnostic, and the timeline stays
  /// byte-identical across shard counts.
  std::uint64_t shard_count = 1;

  observe::HealthReport health;       ///< Reconstructed (scoreboard empty).
  std::string slo_jsonl;              ///< Reconstructed slo_summary line.
  /// Sum of all stored metrics deltas: the deterministic slice of the
  /// registry as it stood at the last committed epoch.
  telemetry::MetricsSnapshot cumulative_metrics;
  std::vector<EpochMeta> metas;       ///< Ascending by epoch.
  /// Deterministic JSONL: one "epoch" line per committed epoch (meta +
  /// degradation when stored), then the health report lines, then the
  /// slo_summary line.
  std::string timeline_jsonl;
};

/// Reconstructs the diagnosis from a store.  Throws std::invalid_argument
/// on an inconsistent config and std::runtime_error on refused ops
/// payloads (see DeploymentStore::each_metrics_delta).
[[nodiscard]] StoreDiagnosis diagnose_store(const DeploymentStore& store,
                                            const StoreDiagnosisConfig& cfg);

}  // namespace jaal::store
