#include "store/flat_timeshard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace jaal::store {
namespace {

namespace fs = std::filesystem;

void put_u32_at(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v & 0xFF);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64_at(std::uint8_t* out, std::uint64_t v) noexcept {
  put_u32_at(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32_at(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32_at(const std::uint8_t* in) noexcept {
  return std::uint32_t{in[0]} | (std::uint32_t{in[1]} << 8) |
         (std::uint32_t{in[2]} << 16) | (std::uint32_t{in[3]} << 24);
}

std::uint64_t get_u64_at(const std::uint8_t* in) noexcept {
  return std::uint64_t{get_u32_at(in)} |
         (std::uint64_t{get_u32_at(in + 4)} << 32);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Walks records in [kShardHeaderBytes, limit) of a mapped shard, invoking
/// fn for each; returns false when fn asked to stop.
bool iterate_shard(std::span<const std::uint8_t> bytes,
                   const std::function<bool(const RecordView&)>& fn) {
  std::size_t offset = kShardHeaderBytes;
  while (auto rec = next_record(bytes, offset)) {
    if (!fn(*rec)) return false;
  }
  return true;
}

/// True when the shard's magic fully landed on disk.  A shard whose magic
/// is intact was completely rolled by *some* build — its header fields are
/// authoritative, never torn noise.
bool magic_landed(const FlatMmap& map) noexcept {
  return map.size() >= kShardHeaderBytes &&
         std::memcmp(map.data(), kShardMagic, sizeof(kShardMagic)) == 0;
}

/// Offset just past the last non-zero byte at or after `from`: the extent
/// of bytes actually written.  Growth pre-zeroes mmap capacity, so trailing
/// zeros are unused allocation, not torn record data.
std::size_t data_extent(const FlatMmap& map, std::size_t from) noexcept {
  std::size_t end = map.size();
  const std::uint8_t* d = map.data();
  while (end > from && d[end - 1] == 0) --end;
  return end;
}

}  // namespace

TimeShardLog::TimeShardLog(TimeShardConfig cfg, bool writable,
                           telemetry::Telemetry* tel)
    : cfg_(std::move(cfg)), writable_(writable) {
  if (cfg_.dir.empty() || cfg_.prefix.empty() ||
      cfg_.epochs_per_shard == 0) {
    throw std::invalid_argument(
        "TimeShardLog: dir, prefix and epochs_per_shard are required");
  }
  if (tel != nullptr) {
    auto& m = tel->metrics;
    tel_bytes_ = &m.counter("jaal_store_bytes_written_total");
    tel_records_ = &m.counter("jaal_store_records_total");
    tel_rolls_ = &m.counter("jaal_store_shards_rolled_total");
    tel_torn_bytes_ = &m.counter("jaal_store_torn_bytes_truncated_total");
    tel_scan_bytes_ = &m.counter("jaal_store_scan_bytes_total");
    tel_index_hits_ = &m.counter("jaal_store_index_point_queries_total");
    tel_index_fallbacks_ =
        &m.counter("jaal_store_index_fallback_scans_total");
    tel_msync_ms_ = &m.histogram("jaal_store_msync_ms");
  }
  std::error_code ec;
  if (writable_) fs::create_directories(cfg_.dir, ec);
  if (!fs::is_directory(cfg_.dir, ec)) {
    throw std::invalid_argument("TimeShardLog: unusable store directory " +
                                cfg_.dir);
  }
  // Discover existing shards: <prefix>.<digits>.jstore.
  const std::string head = cfg_.prefix + ".";
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= head.size() + 7 || name.compare(0, head.size(), head) != 0 ||
        name.compare(name.size() - 7, 7, ".jstore") != 0) {
      continue;
    }
    const std::string digits =
        name.substr(head.size(), name.size() - head.size() - 7);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    shard_indices_.push_back(std::stoull(digits));
  }
  std::sort(shard_indices_.begin(), shard_indices_.end());
  // Validate every discovered header up front, reader and writer alike.  A
  // shard whose magic is intact but whose header disagrees with this build
  // or config (format version, schema hash, epoch range / shard width) is
  // incompatible: refuse the whole store loudly rather than ever mistaking
  // committed data for a torn roll.  Only a *tail* shard whose magic never
  // landed is a recoverable crash-during-roll.
  for (std::size_t i = 0; i < shard_indices_.size();) {
    const std::uint64_t idx = shard_indices_[i];
    FlatMmap map;
    if (!map.open(shard_path(idx), false)) {
      throw std::invalid_argument("TimeShardLog: cannot open shard " +
                                  shard_path(idx));
    }
    if (header_ok(map, idx)) {
      ++i;
      continue;
    }
    const bool tail = i + 1 == shard_indices_.size();
    if (magic_landed(map) || !tail) {
      throw std::invalid_argument(
          "TimeShardLog: incompatible shard header (format/schema/shard "
          "width mismatch) in " +
          shard_path(idx));
    }
    if (writable_) {
      ++i;  // open_tail_for_write deletes the torn roll
    } else {
      shard_indices_.pop_back();  // readers just skip it
    }
  }
  if (writable_ && !open_tail_for_write()) {
    throw std::invalid_argument(
        "TimeShardLog: cannot recover tail shard under " + cfg_.dir);
  }
  if (torn_bytes_ > 0 && tel_torn_bytes_ != nullptr) {
    tel_torn_bytes_->add(torn_bytes_);
  }
}

TimeShardLog::~TimeShardLog() { finalize(); }

std::string TimeShardLog::shard_path(std::uint64_t index) const {
  char name[64];
  std::snprintf(name, sizeof(name), ".%06llu.jstore",
                static_cast<unsigned long long>(index));
  return cfg_.dir + "/" + cfg_.prefix + name;
}

std::string TimeShardLog::index_path(std::uint64_t index) const {
  char name[64];
  std::snprintf(name, sizeof(name), ".%06llu.jidx",
                static_cast<unsigned long long>(index));
  return cfg_.dir + "/" + cfg_.prefix + name;
}

bool TimeShardLog::header_ok(const FlatMmap& map,
                             std::uint64_t index) const noexcept {
  if (map.size() < kShardHeaderBytes) return false;
  const std::uint8_t* h = map.data();
  return std::memcmp(h, kShardMagic, sizeof(kShardMagic)) == 0 &&
         get_u32_at(h + 8) == kShardFormatVersion &&
         get_u32_at(h + 12) == kRecordSchemaHash &&
         get_u64_at(h + 16) == index * cfg_.epochs_per_shard &&
         get_u64_at(h + 24) == cfg_.epochs_per_shard;
}

std::size_t TimeShardLog::walk_end(const FlatMmap& map) const noexcept {
  const std::span<const std::uint8_t> bytes(map.data(), map.size());
  std::size_t offset = kShardHeaderBytes;
  while (next_record(bytes, offset)) {
  }
  return offset;
}

bool TimeShardLog::open_tail_for_write() {
  while (!shard_indices_.empty()) {
    const std::uint64_t idx = shard_indices_.back();
    const std::string path = shard_path(idx);
    if (!tail_.open(path, true)) return false;
    if (!header_ok(tail_, idx)) {
      if (magic_landed(tail_)) {
        // A fully-rolled shard whose header disagrees with this build or
        // config: refuse the whole store rather than silently dropping
        // data.  (The constructor pre-validation already throws for this;
        // kept as a defensive backstop.)
        return false;
      }
      // Crash during a shard roll: the magic never fully landed.  The file
      // holds no committed data — delete it and fall back to the previous
      // shard.
      torn_bytes_ += data_extent(tail_, 0);
      tail_.close();
      std::error_code ec;
      fs::remove(path, ec);
      shard_indices_.pop_back();
      continue;
    }
    const std::size_t end = walk_end(tail_);
    torn_bytes_ += data_extent(tail_, end) - end;
    if (!tail_.truncate_to(end)) return false;
    tail_used_ = end;
    tail_index_ = idx;
    // Resume the epoch-ordering guard and the in-memory epoch index from
    // the surviving records.
    tail_offsets_.clear();
    const std::span<const std::uint8_t> bytes(tail_.data(), tail_used_);
    std::size_t offset = kShardHeaderBytes;
    std::size_t prev = offset;
    while (auto rec = next_record(bytes, offset)) {
      if (tail_offsets_.empty() || tail_offsets_.back().epoch != rec->epoch) {
        tail_offsets_.push_back({rec->epoch, prev});
      }
      last_append_epoch_ = rec->epoch;
      prev = offset;
    }
    return true;
  }
  return true;  // empty log; the first append creates shard 0+.
}

bool TimeShardLog::roll_to(std::uint64_t index) {
  if (tail_.is_open()) {
    finalize();
    if (tel_rolls_ != nullptr) tel_rolls_->add(1);
  }
  if (!tail_.open(shard_path(index), true)) return false;
  if (!tail_.ensure_capacity(64 * 1024)) return false;
  std::uint8_t* h = tail_.data();
  std::memset(h, 0, kShardHeaderBytes);
  std::memcpy(h, kShardMagic, sizeof(kShardMagic));
  put_u32_at(h + 8, kShardFormatVersion);
  put_u32_at(h + 12, kRecordSchemaHash);
  put_u64_at(h + 16, index * cfg_.epochs_per_shard);
  put_u64_at(h + 24, cfg_.epochs_per_shard);
  tail_used_ = kShardHeaderBytes;
  tail_index_ = index;
  tail_offsets_.clear();
  shard_indices_.push_back(index);
  return true;
}

bool TimeShardLog::append(std::uint64_t epoch, std::uint32_t stream,
                          RecordKind kind,
                          std::span<const std::uint8_t> payload) {
  if (failed_ || !writable_ || payload.size() > kMaxRecordPayload) {
    return false;
  }
  if (last_append_epoch_ && epoch < *last_append_epoch_) {
    fail();
    return false;
  }
  const std::uint64_t index = epoch / cfg_.epochs_per_shard;
  if (!tail_.is_open() || index > tail_index_) {
    if (!roll_to(index)) {
      fail();
      return false;
    }
  } else if (index < tail_index_) {
    fail();
    return false;
  }
  const std::size_t end =
      tail_used_ + kRecordHeaderBytes + payload.size();
  if (end > tail_.size()) {
    std::size_t cap = std::max<std::size_t>(tail_.size() * 2, 64 * 1024);
    cap = std::max(cap, end);
    if (!tail_.ensure_capacity(cap)) {
      fail();
      return false;
    }
  }
  if (tail_offsets_.empty() || tail_offsets_.back().epoch != epoch) {
    tail_offsets_.push_back({epoch, tail_used_});
  }
  RecordHeader h;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.crc32 = crc32(payload);
  h.epoch = epoch;
  h.stream = stream;
  h.kind = static_cast<std::uint32_t>(kind);
  encode_record_header(h, tail_.data() + tail_used_);
  if (!payload.empty()) {
    std::memcpy(tail_.data() + tail_used_ + kRecordHeaderBytes,
                payload.data(), payload.size());
  }
  tail_used_ = end;
  last_append_epoch_ = epoch;
  ++records_appended_;
  if (tel_records_ != nullptr) {
    tel_records_->add(1);
    tel_bytes_->add(kRecordHeaderBytes + payload.size());
  }
  return true;
}

bool TimeShardLog::sync() {
  if (!writable_ || !tail_.is_open()) return true;
  const auto start = std::chrono::steady_clock::now();
  const bool ok = tail_.sync(tail_used_);
  if (tel_msync_ms_ != nullptr) tel_msync_ms_->observe(ms_since(start));
  return ok;
}

void TimeShardLog::finalize() {
  if (!writable_ || !tail_.is_open()) return;
  const auto start = std::chrono::steady_clock::now();
  (void)tail_.truncate_to(tail_used_);
  (void)sync();
  write_sidecar();
  finalize_ms_accum_ += ms_since(start);
  ++finalizes_;
}

bool TimeShardLog::truncate_after_epoch(std::optional<std::uint64_t> epoch) {
  if (!writable_ || failed_) return false;
  // Shards whose whole range lies beyond the epoch go away entirely (all of
  // them when wiping).
  while (!shard_indices_.empty() &&
         (!epoch.has_value() ||
          shard_indices_.back() * cfg_.epochs_per_shard > *epoch)) {
    const std::uint64_t idx = shard_indices_.back();
    if (tail_.is_open() && tail_index_ == idx) tail_.close();
    std::error_code ec;
    fs::remove(shard_path(idx), ec);
    fs::remove(index_path(idx), ec);
    shard_indices_.pop_back();
  }
  if (shard_indices_.empty()) {
    tail_.close();
    tail_used_ = 0;
    tail_offsets_.clear();
    last_append_epoch_.reset();
    return true;
  }
  // The boundary shard may still hold records past the epoch: cut at the
  // first one.  Its sidecar describes the pre-cut bytes — drop it (a new
  // one lands at the next finalize).
  const std::uint64_t idx = shard_indices_.back();
  {
    std::error_code ec;
    fs::remove(index_path(idx), ec);
  }
  if (!tail_.is_open() || tail_index_ != idx) {
    if (!tail_.open(shard_path(idx), true) || !header_ok(tail_, idx)) {
      fail();
      return false;
    }
    tail_used_ = walk_end(tail_);
    tail_index_ = idx;
  }
  const std::span<const std::uint8_t> bytes(tail_.data(), tail_used_);
  std::size_t offset = kShardHeaderBytes;
  std::size_t cut = offset;
  std::optional<std::uint64_t> last;
  tail_offsets_.clear();
  while (auto rec = next_record(bytes, offset)) {
    if (rec->epoch > *epoch) break;
    if (tail_offsets_.empty() || tail_offsets_.back().epoch != rec->epoch) {
      tail_offsets_.push_back({rec->epoch, cut});
    }
    cut = offset;
    last = rec->epoch;
  }
  if (!tail_.truncate_to(cut)) {
    fail();
    return false;
  }
  tail_used_ = cut;
  last_append_epoch_ = last;
  return true;
}

void TimeShardLog::for_each(
    const std::function<bool(const RecordView&)>& fn) const {
  const auto counted = [&](const RecordView& rec) {
    if (tel_scan_bytes_ != nullptr) {
      tel_scan_bytes_->add(kRecordHeaderBytes + rec.payload.size());
    }
    return fn(rec);
  };
  for (const std::uint64_t idx : shard_indices_) {
    if (writable_ && tail_.is_open() && idx == tail_index_) {
      if (!iterate_shard({tail_.data(), tail_used_}, counted)) return;
      continue;
    }
    FlatMmap map;
    if (!map.open(shard_path(idx), false)) return;
    if (!header_ok(map, idx)) return;  // torn roll: nothing valid follows
    if (!iterate_shard({map.data(), map.size()}, counted)) return;
  }
}

void TimeShardLog::write_sidecar() const {
  if (!writable_ || !tail_.is_open()) return;
  std::vector<std::uint8_t> buf(kIndexHeaderBytes);
  std::memcpy(buf.data(), kIndexMagic, sizeof(kIndexMagic));
  put_u32_at(buf.data() + 8, kIndexFormatVersion);
  put_u32_at(buf.data() + 12, kRecordSchemaHash);
  put_u64_at(buf.data() + 16, tail_index_ * cfg_.epochs_per_shard);
  put_u64_at(buf.data() + 24, tail_used_);
  put_u64_at(buf.data() + 32, tail_offsets_.size());
  for (const EpochOffset& eo : tail_offsets_) {
    const std::size_t at = buf.size();
    buf.resize(at + 16);
    put_u64_at(buf.data() + at, eo.epoch);
    put_u64_at(buf.data() + at + 8, eo.offset);
  }
  const std::uint32_t crc = crc32({buf.data(), buf.size()});
  const std::size_t at = buf.size();
  buf.resize(at + 4);
  put_u32_at(buf.data() + at, crc);
  // Best-effort: a failed or torn sidecar write only costs point queries
  // their shortcut (the CRC/staleness checks reject it and the walk takes
  // over), so nothing here flips failed().
  std::FILE* f = std::fopen(index_path(tail_index_).c_str(), "wb");
  if (f == nullptr) return;
  (void)std::fwrite(buf.data(), 1, buf.size(), f);
  (void)std::fclose(f);
}

std::optional<std::vector<TimeShardLog::EpochOffset>>
TimeShardLog::load_sidecar(std::uint64_t index,
                           std::uint64_t expected_data_end) const {
  FlatMmap map;
  if (!map.open(index_path(index), false)) return std::nullopt;
  if (map.size() < kIndexHeaderBytes + 4) return std::nullopt;
  const std::uint8_t* d = map.data();
  if (std::memcmp(d, kIndexMagic, sizeof(kIndexMagic)) != 0 ||
      get_u32_at(d + 8) != kIndexFormatVersion ||
      get_u32_at(d + 12) != kRecordSchemaHash ||
      get_u64_at(d + 16) != index * cfg_.epochs_per_shard ||
      get_u64_at(d + 24) != expected_data_end) {
    return std::nullopt;
  }
  const std::uint64_t count = get_u64_at(d + 32);
  const std::uint64_t body = kIndexHeaderBytes + count * 16;
  if (map.size() != body + 4) return std::nullopt;
  if (crc32({d, static_cast<std::size_t>(body)}) !=
      get_u32_at(d + body)) {
    return std::nullopt;
  }
  std::vector<EpochOffset> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EpochOffset eo;
    eo.epoch = get_u64_at(d + kIndexHeaderBytes + i * 16);
    eo.offset = get_u64_at(d + kIndexHeaderBytes + i * 16 + 8);
    if (!out.empty() && eo.epoch <= out.back().epoch) return std::nullopt;
    out.push_back(eo);
  }
  return out;
}

bool TimeShardLog::query_with_index(
    std::span<const std::uint8_t> bytes,
    const std::vector<EpochOffset>& offsets, std::uint64_t epoch,
    const std::function<bool(const RecordView&)>& fn) const {
  const auto it = std::lower_bound(
      offsets.begin(), offsets.end(), epoch,
      [](const EpochOffset& eo, std::uint64_t e) { return eo.epoch < e; });
  if (it == offsets.end() || it->epoch != epoch) {
    return true;  // the index is current, so absence is authoritative
  }
  if (it->offset < kShardHeaderBytes || it->offset >= bytes.size()) {
    return false;  // implausible seek target: treat the index as stale
  }
  std::size_t offset = static_cast<std::size_t>(it->offset);
  bool any = false;
  while (true) {
    const std::size_t before = offset;
    const auto rec = next_record(bytes, offset);
    if (!rec) {
      // The very first frame failing validation means the index pointed at
      // garbage; mid-epoch it is just the torn tail.
      return any;
    }
    if (tel_scan_bytes_ != nullptr) tel_scan_bytes_->add(offset - before);
    if (rec->epoch != epoch) return any || rec->epoch > epoch;
    any = true;
    if (!fn(*rec)) return true;
  }
}

void TimeShardLog::for_each_in_epoch(
    std::uint64_t epoch,
    const std::function<bool(const RecordView&)>& fn) const {
  const std::uint64_t index = epoch / cfg_.epochs_per_shard;
  if (!std::binary_search(shard_indices_.begin(), shard_indices_.end(),
                          index)) {
    return;
  }
  // The writer's own tail is served from the in-memory index, which append
  // and truncate keep exact.
  if (writable_ && tail_.is_open() && index == tail_index_) {
    if (tel_index_hits_ != nullptr) tel_index_hits_->add(1);
    (void)query_with_index({tail_.data(), tail_used_}, tail_offsets_, epoch,
                           fn);
    return;
  }
  FlatMmap map;
  if (!map.open(shard_path(index), false)) return;
  if (!header_ok(map, index)) return;
  const std::span<const std::uint8_t> bytes(map.data(), map.size());
  // The sidecar must describe exactly the bytes on disk.  A sidecar is only
  // written by finalize(), which truncates the shard to its exact data
  // length first — so a valid sidecar's data_end equals the file size, and
  // any later append (a reopened writer pre-grows the mapping) or truncate
  // changes the size and unmasks the sidecar as stale.  (A zero-scan would
  // not work here: a record may legitimately end in zero bytes.)
  if (const auto offsets = load_sidecar(index, map.size())) {
    if (query_with_index(bytes, *offsets, epoch, fn)) {
      if (tel_index_hits_ != nullptr) tel_index_hits_->add(1);
      return;
    }
  }
  if (tel_index_fallbacks_ != nullptr) tel_index_fallbacks_->add(1);
  iterate_shard(bytes, [&](const RecordView& rec) {
    if (tel_scan_bytes_ != nullptr) {
      tel_scan_bytes_->add(kRecordHeaderBytes + rec.payload.size());
    }
    if (rec.epoch > epoch) return false;
    if (rec.epoch < epoch) return true;
    return fn(rec);
  });
}

std::optional<std::uint64_t> TimeShardLog::last_epoch() const {
  std::optional<std::uint64_t> last;
  for_each([&](const RecordView& rec) {
    last = rec.epoch;
    return true;
  });
  return last;
}

std::vector<std::string> TimeShardLog::shard_paths() const {
  std::vector<std::string> paths;
  paths.reserve(shard_indices_.size());
  for (const std::uint64_t idx : shard_indices_) {
    paths.push_back(shard_path(idx));
  }
  return paths;
}

}  // namespace jaal::store
