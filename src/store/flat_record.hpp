// Record framing for the flat store: every payload in a .jstore shard is
// wrapped in a fixed 24-byte little-endian header carrying its length, a
// CRC-32 of the payload, and the typed index fields (epoch, stream id,
// record kind).  Walk-on-open validates each frame in order; the first
// frame that fails (bad kind, implausible length, CRC mismatch, or an
// all-zero header marking pre-allocated space) is the torn tail, and
// everything from there on is truncated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace jaal::store {

/// What a record's payload holds.  Values are part of the on-disk format —
/// never renumber.
enum class RecordKind : std::uint32_t {
  kSummary = 1,     ///< summarize::serialize(MonitorSummary, kFloat64).
  kAlert = 2,       ///< One alert JSON line (inference::alert_to_json).
  kProvenance = 3,  ///< One provenance JSON line (observe::to_json).
  kEpochMeta = 4,   ///< Per-epoch commit point (store::EpochMeta).
  kMetrics = 5,     ///< Per-epoch MetricsSnapshot delta (metrics_codec).
  kEvents = 6,      ///< Per-epoch flight-recorder events (metrics_codec).
};

/// Highest valid RecordKind value (frame validation bound).
inline constexpr std::uint32_t kMaxRecordKind =
    static_cast<std::uint32_t>(RecordKind::kEvents);

/// Largest payload a well-formed record may carry; anything bigger in a
/// header is treated as corruption.
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 28;

/// On-disk frame size preceding every payload.
inline constexpr std::size_t kRecordHeaderBytes = 24;

struct RecordHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t crc32 = 0;   ///< CRC-32 (IEEE, reflected) of the payload.
  std::uint64_t epoch = 0;   ///< Epoch index the record belongs to.
  std::uint32_t stream = 0;  ///< Monitor id (summaries) or sid (alerts).
  std::uint32_t kind = 0;    ///< RecordKind.
};

/// One decoded record, payload viewed in place (zero copy: the span aliases
/// the shard mapping and is valid only during iteration).
struct RecordView {
  std::uint64_t epoch = 0;
  std::uint32_t stream = 0;
  RecordKind kind = RecordKind::kSummary;
  std::span<const std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — the standard
/// zlib polynomial, table-driven.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes)
    noexcept;

/// Encodes the header little-endian into out[0..24).
void encode_record_header(const RecordHeader& h, std::uint8_t* out) noexcept;

/// Decodes a header from a buffer with at least kRecordHeaderBytes.
[[nodiscard]] RecordHeader decode_record_header(
    const std::uint8_t* in) noexcept;

/// Validates the frame at `offset` inside `shard` (header sanity + CRC).
/// Returns the decoded view and advances `offset` past the record, or
/// nullopt at the torn tail / end of data (offset is left unchanged).
[[nodiscard]] std::optional<RecordView> next_record(
    std::span<const std::uint8_t> shard, std::size_t& offset) noexcept;

/// FNV-1a over a layout description string: the record schema hash baked
/// into every shard header, so a build whose frame layout changed refuses
/// shards written by another.
[[nodiscard]] constexpr std::uint32_t schema_hash(const char* layout) {
  std::uint32_t h = 2166136261u;
  for (const char* p = layout; *p != '\0'; ++p) {
    h ^= static_cast<std::uint8_t>(*p);
    h *= 16777619u;
  }
  return h;
}

/// The schema of the frame defined above; bump the string when the layout
/// changes so old shards are rejected instead of misparsed.
inline constexpr std::uint32_t kRecordSchemaHash =
    schema_hash("v1:len:u32,crc32:u32,epoch:u64,stream:u32,kind:u32,payload");

}  // namespace jaal::store
