// Typed persistence for one deployment: four time-sharded record logs
// under one directory —
//   summaries.NNNNNN.jstore   MonitorSummary payloads (float64 wire format)
//                             plus one EpochMeta commit record per epoch;
//   alerts.NNNNNN.jstore      alert JSON lines (inference::alert_to_json);
//   provenance.NNNNNN.jstore  provenance JSON lines (observe::to_json);
//   ops.NNNNNN.jstore         per-epoch operational records: one kMetrics
//                             MetricsSnapshot delta and one kEvents
//                             flight-event batch (store/metrics_codec) —
//                             the telemetry timeline jaal_doctor --store
//                             replays offline.  Absent from stores written
//                             before this stream existed; those stay
//                             readable.
//
// Crash-safety protocol: everything an epoch produced is appended first,
// then one EpochMeta record lands in the summaries log — that record IS the
// epoch's commit point.  A writer opening the store truncates torn shard
// tails (flat_timeshard walk-on-open) and then drops every record newer
// than the last committed EpochMeta from all four logs (an uncommitted
// epoch's kMetrics/kEvents roll back with it), so a half-written epoch can
// never resurface.  last_committed_epoch() tells a restarted deployment
// where to resume.
//
// Error policy: construction throws std::invalid_argument on an unusable
// directory or incompatible shards; the per-epoch append path never throws —
// an I/O failure flips failed() and the store goes inert (the deployment
// keeps running, it just stops persisting).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "inference/engine.hpp"
#include "observe/flight_recorder.hpp"
#include "observe/provenance.hpp"
#include "store/flat_timeshard.hpp"
#include "store/metrics_codec.hpp"
#include "summarize/summary.hpp"

namespace jaal::store {

struct StoreConfig {
  std::string dir;  ///< Directory for the shard files (created if absent).
  std::uint64_t epochs_per_shard = 64;
};

/// The per-epoch commit record: enough deployment context for a replayer to
/// reproduce the engine's per-epoch state (tau_c volume scale, degraded-mode
/// report fraction, drift caution) exactly as the live run saw it.
struct EpochMeta {
  std::uint64_t epoch = 0;
  double end_time = 0.0;         ///< Simulated epoch close time.
  std::uint64_t packets = 0;     ///< Packets ingested this epoch.
  double report_fraction = 1.0;  ///< Delivered / expected summaries.
  double caution = 0.0;          ///< Drift caution at decision time.
  /// Inference-tier shard count the writing deployment ran with.  Encoded
  /// only when != 1, so stores written by single-engine deployments (and all
  /// pre-sharding stores) keep the original 32-byte payload byte-for-byte.
  std::uint64_t shard_count = 1;
};

/// Little-endian payload (epoch rides in the record header): 32 bytes, plus
/// a trailing shard-count u64 only when shard_count != 1.
[[nodiscard]] std::vector<std::uint8_t> encode_epoch_meta(const EpochMeta& m);
/// nullopt on a malformed payload.
[[nodiscard]] std::optional<EpochMeta> decode_epoch_meta(
    std::uint64_t epoch, std::span<const std::uint8_t> payload);

class DeploymentStore {
 public:
  /// Writer mode recovers the store (torn tails, uncommitted epochs) and
  /// appends; reader mode only scans.  Throws std::invalid_argument on an
  /// unusable directory or shards from an incompatible format version.
  DeploymentStore(const StoreConfig& cfg, bool writable,
                  telemetry::Telemetry* tel = nullptr);

  /// Epoch of the last EpochMeta commit record; nullopt for a fresh store.
  /// A restarted deployment resumes at *last_committed_epoch() + 1.
  [[nodiscard]] std::optional<std::uint64_t> last_committed_epoch()
      const noexcept {
    return last_committed_;
  }

  // ---- writer path (per-epoch hot path: never throws) ----

  /// Attaches the current epoch's trace context.  While set (and telemetry
  /// was given at construction), the writer path accumulates per-append
  /// wall time and commit_epoch records 'store_append' / 'store_commit' /
  /// 'index_finalize' spans under it for the critical-path profiler.  A
  /// default-constructed context (span_id == 0) disables profiling.
  void set_trace_context(const telemetry::SpanContext& ctx) noexcept {
    trace_ctx_ = ctx;
  }

  /// Persists one aggregated summary, full-fidelity (float64), in
  /// aggregation order — replay reproduces the live aggregate bit-for-bit.
  void put_summary(std::uint64_t epoch, const summarize::MonitorSummary& s);
  void put_alert(std::uint64_t epoch, const inference::Alert& a,
                 double epoch_end_time);
  void put_provenance(std::uint64_t epoch, std::uint32_t sid,
                      const observe::AlertProvenance& p);
  /// Persists one epoch's metrics delta (normally registry snapshot diffed
  /// against the previous epoch's — see MetricsSnapshot::diff).  Call
  /// before commit_epoch so the record rides under the epoch's commit.
  void put_metrics(std::uint64_t epoch,
                   const telemetry::MetricsSnapshot& delta);
  /// Persists the flight events raised while closing this epoch.
  void put_events(std::uint64_t epoch,
                  std::span<const observe::FlightEvent> events);
  /// Commits the epoch: after this record is appended, the epoch is
  /// durable-on-truncate (walk-on-open keeps everything up to it).
  void commit_epoch(const EpochMeta& meta);
  /// msync all four tail shards (shard rolls and destruction sync
  /// automatically; call this for an explicit durability point).
  void sync();

  /// True after any log hit an unrecoverable I/O failure (store inert).
  [[nodiscard]] bool failed() const noexcept;
  /// Bytes removed by torn-tail recovery at open, across the four logs.
  [[nodiscard]] std::uint64_t torn_bytes_truncated() const noexcept;

  // ---- read path ----
  //
  // In reader mode every iterator surfaces only the committed prefix
  // (records with epoch <= last_committed_epoch()) — exactly what a writer
  // open's recovery would keep, so readers and writers never disagree about
  // the store's contents after a crash.  A writer additionally sees its own
  // not-yet-committed appends for the in-flight epoch.

  /// Every stored summary in append (= aggregation) order.  Return false to
  /// stop.  Throws std::runtime_error only on a payload that fails
  /// summarize::deserialize (CRC-valid but foreign — practically a
  /// programming error).
  void each_summary(
      const std::function<bool(std::uint64_t epoch, std::uint32_t monitor,
                               const summarize::MonitorSummary&)>& fn) const;
  /// Every committed EpochMeta, ascending.
  void each_epoch_meta(
      const std::function<bool(const EpochMeta&)>& fn) const;
  /// Alert JSON lines in append order (view aliases the shard mapping).
  void each_alert_line(
      const std::function<bool(std::uint64_t epoch, std::uint32_t sid,
                               std::string_view line)>& fn) const;
  /// Provenance JSON lines in append order.
  void each_provenance_line(
      const std::function<bool(std::uint64_t epoch, std::uint32_t sid,
                               std::string_view line)>& fn) const;
  /// Every committed per-epoch metrics delta, ascending by epoch.  Throws
  /// std::runtime_error on a CRC-valid payload the codec refuses (unknown
  /// magic/version: the store was written by an incompatible build).
  void each_metrics_delta(
      const std::function<bool(std::uint64_t epoch,
                               const telemetry::MetricsSnapshot&)>& fn)
      const;
  /// Every committed per-epoch flight-event batch, ascending by epoch.
  /// Same refusal policy as each_metrics_delta.
  void each_flight_events(
      const std::function<bool(std::uint64_t epoch,
                               const std::vector<observe::FlightEvent>&)>&
          fn) const;

  // ---- point queries (secondary epoch index; see TimeShardLog
  //      for_each_in_epoch for the index/fallback semantics) ----

  /// The commit record of one epoch; nullopt when the epoch is not
  /// committed.
  [[nodiscard]] std::optional<EpochMeta> epoch_meta_at(
      std::uint64_t epoch) const;
  /// The metrics delta of one epoch; nullopt when absent.  Throws like
  /// each_metrics_delta on a refused payload.
  [[nodiscard]] std::optional<telemetry::MetricsSnapshot> metrics_delta_at(
      std::uint64_t epoch) const;
  /// The flight events of one epoch (empty when absent).
  [[nodiscard]] std::vector<observe::FlightEvent> events_at(
      std::uint64_t epoch) const;
  /// Alert JSON lines of one epoch.
  void each_alert_line_in_epoch(
      std::uint64_t epoch,
      const std::function<bool(std::uint32_t sid, std::string_view line)>&
          fn) const;

  /// Underlying logs, for tests and tooling.
  [[nodiscard]] const TimeShardLog& summaries_log() const noexcept {
    return *summaries_;
  }
  [[nodiscard]] const TimeShardLog& alerts_log() const noexcept {
    return *alerts_;
  }
  [[nodiscard]] const TimeShardLog& provenance_log() const noexcept {
    return *provenance_;
  }
  [[nodiscard]] const TimeShardLog& ops_log() const noexcept {
    return *ops_;
  }

 private:
  /// True for committed records; readers stop at the commit horizon.
  [[nodiscard]] bool visible(std::uint64_t epoch) const noexcept {
    return writable_ || (last_committed_ && epoch <= *last_committed_);
  }

  /// True while commit_epoch should emit profiling spans.
  [[nodiscard]] bool profiling() const noexcept {
    return tel_ != nullptr && trace_ctx_.span_id != 0;
  }
  /// Appends through `log`, accumulating wall time when profiling.
  void timed_append(TimeShardLog& log, std::uint64_t epoch,
                    std::uint32_t stream, RecordKind kind,
                    std::span<const std::uint8_t> payload);

  std::unique_ptr<TimeShardLog> summaries_;
  std::unique_ptr<TimeShardLog> alerts_;
  std::unique_ptr<TimeShardLog> provenance_;
  std::unique_ptr<TimeShardLog> ops_;
  std::optional<std::uint64_t> last_committed_;
  bool writable_ = false;
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::SpanContext trace_ctx_{};
  double append_ms_ = 0.0;  ///< Accumulated wall time, reset per commit.
  std::uint64_t append_records_ = 0;
  std::uint64_t append_bytes_ = 0;
};

}  // namespace jaal::store
