// Payload codecs for the store's operational records:
//   kMetrics  one per-epoch MetricsSnapshot *delta* (what the registry
//             accumulated during that epoch — see MetricsSnapshot::diff),
//             compact varint encoding, deterministic: entries sorted by
//             name, wall-clock metrics (telemetry::is_wall_clock_metric),
//             tier-shape metrics (telemetry::is_tier_shape_metric) and
//             zero deltas elided;
//   kEvents   the flight-recorder events the controller raised while
//             closing that epoch, fixed-field varint encoding.
//
// Both payloads start with a one-byte magic and a one-byte version.  The
// decoder refuses any payload whose magic or version it does not know
// (returns nullopt) — a CRC-valid record from a newer build must never be
// misparsed as this build's layout.  Bump the version constant whenever the
// payload layout changes.
//
// Wire formats (all integers LEB128 varints, doubles as 8-byte LE IEEE-754
// bit patterns):
//
//   metrics  := 'M' version=1 count entry*
//   entry    := name_len name_bytes kind(u8) body
//   body     := counter_delta                          (kind 0, counter)
//             | zigzag(gauge_value)                    (kind 1, gauge)
//             | count_delta sum_bits max_bits
//               nonzero_buckets (bucket_index delta)*  (kind 2, histogram)
//
//   events   := 'E' version=1 count event*
//   event    := seq epoch kind(u8) actor a_bits b_bits c_bits u0..u5
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "observe/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace jaal::store {

inline constexpr std::uint8_t kMetricsPayloadMagic = 'M';
inline constexpr std::uint8_t kMetricsPayloadVersion = 1;
inline constexpr std::uint8_t kEventsPayloadMagic = 'E';
inline constexpr std::uint8_t kEventsPayloadVersion = 1;

/// Encodes a metrics *delta* snapshot (normally the result of
/// MetricsSnapshot::diff).  Deterministic: sorts by name, drops wall-clock
/// metrics, drops counters with zero delta and histograms with zero count
/// delta.  Gauges are always kept (a zero gauge is an observation).
[[nodiscard]] std::vector<std::uint8_t> encode_metrics_delta(
    const telemetry::MetricsSnapshot& delta);

/// Decodes a kMetrics payload; nullopt on unknown magic/version or a
/// malformed body.
[[nodiscard]] std::optional<telemetry::MetricsSnapshot> decode_metrics_delta(
    std::span<const std::uint8_t> payload);

/// Encodes one epoch's flight events in the given order.
[[nodiscard]] std::vector<std::uint8_t> encode_flight_events(
    std::span<const observe::FlightEvent> events);

/// Decodes a kEvents payload; nullopt on unknown magic/version or a
/// malformed body.
[[nodiscard]] std::optional<std::vector<observe::FlightEvent>>
decode_flight_events(std::span<const std::uint8_t> payload);

}  // namespace jaal::store
