#include "store/flat_record.hpp"

#include <array>

namespace jaal::store {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v & 0xFF);
  out[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  return std::uint32_t{in[0]} | (std::uint32_t{in[1]} << 8) |
         (std::uint32_t{in[2]} << 16) | (std::uint32_t{in[3]} << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encode_record_header(const RecordHeader& h, std::uint8_t* out) noexcept {
  put_u32(out + 0, h.payload_len);
  put_u32(out + 4, h.crc32);
  put_u32(out + 8, static_cast<std::uint32_t>(h.epoch & 0xFFFFFFFFu));
  put_u32(out + 12, static_cast<std::uint32_t>(h.epoch >> 32));
  put_u32(out + 16, h.stream);
  put_u32(out + 20, h.kind);
}

RecordHeader decode_record_header(const std::uint8_t* in) noexcept {
  RecordHeader h;
  h.payload_len = get_u32(in + 0);
  h.crc32 = get_u32(in + 4);
  h.epoch = std::uint64_t{get_u32(in + 8)} |
            (std::uint64_t{get_u32(in + 12)} << 32);
  h.stream = get_u32(in + 16);
  h.kind = get_u32(in + 20);
  return h;
}

std::optional<RecordView> next_record(std::span<const std::uint8_t> shard,
                                      std::size_t& offset) noexcept {
  if (offset + kRecordHeaderBytes > shard.size()) return std::nullopt;
  const RecordHeader h = decode_record_header(shard.data() + offset);
  // An all-zero header is pre-allocated (never written) space, not
  // corruption: kind 0 is not a valid RecordKind either way.
  if (h.kind < static_cast<std::uint32_t>(RecordKind::kSummary) ||
      h.kind > kMaxRecordKind) {
    return std::nullopt;
  }
  if (h.payload_len > kMaxRecordPayload) return std::nullopt;
  const std::size_t end = offset + kRecordHeaderBytes + h.payload_len;
  if (end > shard.size()) return std::nullopt;
  const std::span<const std::uint8_t> payload =
      shard.subspan(offset + kRecordHeaderBytes, h.payload_len);
  if (crc32(payload) != h.crc32) return std::nullopt;
  offset = end;
  return RecordView{h.epoch, h.stream, static_cast<RecordKind>(h.kind),
                    payload};
}

}  // namespace jaal::store
