#include "store/replay.hpp"

#include "inference/aggregate.hpp"

namespace jaal::store {

StoreReplayer::StoreReplayer(const StoreConfig& cfg)
    : store_(cfg, /*writable=*/false) {}

std::vector<ReplayEpoch> StoreReplayer::replay(
    inference::InferenceEngine& engine, double base_tau_c_scale) const {
  std::vector<ReplayEpoch> epochs;
  // Summaries of an epoch precede its EpochMeta in the log, so one pass
  // suffices: collect until the commit record closes the epoch.
  inference::Aggregator aggregator;
  store_.summaries_log().for_each([&](const RecordView& rec) {
    if (rec.kind == RecordKind::kSummary) {
      // Aggregation order is append order — the live controller's order
      // (carry-ins first, then monitors ascending).
      aggregator.add(summarize::deserialize(rec.payload));
      return true;
    }
    if (rec.kind != RecordKind::kEpochMeta) return true;
    const auto meta = decode_epoch_meta(rec.epoch, rec.payload);
    if (!meta) {
      // CRC-valid but malformed commit record: the epoch is unreplayable.
      // Discard its pending summaries so they cannot leak into the next
      // epoch's aggregate.
      if (aggregator.summaries_added() > 0) (void)aggregator.take();
      return true;
    }
    ReplayEpoch out;
    out.epoch = meta->epoch;
    out.end_time = meta->end_time;
    out.packets = meta->packets;
    out.report_fraction = meta->report_fraction;
    out.caution = meta->caution;
    out.shard_count = meta->shard_count;
    out.summaries = aggregator.summaries_added();
    // Restore the engine knobs the live controller set for this epoch.
    engine.set_tau_c_scale(base_tau_c_scale *
                           static_cast<double>(meta->packets) / 2000.0);
    engine.set_report_fraction(meta->report_fraction);
    engine.set_caution(meta->caution);
    if (aggregator.summaries_added() > 0) {
      const inference::AggregatedSummary aggregate = aggregator.take();
      out.alerts = engine.infer(aggregate, /*fetch=*/nullptr);
    }
    epochs.push_back(std::move(out));
    return true;
  });
  return epochs;
}

}  // namespace jaal::store
