// Time-sharded append-only record log: `<dir>/<prefix>.%06llu.jstore`, one
// shard per contiguous epoch range (shard index = epoch / epochs_per_shard).
//
// Each shard starts with a 64-byte versioned header (magic, format version,
// record schema hash, the shard's first epoch and the log's shard width);
// CRC-framed records follow (flat_record.hpp).  Writes are append-only and
// crash-safe by construction:
//   * a shard is msync'd and truncated to its exact data length when the
//     log rolls past it (and again at destruction), so finalized shards are
//     durable and tight;
//   * the tail shard is recovered on open by walking its frames — the first
//     frame that fails validation marks the torn tail, which is truncated
//     (an interrupted append can never resurface as data);
//   * a tail shard whose header *magic* never fully landed (crash during
//     roll) holds no committed data: writers delete it, readers skip it;
//   * a shard whose magic is intact but whose header disagrees with this
//     build or config (format version, schema hash, epoch range / shard
//     width) is incompatible — construction throws for reader and writer
//     alike, so committed data is never mistaken for a torn roll.
// The walk, not any length field, is authoritative for what exists.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "store/flat_mmap.hpp"
#include "store/flat_record.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::store {

/// On-disk shard header layout (little-endian, 64 bytes):
///   [0,8)   magic "JSTORE1\0"
///   [8,12)  format version (kShardFormatVersion)
///   [12,16) record schema hash (kRecordSchemaHash)
///   [16,24) first epoch covered by this shard
///   [24,32) epochs per shard (the log's shard width)
///   [32,64) reserved, zero
inline constexpr std::size_t kShardHeaderBytes = 64;
inline constexpr std::uint32_t kShardFormatVersion = 1;
inline constexpr char kShardMagic[8] = {'J', 'S', 'T', 'O', 'R', 'E',
                                        '1', '\0'};

/// Sidecar epoch index (`<shard>.jidx`), written when a shard is finalized:
/// a sparse secondary index over the typed epoch frame-header field, so a
/// point query seeks straight to an epoch's first record instead of walking
/// the shard.  Layout (little-endian):
///   [0,8)   magic "JIDX1\0\0\0"
///   [8,12)  format version (kIndexFormatVersion)
///   [12,16) record schema hash (kRecordSchemaHash)
///   [16,24) shard first epoch
///   [24,32) data end: shard byte length the index describes.  finalize()
///           truncates the shard to exactly this length before writing the
///           sidecar, so validity is data_end == file size — a shard that
///           grew or shrank since (crash between append and finalize,
///           truncate_after_epoch) fails this check and falls back to a walk
///   [32,40) entry count
///   then count x (epoch u64, offset u64), ascending by epoch,
///   then CRC-32 (u32) over all preceding bytes.
/// The index is advisory: every offset it yields is re-validated by record
/// framing, and any mismatch falls back to the authoritative walk.
inline constexpr std::size_t kIndexHeaderBytes = 40;
inline constexpr std::uint32_t kIndexFormatVersion = 1;
inline constexpr char kIndexMagic[8] = {'J', 'I', 'D', 'X', '1',
                                        '\0', '\0', '\0'};

struct TimeShardConfig {
  std::string dir;     ///< Directory holding the shards (created if absent).
  std::string prefix;  ///< Shard file stem, e.g. "summaries".
  std::uint64_t epochs_per_shard = 64;
};

class TimeShardLog {
 public:
  /// Opens (writer: creates/recovers; reader: scans) the log.  Throws
  /// std::invalid_argument on a bad config or an unusable directory /
  /// incompatible shard header (construction-time misconfiguration); after
  /// construction nothing throws — I/O failures flip failed() and make the
  /// writer inert.
  TimeShardLog(TimeShardConfig cfg, bool writable,
               telemetry::Telemetry* tel = nullptr);
  ~TimeShardLog();

  TimeShardLog(const TimeShardLog&) = delete;
  TimeShardLog& operator=(const TimeShardLog&) = delete;

  /// Appends one record.  Epochs must be non-decreasing across appends.
  /// Returns false (and goes inert) on I/O failure or ordering violation.
  bool append(std::uint64_t epoch, std::uint32_t stream, RecordKind kind,
              std::span<const std::uint8_t> payload);

  /// msync the tail shard's written bytes.
  bool sync();

  /// Truncates the tail shard to its data and msyncs it (what a roll does);
  /// called by the destructor.
  void finalize();

  /// Removes every record with epoch > `epoch` (writer only): shards
  /// entirely beyond it are deleted, the boundary shard is truncated at the
  /// first record past it.  nullopt removes every record.  Appending then
  /// resumes from the cut.
  bool truncate_after_epoch(std::optional<std::uint64_t> epoch);

  /// Iterates every valid record across all shards in append order,
  /// zero-copy (RecordView::payload aliases the shard mapping and is valid
  /// only inside the callback).  Return false from the callback to stop.
  /// Iteration of a shard ends at its first invalid frame (torn-tail rule).
  void for_each(const std::function<bool(const RecordView&)>& fn) const;

  /// Point query: every valid record of exactly `epoch`, in append order.
  /// Seeks through the shard's sidecar index (or the writer's in-memory
  /// tail index) when available and valid — O(records in the epoch) bytes
  /// visited instead of O(shard); falls back to a full shard walk
  /// otherwise.  Telemetry: jaal_store_index_point_queries_total counts
  /// indexed answers, jaal_store_index_fallback_scans_total counts
  /// fallbacks, jaal_store_scan_bytes_total counts bytes visited either
  /// way.
  void for_each_in_epoch(
      std::uint64_t epoch,
      const std::function<bool(const RecordView&)>& fn) const;

  /// Epoch of the last valid record, nullopt when the log is empty.
  [[nodiscard]] std::optional<std::uint64_t> last_epoch() const;

  /// Torn record bytes removed by recovery when the writer opened (counted
  /// to the last non-zero byte: zeroed pre-allocated capacity is not torn
  /// data).
  [[nodiscard]] std::uint64_t torn_bytes_truncated() const noexcept {
    return torn_bytes_;
  }

  /// True after an unrecoverable I/O failure; the writer drops appends.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return records_appended_;
  }

  /// Wall time spent in finalize() (shard roll truncate+msync+sidecar)
  /// since the last take, with the number of finalizes — consumed by the
  /// store's per-epoch 'index_finalize' profiling span.  Resets on read.
  [[nodiscard]] std::pair<double, std::uint64_t> take_finalize_stats()
      noexcept {
    const std::pair<double, std::uint64_t> out{finalize_ms_accum_,
                                               finalizes_};
    finalize_ms_accum_ = 0.0;
    finalizes_ = 0;
    return out;
  }
  [[nodiscard]] std::vector<std::string> shard_paths() const;
  [[nodiscard]] const TimeShardConfig& config() const noexcept { return cfg_; }

 private:
  /// (first epoch, byte offset of its first record) — the sidecar payload.
  struct EpochOffset {
    std::uint64_t epoch = 0;
    std::uint64_t offset = 0;
  };

  [[nodiscard]] std::string shard_path(std::uint64_t index) const;
  [[nodiscard]] std::string index_path(std::uint64_t index) const;
  /// Validates a mapped shard's header against this log's config.
  [[nodiscard]] bool header_ok(const FlatMmap& map,
                               std::uint64_t index) const noexcept;
  [[nodiscard]] bool open_tail_for_write();
  [[nodiscard]] bool roll_to(std::uint64_t index);
  /// Walks frames from the header to the torn tail; returns end offset.
  [[nodiscard]] std::size_t walk_end(const FlatMmap& map) const noexcept;
  /// Writes the tail shard's sidecar index (best-effort: failure leaves
  /// point queries on the fallback path, never the log).
  void write_sidecar() const;
  /// Loads and validates a shard's sidecar against the bytes it describes.
  [[nodiscard]] std::optional<std::vector<EpochOffset>> load_sidecar(
      std::uint64_t index, std::uint64_t expected_data_end) const;
  /// Serves a point query over one mapped shard from `offsets`; returns
  /// false when the index turned out stale (caller falls back to a walk).
  [[nodiscard]] bool query_with_index(
      std::span<const std::uint8_t> bytes,
      const std::vector<EpochOffset>& offsets, std::uint64_t epoch,
      const std::function<bool(const RecordView&)>& fn) const;
  void fail() noexcept { failed_ = true; }

  TimeShardConfig cfg_;
  bool writable_ = false;
  bool failed_ = false;
  std::vector<std::uint64_t> shard_indices_;  ///< Sorted, ascending.
  FlatMmap tail_;            ///< Writable mapping of the last shard.
  std::size_t tail_used_ = 0;
  std::uint64_t tail_index_ = 0;  ///< Shard index of tail_ (when open).
  /// In-memory epoch index of the tail shard (ascending; source of the
  /// sidecar written at finalize).
  std::vector<EpochOffset> tail_offsets_;
  std::uint64_t torn_bytes_ = 0;
  std::uint64_t records_appended_ = 0;
  double finalize_ms_accum_ = 0.0;
  std::uint64_t finalizes_ = 0;
  std::optional<std::uint64_t> last_append_epoch_;

  telemetry::Counter* tel_bytes_ = nullptr;
  telemetry::Counter* tel_records_ = nullptr;
  telemetry::Counter* tel_rolls_ = nullptr;
  telemetry::Counter* tel_torn_bytes_ = nullptr;
  telemetry::Counter* tel_scan_bytes_ = nullptr;
  telemetry::Counter* tel_index_hits_ = nullptr;
  telemetry::Counter* tel_index_fallbacks_ = nullptr;
  telemetry::Histogram* tel_msync_ms_ = nullptr;
};

}  // namespace jaal::store
