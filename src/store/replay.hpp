// Retroactive inference over stored summaries — the paper's headline
// ISP-scale operation: translate a *new* Snort rule today and run it over
// last week's summaries without the raw packets.
//
// The replayer walks the summaries log epoch by epoch (zero-copy shard
// iteration), rebuilds each committed epoch's aggregate in the exact order
// the live controller aggregated it, restores the engine's per-epoch state
// from the EpochMeta commit record (tau_c volume scale, report fraction,
// caution), and runs InferenceEngine::infer feedback-free — raw packets are
// gone, so case-3 uncertain matches fall to the loose-threshold decision
// (ThresholdCase::kUncertainAssumed), exactly as a live run with feedback
// disabled.  Against such a run the replayed alerts are byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "inference/engine.hpp"
#include "store/store.hpp"

namespace jaal::store {

/// One replayed epoch: the stored context plus the alerts the engine
/// raised over the stored aggregate.
struct ReplayEpoch {
  std::uint64_t epoch = 0;
  double end_time = 0.0;
  std::uint64_t packets = 0;
  double report_fraction = 1.0;
  double caution = 0.0;
  /// Shard count of the writing deployment (1 for pre-sharding stores).
  /// Replay is shard-agnostic: summaries were persisted in arrival order,
  /// so the rebuilt aggregate equals the live tier's cross-shard merge.
  std::uint64_t shard_count = 1;
  std::size_t summaries = 0;  ///< Summaries aggregated this epoch.
  std::vector<inference::Alert> alerts;
};

class StoreReplayer {
 public:
  /// Opens the store read-only.  Throws std::invalid_argument on a missing
  /// directory or incompatible shards.
  explicit StoreReplayer(const StoreConfig& cfg);

  /// Runs `engine` over every committed epoch in order.  The engine is
  /// typically built from a *different* ruleset than the live run — that is
  /// the point.  `base_tau_c_scale` is the deployment's configured
  /// EngineConfig::tau_c_scale; the per-epoch packet-volume scaling the
  /// controller applies on top is reproduced from each EpochMeta.
  /// Uncommitted trailing summaries (no EpochMeta) are ignored.
  [[nodiscard]] std::vector<ReplayEpoch> replay(
      inference::InferenceEngine& engine,
      double base_tau_c_scale = 1.0) const;

  [[nodiscard]] const DeploymentStore& store() const noexcept {
    return store_;
  }

 private:
  DeploymentStore store_;
};

}  // namespace jaal::store
