#include "store/flat_mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace jaal::store {

FlatMmap::~FlatMmap() { close(); }

FlatMmap::FlatMmap(FlatMmap&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      writable_(std::exchange(other.writable_, false)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

FlatMmap& FlatMmap::operator=(FlatMmap&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    writable_ = std::exchange(other.writable_, false);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool FlatMmap::open(const std::string& path, bool writable) {
  close();
  const int flags = writable ? (O_RDWR | O_CREAT | O_CLOEXEC)
                             : (O_RDONLY | O_CLOEXEC);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return false;
  writable_ = writable;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    close();
    return false;
  }
  if (st.st_size > 0 && !remap(static_cast<std::size_t>(st.st_size))) {
    close();
    return false;
  }
  return true;
}

bool FlatMmap::remap(std::size_t new_size) {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
  if (new_size == 0) return true;
  const int prot = writable_ ? (PROT_READ | PROT_WRITE) : PROT_READ;
  void* p = ::mmap(nullptr, new_size, prot, MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) return false;
  data_ = static_cast<std::uint8_t*>(p);
  size_ = new_size;
  return true;
}

bool FlatMmap::ensure_capacity(std::size_t bytes) {
  if (fd_ < 0 || !writable_) return false;
  if (bytes <= size_) return true;
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) return false;
  return remap(bytes);
}

bool FlatMmap::truncate_to(std::size_t bytes) {
  if (fd_ < 0 || !writable_) return false;
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) return false;
  return remap(bytes);
}

bool FlatMmap::sync(std::size_t bytes) noexcept {
  if (fd_ < 0 || data_ == nullptr || bytes == 0) return true;
  if (bytes > size_) bytes = size_;
  return ::msync(data_, bytes, MS_SYNC) == 0;
}

void FlatMmap::close() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  writable_ = false;
}

}  // namespace jaal::store
