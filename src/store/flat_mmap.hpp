// Memory-mapped flat file: the lowest layer of src/store.
//
// One FlatMmap owns one file descriptor and one MAP_SHARED mapping.  A
// writable mapping grows by ftruncate + remap (capacity is the file size;
// the logical data length is the caller's business — shards track it via
// record framing and walk-on-open).  Everything here returns bool instead
// of throwing: store writes sit on the controller's per-epoch hot path,
// which is throw-free by the library error policy (jaal.hpp), so an I/O
// failure degrades the owning store to inert rather than unwinding an
// epoch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace jaal::store {

class FlatMmap {
 public:
  FlatMmap() = default;
  ~FlatMmap();

  FlatMmap(FlatMmap&& other) noexcept;
  FlatMmap& operator=(FlatMmap&& other) noexcept;
  FlatMmap(const FlatMmap&) = delete;
  FlatMmap& operator=(const FlatMmap&) = delete;

  /// Opens `path` and maps its current contents.  Writable mode creates the
  /// file when missing (0 bytes, no mapping until ensure_capacity).
  /// Returns false on any syscall failure; the object is then closed.
  [[nodiscard]] bool open(const std::string& path, bool writable);

  /// Grows the file (and remaps) so at least `bytes` are addressable.
  /// Never shrinks.  Writable mappings only.
  [[nodiscard]] bool ensure_capacity(std::size_t bytes);

  /// Shrinks the file to exactly `bytes` and remaps.  Writable only.
  [[nodiscard]] bool truncate_to(std::size_t bytes);

  /// msync the first `bytes` of the mapping to stable storage (MS_SYNC).
  [[nodiscard]] bool sync(std::size_t bytes) noexcept;

  void close() noexcept;

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] bool writable() const noexcept { return writable_; }
  /// Mapped length == file length.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }

 private:
  [[nodiscard]] bool remap(std::size_t new_size);

  int fd_ = -1;
  bool writable_ = false;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace jaal::store
