// Monitor <-> controller control-plane messages (§7).
//
// The paper's deployment keeps a long-lived TCP connection between the
// controller and every monitor, carrying: periodic load updates (flow
// assignment), summary uploads, raw-packet requests/responses (feedback),
// and alert logs.  This module defines those messages and a
// length-prefixed, type-tagged framing so they can travel over any ordered
// byte stream.  Encoding is little-endian, independent of host order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "packet/packet.hpp"
#include "summarize/summary.hpp"

namespace jaal::proto {

/// Monitor -> controller: periodic load report (assignment module input).
struct LoadUpdate {
  summarize::MonitorId monitor = 0;
  double load_pps = 0.0;          ///< Current monitored packet rate.
  std::uint64_t buffered = 0;     ///< Packets awaiting summarization.

  bool operator==(const LoadUpdate&) const = default;
};

/// Monitor -> controller: one epoch's summary.
struct SummaryUpload {
  std::uint32_t epoch = 0;
  summarize::MonitorSummary summary;
};

/// Controller -> monitor: feedback request for the raw packets behind
/// specific centroids of a given epoch (§5.3 case 3).
struct RawPacketRequest {
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> centroids;

  bool operator==(const RawPacketRequest&) const = default;
};

/// Monitor -> controller: the requested raw packets (headers only).
struct RawPacketResponse {
  std::uint32_t epoch = 0;
  std::vector<packet::PacketRecord> packets;
};

/// Controller -> operator log: one alert (§5).
struct AlertRecord {
  std::uint32_t sid = 0;
  std::string msg;
  std::uint64_t matched_packets = 0;
  bool distributed = false;
  bool via_feedback = false;

  bool operator==(const AlertRecord&) const = default;
};

using Message = std::variant<LoadUpdate, SummaryUpload, RawPacketRequest,
                             RawPacketResponse, AlertRecord>;

/// Serializes a message into a self-contained frame:
/// [u32 length of payload][u8 type tag][payload...].
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& msg);

/// Decodes one frame previously produced by encode().  Throws
/// std::runtime_error on truncation, bad tags, or length mismatch.
[[nodiscard]] Message decode(std::span<const std::uint8_t> frame);

/// Incremental frame reassembly over a byte stream: feed arbitrary chunks,
/// pop complete messages.  This is what each end of the long-lived TCP
/// connection runs.
class FrameReader {
 public:
  /// Appends received bytes to the reassembly buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete message, if any.  Throws std::runtime_error
  /// on a malformed frame (the connection would be reset).
  [[nodiscard]] std::optional<Message> next();

  /// Bytes currently buffered (for flow-control accounting).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace jaal::proto
