#include "proto/messages.hpp"

#include <cstring>
#include <stdexcept>

#include "packet/wire.hpp"

namespace jaal::proto {
namespace {

constexpr std::uint8_t kTagLoadUpdate = 1;
constexpr std::uint8_t kTagSummaryUpload = 2;
constexpr std::uint8_t kTagRawRequest = 3;
constexpr std::uint8_t kTagRawResponse = 4;
constexpr std::uint8_t kTagAlert = 5;

constexpr std::size_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFF));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}
void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}
void put_blob(std::vector<std::uint8_t>& out,
              const std::vector<std::uint8_t>& blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = std::uint32_t{bytes_[pos_]} |
                            (std::uint32_t{bytes_[pos_ + 1]} << 8) |
                            (std::uint32_t{bytes_[pos_ + 2]} << 16) |
                            (std::uint32_t{bytes_[pos_ + 3]} << 24);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string string() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::span<const std::uint8_t> blob() {
    const std::uint32_t n = u32();
    need(n);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void expect_end() const {
    if (pos_ != bytes_.size()) {
      throw std::runtime_error("proto: trailing bytes in frame");
    }
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("proto: truncated frame body");
    }
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Packet records travel as wire-format headers plus the timestamp; the
/// ground-truth label is experiment metadata and never crosses the wire.
void put_packet(std::vector<std::uint8_t>& out,
                const packet::PacketRecord& pkt) {
  put_f64(out, pkt.timestamp);
  const auto wire = packet::serialize_headers(pkt.ip, pkt.tcp);
  out.insert(out.end(), wire.begin(), wire.end());
}

packet::PacketRecord get_packet(Reader& r) {
  packet::PacketRecord pkt;
  pkt.timestamp = r.f64();
  std::vector<std::uint8_t> wire(packet::kHeadersBytes);
  for (auto& b : wire) b = r.u8();
  const auto parsed = packet::parse_headers(wire);
  if (!parsed) throw std::runtime_error("proto: bad packet in frame");
  pkt.ip = parsed->ip;
  pkt.tcp = parsed->tcp;
  return pkt;
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& msg) {
  std::vector<std::uint8_t> body;
  std::uint8_t tag = 0;
  if (const auto* load = std::get_if<LoadUpdate>(&msg)) {
    tag = kTagLoadUpdate;
    put_u32(body, load->monitor);
    put_f64(body, load->load_pps);
    put_u64(body, load->buffered);
  } else if (const auto* up = std::get_if<SummaryUpload>(&msg)) {
    tag = kTagSummaryUpload;
    put_u32(body, up->epoch);
    put_blob(body, summarize::serialize(up->summary));
  } else if (const auto* req = std::get_if<RawPacketRequest>(&msg)) {
    tag = kTagRawRequest;
    put_u32(body, req->epoch);
    put_u32(body, static_cast<std::uint32_t>(req->centroids.size()));
    for (std::uint32_t c : req->centroids) put_u32(body, c);
  } else if (const auto* resp = std::get_if<RawPacketResponse>(&msg)) {
    tag = kTagRawResponse;
    put_u32(body, resp->epoch);
    put_u32(body, static_cast<std::uint32_t>(resp->packets.size()));
    for (const auto& pkt : resp->packets) put_packet(body, pkt);
  } else if (const auto* alert = std::get_if<AlertRecord>(&msg)) {
    tag = kTagAlert;
    put_u32(body, alert->sid);
    put_string(body, alert->msg);
    put_u64(body, alert->matched_packets);
    put_u8(body, alert->distributed ? 1 : 0);
    put_u8(body, alert->via_feedback ? 1 : 0);
  }

  std::vector<std::uint8_t> frame;
  frame.reserve(body.size() + 5);
  put_u32(frame, static_cast<std::uint32_t>(body.size() + 1));
  put_u8(frame, tag);
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Message decode(std::span<const std::uint8_t> frame) {
  Reader header(frame);
  const std::uint32_t length = header.u32();
  if (length == 0 || length > kMaxFrame) {
    throw std::runtime_error("proto: bad frame length");
  }
  if (frame.size() != 4u + length) {
    throw std::runtime_error("proto: frame length mismatch");
  }
  Reader r(frame.subspan(4));
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kTagLoadUpdate: {
      LoadUpdate m;
      m.monitor = r.u32();
      m.load_pps = r.f64();
      m.buffered = r.u64();
      r.expect_end();
      return m;
    }
    case kTagSummaryUpload: {
      SummaryUpload m;
      m.epoch = r.u32();
      m.summary = summarize::deserialize(r.blob());
      r.expect_end();
      return m;
    }
    case kTagRawRequest: {
      RawPacketRequest m;
      m.epoch = r.u32();
      const std::uint32_t n = r.u32();
      m.centroids.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.centroids.push_back(r.u32());
      r.expect_end();
      return m;
    }
    case kTagRawResponse: {
      RawPacketResponse m;
      m.epoch = r.u32();
      const std::uint32_t n = r.u32();
      m.packets.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.packets.push_back(get_packet(r));
      r.expect_end();
      return m;
    }
    case kTagAlert: {
      AlertRecord m;
      m.sid = r.u32();
      m.msg = r.string();
      m.matched_packets = r.u64();
      m.distributed = r.u8() != 0;
      m.via_feedback = r.u8() != 0;
      r.expect_end();
      return m;
    }
    default:
      throw std::runtime_error("proto: unknown message tag");
  }
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  // Compact occasionally so long-lived connections don't grow unbounded.
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Message> FrameReader::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  const std::uint8_t* p = buffer_.data() + consumed_;
  const std::uint32_t length = std::uint32_t{p[0]} |
                               (std::uint32_t{p[1]} << 8) |
                               (std::uint32_t{p[2]} << 16) |
                               (std::uint32_t{p[3]} << 24);
  if (length == 0 || length > kMaxFrame) {
    throw std::runtime_error("proto: bad frame length on stream");
  }
  if (available < 4u + length) return std::nullopt;
  const Message msg =
      decode(std::span<const std::uint8_t>(p, 4u + length));
  consumed_ += 4u + length;
  return msg;
}

}  // namespace jaal::proto
