#include "summarize/summary.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace jaal::summarize {
namespace {

constexpr std::uint8_t kTagCombined = 1;
constexpr std::uint8_t kTagSplit = 2;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Scalar writer for the configured precision: f32 quantizes (the wire
/// model), f64 round-trips doubles bit-exactly (the store model).
struct ScalarWriter {
  std::vector<std::uint8_t>& out;
  WirePrecision precision;

  void scalar(double v) const {
    if (precision == WirePrecision::kFloat64) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      put_u64(out, bits);
    } else {
      const float f = static_cast<float>(v);
      std::uint32_t bits;
      std::memcpy(&bits, &f, sizeof(bits));
      put_u32(out, bits);
    }
  }
};

class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, WirePrecision precision)
      : bytes_(bytes), precision_(precision) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = std::uint32_t{bytes_[pos_]} |
                            (std::uint32_t{bytes_[pos_ + 1]} << 8) |
                            (std::uint32_t{bytes_[pos_ + 2]} << 16) |
                            (std::uint32_t{bytes_[pos_ + 3]} << 24);
    pos_ += 4;
    return v;
  }
  double scalar() {
    if (precision_ == WirePrecision::kFloat64) {
      const std::uint64_t bits =
          std::uint64_t{u32()} | (std::uint64_t{u32()} << 32);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return d;
    }
    const std::uint32_t bits = u32();
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return static_cast<double>(f);
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("summary deserialize: truncated buffer");
    }
  }
  std::span<const std::uint8_t> bytes_;
  WirePrecision precision_;
  std::size_t pos_ = 0;
};

void put_matrix(const ScalarWriter& w, const linalg::Matrix& m) {
  put_u32(w.out, static_cast<std::uint32_t>(m.rows()));
  put_u32(w.out, static_cast<std::uint32_t>(m.cols()));
  for (double v : m.data()) w.scalar(v);
}

linalg::Matrix get_matrix(Reader& r) {
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  if (std::uint64_t{rows} * cols > (1u << 26)) {
    throw std::runtime_error("summary deserialize: implausible matrix size");
  }
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) v = r.scalar();
  return m;
}

}  // namespace

std::size_t CombinedSummary::element_count() const noexcept {
  return centroids.rows() * (centroids.cols() + 1);
}

void CombinedSummary::check_invariants() const {
  if (counts.size() != centroids.rows()) {
    throw std::logic_error("CombinedSummary: counts/centroid row mismatch");
  }
}

std::size_t SplitSummary::element_count() const noexcept {
  const std::size_t r = sigma.size();
  const std::size_t k = u_centroids.rows();
  const std::size_t p = vt.cols();
  return r * (k + p + 1) + k;
}

void SplitSummary::check_invariants() const {
  if (counts.size() != u_centroids.rows()) {
    throw std::logic_error("SplitSummary: counts/centroid row mismatch");
  }
  if (u_centroids.cols() != sigma.size() || vt.rows() != sigma.size()) {
    throw std::logic_error("SplitSummary: rank dimensions disagree");
  }
}

CombinedSummary SplitSummary::reconstruct() const {
  check_invariants();
  // X~_p = U~_r * diag(sigma) * V_r^T; fold sigma into U~_r first.
  linalg::Matrix scaled = u_centroids;
  for (std::size_t row = 0; row < scaled.rows(); ++row) {
    auto rview = scaled.row(row);
    for (std::size_t c = 0; c < sigma.size(); ++c) rview[c] *= sigma[c];
  }
  CombinedSummary out;
  out.monitor = monitor;
  out.centroids = scaled * vt;
  out.counts = counts;
  return out;
}

std::size_t element_count(const MonitorSummary& s) noexcept {
  return std::visit([](const auto& v) { return v.element_count(); }, s);
}

std::size_t wire_bytes(const MonitorSummary& s) noexcept {
  // float32 scalars; counts ride as uint32 alongside (already included in
  // the element count as the "+1" / "+k" terms).
  return element_count(s) * 4;
}

std::vector<std::uint8_t> serialize(const MonitorSummary& s,
                                    WirePrecision precision) {
  std::vector<std::uint8_t> out;
  out.push_back(kWireMagic);
  out.push_back(static_cast<std::uint8_t>(precision));
  const ScalarWriter w{out, precision};
  if (const auto* c = std::get_if<CombinedSummary>(&s)) {
    c->check_invariants();
    out.push_back(kTagCombined);
    put_u32(out, c->monitor);
    put_matrix(w, c->centroids);
    put_u32(out, static_cast<std::uint32_t>(c->counts.size()));
    for (std::uint64_t n : c->counts) {
      put_u32(out, static_cast<std::uint32_t>(n));
    }
  } else {
    const auto& sp = std::get<SplitSummary>(s);
    sp.check_invariants();
    out.push_back(kTagSplit);
    put_u32(out, sp.monitor);
    put_matrix(w, sp.u_centroids);
    put_u32(out, static_cast<std::uint32_t>(sp.sigma.size()));
    for (double v : sp.sigma) w.scalar(v);
    put_matrix(w, sp.vt);
    put_u32(out, static_cast<std::uint32_t>(sp.counts.size()));
    for (std::uint64_t n : sp.counts) {
      put_u32(out, static_cast<std::uint32_t>(n));
    }
  }
  return out;
}

MonitorSummary deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 2) {
    throw std::runtime_error("summary deserialize: truncated buffer");
  }
  if (bytes[0] != kWireMagic) {
    throw std::runtime_error(
        "summary deserialize: bad magic byte (not a serialized summary, or "
        "a pre-versioning buffer)");
  }
  const std::uint8_t version = bytes[1];
  if (version != static_cast<std::uint8_t>(WirePrecision::kFloat32) &&
      version != static_cast<std::uint8_t>(WirePrecision::kFloat64)) {
    throw std::runtime_error(
        "summary deserialize: unsupported format version " +
        std::to_string(version));
  }
  Reader r(bytes.subspan(2), static_cast<WirePrecision>(version));
  const std::uint8_t tag = r.u8();
  if (tag == kTagCombined) {
    CombinedSummary c;
    c.monitor = r.u32();
    c.centroids = get_matrix(r);
    const std::uint32_t n = r.u32();
    c.counts.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) c.counts.push_back(r.u32());
    c.check_invariants();
    return c;
  }
  if (tag == kTagSplit) {
    SplitSummary s;
    s.monitor = r.u32();
    s.u_centroids = get_matrix(r);
    const std::uint32_t nr = r.u32();
    s.sigma.reserve(nr);
    for (std::uint32_t i = 0; i < nr; ++i) s.sigma.push_back(r.scalar());
    s.vt = get_matrix(r);
    const std::uint32_t n = r.u32();
    s.counts.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) s.counts.push_back(r.u32());
    s.check_invariants();
    return s;
  }
  throw std::runtime_error("summary deserialize: unknown tag");
}

}  // namespace jaal::summarize
