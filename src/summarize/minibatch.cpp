#include "summarize/minibatch.hpp"

#include <limits>
#include <stdexcept>

#include "linalg/simd.hpp"

namespace jaal::summarize {

MiniBatchClusterer::MiniBatchClusterer(std::size_t k, std::size_t dims,
                                       std::uint64_t seed)
    : k_(k), dims_(dims), rng_(seed), centroids_(k, dims),
      dim_major_(k, dims) {
  if (k_ == 0 || dims_ == 0) {
    throw std::invalid_argument("MiniBatchClusterer: zero k or dims");
  }
  counts_.assign(k_, 0);
  epoch_counts_.assign(k_, 0);
}

std::size_t MiniBatchClusterer::nearest(std::span<const double> v) const {
  if (seeded_ == 0) return 0;
  // Centroids are lanes of the dimension-major mirror; per-lane field
  // order and first-index-wins ties match the scalar scan bit for bit.
  return linalg::simd::nearest_point(dim_major_.data(), dim_major_.stride(),
                                     dims_, seeded_, v.data())
      .index;
}

void MiniBatchClusterer::add(std::span<const double> v) {
  if (v.size() != dims_) {
    throw std::invalid_argument("MiniBatchClusterer::add: wrong dimension");
  }
  ++seen_;
  if (seeded_ < k_) {
    auto row = centroids_.row(seeded_);
    std::copy(v.begin(), v.end(), row.begin());
    for (std::size_t j = 0; j < dims_; ++j) dim_major_(seeded_, j) = v[j];
    counts_[seeded_] = 1;
    epoch_counts_[seeded_] = 1;
    ++seeded_;
    return;
  }
  const std::size_t c = nearest(v);
  auto row = centroids_.row(c);
  double err = 0.0;
  for (std::size_t j = 0; j < dims_; ++j) {
    const double diff = v[j] - row[j];
    err += diff * diff;
  }
  error_sum_ += err;
  ++counts_[c];
  ++epoch_counts_[c];
  // Sculley's per-centroid learning rate: eta = 1 / lifetime count.
  const double eta = 1.0 / static_cast<double>(counts_[c]);
  for (std::size_t j = 0; j < dims_; ++j) {
    row[j] += eta * (v[j] - row[j]);
    dim_major_(c, j) = row[j];
  }
}

void MiniBatchClusterer::add(const packet::PacketRecord& pkt) {
  if (dims_ != packet::kFieldCount) {
    throw std::invalid_argument(
        "MiniBatchClusterer::add(packet): dims != field count");
  }
  const auto v = packet::to_normalized_vector(pkt);
  add(std::span<const double>(v));
}

double MiniBatchClusterer::mean_quantization_error() const noexcept {
  const std::uint64_t updates = seen_ > seeded_ ? seen_ - seeded_ : 0;
  return updates == 0 ? 0.0 : error_sum_ / static_cast<double>(updates);
}

MiniBatchClusterer::Epoch MiniBatchClusterer::flush_epoch() {
  std::size_t live = 0;
  for (std::uint64_t c : epoch_counts_) live += c > 0 ? 1 : 0;
  Epoch epoch;
  epoch.centroids = linalg::Matrix(live, dims_);
  epoch.counts.reserve(live);
  std::size_t out = 0;
  for (std::size_t c = 0; c < k_; ++c) {
    if (epoch_counts_[c] == 0) continue;
    const auto src = centroids_.row(c);
    std::copy(src.begin(), src.end(), epoch.centroids.row(out).begin());
    epoch.counts.push_back(epoch_counts_[c]);
    ++out;
  }
  std::fill(epoch_counts_.begin(), epoch_counts_.end(), 0);
  return epoch;
}

}  // namespace jaal::summarize
