// In-network packet summaries (§4.3).
//
// Two wire formats carry the same information:
//  * CombinedSummary S1 = [X~_p | c]: k centroids in full field space plus
//    membership counts — k(p+1) elements.
//  * SplitSummary S2 = {U~_r, Sigma_r V_r^T, c}: k centroids in the rank-r
//    space plus the shared factor — r(k+p+1)+k elements.
// Monitors pick whichever is smaller for the configured (r, k, p); the
// inference module reconstructs S2 into S1 form before aggregation (§5.1).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "linalg/matrix.hpp"

namespace jaal::summarize {

/// Identifies which monitor produced a summary (for feedback requests).
using MonitorId = std::uint32_t;

struct CombinedSummary {
  MonitorId monitor = 0;
  linalg::Matrix centroids;            ///< k x p, normalized field space.
  std::vector<std::uint64_t> counts;   ///< Cluster sizes, length k.

  /// Number of scalar elements transmitted: k(p+1).
  [[nodiscard]] std::size_t element_count() const noexcept;

  /// Validates the k x (p, counts) invariant; throws std::logic_error.
  void check_invariants() const;
};

struct SplitSummary {
  MonitorId monitor = 0;
  linalg::Matrix u_centroids;          ///< k x r, clustered rows of U_r.
  std::vector<double> sigma;           ///< r singular values.
  linalg::Matrix vt;                   ///< r x p, the V_r^T factor.
  std::vector<std::uint64_t> counts;   ///< Cluster sizes, length k.

  /// Number of scalar elements transmitted: r(k+p+1)+k.
  [[nodiscard]] std::size_t element_count() const noexcept;

  /// Reconstructs the combined form: centroids = U~_r * diag(sigma) * V^T.
  [[nodiscard]] CombinedSummary reconstruct() const;

  void check_invariants() const;
};

using MonitorSummary = std::variant<CombinedSummary, SplitSummary>;

/// Elements of either variant.
[[nodiscard]] std::size_t element_count(const MonitorSummary& s) noexcept;

/// Transmitted size in bytes.  Scalars go as float32 and counts as uint32 —
/// the precision a deployment would actually ship (float64 fidelity is not
/// needed for threshold matching).
[[nodiscard]] std::size_t wire_bytes(const MonitorSummary& s) noexcept;

/// Every serialized summary starts with this magic byte followed by a
/// format-version byte; deserialize() rejects anything else, so a stale or
/// foreign buffer fails loudly instead of decoding as garbage.
inline constexpr std::uint8_t kWireMagic = 0x4A;  // 'J'

/// Scalar precision of the serialized buffer, doubling as the wire format
/// version byte.
enum class WirePrecision : std::uint8_t {
  /// v1: float32 scalars — what a deployment ships over the network
  /// (matches wire_bytes()).
  kFloat32 = 1,
  /// v2: float64 scalars — full fidelity, used by the persistence layer
  /// (src/store) so historical replay reproduces the live aggregate
  /// bit-for-bit.
  kFloat64 = 2,
};

/// Serializes to a self-describing byte buffer: magic, version, tag, then
/// little-endian fields at the requested scalar precision.
[[nodiscard]] std::vector<std::uint8_t> serialize(
    const MonitorSummary& s,
    WirePrecision precision = WirePrecision::kFloat32);

/// Parses a buffer produced by serialize() (either precision).  Throws
/// std::runtime_error on a missing/foreign magic byte, an unsupported
/// format version, or a malformed body.
[[nodiscard]] MonitorSummary deserialize(
    std::span<const std::uint8_t> bytes);

}  // namespace jaal::summarize
