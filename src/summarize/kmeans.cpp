#include "summarize/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "runtime/thread_pool.hpp"

namespace jaal::summarize {
namespace {

[[nodiscard]] double sq_dist(std::span<const double> a,
                             std::span<const double> b) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Below this many points the fan-out overhead exceeds the win; the output
/// is identical either way, so the cutoff only affects speed.
constexpr std::size_t kParallelAssignMin = 128;

/// Points per pool task in the assignment step.  Blocks keep the SIMD
/// kernel fed with long runs; lanes are independent points, so any block
/// decomposition yields identical bits.
constexpr std::size_t kAssignBlock = 512;

}  // namespace

void assign_to_centroids(const linalg::SoaMatrix& x,
                         const linalg::Matrix& centroids,
                         std::span<std::size_t> assignment,
                         std::span<double> best_dist,
                         runtime::ThreadPool* pool) {
  const std::size_t n = x.rows();
  const std::size_t k = centroids.rows();
  if (centroids.cols() != x.cols()) {
    throw std::invalid_argument("assign_to_centroids: dimension mismatch");
  }
  if (assignment.size() != n || best_dist.size() != n) {
    throw std::invalid_argument("assign_to_centroids: output size mismatch");
  }
  if (n == 0) return;
  const auto run_block = [&](std::size_t begin, std::size_t end) {
    linalg::simd::nearest_centroids(x.data(), x.stride(), x.cols(),
                                    centroids.data().data(), k, begin, end,
                                    assignment.data(), best_dist.data());
  };
  if (pool != nullptr && n >= kParallelAssignMin) {
    const std::size_t blocks = (n + kAssignBlock - 1) / kAssignBlock;
    pool->parallel_for(0, blocks, [&](std::size_t b) {
      run_block(b * kAssignBlock, std::min(n, (b + 1) * kAssignBlock));
    });
  } else {
    run_block(0, n);
  }
}

namespace {

/// Nearest-centroid search for every row of x: fills assignment[i] and
/// best_dist[i] through the SIMD kernel.  Each point is one lane and its
/// arithmetic does not depend on scheduling or dispatch level, so pooled,
/// serial, vector, and scalar runs all produce identical bits.
void assign_nearest(const linalg::SoaMatrix& x, const linalg::Matrix& centroids,
                    std::vector<std::size_t>& assignment,
                    std::vector<double>& best_dist,
                    runtime::ThreadPool* pool) {
  assign_to_centroids(x, centroids, assignment, best_dist, pool);
}

/// k-means++ D^2 seeding: first centroid uniform, each next centroid chosen
/// with probability proportional to squared distance from the closest
/// already-chosen centroid.
std::vector<std::size_t> seed_plus_plus(const linalg::Matrix& x, std::size_t k,
                                        std::mt19937_64& rng) {
  const std::size_t n = x.rows();
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  chosen.push_back(rng() % n);

  std::vector<double> d2(n, std::numeric_limits<double>::max());
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  while (chosen.size() < k) {
    const auto last = x.row(chosen.back());
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], sq_dist(x.row(i), last));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; pick arbitrarily.
      chosen.push_back(rng() % n);
      continue;
    }
    double target = unit(rng) * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    chosen.push_back(pick);
  }
  return chosen;
}

std::vector<std::size_t> seed_random(const linalg::Matrix& x, std::size_t k,
                                     std::mt19937_64& rng) {
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t i = 0; i < k; ++i) chosen.push_back(rng() % x.rows());
  return chosen;
}

}  // namespace

KMeansResult kmeans(const linalg::Matrix& x, std::size_t k,
                    std::mt19937_64& rng, const KMeansOptions& opts) {
  if (k == 0) throw std::invalid_argument("kmeans: k must be positive");
  if (x.empty()) throw std::invalid_argument("kmeans: empty input");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  KMeansResult res;
  if (k >= n) {
    // Degenerate case: every packet is its own representative.
    res.centroids = x;
    res.assignment.resize(n);
    res.counts.assign(n, 1);
    for (std::size_t i = 0; i < n; ++i) res.assignment[i] = i;
    return res;
  }

  const auto seeds = opts.init == KMeansInit::kPlusPlus
                         ? seed_plus_plus(x, k, rng)
                         : seed_random(x, k, rng);
  res.centroids = linalg::Matrix(k, d);
  for (std::size_t c = 0; c < k; ++c) {
    const auto src = x.row(seeds[c]);
    std::copy(src.begin(), src.end(), res.centroids.row(c).begin());
  }

  // One SoA conversion per call; every Lloyd iteration's assignment step
  // reads the same column-major copy.
  const linalg::SoaMatrix xs = linalg::SoaMatrix::from_rows(x);
  res.assignment.assign(n, 0);
  res.counts.assign(k, 0);
  std::vector<double> best_dist(n, 0.0);
  linalg::Matrix sums(k, d);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;
    // Assignment step: the nearest-centroid search fans out over the pool;
    // the floating-point reductions below stay serial in point order so the
    // result is bit-identical to a threads=1 run.
    assign_nearest(xs, res.centroids, res.assignment, best_dist, opts.pool);
    res.inertia = 0.0;
    std::fill(res.counts.begin(), res.counts.end(), 0);
    std::fill(sums.data().begin(), sums.data().end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = x.row(i);
      const std::size_t best_c = res.assignment[i];
      res.inertia += best_dist[i];
      ++res.counts[best_c];
      auto sum_row = sums.row(best_c);
      for (std::size_t j = 0; j < d; ++j) sum_row[j] += row[j];
    }
    // Update step.
    double moved = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      auto centroid = res.centroids.row(c);
      if (res.counts[c] == 0) continue;  // empty cluster keeps its centroid
      const auto sum_row = sums.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        const double updated =
            sum_row[j] / static_cast<double>(res.counts[c]);
        moved = std::max(moved, std::abs(updated - centroid[j]));
        centroid[j] = updated;
      }
    }
    if (moved < opts.tolerance) break;
  }

  // Final assignment consistent with the returned centroids.
  assign_nearest(xs, res.centroids, res.assignment, best_dist, opts.pool);
  res.inertia = 0.0;
  std::fill(res.counts.begin(), res.counts.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia += best_dist[i];
    ++res.counts[res.assignment[i]];
  }
  return res;
}

KMeansResult weighted_kmeans(const linalg::Matrix& x,
                             std::span<const std::uint64_t> weights,
                             std::size_t k, std::mt19937_64& rng,
                             const KMeansOptions& opts) {
  if (k == 0) throw std::invalid_argument("weighted_kmeans: k must be positive");
  if (x.empty()) throw std::invalid_argument("weighted_kmeans: empty input");
  if (weights.size() != x.rows()) {
    throw std::invalid_argument("weighted_kmeans: weights/rows mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  std::uint64_t total_weight = 0;
  for (std::uint64_t w : weights) total_weight += w;
  if (total_weight == 0) {
    throw std::invalid_argument("weighted_kmeans: zero total weight");
  }

  KMeansResult res;
  if (k >= n) {
    res.centroids = x;
    res.assignment.resize(n);
    res.counts.assign(weights.begin(), weights.end());
    for (std::size_t i = 0; i < n; ++i) res.assignment[i] = i;
    return res;
  }

  // Weighted D^2 seeding: candidate probability proportional to
  // weight x squared distance (the weighted k-means++ generalization).
  std::vector<std::size_t> seeds;
  {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    // First seed: weight-proportional.
    double target = unit(rng) * static_cast<double>(total_weight);
    std::size_t first = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= static_cast<double>(weights[i]);
      if (target <= 0.0) {
        first = i;
        break;
      }
    }
    seeds.push_back(first);
    std::vector<double> d2(n, std::numeric_limits<double>::max());
    while (seeds.size() < k) {
      const auto last = x.row(seeds.back());
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        d2[i] = std::min(d2[i], sq_dist(x.row(i), last));
        total += d2[i] * static_cast<double>(weights[i]);
      }
      if (total <= 0.0) {
        seeds.push_back(rng() % n);
        continue;
      }
      double pick_target = unit(rng) * total;
      std::size_t pick = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        pick_target -= d2[i] * static_cast<double>(weights[i]);
        if (pick_target <= 0.0) {
          pick = i;
          break;
        }
      }
      seeds.push_back(pick);
    }
  }

  res.centroids = linalg::Matrix(k, d);
  for (std::size_t c = 0; c < k; ++c) {
    const auto src = x.row(seeds[c]);
    std::copy(src.begin(), src.end(), res.centroids.row(c).begin());
  }

  const linalg::SoaMatrix xs = linalg::SoaMatrix::from_rows(x);
  res.assignment.assign(n, 0);
  res.counts.assign(k, 0);
  std::vector<double> best_dist(n, 0.0);
  linalg::Matrix sums(k, d);
  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;
    // Assignment via the SIMD kernel; the weighted accumulation stays
    // serial in point order so results do not depend on scheduling.
    assign_to_centroids(xs, res.centroids, res.assignment, best_dist,
                        opts.pool);
    res.inertia = 0.0;
    std::fill(res.counts.begin(), res.counts.end(), 0);
    std::fill(sums.data().begin(), sums.data().end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = x.row(i);
      const std::size_t best_c = res.assignment[i];
      const double w = static_cast<double>(weights[i]);
      res.inertia += best_dist[i] * w;
      res.counts[best_c] += weights[i];
      auto sum_row = sums.row(best_c);
      for (std::size_t j = 0; j < d; ++j) sum_row[j] += row[j] * w;
    }
    double moved = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (res.counts[c] == 0) continue;
      auto centroid = res.centroids.row(c);
      const auto sum_row = sums.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        const double updated =
            sum_row[j] / static_cast<double>(res.counts[c]);
        moved = std::max(moved, std::abs(updated - centroid[j]));
        centroid[j] = updated;
      }
    }
    if (moved < opts.tolerance) break;
  }
  return res;
}

}  // namespace jaal::summarize
