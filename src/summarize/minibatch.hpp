// Streaming mini-batch k-means (Sculley 2010) for high-rate monitors.
//
// The batch pipeline (§4.3) reruns k-means++ from scratch every epoch.  A
// monitor at hundreds of kpps can instead maintain centroids incrementally:
// packets update their nearest centroid with a per-centroid learning rate
// 1/n_c as they arrive, and the epoch flush just reads the current state.
// Quality is slightly below full Lloyd (see bench_ablation_kmeans_init) but
// per-packet cost is O(k d) with no end-of-epoch spike.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/soa.hpp"
#include "packet/fields.hpp"

namespace jaal::summarize {

class MiniBatchClusterer {
 public:
  /// `dims` is the vector dimensionality (p = 18 for header vectors).
  /// Throws std::invalid_argument on zero k or dims.
  MiniBatchClusterer(std::size_t k, std::size_t dims, std::uint64_t seed);

  /// Consumes one normalized vector (size dims).  The first k distinct
  /// vectors seed the centroids; afterwards each update moves the nearest
  /// centroid by 1/count toward the sample.
  void add(std::span<const double> v);

  /// Consumes a packet (normalized internally); dims must equal p.
  void add(const packet::PacketRecord& pkt);

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  /// Centroids seeded so far (the first k distinct adds); the nearest-
  /// centroid search only scans these.
  [[nodiscard]] std::size_t seeded() const noexcept { return seeded_; }

  /// Current centroids (k x dims) — rows with zero count are unused seeds.
  [[nodiscard]] const linalg::Matrix& centroids() const noexcept {
    return centroids_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

  /// Mean squared distance of the samples to their assigned centroid over
  /// everything added so far (an online inertia estimate).
  [[nodiscard]] double mean_quantization_error() const noexcept;

  /// Epoch flush: returns (centroids, counts) of clusters that received at
  /// least one member, and resets the membership counters (centroid
  /// positions persist across epochs — the warm start is the point).
  struct Epoch {
    linalg::Matrix centroids;
    std::vector<std::uint64_t> counts;
  };
  [[nodiscard]] Epoch flush_epoch();

 private:
  [[nodiscard]] std::size_t nearest(std::span<const double> v) const;

  std::size_t k_;
  std::size_t dims_;
  std::mt19937_64 rng_;
  linalg::Matrix centroids_;
  /// Dimension-major mirror of centroids_ (k rows, dims cols in SoA form:
  /// coordinate j of centroid c at col(j)[c]) so the per-packet nearest
  /// search can run the vector kernel with centroids as lanes.  Kept in
  /// sync by add(); O(dims) extra writes per update.
  linalg::SoaMatrix dim_major_;
  std::vector<std::uint64_t> counts_;        ///< Lifetime update counts.
  std::vector<std::uint64_t> epoch_counts_;  ///< Members this epoch.
  std::size_t seeded_ = 0;
  std::uint64_t seen_ = 0;
  double error_sum_ = 0.0;
};

}  // namespace jaal::summarize
