#include "summarize/summarizer.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "linalg/svd.hpp"

namespace jaal::summarize {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Same finalizer the fault scenarios use to derive independent streams
/// from structured keys.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Summarizer::Summarizer(const SummarizerConfig& cfg, MonitorId monitor)
    : cfg_(cfg), monitor_(monitor), rng_(cfg.seed) {
  if (cfg_.rank == 0 || cfg_.rank > packet::kFieldCount) {
    throw std::invalid_argument("Summarizer: rank must be in [1, p]");
  }
  if (cfg_.centroids == 0) {
    throw std::invalid_argument("Summarizer: k must be positive");
  }
  if (cfg_.batch_size == 0 || cfg_.min_batch > cfg_.batch_size) {
    throw std::invalid_argument("Summarizer: bad batch sizing");
  }
}

void Summarizer::set_telemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  if (tel_ == nullptr) {
    svd_ms_ = svd_sweeps_ = kmeans_ms_ = kmeans_iterations_ = nullptr;
    batches_ = split_format_ = combined_format_ = nullptr;
    return;
  }
  svd_ms_ = &tel_->metrics.histogram("jaal_summarize_svd_ms");
  svd_sweeps_ = &tel_->metrics.histogram("jaal_summarize_svd_sweeps");
  kmeans_ms_ = &tel_->metrics.histogram("jaal_summarize_kmeans_ms");
  kmeans_iterations_ =
      &tel_->metrics.histogram("jaal_summarize_kmeans_iterations");
  batches_ = &tel_->metrics.counter("jaal_summarize_batches_total");
  split_format_ =
      &tel_->metrics.counter("jaal_summarize_split_format_total");
  combined_format_ =
      &tel_->metrics.counter("jaal_summarize_combined_format_total");
}

void Summarizer::begin_epoch(std::uint64_t epoch) noexcept {
  rng_.seed(splitmix64(cfg_.seed ^ splitmix64(epoch)));
}

std::size_t Summarizer::combined_cost() const noexcept {
  return cfg_.centroids * (packet::kFieldCount + 1);
}

std::size_t Summarizer::split_cost() const noexcept {
  return cfg_.rank * (cfg_.centroids + packet::kFieldCount + 1) +
         cfg_.centroids;
}

SummarizeOutput Summarizer::summarize(
    std::span<const packet::PacketRecord> batch,
    const telemetry::SpanContext& parent) {
  if (batch.size() < cfg_.min_batch) {
    throw std::invalid_argument(
        "Summarizer: batch below n_min; SVD/k-means need more data");
  }
  if (tel_ != nullptr) batches_->add(1);

  // Step 0 (§4.1): normalize into [0,1]^p.
  const linalg::Matrix x_bar = to_normalized_matrix(batch);

  // Step 1 (§4.2): fields-mode reduction.  Rank is capped by the batch size
  // for tiny batches.
  const std::size_t r = std::min(cfg_.rank, batch.size());
  linalg::SvdResult svd;
  {
    telemetry::Span span = tel_ != nullptr
                               ? tel_->tracer.span("svd", parent, monitor_)
                               : telemetry::Span{};
    const auto start = std::chrono::steady_clock::now();
    switch (cfg_.svd_backend) {
      case SvdBackend::kRandomized:
        svd = linalg::randomized_svd(x_bar, r, rng_);
        break;
      case SvdBackend::kIncremental:
        if (!incremental_svd_) {
          incremental_svd_.emplace(packet::kFieldCount);
        }
        svd = incremental_svd_->update(x_bar, r);
        break;
      case SvdBackend::kJacobi:
        svd = linalg::truncated_svd(x_bar, r);
        break;
    }
    if (tel_ != nullptr) {
      svd_ms_->observe(ms_since(start));
      svd_sweeps_->observe(svd.sweeps);
      span.attr("rank", static_cast<double>(r));
      span.attr("sweeps", svd.sweeps);
    }
  }

  const bool use_split =
      cfg_.format == SummaryFormat::kSplit ||
      (cfg_.format == SummaryFormat::kAuto && split_cost() < combined_cost());

  KMeansOptions km_opts = cfg_.kmeans;
  km_opts.pool = pool_.get();

  // Mini-batch clustering pass: stream the batch rows through the warm
  // clusterer (one nearest-centroid update each), then assign the whole
  // batch against the post-update centroid snapshot so the summary carries
  // exact per-epoch counts and the monitor gets a packet->centroid map.
  // Centroid positions persist across epochs — that warm start is the
  // point — so flush_epoch() is never called here.
  const auto run_minibatch = [&](const linalg::Matrix& points) {
    const std::size_t n = points.rows();
    const std::size_t d = points.cols();
    if (!minibatch_ || minibatch_->dims() != d ||
        minibatch_->k() != cfg_.centroids) {
      minibatch_.emplace(cfg_.centroids, d, cfg_.seed);
    }
    for (std::size_t i = 0; i < n; ++i) minibatch_->add(points.row(i));
    const std::size_t live = minibatch_->seeded();
    KMeansResult km;
    km.iterations = 1;
    km.centroids = linalg::Matrix(live, d);
    for (std::size_t c = 0; c < live; ++c) {
      const auto src = minibatch_->centroids().row(c);
      std::copy(src.begin(), src.end(), km.centroids.row(c).begin());
    }
    km.assignment.assign(n, 0);
    km.counts.assign(live, 0);
    std::vector<double> best_dist(n, 0.0);
    assign_to_centroids(linalg::SoaMatrix::from_rows(points), km.centroids,
                        km.assignment, best_dist, km_opts.pool);
    for (std::size_t i = 0; i < n; ++i) {
      km.inertia += best_dist[i];
      ++km.counts[km.assignment[i]];
    }
    return km;
  };

  // Step 2 (§4.3): packets-mode vector quantization, instrumented the same
  // way for both summary formats and both backends.
  const auto run_kmeans = [&](const linalg::Matrix& points) {
    telemetry::Span span = tel_ != nullptr
                               ? tel_->tracer.span("kmeans", parent, monitor_)
                               : telemetry::Span{};
    const auto start = std::chrono::steady_clock::now();
    KMeansResult km = cfg_.cluster_backend == ClusterBackend::kMiniBatch
                          ? run_minibatch(points)
                          : kmeans(points, cfg_.centroids, rng_, km_opts);
    if (tel_ != nullptr) {
      kmeans_ms_->observe(ms_since(start));
      kmeans_iterations_->observe(static_cast<double>(km.iterations));
      span.attr("k", static_cast<double>(cfg_.centroids));
      span.attr("iterations", static_cast<double>(km.iterations));
    }
    return km;
  };

  SummarizeOutput out;
  double inertia = 0.0;
  if (use_split) {
    // Split: cluster rows of U_r; ship factors separately.
    const KMeansResult km = run_kmeans(svd.u);
    if (tel_ != nullptr) split_format_->add(1);
    inertia = km.inertia;
    SplitSummary s;
    s.monitor = monitor_;
    s.u_centroids = km.centroids;
    s.sigma = svd.sigma;
    s.vt = svd.v.transposed();
    s.counts = km.counts;
    out.summary = std::move(s);
    out.assignment = km.assignment;
  } else {
    // Combined: cluster rows of the rank-reduced X_p.
    const linalg::Matrix x_p = svd.reconstruct();
    const KMeansResult km = run_kmeans(x_p);
    if (tel_ != nullptr) combined_format_->add(1);
    inertia = km.inertia;
    CombinedSummary s;
    s.monitor = monitor_;
    s.centroids = km.centroids;
    s.counts = km.counts;
    out.summary = std::move(s);
    out.assignment = km.assignment;
  }

  if (cfg_.record_fidelity) {
    // Fidelity of this batch's summary, for the drift monitors: how much
    // of the batch the rank-r truncation keeps, how tight the clustering
    // is, and the combined per-packet summary error.
    const double n = static_cast<double>(batch.size());
    double total_energy = 0.0;
    for (double v : x_bar.data()) total_energy += v * v;
    double retained_energy = 0.0;
    for (double s : svd.sigma) retained_energy += s * s;
    observe::FidelityStats fs;
    fs.monitor = monitor_;
    fs.batch_packets = batch.size();
    fs.svd_energy_retained =
        total_energy > 0.0
            ? std::min(1.0, retained_energy / total_energy)
            : 1.0;
    fs.kmeans_inertia = inertia / n;
    const double residual = std::max(0.0, total_energy - retained_energy);
    fs.reconstruction_error = (residual + inertia) / n;
    out.fidelity = fs;
  }
  return out;
}

}  // namespace jaal::summarize
