#include "summarize/summarizer.hpp"

#include <stdexcept>

#include "linalg/svd.hpp"

namespace jaal::summarize {

Summarizer::Summarizer(const SummarizerConfig& cfg, MonitorId monitor)
    : cfg_(cfg), monitor_(monitor), rng_(cfg.seed) {
  if (cfg_.rank == 0 || cfg_.rank > packet::kFieldCount) {
    throw std::invalid_argument("Summarizer: rank must be in [1, p]");
  }
  if (cfg_.centroids == 0) {
    throw std::invalid_argument("Summarizer: k must be positive");
  }
  if (cfg_.batch_size == 0 || cfg_.min_batch > cfg_.batch_size) {
    throw std::invalid_argument("Summarizer: bad batch sizing");
  }
}

std::size_t Summarizer::combined_cost() const noexcept {
  return cfg_.centroids * (packet::kFieldCount + 1);
}

std::size_t Summarizer::split_cost() const noexcept {
  return cfg_.rank * (cfg_.centroids + packet::kFieldCount + 1) +
         cfg_.centroids;
}

SummarizeOutput Summarizer::summarize(
    std::span<const packet::PacketRecord> batch) {
  if (batch.size() < cfg_.min_batch) {
    throw std::invalid_argument(
        "Summarizer: batch below n_min; SVD/k-means need more data");
  }

  // Step 0 (§4.1): normalize into [0,1]^p.
  const linalg::Matrix x_bar = to_normalized_matrix(batch);

  // Step 1 (§4.2): fields-mode reduction.  Rank is capped by the batch size
  // for tiny batches.
  const std::size_t r = std::min(cfg_.rank, batch.size());
  const linalg::SvdResult svd =
      cfg_.randomized_svd ? linalg::randomized_svd(x_bar, r, rng_)
                          : linalg::truncated_svd(x_bar, r);

  const bool use_split =
      cfg_.format == SummaryFormat::kSplit ||
      (cfg_.format == SummaryFormat::kAuto && split_cost() < combined_cost());

  KMeansOptions km_opts = cfg_.kmeans;
  km_opts.pool = pool_.get();

  SummarizeOutput out;
  if (use_split) {
    // Step 2 (§4.3, split): cluster rows of U_r; ship factors separately.
    const KMeansResult km = kmeans(svd.u, cfg_.centroids, rng_, km_opts);
    SplitSummary s;
    s.monitor = monitor_;
    s.u_centroids = km.centroids;
    s.sigma = svd.sigma;
    s.vt = svd.v.transposed();
    s.counts = km.counts;
    out.summary = std::move(s);
    out.assignment = km.assignment;
  } else {
    // Step 2 (§4.3, combined): cluster rows of the rank-reduced X_p.
    const linalg::Matrix x_p = svd.reconstruct();
    const KMeansResult km = kmeans(x_p, cfg_.centroids, rng_, km_opts);
    CombinedSummary s;
    s.monitor = monitor_;
    s.centroids = km.centroids;
    s.counts = km.counts;
    out.summary = std::move(s);
    out.assignment = km.assignment;
  }
  return out;
}

}  // namespace jaal::summarize
