// Vector quantization of the packets mode (§4.3).
//
// The paper poses packet-mode reduction as k-means (NP-hard in general) and
// uses k-means++ seeding with Lloyd iterations, for its O(log k)
// competitiveness and fast convergence.  A plain random-seeded Lloyd is also
// provided for the initialization ablation bench.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/soa.hpp"

namespace jaal::runtime {
class ThreadPool;
}

namespace jaal::summarize {

enum class KMeansInit : std::uint8_t {
  kPlusPlus,  ///< k-means++ D^2 seeding (the paper's choice).
  kRandom,    ///< Uniform random rows (naive Lloyd), for ablation.
};

struct KMeansOptions {
  std::size_t max_iterations = 25;
  double tolerance = 1e-7;  ///< Stop when centroids move less than this.
  KMeansInit init = KMeansInit::kPlusPlus;
  /// Optional execution runtime: the assignment step (nearest-centroid
  /// search per point — the O(nk) bulk of each Lloyd iteration) fans out
  /// over the pool.  Results are bit-identical to the serial path: each
  /// point's nearest centroid is computed independently, and all
  /// floating-point reductions (inertia, centroid sums) stay serial in
  /// point order.  Null runs everything on the calling thread.
  runtime::ThreadPool* pool = nullptr;
};

struct KMeansResult {
  linalg::Matrix centroids;             ///< k x d.
  std::vector<std::size_t> assignment;  ///< Row -> centroid index, size n.
  std::vector<std::uint64_t> counts;    ///< Cluster membership counts, size k.
  double inertia = 0.0;                 ///< Sum of squared distances.
  std::size_t iterations = 0;
};

/// Clusters the rows of `x` into k groups.  If k >= n, each row becomes its
/// own centroid.  Throws std::invalid_argument for k == 0 or empty x.
[[nodiscard]] KMeansResult kmeans(const linalg::Matrix& x, std::size_t k,
                                  std::mt19937_64& rng,
                                  const KMeansOptions& opts = {});

/// Nearest-centroid assignment of every row of `x` (SoA layout) against
/// `centroids` (k x d, row-major): fills assignment[i] / best_dist[i] through
/// the dispatched SIMD kernel, fanning out over `pool` when given.  Each
/// point is one lane, so the bits are identical across thread counts and
/// dispatch levels.  Exposed for reuse by the Summarizer's mini-batch path
/// (one SoA conversion, many probes).  Throws std::invalid_argument on
/// dimension or output-size mismatch.
void assign_to_centroids(const linalg::SoaMatrix& x,
                         const linalg::Matrix& centroids,
                         std::span<std::size_t> assignment,
                         std::span<double> best_dist,
                         runtime::ThreadPool* pool = nullptr);

/// Weighted k-means: row i represents weights[i] identical points (e.g. a
/// centroid from a lower summarization level with its membership count).
/// Centroid updates and the inertia are weight-scaled; the returned counts
/// are sums of member weights.  Throws std::invalid_argument on size
/// mismatch, zero total weight, k == 0, or empty x.
[[nodiscard]] KMeansResult weighted_kmeans(
    const linalg::Matrix& x, std::span<const std::uint64_t> weights,
    std::size_t k, std::mt19937_64& rng, const KMeansOptions& opts = {});

}  // namespace jaal::summarize
