// The two-step summarization pipeline run by every monitor (§4).
//
// batch -> normalize -> fields-mode SVD (rank r) -> packets-mode k-means++
// (k centroids) -> S1 or S2, whichever is smaller for the configured
// (r, k, p): the paper sends S2 iff r(k+p+1)+k < k(p+1).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <span>

#include "linalg/incremental_svd.hpp"
#include "observe/drift.hpp"
#include "runtime/thread_pool.hpp"
#include "summarize/kmeans.hpp"
#include "summarize/minibatch.hpp"
#include "summarize/normalize.hpp"
#include "summarize/summary.hpp"
#include "telemetry/telemetry.hpp"

namespace jaal::summarize {

enum class SummaryFormat : std::uint8_t {
  kAuto,      ///< Pick the cheaper of S1/S2 (the paper's rule).
  kCombined,  ///< Force S1.
  kSplit,     ///< Force S2.
};

/// Fields-mode (§4.2) reduction backend.
enum class SvdBackend : std::uint8_t {
  /// Exact one-sided Jacobi, from scratch per batch (the reference path).
  kJacobi,
  /// Randomized range-finder — near-identical on decaying spectra
  /// (Fig. 10) and cheaper for large batches; RNG-dependent.
  kRandomized,
  /// Warm-started Gram eigensolve (linalg/incremental_svd.hpp): exact
  /// factors of the current batch, but the Jacobi sweeps start from the
  /// previous epoch's basis, so steady-state batches converge in 1-2
  /// sweeps instead of ~6+.  Deterministic.
  kIncremental,
};

/// Packets-mode (§4.3) vector quantization backend.
enum class ClusterBackend : std::uint8_t {
  /// k-means++ seeding + Lloyd iterations, from scratch per batch.
  kLloyd,
  /// Streaming Sculley mini-batch clusterer persisted across epochs: each
  /// batch row updates its nearest centroid once, then the batch is
  /// assigned against the resulting (warm) centroids.  No per-epoch
  /// re-seeding spike; quality slightly below full Lloyd.
  kMiniBatch,
};

struct SummarizerConfig {
  std::size_t batch_size = 1000;   ///< n: packets per batch.
  std::size_t min_batch = 600;     ///< n_min: below this, skip summarizing.
  std::size_t rank = 12;           ///< r: retained singular values.
  std::size_t centroids = 200;     ///< k: representative packets.
  SummaryFormat format = SummaryFormat::kAuto;
  KMeansOptions kmeans;
  SvdBackend svd_backend = SvdBackend::kJacobi;
  ClusterBackend cluster_backend = ClusterBackend::kLloyd;
  std::uint64_t seed = 42;
  /// Emit per-batch FidelityStats (SVD energy retained, k-means inertia,
  /// reconstruction error) for the drift monitors.  Costs one O(np) pass
  /// over the normalized batch; the rest falls out of SVD/k-means.
  bool record_fidelity = true;
};

/// Summarization output: the wire summary plus the packet->centroid map the
/// monitor keeps locally for one epoch so it can answer feedback requests
/// for the raw packets behind a centroid (§7).
struct SummarizeOutput {
  MonitorSummary summary;
  std::vector<std::size_t> assignment;  ///< packets[i] -> centroid index.
  /// Summary fidelity of this batch (when record_fidelity is on).  The
  /// epoch field is 0 here; the controller stamps it before feeding the
  /// HealthTracker.
  std::optional<observe::FidelityStats> fidelity;
};

class Summarizer {
 public:
  /// Throws std::invalid_argument on degenerate configs (zero rank/k,
  /// rank > p, min_batch > batch_size).
  explicit Summarizer(const SummarizerConfig& cfg, MonitorId monitor = 0);

  /// Summarizes one batch.  Throws std::invalid_argument if fewer than
  /// min_batch packets are supplied (callers gate on ready()).  `parent` is
  /// the enclosing trace span (the monitor's per-epoch summarize span);
  /// svd/kmeans child spans and stage histograms are recorded when
  /// telemetry is attached.
  [[nodiscard]] SummarizeOutput summarize(
      std::span<const packet::PacketRecord> batch,
      const telemetry::SpanContext& parent = {});

  /// Re-derives the RNG stream for the given epoch from (seed, epoch), so
  /// summarization is a pure function of (config, epoch, batch) rather than
  /// of the whole RNG history — a deployment restarted at epoch e produces
  /// the same summaries as one that ran from epoch 0 (the same purity rule
  /// the fault scenarios follow).  The controller calls this before every
  /// flush; direct users who never call it keep the single continuous
  /// stream seeded at construction.  Note the warm backends (kIncremental
  /// SVD, kMiniBatch clustering) carry cross-epoch numeric state that this
  /// does not reset — restart byte-identity holds for the stateless
  /// defaults (kJacobi + kLloyd).
  void begin_epoch(std::uint64_t epoch) noexcept;

  [[nodiscard]] const SummarizerConfig& config() const noexcept { return cfg_; }

  /// Attaches the shared execution runtime: the k-means assignment step of
  /// every subsequent summarize() fans out over the pool.  Output is
  /// bit-identical with or without a pool (see KMeansOptions::pool); null
  /// detaches.
  void set_pool(std::shared_ptr<runtime::ThreadPool> pool) noexcept {
    pool_ = std::move(pool);
  }

  /// Attaches telemetry: SVD/k-means wall-clock histograms, iteration and
  /// sweep counts, and per-stage trace spans.  Null detaches (the default;
  /// costs one pointer check per batch).
  void set_telemetry(telemetry::Telemetry* tel);

  /// Elements S1 would need for this config: k(p+1).
  [[nodiscard]] std::size_t combined_cost() const noexcept;
  /// Elements S2 would need for this config: r(k+p+1)+k.
  [[nodiscard]] std::size_t split_cost() const noexcept;

 private:
  SummarizerConfig cfg_;
  MonitorId monitor_;
  std::mt19937_64 rng_;
  /// Warm state for SvdBackend::kIncremental (lazily constructed).
  std::optional<linalg::IncrementalSvd> incremental_svd_;
  /// Warm state for ClusterBackend::kMiniBatch (lazily constructed;
  /// re-seeded if the clustered dimensionality changes, e.g. a format
  /// switch between U_r rows and reconstructed packet rows).
  std::optional<MiniBatchClusterer> minibatch_;
  std::shared_ptr<runtime::ThreadPool> pool_;
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Histogram* svd_ms_ = nullptr;
  telemetry::Histogram* svd_sweeps_ = nullptr;
  telemetry::Histogram* kmeans_ms_ = nullptr;
  telemetry::Histogram* kmeans_iterations_ = nullptr;
  telemetry::Counter* batches_ = nullptr;
  telemetry::Counter* split_format_ = nullptr;
  telemetry::Counter* combined_format_ = nullptr;
};

}  // namespace jaal::summarize
