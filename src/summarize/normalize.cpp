#include "summarize/normalize.hpp"

#include <stdexcept>

namespace jaal::summarize {

using packet::kFieldCount;

linalg::Matrix to_matrix(std::span<const packet::PacketRecord> packets) {
  linalg::Matrix x(packets.size(), kFieldCount);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto v = packet::to_field_vector(packets[i]);
    std::copy(v.begin(), v.end(), x.row(i).begin());
  }
  return x;
}

linalg::Matrix to_normalized_matrix(
    std::span<const packet::PacketRecord> packets) {
  linalg::Matrix x = to_matrix(packets);
  normalize_in_place(x);
  return x;
}

void normalize_in_place(linalg::Matrix& x) {
  if (x.cols() != kFieldCount) {
    throw std::invalid_argument("normalize_in_place: expected p = 18 columns");
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < kFieldCount; ++c) {
      row[c] /= packet::field_max(static_cast<packet::FieldIndex>(c));
    }
  }
}

}  // namespace jaal::summarize
