// Batch assembly and normalization (§4.1).
//
// A batch of n packets becomes an n x p matrix X (p = 18 header fields);
// each field is divided by its maximum possible value so distances are not
// dominated by wide-range fields like IP addresses.
#pragma once

#include <span>

#include "linalg/matrix.hpp"
#include "packet/fields.hpp"

namespace jaal::summarize {

/// Raw header matrix X: row i = field vector of packets[i].
[[nodiscard]] linalg::Matrix to_matrix(
    std::span<const packet::PacketRecord> packets);

/// Normalized matrix X_bar with every entry in [0, 1].
[[nodiscard]] linalg::Matrix to_normalized_matrix(
    std::span<const packet::PacketRecord> packets);

/// Normalizes a raw header matrix in place (columns in FieldIndex order).
/// Throws std::invalid_argument if x.cols() != kFieldCount.
void normalize_in_place(linalg::Matrix& x);

}  // namespace jaal::summarize
