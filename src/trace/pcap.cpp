#include "trace/pcap.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "packet/wire.hpp"

namespace jaal::trace {
namespace {

constexpr std::uint32_t kMagicMicros = 0xA1B2C3D4;
constexpr std::uint32_t kMagicNanos = 0xA1B23C4D;
constexpr std::uint32_t kLinkTypeRaw = 101;

struct GlobalHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t network;
};
static_assert(sizeof(GlobalHeader) == 24);

struct RecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_frac;  // micro- or nanoseconds depending on magic
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

[[nodiscard]] std::uint32_t bswap32(std::uint32_t v) noexcept {
  return ((v & 0xFF) << 24) | ((v & 0xFF00) << 8) | ((v >> 8) & 0xFF00) |
         (v >> 24);
}

[[nodiscard]] std::uint16_t bswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

}  // namespace

void write_pcap(std::ostream& os,
                const std::vector<packet::PacketRecord>& packets) {
  GlobalHeader gh{kMagicMicros, 2,      4, 0,
                  0,            65535, kLinkTypeRaw};
  os.write(reinterpret_cast<const char*>(&gh), sizeof(gh));
  for (const auto& pkt : packets) {
    const auto bytes = packet::serialize_headers(pkt.ip, pkt.tcp);
    RecordHeader rh{};
    rh.ts_sec = static_cast<std::uint32_t>(pkt.timestamp);
    rh.ts_frac = static_cast<std::uint32_t>(
        std::llround((pkt.timestamp - std::floor(pkt.timestamp)) * 1e6));
    rh.incl_len = static_cast<std::uint32_t>(bytes.size());
    // orig_len carries the real packet size even though we only store headers.
    rh.orig_len = pkt.ip.total_length;
    os.write(reinterpret_cast<const char*>(&rh), sizeof(rh));
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }
  if (!os) throw std::runtime_error("write_pcap: stream write failed");
}

void write_pcap_file(const std::string& path,
                     const std::vector<packet::PacketRecord>& packets) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_pcap_file: cannot open " + path);
  write_pcap(f, packets);
}

std::vector<packet::PacketRecord> read_pcap(std::istream& is) {
  GlobalHeader gh{};
  if (!is.read(reinterpret_cast<char*>(&gh), sizeof(gh))) {
    throw std::runtime_error("read_pcap: truncated global header");
  }

  bool swapped = false;
  double frac_scale = 1e-6;
  if (gh.magic == kMagicMicros) {
    frac_scale = 1e-6;
  } else if (gh.magic == kMagicNanos) {
    frac_scale = 1e-9;
  } else if (bswap32(gh.magic) == kMagicMicros) {
    swapped = true;
    frac_scale = 1e-6;
  } else if (bswap32(gh.magic) == kMagicNanos) {
    swapped = true;
    frac_scale = 1e-9;
  } else {
    throw std::runtime_error("read_pcap: bad magic");
  }
  const std::uint32_t network = swapped ? bswap32(gh.network) : gh.network;
  if (network != kLinkTypeRaw) {
    throw std::runtime_error("read_pcap: unsupported link type " +
                             std::to_string(network));
  }
  (void)bswap16;  // kept for symmetry; record headers only hold 32-bit fields

  std::vector<packet::PacketRecord> out;
  for (;;) {
    RecordHeader rh{};
    if (!is.read(reinterpret_cast<char*>(&rh), sizeof(rh))) break;  // EOF
    if (swapped) {
      rh.ts_sec = bswap32(rh.ts_sec);
      rh.ts_frac = bswap32(rh.ts_frac);
      rh.incl_len = bswap32(rh.incl_len);
      rh.orig_len = bswap32(rh.orig_len);
    }
    if (rh.incl_len > (1u << 20)) {
      throw std::runtime_error("read_pcap: implausible record length");
    }
    std::vector<std::uint8_t> body(rh.incl_len);
    if (!is.read(reinterpret_cast<char*>(body.data()), rh.incl_len)) {
      throw std::runtime_error("read_pcap: truncated record body");
    }
    const auto parsed = packet::parse_headers(body);
    if (!parsed) continue;  // non-TCP/IPv4 record: skip
    packet::PacketRecord pkt;
    pkt.ip = parsed->ip;
    pkt.tcp = parsed->tcp;
    pkt.timestamp = static_cast<double>(rh.ts_sec) +
                    static_cast<double>(rh.ts_frac) * frac_scale;
    out.push_back(pkt);
  }
  return out;
}

std::vector<packet::PacketRecord> read_pcap_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("read_pcap_file: cannot open " + path);
  return read_pcap(f);
}

}  // namespace jaal::trace
