// Minimal pcap (libpcap savefile) reader/writer for TCP/IPv4 header traces.
//
// Lets Jaal consume real captures (e.g. MAWI snapshots converted offline) and
// dump generated traffic for inspection with standard tools.  We write
// LINKTYPE_RAW (101): each record body starts directly at the IPv4 header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "packet/packet.hpp"

namespace jaal::trace {

/// Writes `packets` to a pcap stream (microsecond timestamps, LINKTYPE_RAW).
/// Throws std::runtime_error on I/O failure.
void write_pcap(std::ostream& os,
                const std::vector<packet::PacketRecord>& packets);

/// Convenience overload writing to a file path.
void write_pcap_file(const std::string& path,
                     const std::vector<packet::PacketRecord>& packets);

/// Reads all TCP/IPv4 packets from a pcap stream.  Skips records that do not
/// parse as TCP/IPv4 (e.g. UDP in a mixed capture).  Supports both byte
/// orders and both microsecond and nanosecond magics.  Ground-truth labels
/// are not stored in pcap, so every packet comes back labelled kNone.
/// Throws std::runtime_error on a malformed file.
[[nodiscard]] std::vector<packet::PacketRecord> read_pcap(std::istream& is);

/// Convenience overload reading from a file path.
[[nodiscard]] std::vector<packet::PacketRecord> read_pcap_file(
    const std::string& path);

}  // namespace jaal::trace
