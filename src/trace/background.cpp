#include "trace/background.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace jaal::trace {

using packet::PacketRecord;
using packet::TcpFlag;

namespace {

/// An emulated endpoint operating system: initial TTL and typical windows.
struct OsPersona {
  std::uint8_t initial_ttl;
  std::uint16_t syn_window;
  std::uint16_t data_window;
};

constexpr OsPersona kPersonas[] = {
    {64, 29200, 28960},   // Linux
    {64, 64240, 64240},   // newer Linux / macOS
    {128, 8192, 65535},   // Windows
    {255, 4128, 4128},    // network gear / Solaris
};

/// Lifecycle of one emulated TCP flow.
struct Flow {
  packet::FlowKey key;                 // client -> server direction
  std::uint32_t client_seq;
  std::uint32_t server_seq;
  std::uint32_t remaining_data_pkts;   // data packets still to emit
  std::uint8_t client_ttl;             // TTL as observed at the monitor
  std::uint8_t server_ttl;
  std::uint16_t client_window;
  std::uint16_t server_window;
  std::uint16_t client_ip_id;
  std::uint16_t server_ip_id;
  std::uint8_t tos;                    // per-flow DSCP marking
  std::uint8_t ip_flags;               // DF on virtually all modern stacks
  bool tcp_timestamps;                 // options change data_offset/lengths
  int stage = 0;                       // 0=SYN,1=SYNACK,2=ACK,3=data,4=FIN,5=FINACK
  bool server_heavy;                   // most data flows server -> client
};

}  // namespace

struct BackgroundTraffic::Impl {
  TraceProfile profile;        ///< Current (tilted) parameters.
  TraceProfile base_profile;   ///< Untilted preset, drift re-tilts from here.
  std::mt19937_64 rng;
  std::exponential_distribution<double> interarrival;
  std::discrete_distribution<std::size_t> port_pick;
  std::vector<Flow> flows;
  double now = 0.0;
  double next_time = 0.0;
  std::uint64_t emitted = 0;

  /// Backbone traffic is nonstationary: the mix a monitor sees in one
  /// window differs from the next (flash crowds, varying elephant/mice
  /// balance, applications coming and going).  Re-draw the composition
  /// tilt — from the untilted preset — so that successive windows carry
  /// genuinely different compositions, as real MAWI snapshots do.
  void retilt() {
    std::lognormal_distribution<double> tilt(0.0, 0.45);
    std::vector<double> weights;
    weights.reserve(base_profile.service_ports.size());
    for (const auto& [port, w] : base_profile.service_ports) {
      weights.push_back(w * tilt(rng));
    }
    port_pick = std::discrete_distribution<std::size_t>(weights.begin(),
                                                        weights.end());
    profile.pareto_alpha =
        base_profile.pareto_alpha *
        std::uniform_real_distribution<double>(0.85, 1.30)(rng);
    // Flow-length floor: windows dominated by short request/response
    // exchanges have several times the connection-setup (SYN) share of
    // windows dominated by bulk transfers.
    profile.pareto_min_packets =
        std::uniform_real_distribution<double>(1.0, 8.0)(rng);
    const double pool_tilt =
        std::uniform_real_distribution<double>(0.7, 1.5)(rng);
    profile.concurrent_flows = std::max<std::size_t>(
        32, static_cast<std::size_t>(
                static_cast<double>(base_profile.concurrent_flows) *
                pool_tilt));
    // The flow pool resizes lazily: new draws respect the new size.
    if (!flows.empty() && flows.size() > profile.concurrent_flows) {
      flows.resize(profile.concurrent_flows);
    } else {
      while (!flows.empty() && flows.size() < profile.concurrent_flows) {
        flows.push_back(fresh_flow());
      }
    }
  }

  explicit Impl(TraceProfile p, std::uint64_t seed)
      : profile(std::move(p)),
        rng(seed),
        interarrival(profile.packets_per_second) {
    if (profile.service_ports.empty()) {
      throw std::invalid_argument("BackgroundTraffic: empty service port mix");
    }
    if (profile.packets_per_second <= 0.0) {
      throw std::invalid_argument("BackgroundTraffic: non-positive rate");
    }
    base_profile = profile;
    retilt();
    flows.reserve(profile.concurrent_flows);
    for (std::size_t i = 0; i < profile.concurrent_flows; ++i) {
      flows.push_back(fresh_flow());
      // Stagger lifecycle stages so the pool starts in steady state.
      flows.back().stage = static_cast<int>(rng() % 4);
    }
    next_time = interarrival(rng);
  }

  [[nodiscard]] std::uint32_t random_client_ip() {
    // Clients spread across the public unicast space, avoiding the server
    // prefix 203.0.x.x so roles stay distinguishable.
    for (;;) {
      const auto ip = static_cast<std::uint32_t>(rng());
      const std::uint8_t first = static_cast<std::uint8_t>(ip >> 24);
      if (first == 0 || first >= 224 || first == 127 || first == 203) continue;
      return ip;
    }
  }

  [[nodiscard]] std::uint32_t random_server_ip() {
    // A modest population of servers in 203.0.0.0/16; Zipf-ish popularity by
    // biasing toward low host numbers.
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto host = static_cast<std::uint32_t>(std::pow(u, 2.2) * 4096.0);
    return packet::make_ip(203, 0, static_cast<std::uint8_t>(host >> 8),
                           static_cast<std::uint8_t>(host & 0xFF));
  }

  [[nodiscard]] std::uint32_t flow_size_packets() {
    // Pareto(alpha, xm): heavy-tailed flow sizes; most flows are mice, a few
    // are elephants.
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const double size = profile.pareto_min_packets /
                        std::pow(1.0 - u, 1.0 / profile.pareto_alpha);
    return static_cast<std::uint32_t>(std::min(size, 20000.0));
  }

  [[nodiscard]] Flow fresh_flow() {
    Flow f{};
    const auto service =
        profile.service_ports[port_pick(rng)].first;
    f.key.src_ip = random_client_ip();
    f.key.dst_ip = random_server_ip();
    f.key.src_port = static_cast<std::uint16_t>(
        32768 + (rng() % 28232));  // ephemeral range
    f.key.dst_port = service;
    f.client_seq = static_cast<std::uint32_t>(rng());
    f.server_seq = static_cast<std::uint32_t>(rng());
    f.remaining_data_pkts = flow_size_packets();
    const OsPersona& client = kPersonas[rng() % std::size(kPersonas)];
    const OsPersona& server = kPersonas[rng() % std::size(kPersonas)];
    // Observed TTL = initial minus hops to the monitor.
    f.client_ttl = static_cast<std::uint8_t>(client.initial_ttl - 4 - rng() % 18);
    f.server_ttl = static_cast<std::uint8_t>(server.initial_ttl - 2 - rng() % 12);
    f.client_window = client.data_window;
    f.server_window = server.data_window;
    f.client_ip_id = static_cast<std::uint16_t>(rng());
    f.server_ip_id = static_cast<std::uint16_t>(rng());
    // Most traffic is best-effort; a small minority carries DSCP markings
    // (AF/EF classes), as seen on real backbones.
    constexpr std::uint8_t kDscp[] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 32, 40};
    f.tos = kDscp[rng() % std::size(kDscp)];
    f.ip_flags = (rng() % 100) < 98 ? 2 : 0;  // DF, rare legacy non-DF
    f.tcp_timestamps = (rng() % 100) < 90;    // RFC 7323 widely deployed
    f.server_heavy = (rng() % 100) < 80;      // downloads dominate
    return f;
  }

  [[nodiscard]] PacketRecord emit(Flow& f) {
    PacketRecord pkt;
    pkt.timestamp = now;
    pkt.ip.tos = f.tos;
    pkt.ip.flags = f.ip_flags;
    pkt.ip.ttl = f.client_ttl;
    pkt.ip.src_ip = f.key.src_ip;
    pkt.ip.dst_ip = f.key.dst_ip;
    pkt.tcp.src_port = f.key.src_port;
    pkt.tcp.dst_port = f.key.dst_port;

    const bool from_server = [&] {
      switch (f.stage) {
        case 1: return true;                       // SYN-ACK
        case 0: case 2: case 4: return false;      // SYN, ACK, client FIN
        case 5: return true;                       // server FIN-ACK
        default: return (rng() % 100) < (f.server_heavy ? 85u : 30u);
      }
    }();
    if (from_server) {
      std::swap(pkt.ip.src_ip, pkt.ip.dst_ip);
      std::swap(pkt.tcp.src_port, pkt.tcp.dst_port);
      pkt.ip.ttl = f.server_ttl;
      pkt.ip.identification = f.server_ip_id++;
      pkt.tcp.seq = f.server_seq;
      pkt.tcp.ack = f.client_seq;
      pkt.tcp.window = f.server_window;
    } else {
      pkt.ip.identification = f.client_ip_id++;
      pkt.tcp.seq = f.client_seq;
      pkt.tcp.ack = f.server_seq;
      pkt.tcp.window = f.client_window;
    }

    // TCP timestamps (RFC 7323) add 12 option bytes to every segment and
    // raise the data offset from 5 to 8 words.
    const std::uint8_t base_offset = f.tcp_timestamps ? 8 : 5;
    const std::uint16_t base_header =
        static_cast<std::uint16_t>(20 + base_offset * 4);
    pkt.tcp.data_offset = base_offset;

    switch (f.stage) {
      case 0:  // client SYN: MSS/SACK/wscale(/timestamp) options
        pkt.tcp.set(TcpFlag::kSyn);
        pkt.tcp.ack = 0;
        pkt.tcp.data_offset = 10;
        pkt.ip.total_length = 60;
        f.stage = 1;
        break;
      case 1:  // server SYN-ACK
        pkt.tcp.set(TcpFlag::kSyn);
        pkt.tcp.set(TcpFlag::kAck);
        pkt.tcp.data_offset = 10;
        pkt.ip.total_length = 60;
        f.server_seq += 1;
        f.stage = 2;
        break;
      case 2:  // client ACK completing the handshake
        pkt.tcp.set(TcpFlag::kAck);
        pkt.ip.total_length = base_header;
        f.client_seq += 1;
        f.stage = 3;
        break;
      case 3: {  // established: data or pure ACK
        pkt.tcp.set(TcpFlag::kAck);
        const bool data = (rng() % 100) < 70;
        if (data) {
          pkt.tcp.set(TcpFlag::kPsh, (rng() % 100) < 40);
          // MTU-sized segments dominate; some small app writes.
          const std::uint16_t payload =
              (rng() % 100) < 75
                  ? static_cast<std::uint16_t>(1500 - base_header)
                  : static_cast<std::uint16_t>(80 + rng() % 900);
          pkt.ip.total_length = static_cast<std::uint16_t>(base_header + payload);
          if (from_server) {
            f.server_seq += payload;
          } else {
            f.client_seq += payload;
          }
        } else {
          pkt.ip.total_length = base_header;
        }
        if (f.remaining_data_pkts == 0 || --f.remaining_data_pkts == 0) {
          f.stage = 4;
        }
        break;
      }
      case 4:  // client FIN
        pkt.tcp.set(TcpFlag::kFin);
        pkt.tcp.set(TcpFlag::kAck);
        pkt.ip.total_length = base_header;
        f.client_seq += 1;
        f.stage = 5;
        break;
      case 5:  // server FIN-ACK; flow slot is recycled afterwards
      default:
        pkt.tcp.set(TcpFlag::kFin);
        pkt.tcp.set(TcpFlag::kAck);
        pkt.ip.total_length = base_header;
        f = fresh_flow();
        break;
    }
    return pkt;
  }

  [[nodiscard]] PacketRecord next_packet() {
    now = next_time;
    next_time += interarrival(rng);
    ++emitted;
    if (profile.drift_interval_packets > 0 &&
        emitted % profile.drift_interval_packets == 0) {
      retilt();
    }
    Flow& f = flows[rng() % flows.size()];
    return emit(f);
  }
};

BackgroundTraffic::BackgroundTraffic(TraceProfile profile, std::uint64_t seed)
    : impl_(std::make_unique<Impl>(std::move(profile), seed)) {}

BackgroundTraffic::~BackgroundTraffic() = default;
BackgroundTraffic::BackgroundTraffic(BackgroundTraffic&&) noexcept = default;
BackgroundTraffic& BackgroundTraffic::operator=(BackgroundTraffic&&) noexcept =
    default;

double BackgroundTraffic::peek_time() const { return impl_->next_time; }

PacketRecord BackgroundTraffic::next() { return impl_->next_packet(); }

const TraceProfile& BackgroundTraffic::profile() const noexcept {
  return impl_->profile;
}

TraceProfile trace1_profile() {
  TraceProfile p;
  p.name = "trace1";
  p.packets_per_second = 50000.0;
  p.concurrent_flows = 256;
  p.pareto_alpha = 1.3;
  p.service_ports = {
      {443, 46.0}, {80, 30.0}, {22, 4.0},   {25, 3.0},  {993, 3.0},
      {8080, 3.0}, {53, 2.0},  {3306, 2.0}, {21, 2.0},  {110, 1.5},
      {143, 1.5},  {123, 1.0}, {5222, 1.0},
  };
  return p;
}

TraceProfile trace2_profile() {
  TraceProfile p;
  p.name = "trace2";
  p.packets_per_second = 50000.0;
  p.concurrent_flows = 320;
  p.pareto_alpha = 1.15;  // heavier elephant tail
  p.service_ports = {
      {443, 52.0}, {80, 24.0}, {22, 3.0},  {25, 2.0},  {993, 4.0},
      {8080, 2.0}, {53, 3.0},  {3306, 1.0}, {21, 1.0}, {110, 1.0},
      {143, 2.0},  {1935, 2.0}, {6881, 3.0},
  };
  return p;
}

TraceProfile profile_from_packets(
    const std::vector<packet::PacketRecord>& packets) {
  if (packets.size() < 100) {
    throw std::invalid_argument(
        "profile_from_packets: need at least 100 packets to calibrate");
  }
  TraceProfile profile = trace1_profile();
  profile.name = "from_pcap";

  // Packet rate from the capture's span.
  const double span = packets.back().timestamp - packets.front().timestamp;
  if (span > 0.0) {
    profile.packets_per_second =
        static_cast<double>(packets.size()) / span;
  }

  // Service-port mix: the lower of (src, dst) port is almost always the
  // service side; count below-ephemeral ports plus common alt-ports.
  std::unordered_map<std::uint16_t, double> port_weight;
  for (const auto& pkt : packets) {
    const std::uint16_t service =
        std::min(pkt.tcp.src_port, pkt.tcp.dst_port);
    if (service == 0 || service >= 32768) continue;
    port_weight[service] += 1.0;
  }
  if (!port_weight.empty()) {
    profile.service_ports.clear();
    for (const auto& [port, weight] : port_weight) {
      // Keep ports carrying at least 0.2% of the observed traffic.
      if (weight >= 0.002 * static_cast<double>(packets.size())) {
        profile.service_ports.emplace_back(port, weight);
      }
    }
    if (profile.service_ports.empty()) {
      profile.service_ports = trace1_profile().service_ports;
    }
  }

  // Flow pool: distinct 4-tuples, bounded to a practical range.
  std::unordered_map<packet::FlowKey, bool, packet::FlowKeyHash> flows;
  for (const auto& pkt : packets) flows.emplace(pkt.flow(), true);
  profile.concurrent_flows =
      std::clamp<std::size_t>(flows.size() / 4, 64, 4096);
  return profile;
}

std::vector<PacketRecord> take(PacketSource& source, std::size_t count) {
  std::vector<PacketRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(source.next());
  return out;
}

}  // namespace jaal::trace
