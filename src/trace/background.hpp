// Synthetic ISP backbone background traffic.
//
// Stands in for the MAWI traces the paper replays (§8).  The generator
// produces TCP/IPv4 header streams with the statistical structure the
// summarizer cares about: realistic service-port mixes, heavy-tailed flow
// sizes, TCP handshake/data/teardown flag sequences, per-OS TTL and window
// populations, and strong correlations between fields (length vs flags,
// ports vs direction) so that header matrices exhibit the low latent rank
// the paper exploits (Fig. 10).
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "packet/packet.hpp"

namespace jaal::trace {

/// Abstract timestamped packet source.  `peek_time` must be monotone
/// non-decreasing across calls to `next`.
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Timestamp of the packet the next call to next() will return.
  [[nodiscard]] virtual double peek_time() const = 0;

  /// Produces the next packet and advances the source.
  [[nodiscard]] virtual packet::PacketRecord next() = 0;
};

/// Tunables defining one background "trace".  Two presets mirror the two
/// MAWI snapshots used in the paper.
struct TraceProfile {
  std::string name;
  double packets_per_second = 50000.0;
  std::size_t concurrent_flows = 256;   ///< Active flow pool size.
  double pareto_alpha = 1.3;            ///< Flow-size tail index.
  double pareto_min_packets = 4.0;      ///< Minimum flow size.
  /// Packets between composition re-draws: real backbone windows drift
  /// (flash crowds, elephants arriving/leaving), so the port mix and
  /// flow-length parameters are re-tilted every this many packets.
  /// 0 disables drift (one tilt per generator instance).
  std::uint64_t drift_interval_packets = 6000;
  /// Service (server-side) ports and their selection weights.
  std::vector<std::pair<std::uint16_t, double>> service_ports;
};

/// Preset approximating the MAWI 2016/01 snapshot ("Trace 1", §8).
[[nodiscard]] TraceProfile trace1_profile();

/// Preset approximating the MAWI 2016/02 snapshot ("Trace 2", §8): shifted
/// port mix and a heavier flow-size tail.
[[nodiscard]] TraceProfile trace2_profile();

/// Calibrates a profile from a real capture (e.g. a converted MAWI
/// snapshot): packet rate from the timestamp span, the service-port mix
/// from the observed well-known/registered destination ports, and the
/// concurrent-flow pool from the distinct 4-tuples seen.  Name is
/// "from_pcap".  Throws std::invalid_argument on fewer than 100 packets.
[[nodiscard]] TraceProfile profile_from_packets(
    const std::vector<packet::PacketRecord>& packets);

/// Generates an endless, deterministic (seeded) background packet stream.
class BackgroundTraffic final : public PacketSource {
 public:
  BackgroundTraffic(TraceProfile profile, std::uint64_t seed);
  ~BackgroundTraffic() override;

  BackgroundTraffic(BackgroundTraffic&&) noexcept;
  BackgroundTraffic& operator=(BackgroundTraffic&&) noexcept;

  [[nodiscard]] double peek_time() const override;
  [[nodiscard]] packet::PacketRecord next() override;

  [[nodiscard]] const TraceProfile& profile() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Draws `count` packets from any source into a vector.
[[nodiscard]] std::vector<packet::PacketRecord> take(PacketSource& source,
                                                     std::size_t count);

}  // namespace jaal::trace
