// TrafficMix: time-ordered merge of background traffic and attack sources.
//
// Reproduces the paper's injection methodology (§8): attack traffic is
// throttled to at most a configurable fraction (10% in the paper) of the
// overall stream; attack packets beyond the quota are dropped, exactly like
// the paper's attack scripts that "stop attack packets if the 10% quota has
// already been met".
#pragma once

#include <cstdint>
#include <vector>

#include "trace/background.hpp"

namespace jaal::trace {

class TrafficMix final : public PacketSource {
 public:
  /// `background` and every element of `attacks` must outlive the mix.
  /// Throws std::invalid_argument if max_attack_fraction is outside [0, 1].
  TrafficMix(PacketSource& background, std::vector<PacketSource*> attacks,
             double max_attack_fraction = 0.1);

  [[nodiscard]] double peek_time() const override;
  [[nodiscard]] packet::PacketRecord next() override;

  /// Packets emitted so far (attack + background).
  [[nodiscard]] std::uint64_t total_emitted() const noexcept { return total_; }
  /// Attack packets emitted so far (after throttling).
  [[nodiscard]] std::uint64_t attack_emitted() const noexcept { return attack_; }
  /// Attack packets suppressed by the quota.
  [[nodiscard]] std::uint64_t attack_dropped() const noexcept { return dropped_; }

 private:
  [[nodiscard]] bool quota_allows_attack() const noexcept;

  PacketSource* background_;
  std::vector<PacketSource*> attacks_;
  double max_fraction_;
  std::uint64_t total_ = 0;
  std::uint64_t attack_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace jaal::trace
