#include "trace/mix.hpp"

#include <limits>
#include <stdexcept>

namespace jaal::trace {

TrafficMix::TrafficMix(PacketSource& background,
                       std::vector<PacketSource*> attacks,
                       double max_attack_fraction)
    : background_(&background),
      attacks_(std::move(attacks)),
      max_fraction_(max_attack_fraction) {
  if (max_fraction_ < 0.0 || max_fraction_ > 1.0) {
    throw std::invalid_argument("TrafficMix: fraction outside [0, 1]");
  }
  for (PacketSource* a : attacks_) {
    if (a == nullptr) throw std::invalid_argument("TrafficMix: null attack");
  }
}

bool TrafficMix::quota_allows_attack() const noexcept {
  return static_cast<double>(attack_ + 1) <=
         max_fraction_ * static_cast<double>(total_ + 1);
}

double TrafficMix::peek_time() const {
  double t = background_->peek_time();
  // Only count an attack source if its packet would actually be emitted.
  if (quota_allows_attack()) {
    for (const PacketSource* a : attacks_) t = std::min(t, a->peek_time());
  }
  return t;
}

packet::PacketRecord TrafficMix::next() {
  for (;;) {
    PacketSource* earliest = background_;
    double t = background_->peek_time();
    for (PacketSource* a : attacks_) {
      if (a->peek_time() < t) {
        t = a->peek_time();
        earliest = a;
      }
    }
    if (earliest == background_) {
      ++total_;
      return background_->next();
    }
    if (quota_allows_attack()) {
      ++total_;
      ++attack_;
      return earliest->next();
    }
    // Over quota: the attack script suppresses this packet.
    (void)earliest->next();
    ++dropped_;
  }
}

}  // namespace jaal::trace
