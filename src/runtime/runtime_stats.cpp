#include "runtime/runtime_stats.hpp"

#include <algorithm>

namespace jaal::runtime {

void RuntimeStats::record_stage(const std::string& name, double elapsed_ms) {
  std::lock_guard lock(stage_mu_);
  auto it = std::find_if(stages_.begin(), stages_.end(),
                         [&](const StageAccumulator& s) {
                           return s.name == name;
                         });
  if (it == stages_.end()) {
    stages_.push_back({name, 0, 0.0, 0.0});
    it = std::prev(stages_.end());
  }
  ++it->calls;
  it->total_ms += elapsed_ms;
  it->max_ms = std::max(it->max_ms, elapsed_ms);
}

RuntimeStatsSnapshot RuntimeStats::snapshot(std::size_t threads) const {
  RuntimeStatsSnapshot snap;
  snap.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  snap.tasks_completed = tasks_completed_.load(std::memory_order_relaxed);
  snap.parallel_for_calls =
      parallel_for_calls_.load(std::memory_order_relaxed);
  snap.queue_depth_high_water =
      queue_high_water_.load(std::memory_order_relaxed);
  snap.threads = threads;
  std::lock_guard lock(stage_mu_);
  snap.stages.reserve(stages_.size());
  for (const StageAccumulator& s : stages_) {
    snap.stages.push_back({s.name, s.calls, s.total_ms, s.max_ms});
  }
  return snap;
}

}  // namespace jaal::runtime
