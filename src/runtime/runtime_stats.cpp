#include "runtime/runtime_stats.hpp"

namespace jaal::runtime {
namespace {

constexpr const char* kTasksSubmitted = "jaal_runtime_tasks_submitted_total";
constexpr const char* kTasksCompleted = "jaal_runtime_tasks_completed_total";
constexpr const char* kParallelFor = "jaal_runtime_parallel_for_calls_total";
constexpr const char* kQueueHighWater = "jaal_runtime_queue_depth_high_water";

std::string stage_metric_name(const std::string& stage) {
  return "jaal_runtime_stage_ms{stage=\"" + stage + "\"}";
}

}  // namespace

RuntimeStats::RuntimeStats() : registry_(&own_) {
  bind(&own_);
}

void RuntimeStats::bind(telemetry::MetricsRegistry* registry) {
  std::lock_guard lock(stage_mu_);
  registry_ = registry;
  tasks_submitted_ = &registry_->counter(kTasksSubmitted);
  tasks_completed_ = &registry_->counter(kTasksCompleted);
  parallel_for_calls_ = &registry_->counter(kParallelFor);
  queue_high_water_ = &registry_->gauge(kQueueHighWater);
  stages_.clear();
}

void RuntimeStats::record_stage(const std::string& name, double elapsed_ms) {
  telemetry::Histogram* hist = nullptr;
  {
    std::lock_guard lock(stage_mu_);
    for (const auto& [stage, h] : stages_) {
      if (stage == name) {
        hist = h;
        break;
      }
    }
    if (hist == nullptr) {
      hist = &registry_->histogram(stage_metric_name(name));
      stages_.emplace_back(name, hist);
    }
  }
  hist->observe(elapsed_ms);
}

RuntimeStatsSnapshot RuntimeStats::snapshot(std::size_t threads) const {
  RuntimeStatsSnapshot snap;
  snap.tasks_submitted = tasks_submitted_->value();
  snap.tasks_completed = tasks_completed_->value();
  snap.parallel_for_calls = parallel_for_calls_->value();
  snap.queue_depth_high_water =
      static_cast<std::size_t>(queue_high_water_->value());
  snap.threads = threads;
  std::lock_guard lock(stage_mu_);
  snap.stages.reserve(stages_.size());
  for (const auto& [name, hist] : stages_) {
    const telemetry::HistogramSnapshot h = hist->snapshot();
    snap.stages.push_back({name, h.count, h.sum, h.max});
  }
  return snap;
}

}  // namespace jaal::runtime
