// Bounded MPMC channel — the backpressure primitive of the execution
// runtime.
//
// A fixed-capacity FIFO shared by any number of producers and consumers.
// `push` blocks while the channel is full (backpressure: a fast producer —
// e.g. monitors flushing summaries — cannot run arbitrarily far ahead of a
// slow consumer), `pop` blocks while it is empty.  `close()` ends the
// conversation: subsequent pushes fail, blocked pushers wake up and fail,
// and consumers drain whatever is buffered before pop starts returning
// nullopt.  Every item pushed before close is popped exactly once — no
// losses, no duplicates — which the channel stress test asserts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace jaal::runtime {

template <typename T>
class Channel {
 public:
  /// Throws std::invalid_argument for capacity == 0 (a rendezvous channel
  /// is not supported; the runtime always wants at least one slot of slack).
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("Channel: capacity must be positive");
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // All notifications below are issued while still holding the mutex.
  // That is deliberate, not an oversight: a woken peer may be the last user
  // of this channel and destroy it as soon as it can re-acquire the lock
  // (the epoch pipeline does exactly this — the consumer pops the final
  // summary and tears the channel down while the producing task is still
  // returning from push).  Notifying under the lock guarantees the notifier
  // has no further channel access once the waiter proceeds.

  /// Blocks until a slot is free, then enqueues.  Returns false (and drops
  /// the value) if the channel is closed before a slot frees up.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed *and*
  /// drained; nullopt signals end-of-stream.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when nothing is buffered (closed or not).
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Idempotent.  Wakes every blocked producer (they fail) and consumer
  /// (they drain, then see end-of-stream).
  void close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  /// Items currently buffered (racy by nature; for tests and stats).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jaal::runtime
