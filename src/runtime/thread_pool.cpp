#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace jaal::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  stats_.on_submit(depth);
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    stats_.on_complete();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (threads() * 4));
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  stats_.on_parallel_for();

  if (chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Shared loop state.  Helpers and the caller claim chunk indices from
  // `next`; whoever claims a chunk completes it, so `done == chunks` is the
  // loop's completion condition regardless of how many helpers ever ran.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;  // guarded by mu
    std::mutex mu;
    std::condition_variable all_done;
    std::exception_ptr error;  // first exception, guarded by mu
  };
  auto state = std::make_shared<LoopState>();

  auto run_chunks = [state, begin, end, grain, chunks, &body] {
    for (;;) {
      const std::size_t c =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      std::exception_ptr err;
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard lock(state->mu);
      if (err && !state->error) state->error = err;
      if (++state->done == chunks) state->all_done.notify_all();
    }
  };

  // One helper per worker at most; the caller covers the rest (and all of
  // them, when every worker is busy with other tasks).
  const std::size_t helpers = std::min(chunks - 1, threads());
  for (std::size_t h = 0; h < helpers; ++h) enqueue(run_chunks);
  run_chunks();

  std::unique_lock lock(state->mu);
  state->all_done.wait(lock, [&] { return state->done == chunks; });
  if (state->error) std::rethrow_exception(state->error);
}

std::size_t threads_from_env(std::size_t fallback) {
  const char* raw = std::getenv("JAAL_THREADS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || (end != nullptr && *end != '\0')) return fallback;
  if (parsed == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? fallback : hw;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace jaal::runtime
