// Observability for the execution runtime — a thin view over the telemetry
// registry, so runtime counters and pipeline stage timers live in the SAME
// stats system as every other jaal metric (one registry, one exporter).
//
// RuntimeStats counts work (tasks submitted/completed, parallel_for calls),
// tracks the queue-depth high-water mark (how far producers ran ahead of
// the workers — the signal that a deployment should add threads), and
// accumulates per-stage wall-clock latency via the RAII StageTimer.  All of
// it is backed by telemetry metrics (striped lock-free counters, log-bucket
// histograms): by default each RuntimeStats embeds a private registry, and
// bind() redirects it into a shared deployment-wide registry so pool
// metrics appear in the same Prometheus/JSONL export as monitor/engine
// metrics, under the jaal_runtime_* names.
//
// snapshot() still produces the plain struct that core/metrics renders next
// to the detection-quality and communication numbers.
#pragma once

#include <cstdint>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace jaal::runtime {

/// One named pipeline stage ("flush", "aggregate", "infer", ...).
struct StageSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  [[nodiscard]] double mean_ms() const noexcept {
    return calls == 0 ? 0.0 : total_ms / static_cast<double>(calls);
  }
};

/// Point-in-time copy of every counter; safe to read at leisure.
struct RuntimeStatsSnapshot {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t parallel_for_calls = 0;
  std::size_t queue_depth_high_water = 0;
  std::size_t threads = 0;
  std::vector<StageSnapshot> stages;
};

class RuntimeStats {
 public:
  RuntimeStats();

  /// Rebinds onto a shared registry (the deployment's Telemetry).  Call at
  /// wiring time, before work runs: counts already accumulated stay behind
  /// in the previously bound registry.
  void bind(telemetry::MetricsRegistry* registry);

  void on_submit(std::size_t queue_depth_after) noexcept {
    tasks_submitted_->add(1);
    queue_high_water_->update_max(
        static_cast<std::int64_t>(queue_depth_after));
  }

  void on_complete() noexcept { tasks_completed_->add(1); }

  void on_parallel_for() noexcept { parallel_for_calls_->add(1); }

  /// Folds one stage timing into the registry histogram
  /// jaal_runtime_stage_ms{stage="<name>"}; creates it on first use.
  void record_stage(const std::string& name, double elapsed_ms);

  [[nodiscard]] RuntimeStatsSnapshot snapshot(std::size_t threads = 0) const;

 private:
  telemetry::MetricsRegistry own_;  ///< Default backing store.
  telemetry::MetricsRegistry* registry_;
  telemetry::Counter* tasks_submitted_;
  telemetry::Counter* tasks_completed_;
  telemetry::Counter* parallel_for_calls_;
  telemetry::Gauge* queue_high_water_;
  mutable std::mutex stage_mu_;
  /// Stage handles in first-use order (the order snapshot() reports).
  std::vector<std::pair<std::string, telemetry::Histogram*>> stages_;
};

/// RAII wall-clock timer: records into `stats` under `name` on destruction.
/// A null stats pointer makes it a no-op, so callers time unconditionally
/// and only pay when a runtime is attached.
class StageTimer {
 public:
  StageTimer(RuntimeStats* stats, std::string name)
      : stats_(stats),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    if (stats_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stats_->record_stage(
        name_,
        std::chrono::duration<double, std::milli>(elapsed).count());
  }

 private:
  RuntimeStats* stats_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jaal::runtime
