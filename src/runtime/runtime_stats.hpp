// Observability for the execution runtime.
//
// RuntimeStats counts work (tasks submitted/completed, parallel_for calls),
// tracks the queue-depth high-water mark (how far producers ran ahead of
// the workers — the signal that a deployment should add threads), and
// accumulates per-stage wall-clock latency via the RAII StageTimer.  All
// counters are atomics so workers update them without a lock; snapshot()
// produces the plain struct that core/metrics renders next to the
// detection-quality and communication numbers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace jaal::runtime {

/// One named pipeline stage ("flush", "aggregate", "infer", ...).
struct StageSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  [[nodiscard]] double mean_ms() const noexcept {
    return calls == 0 ? 0.0 : total_ms / static_cast<double>(calls);
  }
};

/// Point-in-time copy of every counter; safe to read at leisure.
struct RuntimeStatsSnapshot {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t parallel_for_calls = 0;
  std::size_t queue_depth_high_water = 0;
  std::size_t threads = 0;
  std::vector<StageSnapshot> stages;
};

class RuntimeStats {
 public:
  void on_submit(std::size_t queue_depth_after) noexcept {
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
    std::size_t seen = queue_high_water_.load(std::memory_order_relaxed);
    while (queue_depth_after > seen &&
           !queue_high_water_.compare_exchange_weak(
               seen, queue_depth_after, std::memory_order_relaxed)) {
    }
  }

  void on_complete() noexcept {
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
  }

  void on_parallel_for() noexcept {
    parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Folds one stage timing in; creates the stage on first use.
  void record_stage(const std::string& name, double elapsed_ms);

  [[nodiscard]] RuntimeStatsSnapshot snapshot(std::size_t threads = 0) const;

 private:
  struct StageAccumulator {
    std::string name;
    std::uint64_t calls = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };

  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> tasks_completed_{0};
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::size_t> queue_high_water_{0};
  mutable std::mutex stage_mu_;
  std::vector<StageAccumulator> stages_;
};

/// RAII wall-clock timer: records into `stats` under `name` on destruction.
/// A null stats pointer makes it a no-op, so callers time unconditionally
/// and only pay when a runtime is attached.
class StageTimer {
 public:
  StageTimer(RuntimeStats* stats, std::string name)
      : stats_(stats),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() {
    if (stats_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stats_->record_stage(
        name_,
        std::chrono::duration<double, std::milli>(elapsed).count());
  }

 private:
  RuntimeStats* stats_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace jaal::runtime
