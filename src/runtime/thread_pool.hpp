// Fixed-size thread pool — the shared execution runtime.
//
// One pool per deployment; every parallel stage (monitor epoch flush,
// k-means assignment, question matching) borrows its workers instead of
// spawning threads of its own.  Two usage shapes:
//
//  * submit(fn) -> std::future<R>: one-shot tasks (the monitor→engine
//    pipeline submits one flush task per monitor).
//  * parallel_for(begin, end, body): data-parallel loops.  The index range
//    is cut into fixed chunks *independently of the thread count*, helper
//    tasks are pushed onto the shared queue, and the *calling thread
//    participates* in chunk execution.  Caller participation makes nested
//    parallelism safe: a flush task running on a worker can itself call
//    parallel_for (k-means inside the summarizer) and will simply execute
//    every chunk inline when no other worker is free — progress is
//    guaranteed without growing the pool.
//
// Determinism contract: parallel_for guarantees every index is executed
// exactly once with disjoint writes assumed; chunk *boundaries* depend only
// on (range, grain), never on the thread count or scheduling, so any
// per-chunk accumulation a caller performs is reproducible.  Stages that
// need bit-identical floating-point results against the serial path compute
// per-index values in parallel and reduce serially in index order (see
// summarize::kmeans and core::JaalController).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/runtime_stats.hpp"

namespace jaal::runtime {

class ThreadPool {
 public:
  /// Spawns `threads` workers.  Throws std::invalid_argument for zero — a
  /// poolless (serial) configuration is expressed by not creating a pool,
  /// not by an empty one.
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threads() const noexcept {
    return workers_.size();
  }

  /// Enqueues one task; the future carries its result (or exception).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs body(i) for every i in [begin, end) across the pool, with the
  /// calling thread participating.  `grain` is the chunk size (indices per
  /// task); 0 picks one aiming at ~4 chunks per thread.  Chunk boundaries
  /// are a pure function of (range, grain) — see the determinism contract
  /// above.  Exceptions from `body` propagate to the caller (first one
  /// wins; remaining chunks still run).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Work/latency counters shared by everything running on this pool.
  [[nodiscard]] RuntimeStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RuntimeStats& stats() const noexcept { return stats_; }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable ready_;
  bool stopping_ = false;
  RuntimeStats stats_;
};

/// Thread count from the JAAL_THREADS environment variable; `fallback` when
/// unset, empty, or unparsable.  0 in the variable means "all hardware
/// threads".
[[nodiscard]] std::size_t threads_from_env(std::size_t fallback = 1);

}  // namespace jaal::runtime
