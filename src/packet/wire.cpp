#include "packet/wire.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

namespace jaal::packet {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

[[nodiscard]] std::uint16_t get_u16(std::span<const std::uint8_t> b,
                                    std::size_t off) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{b[off]} << 8) | b[off + 1]);
}

[[nodiscard]] std::uint32_t get_u32(std::span<const std::uint8_t> b,
                                    std::size_t off) noexcept {
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | std::uint32_t{b[off + 3]};
}

/// TCP pseudo-header contribution to the checksum (RFC 793).
[[nodiscard]] std::uint32_t pseudo_header_sum(const Ipv4Header& ip,
                                              std::uint16_t tcp_length) noexcept {
  std::uint32_t sum = 0;
  sum += ip.src_ip >> 16;
  sum += ip.src_ip & 0xFFFF;
  sum += ip.dst_ip >> 16;
  sum += ip.dst_ip & 0xFFFF;
  sum += ip.protocol;
  sum += tcp_length;
  return sum;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes,
                                std::uint32_t initial) noexcept {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += (std::uint32_t{bytes[i]} << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) sum += std::uint32_t{bytes[i]} << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::uint8_t> serialize_headers(const Ipv4Header& ip,
                                            const TcpHeader& tcp) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeadersBytes);

  // --- IPv4 header, checksum zero for now.
  put_u8(out, static_cast<std::uint8_t>((ip.version << 4) | (ip.ihl & 0x0F)));
  put_u8(out, ip.tos);
  put_u16(out, ip.total_length);
  put_u16(out, ip.identification);
  put_u16(out, static_cast<std::uint16_t>((std::uint16_t{ip.flags} << 13) |
                                          (ip.fragment_offset & 0x1FFF)));
  put_u8(out, ip.ttl);
  put_u8(out, ip.protocol);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, ip.src_ip);
  put_u32(out, ip.dst_ip);

  const std::uint16_t ip_csum =
      internet_checksum({out.data(), kIpv4HeaderBytes});
  out[10] = static_cast<std::uint8_t>(ip_csum >> 8);
  out[11] = static_cast<std::uint8_t>(ip_csum & 0xFF);

  // --- TCP header, checksum zero for now.
  const std::size_t tcp_off = out.size();
  put_u16(out, tcp.src_port);
  put_u16(out, tcp.dst_port);
  put_u32(out, tcp.seq);
  put_u32(out, tcp.ack);
  put_u8(out, static_cast<std::uint8_t>(tcp.data_offset << 4));
  put_u8(out, tcp.flags);
  put_u16(out, tcp.window);
  put_u16(out, 0);  // checksum placeholder
  put_u16(out, tcp.urgent_ptr);

  // The checksum covers the pseudo-header plus the whole TCP segment; we
  // only serialize the fixed header, so a payload (if any per total_length)
  // is treated as zeros, which contributes nothing to the sum.
  const std::uint16_t ip_header_bytes = static_cast<std::uint16_t>(ip.ihl * 4);
  const std::uint16_t tcp_length =
      ip.total_length >= ip_header_bytes
          ? static_cast<std::uint16_t>(ip.total_length - ip_header_bytes)
          : static_cast<std::uint16_t>(kTcpHeaderBytes);
  const std::uint16_t tcp_csum = internet_checksum(
      {out.data() + tcp_off, kTcpHeaderBytes}, pseudo_header_sum(ip, tcp_length));
  out[tcp_off + 16] = static_cast<std::uint8_t>(tcp_csum >> 8);
  out[tcp_off + 17] = static_cast<std::uint8_t>(tcp_csum & 0xFF);

  return out;
}

std::optional<ParseResult> parse_headers(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kIpv4HeaderBytes) return std::nullopt;

  ParseResult r;
  r.ip.version = bytes[0] >> 4;
  r.ip.ihl = bytes[0] & 0x0F;
  if (r.ip.version != 4 || r.ip.ihl < 5) return std::nullopt;

  const std::size_t ip_header_bytes = std::size_t{r.ip.ihl} * 4;
  if (bytes.size() < ip_header_bytes + kTcpHeaderBytes) return std::nullopt;

  r.ip.tos = bytes[1];
  r.ip.total_length = get_u16(bytes, 2);
  r.ip.identification = get_u16(bytes, 4);
  const std::uint16_t frag = get_u16(bytes, 6);
  r.ip.flags = static_cast<std::uint8_t>(frag >> 13);
  r.ip.fragment_offset = frag & 0x1FFF;
  r.ip.ttl = bytes[8];
  r.ip.protocol = bytes[9];
  r.ip.checksum = get_u16(bytes, 10);
  r.ip.src_ip = get_u32(bytes, 12);
  r.ip.dst_ip = get_u32(bytes, 16);

  if (r.ip.protocol != 6) return std::nullopt;  // not TCP

  // Checksum over the header as received must fold to zero.
  r.ip_checksum_ok =
      internet_checksum(bytes.subspan(0, ip_header_bytes)) == 0;

  const std::span<const std::uint8_t> t = bytes.subspan(ip_header_bytes);
  r.tcp.src_port = get_u16(t, 0);
  r.tcp.dst_port = get_u16(t, 2);
  r.tcp.seq = get_u32(t, 4);
  r.tcp.ack = get_u32(t, 8);
  r.tcp.data_offset = t[12] >> 4;
  r.tcp.flags = t[13] & 0x3F;
  r.tcp.window = get_u16(t, 14);
  r.tcp.checksum = get_u16(t, 16);
  r.tcp.urgent_ptr = get_u16(t, 18);

  const std::uint16_t tcp_length =
      r.ip.total_length >= ip_header_bytes
          ? static_cast<std::uint16_t>(r.ip.total_length - ip_header_bytes)
          : static_cast<std::uint16_t>(kTcpHeaderBytes);
  // Verify over the bytes we actually have (header only when the buffer is
  // truncated to headers, as in our pcap captures).
  const std::size_t avail = std::min<std::size_t>(t.size(), tcp_length);
  r.tcp_checksum_ok =
      internet_checksum(t.subspan(0, avail),
                        pseudo_header_sum(r.ip, tcp_length)) == 0;
  return r;
}

std::string ip_to_string(std::uint32_t ip) {
  return std::to_string(ip >> 24) + "." + std::to_string((ip >> 16) & 0xFF) +
         "." + std::to_string((ip >> 8) & 0xFF) + "." + std::to_string(ip & 0xFF);
}

std::uint32_t ip_from_string(const std::string& dotted) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (pos >= dotted.size()) {
      throw std::invalid_argument("ip_from_string: too few octets");
    }
    std::size_t end = 0;
    const unsigned long v = std::stoul(dotted.substr(pos), &end, 10);
    if (end == 0 || v > 255) {
      throw std::invalid_argument("ip_from_string: bad octet in '" + dotted + "'");
    }
    octets[i] = static_cast<std::uint32_t>(v);
    pos += end;
    if (i < 3) {
      if (pos >= dotted.size() || dotted[pos] != '.') {
        throw std::invalid_argument("ip_from_string: missing dot in '" + dotted + "'");
      }
      ++pos;
    }
  }
  if (pos != dotted.size()) {
    throw std::invalid_argument("ip_from_string: trailing characters in '" + dotted + "'");
  }
  return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
}

}  // namespace jaal::packet
