// IPv4 and TCP header value types.
//
// These are plain structs (no invariants beyond field ranges) mirroring the
// on-wire headers; `wire.hpp` converts to/from network byte order.  Jaal's
// summarization treats the 18 fields defined in `fields.hpp` as the data
// modes (§4.1).
#pragma once

#include <cstdint>
#include <string>

namespace jaal::packet {

/// TCP flag bits as they appear in the wire flags octet.
enum class TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

[[nodiscard]] constexpr std::uint8_t flag_bit(TcpFlag f) noexcept {
  return static_cast<std::uint8_t>(f);
}

struct Ipv4Header {
  std::uint8_t version = 4;          ///< Always 4 for IPv4.
  std::uint8_t ihl = 5;              ///< Header length in 32-bit words.
  std::uint8_t tos = 0;              ///< DSCP/ECN octet.
  std::uint16_t total_length = 40;   ///< Header + payload bytes.
  std::uint16_t identification = 0;
  std::uint8_t flags = 0;            ///< 3 bits: reserved/DF/MF.
  std::uint16_t fragment_offset = 0; ///< In 8-byte units, 13 bits.
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;         ///< 6 = TCP.
  std::uint16_t checksum = 0;        ///< Filled in by the serializer.
  std::uint32_t src_ip = 0;          ///< Host byte order.
  std::uint32_t dst_ip = 0;          ///< Host byte order.

  bool operator==(const Ipv4Header&) const = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;      ///< Header length in 32-bit words.
  std::uint8_t flags = 0;            ///< OR of TcpFlag bits.
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;        ///< Filled in by the serializer.
  std::uint16_t urgent_ptr = 0;

  [[nodiscard]] bool has(TcpFlag f) const noexcept {
    return (flags & flag_bit(f)) != 0;
  }
  void set(TcpFlag f, bool on = true) noexcept {
    if (on) {
      flags = static_cast<std::uint8_t>(flags | flag_bit(f));
    } else {
      flags = static_cast<std::uint8_t>(flags & ~flag_bit(f));
    }
  }

  bool operator==(const TcpHeader&) const = default;
};

/// Renders a host-order IPv4 address as dotted quad ("10.1.2.3").
[[nodiscard]] std::string ip_to_string(std::uint32_t ip_host_order);

/// Parses dotted quad into host byte order; throws std::invalid_argument.
[[nodiscard]] std::uint32_t ip_from_string(const std::string& dotted);

/// Builds a host-order address from octets: make_ip(10,0,0,1) = 10.0.0.1.
[[nodiscard]] constexpr std::uint32_t make_ip(std::uint8_t a, std::uint8_t b,
                                              std::uint8_t c, std::uint8_t d) noexcept {
  return (std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
         (std::uint32_t{c} << 8) | std::uint32_t{d};
}

}  // namespace jaal::packet
