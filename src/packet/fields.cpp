#include "packet/fields.hpp"

#include <stdexcept>
#include <string>

namespace jaal::packet {
namespace {

constexpr std::array<std::string_view, kFieldCount> kNames = {
    "ip.version",      "ip.ihl",         "ip.tos",
    "ip.total_length", "ip.id",          "ip.flags",
    "ip.frag_offset",  "ip.ttl",         "ip.protocol",
    "ip.src",          "ip.dst",         "tcp.src_port",
    "tcp.dst_port",    "tcp.seq",        "tcp.ack",
    "tcp.data_offset", "tcp.flags",      "tcp.window",
};

constexpr std::array<double, kFieldCount> kMaxValues = {
    15.0,          // ip.version (4 bits)
    15.0,          // ip.ihl (4 bits)
    255.0,         // ip.tos
    65535.0,       // ip.total_length
    65535.0,       // ip.id
    7.0,           // ip.flags (3 bits)
    8191.0,        // ip.frag_offset (13 bits)
    255.0,         // ip.ttl
    255.0,         // ip.protocol
    4294967295.0,  // ip.src
    4294967295.0,  // ip.dst
    65535.0,       // tcp.src_port
    65535.0,       // tcp.dst_port
    4294967295.0,  // tcp.seq
    4294967295.0,  // tcp.ack
    15.0,          // tcp.data_offset (4 bits)
    63.0,          // tcp.flags (6 flag bits)
    65535.0,       // tcp.window
};

constexpr std::array<FieldIndex, kFieldCount> kAllFields = [] {
  std::array<FieldIndex, kFieldCount> a{};
  for (std::size_t i = 0; i < kFieldCount; ++i) a[i] = static_cast<FieldIndex>(i);
  return a;
}();

}  // namespace

std::string_view field_name(FieldIndex f) noexcept { return kNames[index(f)]; }

FieldIndex field_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    if (kNames[i] == name) return static_cast<FieldIndex>(i);
  }
  throw std::invalid_argument("field_from_name: unknown field '" +
                              std::string(name) + "'");
}

double field_max(FieldIndex f) noexcept { return kMaxValues[index(f)]; }

FieldVector to_field_vector(const PacketRecord& pkt) noexcept {
  FieldVector v{};
  v[index(FieldIndex::kIpVersion)] = pkt.ip.version;
  v[index(FieldIndex::kIpIhl)] = pkt.ip.ihl;
  v[index(FieldIndex::kIpTos)] = pkt.ip.tos;
  v[index(FieldIndex::kIpTotalLength)] = pkt.ip.total_length;
  v[index(FieldIndex::kIpIdentification)] = pkt.ip.identification;
  v[index(FieldIndex::kIpFlags)] = pkt.ip.flags;
  v[index(FieldIndex::kIpFragmentOffset)] = pkt.ip.fragment_offset;
  v[index(FieldIndex::kIpTtl)] = pkt.ip.ttl;
  v[index(FieldIndex::kIpProtocol)] = pkt.ip.protocol;
  v[index(FieldIndex::kIpSrcAddr)] = pkt.ip.src_ip;
  v[index(FieldIndex::kIpDstAddr)] = pkt.ip.dst_ip;
  v[index(FieldIndex::kTcpSrcPort)] = pkt.tcp.src_port;
  v[index(FieldIndex::kTcpDstPort)] = pkt.tcp.dst_port;
  v[index(FieldIndex::kTcpSeq)] = pkt.tcp.seq;
  v[index(FieldIndex::kTcpAck)] = pkt.tcp.ack;
  v[index(FieldIndex::kTcpDataOffset)] = pkt.tcp.data_offset;
  v[index(FieldIndex::kTcpFlags)] = pkt.tcp.flags;
  v[index(FieldIndex::kTcpWindow)] = pkt.tcp.window;
  return v;
}

FieldVector to_normalized_vector(const PacketRecord& pkt) noexcept {
  FieldVector v = to_field_vector(pkt);
  for (std::size_t i = 0; i < kFieldCount; ++i) v[i] /= kMaxValues[i];
  return v;
}

double normalize_field(FieldIndex f, double raw) noexcept {
  return raw / kMaxValues[index(f)];
}

double denormalize_field(FieldIndex f, double normalized) noexcept {
  return normalized * kMaxValues[index(f)];
}

std::span<const FieldIndex> all_fields() noexcept { return kAllFields; }

const char* attack_name(AttackType t) noexcept {
  switch (t) {
    case AttackType::kNone: return "none";
    case AttackType::kSynFlood: return "syn_flood";
    case AttackType::kDistributedSynFlood: return "distributed_syn_flood";
    case AttackType::kPortScan: return "port_scan";
    case AttackType::kSshBruteForce: return "ssh_brute_force";
    case AttackType::kSockstress: return "sockstress";
    case AttackType::kMiraiScan: return "mirai_scan";
  }
  return "unknown";
}

}  // namespace jaal::packet
