// The 18 TCP/IP header fields Jaal treats as the "fields mode" of a batch
// (§4.1), their normalization bounds, and packet <-> vector conversion.
//
// The paper treats all header fields as equally important and normalizes
// each by its maximum possible value so that x_bar in [0, 1] (§4.1).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "packet/packet.hpp"

namespace jaal::packet {

/// Index of each header field in a packet vector.  10 IPv4 fields + 8 TCP
/// fields = p = 18 dimensions, matching "18 header fields" in §2 and the
/// question-vector length in §5.2.
enum class FieldIndex : std::size_t {
  kIpVersion = 0,
  kIpIhl,
  kIpTos,
  kIpTotalLength,
  kIpIdentification,
  kIpFlags,
  kIpFragmentOffset,
  kIpTtl,
  kIpProtocol,
  kIpSrcAddr,
  kIpDstAddr,
  kTcpSrcPort,
  kTcpDstPort,
  kTcpSeq,
  kTcpAck,
  kTcpDataOffset,
  kTcpFlags,
  kTcpWindow,
};

/// Number of header fields, p in the paper.
inline constexpr std::size_t kFieldCount = 18;

/// A packet rendered as a p-vector of raw (unnormalized) field values.
using FieldVector = std::array<double, kFieldCount>;

[[nodiscard]] constexpr std::size_t index(FieldIndex f) noexcept {
  return static_cast<std::size_t>(f);
}

/// Human-readable field name ("tcp.dst_port" etc.) for logs and tooling.
[[nodiscard]] std::string_view field_name(FieldIndex f) noexcept;

/// Parses a field name back to its index; throws std::invalid_argument.
[[nodiscard]] FieldIndex field_from_name(std::string_view name);

/// Maximum possible value of each field, the max(x) of §4.1's
/// normalization x_bar = x / max(x).
[[nodiscard]] double field_max(FieldIndex f) noexcept;

/// Extracts the raw field values of a packet, in FieldIndex order.
[[nodiscard]] FieldVector to_field_vector(const PacketRecord& pkt) noexcept;

/// Extracts and normalizes: every entry is in [0, 1].
[[nodiscard]] FieldVector to_normalized_vector(const PacketRecord& pkt) noexcept;

/// Normalizes a single raw field value to [0, 1].
[[nodiscard]] double normalize_field(FieldIndex f, double raw) noexcept;

/// Maps a normalized value back to the raw field range.
[[nodiscard]] double denormalize_field(FieldIndex f, double normalized) noexcept;

/// All field indices, for iteration and parameterized tests.
[[nodiscard]] std::span<const FieldIndex> all_fields() noexcept;

}  // namespace jaal::packet
