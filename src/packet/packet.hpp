// PacketRecord: one observed TCP/IPv4 packet plus experiment metadata.
#pragma once

#include <cstdint>
#include <functional>

#include "packet/headers.hpp"

namespace jaal::packet {

/// Ground-truth label carried out-of-band with every generated packet so the
/// evaluation can compute TPR/FPR exactly as the paper does ("relative to
/// ground truth", §8).  The detection pipeline never reads this.
enum class AttackType : std::uint8_t {
  kNone = 0,
  kSynFlood,
  kDistributedSynFlood,
  kPortScan,
  kSshBruteForce,
  kSockstress,
  kMiraiScan,
};

[[nodiscard]] const char* attack_name(AttackType t) noexcept;

/// Number of AttackType values including kNone.
inline constexpr std::size_t kAttackTypeCount = 7;

/// Flow 4-tuple (§4.1): src/dst IP and ports.  Protocol is implicitly TCP.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  [[nodiscard]] std::size_t operator()(const FlowKey& k) const noexcept {
    // FNV-1a over the packed tuple.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(k.src_ip);
    mix(k.dst_ip);
    mix((std::uint64_t{k.src_port} << 16) | k.src_port);
    mix((std::uint64_t{k.dst_port} << 16) | k.dst_port);
    return static_cast<std::size_t>(h);
  }
};

struct PacketRecord {
  Ipv4Header ip;
  TcpHeader tcp;
  double timestamp = 0.0;                 ///< Seconds since trace start.
  AttackType label = AttackType::kNone;   ///< Ground truth, out-of-band.

  [[nodiscard]] FlowKey flow() const noexcept {
    return {ip.src_ip, ip.dst_ip, tcp.src_port, tcp.dst_port};
  }

  bool operator==(const PacketRecord&) const = default;
};

}  // namespace jaal::packet
