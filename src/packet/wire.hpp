// Wire-format codec for TCP/IPv4 headers.
//
// Monitors in a real deployment parse headers off the wire; this codec is the
// parsing substrate for the pcap reader and for tests that round-trip real
// byte layouts (network byte order, IPv4 and TCP checksums).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "packet/packet.hpp"

namespace jaal::packet {

/// Serialized size of the two fixed headers (no IP or TCP options).
inline constexpr std::size_t kIpv4HeaderBytes = 20;
inline constexpr std::size_t kTcpHeaderBytes = 20;
inline constexpr std::size_t kHeadersBytes = kIpv4HeaderBytes + kTcpHeaderBytes;

/// Serializes ip+tcp headers into exactly kHeadersBytes network-order bytes.
/// Computes both checksums (including the TCP pseudo-header, with the TCP
/// segment length taken from ip.total_length - 4*ip.ihl).  The `checksum`
/// members of the inputs are ignored.
[[nodiscard]] std::vector<std::uint8_t> serialize_headers(const Ipv4Header& ip,
                                                          const TcpHeader& tcp);

/// Result of parsing a buffer that starts with an IPv4 header.
struct ParseResult {
  Ipv4Header ip;
  TcpHeader tcp;
  bool ip_checksum_ok = false;
  bool tcp_checksum_ok = false;
};

/// Parses IPv4+TCP headers from `bytes`.  Returns nullopt when the buffer is
/// too short, not IPv4, or not TCP.  Verifies checksums but does not reject
/// on mismatch (real monitors observe damaged packets too); callers can
/// inspect the *_checksum_ok flags.
[[nodiscard]] std::optional<ParseResult> parse_headers(
    std::span<const std::uint8_t> bytes);

/// RFC 1071 ones-complement checksum over `bytes` (odd length allowed).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes,
                                              std::uint32_t initial = 0) noexcept;

}  // namespace jaal::packet
