# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mirai_case_study "/root/repo/build/examples/mirai_case_study")
set_tests_properties(example_mirai_case_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isp_deployment "/root/repo/build/examples/isp_deployment")
set_tests_properties(example_isp_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rule_workbench "/root/repo/build/examples/rule_workbench")
set_tests_properties(example_rule_workbench PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_payload_detect "/root/repo/build/examples/payload_detect" "0.1")
set_tests_properties(example_payload_detect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_deployment "/root/repo/build/examples/full_deployment")
set_tests_properties(example_full_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tool "/root/repo/build/examples/trace_tool" "generate" "trace_tool_smoke.pcap" "2000" "port_scan")
set_tests_properties(example_trace_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
