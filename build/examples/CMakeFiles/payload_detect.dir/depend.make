# Empty dependencies file for payload_detect.
# This may be replaced when dependencies are built.
