file(REMOVE_RECURSE
  "CMakeFiles/payload_detect.dir/payload_detect.cpp.o"
  "CMakeFiles/payload_detect.dir/payload_detect.cpp.o.d"
  "payload_detect"
  "payload_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payload_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
