# Empty compiler generated dependencies file for mirai_case_study.
# This may be replaced when dependencies are built.
