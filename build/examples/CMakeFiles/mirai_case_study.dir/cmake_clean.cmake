file(REMOVE_RECURSE
  "CMakeFiles/mirai_case_study.dir/mirai_case_study.cpp.o"
  "CMakeFiles/mirai_case_study.dir/mirai_case_study.cpp.o.d"
  "mirai_case_study"
  "mirai_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirai_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
