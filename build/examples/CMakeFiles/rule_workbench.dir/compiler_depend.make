# Empty compiler generated dependencies file for rule_workbench.
# This may be replaced when dependencies are built.
