# Empty dependencies file for jaal_tests.
# This may be replaced when dependencies are built.
