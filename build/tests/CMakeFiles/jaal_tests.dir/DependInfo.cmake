
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aggregate.cpp" "tests/CMakeFiles/jaal_tests.dir/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_aggregate.cpp.o.d"
  "/root/repo/tests/test_alert_log.cpp" "tests/CMakeFiles/jaal_tests.dir/test_alert_log.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_alert_log.cpp.o.d"
  "/root/repo/tests/test_assign.cpp" "tests/CMakeFiles/jaal_tests.dir/test_assign.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_assign.cpp.o.d"
  "/root/repo/tests/test_assignment_service.cpp" "tests/CMakeFiles/jaal_tests.dir/test_assignment_service.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_assignment_service.cpp.o.d"
  "/root/repo/tests/test_attack.cpp" "tests/CMakeFiles/jaal_tests.dir/test_attack.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_attack.cpp.o.d"
  "/root/repo/tests/test_background.cpp" "tests/CMakeFiles/jaal_tests.dir/test_background.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_background.cpp.o.d"
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/jaal_tests.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_controller.cpp.o.d"
  "/root/repo/tests/test_correlator.cpp" "tests/CMakeFiles/jaal_tests.dir/test_correlator.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_correlator.cpp.o.d"
  "/root/repo/tests/test_countmin.cpp" "tests/CMakeFiles/jaal_tests.dir/test_countmin.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_countmin.cpp.o.d"
  "/root/repo/tests/test_distributed.cpp" "tests/CMakeFiles/jaal_tests.dir/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_distributed.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/jaal_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_event.cpp" "tests/CMakeFiles/jaal_tests.dir/test_event.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_event.cpp.o.d"
  "/root/repo/tests/test_flow_groups.cpp" "tests/CMakeFiles/jaal_tests.dir/test_flow_groups.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_flow_groups.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/jaal_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/jaal_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kmeans.cpp" "tests/CMakeFiles/jaal_tests.dir/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_kmeans.cpp.o.d"
  "/root/repo/tests/test_latency.cpp" "tests/CMakeFiles/jaal_tests.dir/test_latency.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_latency.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/jaal_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/jaal_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_minibatch.cpp" "tests/CMakeFiles/jaal_tests.dir/test_minibatch.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_minibatch.cpp.o.d"
  "/root/repo/tests/test_mirai.cpp" "tests/CMakeFiles/jaal_tests.dir/test_mirai.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_mirai.cpp.o.d"
  "/root/repo/tests/test_mix.cpp" "tests/CMakeFiles/jaal_tests.dir/test_mix.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_mix.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/jaal_tests.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_monitor.cpp.o.d"
  "/root/repo/tests/test_netflow.cpp" "tests/CMakeFiles/jaal_tests.dir/test_netflow.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_netflow.cpp.o.d"
  "/root/repo/tests/test_normalize.cpp" "tests/CMakeFiles/jaal_tests.dir/test_normalize.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_normalize.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/jaal_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_payload.cpp" "tests/CMakeFiles/jaal_tests.dir/test_payload.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_payload.cpp.o.d"
  "/root/repo/tests/test_pcap.cpp" "tests/CMakeFiles/jaal_tests.dir/test_pcap.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_pcap.cpp.o.d"
  "/root/repo/tests/test_postprocessor.cpp" "tests/CMakeFiles/jaal_tests.dir/test_postprocessor.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_postprocessor.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/jaal_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_proto.cpp" "tests/CMakeFiles/jaal_tests.dir/test_proto.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_proto.cpp.o.d"
  "/root/repo/tests/test_question.cpp" "tests/CMakeFiles/jaal_tests.dir/test_question.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_question.cpp.o.d"
  "/root/repo/tests/test_raw_matcher.cpp" "tests/CMakeFiles/jaal_tests.dir/test_raw_matcher.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_raw_matcher.cpp.o.d"
  "/root/repo/tests/test_replication.cpp" "tests/CMakeFiles/jaal_tests.dir/test_replication.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_replication.cpp.o.d"
  "/root/repo/tests/test_reservoir.cpp" "tests/CMakeFiles/jaal_tests.dir/test_reservoir.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_reservoir.cpp.o.d"
  "/root/repo/tests/test_rule_parser.cpp" "tests/CMakeFiles/jaal_tests.dir/test_rule_parser.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_rule_parser.cpp.o.d"
  "/root/repo/tests/test_similarity.cpp" "tests/CMakeFiles/jaal_tests.dir/test_similarity.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_similarity.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/jaal_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_summarizer.cpp" "tests/CMakeFiles/jaal_tests.dir/test_summarizer.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_summarizer.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/jaal_tests.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_summary.cpp.o.d"
  "/root/repo/tests/test_svd.cpp" "tests/CMakeFiles/jaal_tests.dir/test_svd.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_svd.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/jaal_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/jaal_tests.dir/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_summarize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
