file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_netflow.dir/bench_ablation_netflow.cpp.o"
  "CMakeFiles/bench_ablation_netflow.dir/bench_ablation_netflow.cpp.o.d"
  "bench_ablation_netflow"
  "bench_ablation_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
