# Empty dependencies file for bench_ablation_netflow.
# This may be replaced when dependencies are built.
