file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_reservoir.dir/bench_table1_reservoir.cpp.o"
  "CMakeFiles/bench_table1_reservoir.dir/bench_table1_reservoir.cpp.o.d"
  "bench_table1_reservoir"
  "bench_table1_reservoir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_reservoir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
