
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_feedback.cpp" "bench/CMakeFiles/bench_fig6_feedback.dir/bench_fig6_feedback.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_feedback.dir/bench_fig6_feedback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_payload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_summarize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
