file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_feedback.dir/bench_fig6_feedback.cpp.o"
  "CMakeFiles/bench_fig6_feedback.dir/bench_fig6_feedback.cpp.o.d"
  "bench_fig6_feedback"
  "bench_fig6_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
