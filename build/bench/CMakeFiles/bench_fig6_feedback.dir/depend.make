# Empty dependencies file for bench_fig6_feedback.
# This may be replaced when dependencies are built.
