file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_replication.dir/bench_fig7_replication.cpp.o"
  "CMakeFiles/bench_fig7_replication.dir/bench_fig7_replication.cpp.o.d"
  "bench_fig7_replication"
  "bench_fig7_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
