file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_minibatch.dir/bench_ablation_minibatch.cpp.o"
  "CMakeFiles/bench_ablation_minibatch.dir/bench_ablation_minibatch.cpp.o.d"
  "bench_ablation_minibatch"
  "bench_ablation_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
