# Empty compiler generated dependencies file for bench_ablation_minibatch.
# This may be replaced when dependencies are built.
