file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_roc_k.dir/bench_fig4_roc_k.cpp.o"
  "CMakeFiles/bench_fig4_roc_k.dir/bench_fig4_roc_k.cpp.o.d"
  "bench_fig4_roc_k"
  "bench_fig4_roc_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_roc_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
