# Empty compiler generated dependencies file for bench_fig4_roc_k.
# This may be replaced when dependencies are built.
