# Empty dependencies file for bench_monitor_throughput.
# This may be replaced when dependencies are built.
