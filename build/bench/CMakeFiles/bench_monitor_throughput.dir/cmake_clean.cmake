file(REMOVE_RECURSE
  "CMakeFiles/bench_monitor_throughput.dir/bench_monitor_throughput.cpp.o"
  "CMakeFiles/bench_monitor_throughput.dir/bench_monitor_throughput.cpp.o.d"
  "bench_monitor_throughput"
  "bench_monitor_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
