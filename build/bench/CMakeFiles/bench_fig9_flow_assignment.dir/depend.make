# Empty dependencies file for bench_fig9_flow_assignment.
# This may be replaced when dependencies are built.
