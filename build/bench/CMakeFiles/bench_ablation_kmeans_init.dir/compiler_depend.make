# Empty compiler generated dependencies file for bench_ablation_kmeans_init.
# This may be replaced when dependencies are built.
