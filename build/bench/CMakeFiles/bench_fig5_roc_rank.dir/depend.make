# Empty dependencies file for bench_fig5_roc_rank.
# This may be replaced when dependencies are built.
