# Empty compiler generated dependencies file for bench_ext_correlator.
# This may be replaced when dependencies are built.
