file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_correlator.dir/bench_ext_correlator.cpp.o"
  "CMakeFiles/bench_ext_correlator.dir/bench_ext_correlator.cpp.o.d"
  "bench_ext_correlator"
  "bench_ext_correlator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_correlator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
