# Empty compiler generated dependencies file for bench_ablation_summary_format.
# This may be replaced when dependencies are built.
