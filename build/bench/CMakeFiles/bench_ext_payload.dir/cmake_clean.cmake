file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_payload.dir/bench_ext_payload.cpp.o"
  "CMakeFiles/bench_ext_payload.dir/bench_ext_payload.cpp.o.d"
  "bench_ext_payload"
  "bench_ext_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
