# Empty compiler generated dependencies file for bench_ext_payload.
# This may be replaced when dependencies are built.
