# Empty dependencies file for bench_ablation_onestep.
# This may be replaced when dependencies are built.
