file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_onestep.dir/bench_ablation_onestep.cpp.o"
  "CMakeFiles/bench_ablation_onestep.dir/bench_ablation_onestep.cpp.o.d"
  "bench_ablation_onestep"
  "bench_ablation_onestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
