file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mirai.dir/bench_fig8_mirai.cpp.o"
  "CMakeFiles/bench_fig8_mirai.dir/bench_fig8_mirai.cpp.o.d"
  "bench_fig8_mirai"
  "bench_fig8_mirai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mirai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
