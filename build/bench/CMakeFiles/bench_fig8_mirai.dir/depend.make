# Empty dependencies file for bench_fig8_mirai.
# This may be replaced when dependencies are built.
