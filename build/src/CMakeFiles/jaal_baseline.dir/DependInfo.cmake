
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/countmin.cpp" "src/CMakeFiles/jaal_baseline.dir/baseline/countmin.cpp.o" "gcc" "src/CMakeFiles/jaal_baseline.dir/baseline/countmin.cpp.o.d"
  "/root/repo/src/baseline/netflow.cpp" "src/CMakeFiles/jaal_baseline.dir/baseline/netflow.cpp.o" "gcc" "src/CMakeFiles/jaal_baseline.dir/baseline/netflow.cpp.o.d"
  "/root/repo/src/baseline/reservoir.cpp" "src/CMakeFiles/jaal_baseline.dir/baseline/reservoir.cpp.o" "gcc" "src/CMakeFiles/jaal_baseline.dir/baseline/reservoir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
