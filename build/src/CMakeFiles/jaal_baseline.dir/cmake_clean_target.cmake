file(REMOVE_RECURSE
  "libjaal_baseline.a"
)
