# Empty dependencies file for jaal_baseline.
# This may be replaced when dependencies are built.
