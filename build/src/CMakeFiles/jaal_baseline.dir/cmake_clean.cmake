file(REMOVE_RECURSE
  "CMakeFiles/jaal_baseline.dir/baseline/countmin.cpp.o"
  "CMakeFiles/jaal_baseline.dir/baseline/countmin.cpp.o.d"
  "CMakeFiles/jaal_baseline.dir/baseline/netflow.cpp.o"
  "CMakeFiles/jaal_baseline.dir/baseline/netflow.cpp.o.d"
  "CMakeFiles/jaal_baseline.dir/baseline/reservoir.cpp.o"
  "CMakeFiles/jaal_baseline.dir/baseline/reservoir.cpp.o.d"
  "libjaal_baseline.a"
  "libjaal_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
