file(REMOVE_RECURSE
  "CMakeFiles/jaal_attack.dir/attack/generators.cpp.o"
  "CMakeFiles/jaal_attack.dir/attack/generators.cpp.o.d"
  "CMakeFiles/jaal_attack.dir/attack/mirai.cpp.o"
  "CMakeFiles/jaal_attack.dir/attack/mirai.cpp.o.d"
  "libjaal_attack.a"
  "libjaal_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
