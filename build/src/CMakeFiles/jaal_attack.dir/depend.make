# Empty dependencies file for jaal_attack.
# This may be replaced when dependencies are built.
