file(REMOVE_RECURSE
  "libjaal_attack.a"
)
