# Empty compiler generated dependencies file for jaal_linalg.
# This may be replaced when dependencies are built.
