file(REMOVE_RECURSE
  "CMakeFiles/jaal_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/jaal_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/jaal_linalg.dir/linalg/stats.cpp.o"
  "CMakeFiles/jaal_linalg.dir/linalg/stats.cpp.o.d"
  "CMakeFiles/jaal_linalg.dir/linalg/svd.cpp.o"
  "CMakeFiles/jaal_linalg.dir/linalg/svd.cpp.o.d"
  "libjaal_linalg.a"
  "libjaal_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
