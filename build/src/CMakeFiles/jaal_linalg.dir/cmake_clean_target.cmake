file(REMOVE_RECURSE
  "libjaal_linalg.a"
)
