# Empty compiler generated dependencies file for jaal_summarize.
# This may be replaced when dependencies are built.
