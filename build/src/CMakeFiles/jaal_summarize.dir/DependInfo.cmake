
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/summarize/kmeans.cpp" "src/CMakeFiles/jaal_summarize.dir/summarize/kmeans.cpp.o" "gcc" "src/CMakeFiles/jaal_summarize.dir/summarize/kmeans.cpp.o.d"
  "/root/repo/src/summarize/minibatch.cpp" "src/CMakeFiles/jaal_summarize.dir/summarize/minibatch.cpp.o" "gcc" "src/CMakeFiles/jaal_summarize.dir/summarize/minibatch.cpp.o.d"
  "/root/repo/src/summarize/normalize.cpp" "src/CMakeFiles/jaal_summarize.dir/summarize/normalize.cpp.o" "gcc" "src/CMakeFiles/jaal_summarize.dir/summarize/normalize.cpp.o.d"
  "/root/repo/src/summarize/summarizer.cpp" "src/CMakeFiles/jaal_summarize.dir/summarize/summarizer.cpp.o" "gcc" "src/CMakeFiles/jaal_summarize.dir/summarize/summarizer.cpp.o.d"
  "/root/repo/src/summarize/summary.cpp" "src/CMakeFiles/jaal_summarize.dir/summarize/summary.cpp.o" "gcc" "src/CMakeFiles/jaal_summarize.dir/summarize/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
