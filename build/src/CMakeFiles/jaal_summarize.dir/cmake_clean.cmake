file(REMOVE_RECURSE
  "CMakeFiles/jaal_summarize.dir/summarize/kmeans.cpp.o"
  "CMakeFiles/jaal_summarize.dir/summarize/kmeans.cpp.o.d"
  "CMakeFiles/jaal_summarize.dir/summarize/minibatch.cpp.o"
  "CMakeFiles/jaal_summarize.dir/summarize/minibatch.cpp.o.d"
  "CMakeFiles/jaal_summarize.dir/summarize/normalize.cpp.o"
  "CMakeFiles/jaal_summarize.dir/summarize/normalize.cpp.o.d"
  "CMakeFiles/jaal_summarize.dir/summarize/summarizer.cpp.o"
  "CMakeFiles/jaal_summarize.dir/summarize/summarizer.cpp.o.d"
  "CMakeFiles/jaal_summarize.dir/summarize/summary.cpp.o"
  "CMakeFiles/jaal_summarize.dir/summarize/summary.cpp.o.d"
  "libjaal_summarize.a"
  "libjaal_summarize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_summarize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
