file(REMOVE_RECURSE
  "libjaal_summarize.a"
)
