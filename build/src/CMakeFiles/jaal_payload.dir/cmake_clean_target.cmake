file(REMOVE_RECURSE
  "libjaal_payload.a"
)
