# Empty compiler generated dependencies file for jaal_payload.
# This may be replaced when dependencies are built.
