file(REMOVE_RECURSE
  "CMakeFiles/jaal_payload.dir/payload/term_matrix.cpp.o"
  "CMakeFiles/jaal_payload.dir/payload/term_matrix.cpp.o.d"
  "libjaal_payload.a"
  "libjaal_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
