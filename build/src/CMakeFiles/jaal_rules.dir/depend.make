# Empty dependencies file for jaal_rules.
# This may be replaced when dependencies are built.
