file(REMOVE_RECURSE
  "CMakeFiles/jaal_rules.dir/rules/question.cpp.o"
  "CMakeFiles/jaal_rules.dir/rules/question.cpp.o.d"
  "CMakeFiles/jaal_rules.dir/rules/raw_matcher.cpp.o"
  "CMakeFiles/jaal_rules.dir/rules/raw_matcher.cpp.o.d"
  "CMakeFiles/jaal_rules.dir/rules/rule.cpp.o"
  "CMakeFiles/jaal_rules.dir/rules/rule.cpp.o.d"
  "libjaal_rules.a"
  "libjaal_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
