
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/question.cpp" "src/CMakeFiles/jaal_rules.dir/rules/question.cpp.o" "gcc" "src/CMakeFiles/jaal_rules.dir/rules/question.cpp.o.d"
  "/root/repo/src/rules/raw_matcher.cpp" "src/CMakeFiles/jaal_rules.dir/rules/raw_matcher.cpp.o" "gcc" "src/CMakeFiles/jaal_rules.dir/rules/raw_matcher.cpp.o.d"
  "/root/repo/src/rules/rule.cpp" "src/CMakeFiles/jaal_rules.dir/rules/rule.cpp.o" "gcc" "src/CMakeFiles/jaal_rules.dir/rules/rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
