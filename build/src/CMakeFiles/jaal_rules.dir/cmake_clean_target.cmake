file(REMOVE_RECURSE
  "libjaal_rules.a"
)
