file(REMOVE_RECURSE
  "CMakeFiles/jaal_trace.dir/trace/background.cpp.o"
  "CMakeFiles/jaal_trace.dir/trace/background.cpp.o.d"
  "CMakeFiles/jaal_trace.dir/trace/mix.cpp.o"
  "CMakeFiles/jaal_trace.dir/trace/mix.cpp.o.d"
  "CMakeFiles/jaal_trace.dir/trace/pcap.cpp.o"
  "CMakeFiles/jaal_trace.dir/trace/pcap.cpp.o.d"
  "libjaal_trace.a"
  "libjaal_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
