file(REMOVE_RECURSE
  "libjaal_trace.a"
)
