
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/background.cpp" "src/CMakeFiles/jaal_trace.dir/trace/background.cpp.o" "gcc" "src/CMakeFiles/jaal_trace.dir/trace/background.cpp.o.d"
  "/root/repo/src/trace/mix.cpp" "src/CMakeFiles/jaal_trace.dir/trace/mix.cpp.o" "gcc" "src/CMakeFiles/jaal_trace.dir/trace/mix.cpp.o.d"
  "/root/repo/src/trace/pcap.cpp" "src/CMakeFiles/jaal_trace.dir/trace/pcap.cpp.o" "gcc" "src/CMakeFiles/jaal_trace.dir/trace/pcap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
