# Empty dependencies file for jaal_trace.
# This may be replaced when dependencies are built.
