file(REMOVE_RECURSE
  "libjaal_proto.a"
)
