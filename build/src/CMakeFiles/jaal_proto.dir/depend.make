# Empty dependencies file for jaal_proto.
# This may be replaced when dependencies are built.
