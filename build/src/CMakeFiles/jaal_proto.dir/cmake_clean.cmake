file(REMOVE_RECURSE
  "CMakeFiles/jaal_proto.dir/proto/messages.cpp.o"
  "CMakeFiles/jaal_proto.dir/proto/messages.cpp.o.d"
  "libjaal_proto.a"
  "libjaal_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
