
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/fields.cpp" "src/CMakeFiles/jaal_packet.dir/packet/fields.cpp.o" "gcc" "src/CMakeFiles/jaal_packet.dir/packet/fields.cpp.o.d"
  "/root/repo/src/packet/wire.cpp" "src/CMakeFiles/jaal_packet.dir/packet/wire.cpp.o" "gcc" "src/CMakeFiles/jaal_packet.dir/packet/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
