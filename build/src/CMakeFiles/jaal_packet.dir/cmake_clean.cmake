file(REMOVE_RECURSE
  "CMakeFiles/jaal_packet.dir/packet/fields.cpp.o"
  "CMakeFiles/jaal_packet.dir/packet/fields.cpp.o.d"
  "CMakeFiles/jaal_packet.dir/packet/wire.cpp.o"
  "CMakeFiles/jaal_packet.dir/packet/wire.cpp.o.d"
  "libjaal_packet.a"
  "libjaal_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
