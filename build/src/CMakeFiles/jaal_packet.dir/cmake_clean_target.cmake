file(REMOVE_RECURSE
  "libjaal_packet.a"
)
