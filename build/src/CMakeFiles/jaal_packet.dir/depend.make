# Empty dependencies file for jaal_packet.
# This may be replaced when dependencies are built.
