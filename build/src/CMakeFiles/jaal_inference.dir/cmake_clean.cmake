file(REMOVE_RECURSE
  "CMakeFiles/jaal_inference.dir/inference/aggregate.cpp.o"
  "CMakeFiles/jaal_inference.dir/inference/aggregate.cpp.o.d"
  "CMakeFiles/jaal_inference.dir/inference/correlator.cpp.o"
  "CMakeFiles/jaal_inference.dir/inference/correlator.cpp.o.d"
  "CMakeFiles/jaal_inference.dir/inference/engine.cpp.o"
  "CMakeFiles/jaal_inference.dir/inference/engine.cpp.o.d"
  "CMakeFiles/jaal_inference.dir/inference/postprocessor.cpp.o"
  "CMakeFiles/jaal_inference.dir/inference/postprocessor.cpp.o.d"
  "CMakeFiles/jaal_inference.dir/inference/similarity.cpp.o"
  "CMakeFiles/jaal_inference.dir/inference/similarity.cpp.o.d"
  "libjaal_inference.a"
  "libjaal_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
