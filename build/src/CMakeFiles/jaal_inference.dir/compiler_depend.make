# Empty compiler generated dependencies file for jaal_inference.
# This may be replaced when dependencies are built.
