
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inference/aggregate.cpp" "src/CMakeFiles/jaal_inference.dir/inference/aggregate.cpp.o" "gcc" "src/CMakeFiles/jaal_inference.dir/inference/aggregate.cpp.o.d"
  "/root/repo/src/inference/correlator.cpp" "src/CMakeFiles/jaal_inference.dir/inference/correlator.cpp.o" "gcc" "src/CMakeFiles/jaal_inference.dir/inference/correlator.cpp.o.d"
  "/root/repo/src/inference/engine.cpp" "src/CMakeFiles/jaal_inference.dir/inference/engine.cpp.o" "gcc" "src/CMakeFiles/jaal_inference.dir/inference/engine.cpp.o.d"
  "/root/repo/src/inference/postprocessor.cpp" "src/CMakeFiles/jaal_inference.dir/inference/postprocessor.cpp.o" "gcc" "src/CMakeFiles/jaal_inference.dir/inference/postprocessor.cpp.o.d"
  "/root/repo/src/inference/similarity.cpp" "src/CMakeFiles/jaal_inference.dir/inference/similarity.cpp.o" "gcc" "src/CMakeFiles/jaal_inference.dir/inference/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jaal_summarize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jaal_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
