file(REMOVE_RECURSE
  "libjaal_inference.a"
)
