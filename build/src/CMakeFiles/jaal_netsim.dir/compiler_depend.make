# Empty compiler generated dependencies file for jaal_netsim.
# This may be replaced when dependencies are built.
