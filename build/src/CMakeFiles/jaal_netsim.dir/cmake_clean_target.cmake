file(REMOVE_RECURSE
  "libjaal_netsim.a"
)
