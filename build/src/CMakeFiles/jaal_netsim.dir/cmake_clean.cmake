file(REMOVE_RECURSE
  "CMakeFiles/jaal_netsim.dir/netsim/event.cpp.o"
  "CMakeFiles/jaal_netsim.dir/netsim/event.cpp.o.d"
  "CMakeFiles/jaal_netsim.dir/netsim/latency.cpp.o"
  "CMakeFiles/jaal_netsim.dir/netsim/latency.cpp.o.d"
  "CMakeFiles/jaal_netsim.dir/netsim/replication.cpp.o"
  "CMakeFiles/jaal_netsim.dir/netsim/replication.cpp.o.d"
  "CMakeFiles/jaal_netsim.dir/netsim/topology.cpp.o"
  "CMakeFiles/jaal_netsim.dir/netsim/topology.cpp.o.d"
  "libjaal_netsim.a"
  "libjaal_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
