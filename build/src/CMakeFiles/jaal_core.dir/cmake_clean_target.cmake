file(REMOVE_RECURSE
  "libjaal_core.a"
)
