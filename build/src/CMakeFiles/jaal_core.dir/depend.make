# Empty dependencies file for jaal_core.
# This may be replaced when dependencies are built.
