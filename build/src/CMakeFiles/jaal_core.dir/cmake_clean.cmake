file(REMOVE_RECURSE
  "CMakeFiles/jaal_core.dir/core/alert_log.cpp.o"
  "CMakeFiles/jaal_core.dir/core/alert_log.cpp.o.d"
  "CMakeFiles/jaal_core.dir/core/assignment_service.cpp.o"
  "CMakeFiles/jaal_core.dir/core/assignment_service.cpp.o.d"
  "CMakeFiles/jaal_core.dir/core/controller.cpp.o"
  "CMakeFiles/jaal_core.dir/core/controller.cpp.o.d"
  "CMakeFiles/jaal_core.dir/core/experiment.cpp.o"
  "CMakeFiles/jaal_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/jaal_core.dir/core/metrics.cpp.o"
  "CMakeFiles/jaal_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/jaal_core.dir/core/monitor.cpp.o"
  "CMakeFiles/jaal_core.dir/core/monitor.cpp.o.d"
  "libjaal_core.a"
  "libjaal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
