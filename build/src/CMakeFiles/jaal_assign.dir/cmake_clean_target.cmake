file(REMOVE_RECURSE
  "libjaal_assign.a"
)
