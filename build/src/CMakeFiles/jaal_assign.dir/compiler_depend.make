# Empty compiler generated dependencies file for jaal_assign.
# This may be replaced when dependencies are built.
