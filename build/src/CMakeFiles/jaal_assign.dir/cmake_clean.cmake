file(REMOVE_RECURSE
  "CMakeFiles/jaal_assign.dir/assign/assigner.cpp.o"
  "CMakeFiles/jaal_assign.dir/assign/assigner.cpp.o.d"
  "CMakeFiles/jaal_assign.dir/assign/flow_groups.cpp.o"
  "CMakeFiles/jaal_assign.dir/assign/flow_groups.cpp.o.d"
  "libjaal_assign.a"
  "libjaal_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaal_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
