// The determinism contract of linalg/simd.hpp: every kernel, at every
// dispatch level this host can run, produces bit-identical output to the
// scalar path — and therefore the whole seeded summarization pipeline is
// byte-identical with the kernels on or off, and across thread counts.
#include "linalg/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>

#include "linalg/soa.hpp"
#include "linalg/svd.hpp"
#include "runtime/thread_pool.hpp"
#include "summarize/kmeans.hpp"
#include "summarize/minibatch.hpp"
#include "summarize/summarizer.hpp"
#include "summarize/summary.hpp"
#include "trace/background.hpp"

namespace jaal::linalg::simd {
namespace {

/// All levels this host can actually run (always includes scalar).
std::vector<Level> available_levels() {
  std::vector<Level> levels = {Level::kScalar};
  if (detected() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  if (detected() >= Level::kAvx512) levels.push_back(Level::kAvx512);
  return levels;
}

/// RAII pin of the dispatch level so a failing assertion cannot leak a
/// forced level into other tests.
struct ForcedLevel {
  explicit ForcedLevel(Level level) : prev(active()) { force_level(level); }
  ~ForcedLevel() { force_level(prev); }
  Level prev;
};

/// Odd lengths on purpose: every kernel has a vector body + scalar tail,
/// and the tail path is where determinism bugs hide.
constexpr std::size_t kSizes[] = {1, 3, 4, 7, 8, 15, 16, 17, 31, 64, 101};

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(SimdKernels, LevelPlumbing) {
  EXPECT_GE(detected(), Level::kScalar);
  {
    ForcedLevel pin(Level::kScalar);
    EXPECT_EQ(active(), Level::kScalar);
    EXPECT_EQ(level_name(active()), "scalar");
  }
  // force_level clamps to what the host supports.
  const Level clamped = force_level(Level::kAvx512);
  EXPECT_LE(clamped, detected());
  force_level(detected());
  EXPECT_EQ(active(), detected());
}

TEST(SimdKernels, DotBitIdenticalAcrossLevels) {
  for (const std::size_t n : kSizes) {
    const auto a = random_vec(n, 11 + n);
    const auto b = random_vec(n, 23 + n);
    ForcedLevel pin(Level::kScalar);
    const double want = dot(a.data(), b.data(), n);
    for (const Level level : available_levels()) {
      force_level(level);
      EXPECT_TRUE(bit_equal(want, dot(a.data(), b.data(), n)))
          << "n=" << n << " level=" << level_name(level);
    }
  }
}

TEST(SimdKernels, PairDotsBitIdenticalAcrossLevels) {
  for (const std::size_t n : kSizes) {
    const auto a = random_vec(n, 31 + n);
    const auto b = random_vec(n, 47 + n);
    ForcedLevel pin(Level::kScalar);
    const PairDots want = pair_dots(a.data(), b.data(), n);
    for (const Level level : available_levels()) {
      force_level(level);
      const PairDots got = pair_dots(a.data(), b.data(), n);
      EXPECT_TRUE(bit_equal(want.alpha, got.alpha)) << "n=" << n;
      EXPECT_TRUE(bit_equal(want.beta, got.beta)) << "n=" << n;
      EXPECT_TRUE(bit_equal(want.gamma, got.gamma)) << "n=" << n;
    }
  }
}

TEST(SimdKernels, PairDotsMatchesSeparateDots) {
  const std::size_t n = 33;
  const auto a = random_vec(n, 3);
  const auto b = random_vec(n, 5);
  const PairDots d = pair_dots(a.data(), b.data(), n);
  EXPECT_TRUE(bit_equal(d.alpha, dot(a.data(), a.data(), n)));
  EXPECT_TRUE(bit_equal(d.beta, dot(b.data(), b.data(), n)));
  EXPECT_TRUE(bit_equal(d.gamma, dot(a.data(), b.data(), n)));
}

TEST(SimdKernels, RotatePairBitIdenticalAcrossLevels) {
  const double cs = 0.8, sn = 0.6;
  for (const std::size_t n : kSizes) {
    const auto a0 = random_vec(n, 7 + n);
    const auto b0 = random_vec(n, 13 + n);
    ForcedLevel pin(Level::kScalar);
    auto a_want = a0;
    auto b_want = b0;
    rotate_pair(a_want.data(), b_want.data(), n, cs, sn);
    for (const Level level : available_levels()) {
      force_level(level);
      auto a = a0;
      auto b = b0;
      rotate_pair(a.data(), b.data(), n, cs, sn);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(bit_equal(a_want[i], a[i])) << "n=" << n << " i=" << i;
        EXPECT_TRUE(bit_equal(b_want[i], b[i])) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernels, NearestCentroidsBitIdenticalAcrossLevels) {
  const std::size_t d = 18;
  for (const std::size_t n : kSizes) {
    for (const std::size_t k : {1ul, 3ul, 17ul}) {
      Matrix rows(n, d);
      std::mt19937_64 rng(n * 100 + k);
      std::uniform_real_distribution<double> unit(0.0, 1.0);
      for (double& v : rows.data()) v = unit(rng);
      const SoaMatrix x = SoaMatrix::from_rows(rows);
      Matrix centroids(k, d);
      for (double& v : centroids.data()) v = unit(rng);

      ForcedLevel pin(Level::kScalar);
      std::vector<std::size_t> assign_want(n);
      std::vector<double> dist_want(n);
      nearest_centroids(x.data(), x.stride(), d, centroids.data().data(), k,
                        0, n, assign_want.data(), dist_want.data());
      for (const Level level : available_levels()) {
        force_level(level);
        std::vector<std::size_t> assign(n);
        std::vector<double> dist(n);
        nearest_centroids(x.data(), x.stride(), d, centroids.data().data(), k,
                          0, n, assign.data(), dist.data());
        EXPECT_EQ(assign_want, assign)
            << "n=" << n << " k=" << k << " level=" << level_name(level);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_TRUE(bit_equal(dist_want[i], dist[i])) << "i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernels, NearestCentroidsFirstIndexWinsTies) {
  // Two identical centroids: the scalar scan picks the first; every level
  // must agree.
  const std::size_t d = 4, n = 9, k = 3;
  Matrix rows(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) rows(i, j) = 0.5;
  }
  const SoaMatrix x = SoaMatrix::from_rows(rows);
  Matrix centroids(k, d);  // all zero -> all ties
  for (const Level level : available_levels()) {
    ForcedLevel pin(level);
    std::vector<std::size_t> assign(n, 99);
    std::vector<double> dist(n);
    nearest_centroids(x.data(), x.stride(), d, centroids.data().data(), k, 0,
                      n, assign.data(), dist.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(assign[i], 0u) << "level=" << level_name(level);
    }
  }
}

TEST(SimdKernels, NearestPointBitIdenticalAcrossLevels) {
  const std::size_t d = 18;
  for (const std::size_t k : kSizes) {
    Matrix centroids(k, d);
    std::mt19937_64 rng(k * 7 + 1);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (double& v : centroids.data()) v = unit(rng);
    const SoaMatrix dims = SoaMatrix::from_rows(centroids);
    const auto v = random_vec(d, k + 5);

    ForcedLevel pin(Level::kScalar);
    const Nearest want = nearest_point(dims.data(), dims.stride(), d, k,
                                       v.data());
    for (const Level level : available_levels()) {
      force_level(level);
      const Nearest got = nearest_point(dims.data(), dims.stride(), d, k,
                                        v.data());
      EXPECT_EQ(want.index, got.index)
          << "k=" << k << " level=" << level_name(level);
      EXPECT_TRUE(bit_equal(want.dist, got.dist)) << "k=" << k;
    }
  }
}

TEST(SimdKernels, TruncatedSvdIdenticalAcrossLevels) {
  Matrix a(37, 9);
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (double& v : a.data()) v = unit(rng);

  ForcedLevel pin(Level::kScalar);
  const SvdResult want = truncated_svd(a, 6);
  for (const Level level : available_levels()) {
    force_level(level);
    const SvdResult got = truncated_svd(a, 6);
    ASSERT_EQ(want.sigma.size(), got.sigma.size());
    for (std::size_t i = 0; i < want.sigma.size(); ++i) {
      EXPECT_TRUE(bit_equal(want.sigma[i], got.sigma[i])) << "i=" << i;
    }
    for (std::size_t i = 0; i < want.u.data().size(); ++i) {
      ASSERT_TRUE(bit_equal(want.u.data()[i], got.u.data()[i])) << "i=" << i;
    }
    for (std::size_t i = 0; i < want.v.data().size(); ++i) {
      ASSERT_TRUE(bit_equal(want.v.data()[i], got.v.data()[i])) << "i=" << i;
    }
  }
}

TEST(SimdKernels, KMeansIdenticalAcrossLevels) {
  Matrix x(200, 18);
  std::mt19937_64 fill_rng(17);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (double& v : x.data()) v = unit(fill_rng);

  ForcedLevel pin(Level::kScalar);
  std::mt19937_64 rng_scalar(5);
  const summarize::KMeansResult want = summarize::kmeans(x, 20, rng_scalar);
  for (const Level level : available_levels()) {
    force_level(level);
    std::mt19937_64 rng(5);
    const summarize::KMeansResult got = summarize::kmeans(x, 20, rng);
    EXPECT_EQ(want.assignment, got.assignment) << level_name(level);
    EXPECT_EQ(want.counts, got.counts);
    EXPECT_TRUE(bit_equal(want.inertia, got.inertia));
    for (std::size_t i = 0; i < want.centroids.data().size(); ++i) {
      ASSERT_TRUE(
          bit_equal(want.centroids.data()[i], got.centroids.data()[i]));
    }
  }
}

/// The end-to-end guarantee the kernels were designed around: a seeded
/// Summarizer's serialized output is byte-identical with SIMD on or off,
/// and across thread counts.
TEST(SimdKernels, SummarizerByteIdenticalAcrossLevelsAndThreads) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 9);
  const auto packets = trace::take(gen, 900);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 900;
  cfg.min_batch = 450;
  cfg.rank = 12;
  cfg.centroids = 64;

  ForcedLevel pin(Level::kScalar);
  summarize::Summarizer reference(cfg);
  const auto ref = reference.summarize(packets);
  const auto ref_bytes = summarize::serialize(ref.summary);

  for (const Level level : available_levels()) {
    force_level(level);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      auto pool = std::make_shared<runtime::ThreadPool>(threads);
      summarize::Summarizer s(cfg);
      s.set_pool(pool);
      const auto out = s.summarize(packets);
      EXPECT_EQ(out.assignment, ref.assignment)
          << "level=" << level_name(level) << " threads=" << threads;
      EXPECT_EQ(summarize::serialize(out.summary), ref_bytes)
          << "level=" << level_name(level) << " threads=" << threads;
    }
  }
}

TEST(SimdKernels, MiniBatchNearestMatchesScalarScan) {
  const std::size_t d = 18, k = 33;
  summarize::MiniBatchClusterer reference(k, d, 77);
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> stream(k + 200,
                                          std::vector<double>(d, 0.0));
  for (auto& v : stream) {
    for (double& x : v) x = unit(rng);
  }
  {
    ForcedLevel pin(Level::kScalar);
    for (const auto& v : stream) reference.add(v);
  }
  for (const Level level : available_levels()) {
    ForcedLevel pin(level);
    summarize::MiniBatchClusterer mb(k, d, 77);
    for (const auto& v : stream) mb.add(v);
    EXPECT_EQ(reference.counts(), mb.counts()) << level_name(level);
    for (std::size_t i = 0; i < reference.centroids().data().size(); ++i) {
      ASSERT_TRUE(bit_equal(reference.centroids().data()[i],
                            mb.centroids().data()[i]))
          << "level=" << level_name(level) << " i=" << i;
    }
  }
}

TEST(SimdKernels, AssignToCentroidsValidatesShapes) {
  const SoaMatrix x(10, 4);
  Matrix centroids(3, 5);  // wrong d
  std::vector<std::size_t> assign(10);
  std::vector<double> dist(10);
  EXPECT_THROW(
      summarize::assign_to_centroids(x, centroids, assign, dist, nullptr),
      std::invalid_argument);
  Matrix ok_centroids(3, 4);
  std::vector<std::size_t> short_assign(9);
  EXPECT_THROW(summarize::assign_to_centroids(x, ok_centroids, short_assign,
                                              dist, nullptr),
               std::invalid_argument);
}

TEST(SoaMatrix, RoundTripsAndPads) {
  Matrix m(5, 3);
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (double& v : m.data()) v = unit(rng);
  const SoaMatrix soa = SoaMatrix::from_rows(m);
  EXPECT_EQ(soa.rows(), 5u);
  EXPECT_EQ(soa.cols(), 3u);
  EXPECT_EQ(soa.stride(), 8u);  // padded to a multiple of 8
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(soa(r, c), m(r, c));
  }
  // Padding rows are zero (kernels may load them).
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t r = 5; r < 8; ++r) EXPECT_EQ(soa.col(c)[r], 0.0);
  }
  const Matrix back = soa.to_rows();
  EXPECT_TRUE(
      std::equal(back.data().begin(), back.data().end(), m.data().begin()));
}

}  // namespace
}  // namespace jaal::linalg::simd
