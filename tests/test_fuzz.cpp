// Robustness tests: every parser/decoder must reject arbitrary input with
// an exception (or a clean nullopt/skip), never crash, hang, or read out of
// bounds.  Deterministic pseudo-random fuzzing — cheap, repeatable, and run
// on every ctest invocation.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "packet/wire.hpp"
#include "proto/messages.hpp"
#include "rules/rule.hpp"
#include "summarize/summary.hpp"
#include "trace/background.hpp"
#include "trace/pcap.hpp"

namespace jaal {
namespace {

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Fuzz, WireParserNeverCrashes) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, rng() % 80);
    // parse_headers returns nullopt or a result; must never throw/crash.
    (void)packet::parse_headers(bytes);
  }
}

TEST(Fuzz, WireParserOnMutatedValidPacket) {
  packet::PacketRecord pkt;
  pkt.ip.src_ip = packet::make_ip(1, 2, 3, 4);
  pkt.ip.dst_ip = packet::make_ip(5, 6, 7, 8);
  pkt.tcp.set(packet::TcpFlag::kSyn);
  const auto valid = packet::serialize_headers(pkt.ip, pkt.tcp);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    const std::size_t flips = 1 + rng() % 6;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    (void)packet::parse_headers(mutated);
  }
}

TEST(Fuzz, SummaryDeserializerThrowsCleanly) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto bytes = random_bytes(rng, rng() % 200);
    try {
      (void)summarize::deserialize(bytes);
    } catch (const std::runtime_error&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, SummaryDeserializerOnMutatedValidBuffer) {
  summarize::CombinedSummary s;
  s.monitor = 1;
  s.centroids = linalg::Matrix(4, 6);
  s.counts = {1, 2, 3, 4};
  const auto valid = summarize::serialize(summarize::MonitorSummary{s});
  std::mt19937_64 rng(4);
  for (int i = 0; i < 1000; ++i) {
    auto mutated = valid;
    mutated[rng() % mutated.size()] ^= static_cast<std::uint8_t>(rng() | 1);
    if (rng() % 4 == 0) mutated.resize(rng() % (mutated.size() + 1));
    try {
      (void)summarize::deserialize(mutated);
    } catch (const std::exception&) {
      // clean rejection is fine; crashing is not
    }
  }
}

TEST(Fuzz, ProtoDecoderThrowsCleanly) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto bytes = random_bytes(rng, rng() % 150);
    try {
      (void)proto::decode(bytes);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, FrameReaderSurvivesGarbageAfterValidFrames) {
  std::mt19937_64 rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    proto::FrameReader reader;
    reader.feed(proto::encode(proto::Message{proto::LoadUpdate{1, 1.0, 1}}));
    EXPECT_TRUE(reader.next().has_value());
    reader.feed(random_bytes(rng, 20));
    try {
      while (reader.next().has_value()) {
      }
    } catch (const std::runtime_error&) {
      // a reset-worthy stream error is the correct outcome for garbage
    }
  }
}

TEST(Fuzz, RuleParserThrowsNotCrashes) {
  std::mt19937_64 rng(7);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 ()[]:;!,.->\"$/";
  rules::RuleVars vars;
  vars.home_net = rules::AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  for (int i = 0; i < 2000; ++i) {
    std::string line;
    const std::size_t len = rng() % 120;
    for (std::size_t c = 0; c < len; ++c) {
      line.push_back(alphabet[rng() % alphabet.size()]);
    }
    try {
      (void)rules::parse_rule(line, vars);
    } catch (const std::exception&) {
      // invalid_argument / out_of_range from stoul etc. — all acceptable
    }
  }
}

TEST(Fuzz, RuleParserOnMutatedValidRules) {
  rules::RuleVars vars;
  vars.home_net = rules::AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  const std::string valid =
      "alert tcp $EXTERNAL_NET any -> $HOME_NET [22,80,8000:8080] "
      "(msg:\"x\"; flags:S; detection_filter: track by_src, count 5, "
      "seconds 60; jaal_variance: tcp.dst_port, 0.004; sid:19559; rev:5;)";
  std::mt19937_64 rng(8);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const std::size_t edits = 1 + rng() % 4;
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng() % mutated.size();
      switch (rng() % 3) {
        case 0: mutated[pos] = static_cast<char>(' ' + rng() % 94); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(' ' + rng() % 94));
      }
      if (mutated.empty()) mutated = "x";
    }
    try {
      (void)rules::parse_rule(mutated, vars);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, PcapReaderThrowsCleanly) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 300; ++i) {
    const auto bytes = random_bytes(rng, rng() % 400);
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    try {
      (void)trace::read_pcap(stream);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, PcapReaderOnTruncatedValidFile) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 10);
  const auto packets = trace::take(gen, 20);
  std::stringstream buffer;
  trace::write_pcap(buffer, packets);
  const std::string full = buffer.str();
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    std::stringstream truncated(full.substr(0, cut));
    try {
      (void)trace::read_pcap(truncated);
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace jaal
