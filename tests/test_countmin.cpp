#include "baseline/countmin.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace jaal::baseline {
namespace {

TEST(CountMin, ValidatesGeometry) {
  EXPECT_THROW(CountMinSketch(0, 4), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(100, 0), std::invalid_argument);
}

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch sketch(64, 4);
  std::mt19937_64 rng(1);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truth;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const std::uint64_t count = 1 + rng() % 10;
    sketch.add(key, count);
    truth.emplace_back(key, count);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.estimate(key), count);
  }
}

TEST(CountMin, ExactWhenSparse) {
  CountMinSketch sketch(4096, 5);
  for (std::uint64_t key = 0; key < 20; ++key) sketch.add(key, key + 1);
  for (std::uint64_t key = 0; key < 20; ++key) {
    EXPECT_EQ(sketch.estimate(key), key + 1);
  }
}

TEST(CountMin, ErrorBounded) {
  // Standard guarantee: estimate <= true + (e/width) * total with prob
  // 1 - e^-depth; check a generous 4x relaxation deterministically.
  const std::size_t width = 256;
  CountMinSketch sketch(width, 5);
  std::mt19937_64 rng(2);
  const std::uint64_t total = 50000;
  for (std::uint64_t i = 0; i < total; ++i) sketch.add(rng() % 5000);
  const double bound = 4.0 * 2.718 / width * total;
  std::mt19937_64 rng2(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t key = rng2() % 5000;
    EXPECT_LT(sketch.estimate(key), total / 5000 * 3 + bound);
  }
  EXPECT_EQ(sketch.total(), total);
}

TEST(CountMin, UnseenKeysUsuallyZeroWhenSparse) {
  CountMinSketch sketch(4096, 5);
  for (std::uint64_t key = 0; key < 10; ++key) sketch.add(key);
  std::size_t zero = 0;
  for (std::uint64_t key = 1000; key < 1100; ++key) {
    if (sketch.estimate(key) == 0) ++zero;
  }
  EXPECT_GT(zero, 95u);
}

TEST(CountMin, MergeAddsCounts) {
  CountMinSketch a(128, 4), b(128, 4);
  a.add(std::uint64_t{7}, 10);
  b.add(std::uint64_t{7}, 5);
  b.add(std::uint64_t{9}, 3);
  a.merge(b);
  EXPECT_GE(a.estimate(std::uint64_t{7}), 15u);
  EXPECT_GE(a.estimate(std::uint64_t{9}), 3u);
  EXPECT_EQ(a.total(), 18u);
}

TEST(CountMin, MergeRejectsMismatchedGeometry) {
  CountMinSketch a(128, 4), b(64, 4), c(128, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(CountMin, MemoryFootprint) {
  CountMinSketch sketch(1024, 4);
  EXPECT_EQ(sketch.memory_bytes(), 1024u * 4u * 8u);
}

TEST(CountMin, ByteKeyAndIntKeyConsistent) {
  CountMinSketch sketch(256, 4);
  sketch.add(std::uint64_t{0xDEADBEEF}, 7);
  const std::array<std::uint8_t, 8> bytes = {0xEF, 0xBE, 0xAD, 0xDE,
                                             0, 0, 0, 0};
  EXPECT_GE(sketch.estimate(std::span<const std::uint8_t>(bytes)), 7u);
}

TEST(CountMin, CombinatorialCostIsProhibitive) {
  // §2's argument: one sketch per header-field combination means 2^18
  // sketches per monitor per epoch.  Even at a modest 500 KB each that is
  // ~128 GB -- the motivating arithmetic for summaries.
  const double sketch_bytes = 500.0 * 1024.0;
  const double total = sketch_bytes * static_cast<double>(1 << 18);
  EXPECT_GT(total, 100.0 * (1ULL << 30));  // > 100 GB
}

}  // namespace
}  // namespace jaal::baseline
