#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace jaal::runtime {
namespace {

TEST(Channel, RejectsZeroCapacity) {
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

TEST(Channel, FifoWithinCapacity) {
  Channel<int> ch(4);
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  EXPECT_TRUE(ch.push(3));
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), 3);
  EXPECT_EQ(ch.try_pop(), std::nullopt);
}

TEST(Channel, TryPushRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));  // full: backpressure
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_TRUE(ch.try_push(3));
}

TEST(Channel, CloseDrainsBufferedItemsThenSignalsEndOfStream) {
  Channel<int> ch(4);
  ch.push(7);
  ch.push(8);
  ch.close();
  EXPECT_FALSE(ch.push(9));  // push after close fails
  EXPECT_EQ(ch.pop(), 7);
  EXPECT_EQ(ch.pop(), 8);
  EXPECT_EQ(ch.pop(), std::nullopt);
  EXPECT_EQ(ch.pop(), std::nullopt);  // stays closed
}

TEST(Channel, CloseWakesBlockedProducer) {
  Channel<int> ch(1);
  ch.push(1);  // fill it
  std::thread producer([&] {
    // Blocks on the full channel until close(), then fails.
    EXPECT_FALSE(ch.push(2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  producer.join();
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), std::nullopt);
}

TEST(Channel, CloseWakesBlockedConsumer) {
  Channel<int> ch(1);
  std::thread consumer([&] {
    // Blocks on the empty channel until close(), then sees end-of-stream.
    EXPECT_EQ(ch.pop(), std::nullopt);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  consumer.join();
}

TEST(Channel, StressManyProducersManyConsumersNoLossNoDuplication) {
  // 4 producers x 2000 items through a 8-slot channel into 4 consumers:
  // every pushed value must come out exactly once, with per-producer FIFO
  // order preserved.
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kConsumers = 4;
  constexpr std::uint32_t kPerProducer = 2000;
  Channel<std::uint32_t> ch(8);

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.push((p << 16) | i));
      }
    });
  }

  std::mutex mu;
  std::vector<std::uint32_t> received;
  std::vector<std::thread> consumers;
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::uint32_t> local;
      while (auto item = ch.pop()) local.push_back(*item);
      std::lock_guard lock(mu);
      received.insert(received.end(), local.begin(), local.end());
    });
  }

  for (auto& t : producers) t.join();
  ch.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  std::sort(received.begin(), received.end());
  EXPECT_EQ(std::adjacent_find(received.begin(), received.end()),
            received.end())
      << "duplicated item";
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    for (std::uint32_t i = 0; i < kPerProducer; ++i) {
      ASSERT_TRUE(std::binary_search(received.begin(), received.end(),
                                     (p << 16) | i))
          << "lost item " << p << "/" << i;
    }
  }
}

}  // namespace
}  // namespace jaal::runtime
