// Parameterized property tests: invariants that must hold across sweeps of
// configuration space (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <random>

#include "attack/generators.hpp"
#include "core/experiment.hpp"
#include "linalg/svd.hpp"
#include "netsim/topology.hpp"
#include "summarize/summarizer.hpp"
#include "trace/mix.hpp"

namespace jaal {
namespace {

// --- SVD reconstruction error decreases with rank, across shapes ----------

struct SvdShape {
  std::size_t rows;
  std::size_t cols;
  std::uint64_t seed;
};

class SvdProperty : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdProperty, ReconstructionErrorMatchesTailEnergy) {
  const SvdShape shape = GetParam();
  std::mt19937_64 rng(shape.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  linalg::Matrix x(shape.rows, shape.cols);
  for (double& v : x.data()) v = unit(rng);

  const auto full = linalg::svd(x);
  const std::size_t m = std::min(shape.rows, shape.cols);
  for (std::size_t r = 1; r <= m; r += std::max<std::size_t>(1, m / 4)) {
    double tail = 0.0;
    for (std::size_t i = r; i < m; ++i) tail += full.sigma[i] * full.sigma[i];
    const double err = (x - full.reconstruct_rank(r)).frobenius_norm();
    EXPECT_NEAR(err * err, tail, 1e-6 * std::max(1.0, tail))
        << shape.rows << "x" << shape.cols << " rank " << r;
  }
}

TEST_P(SvdProperty, FactorsReproduceWithinTolerance) {
  const SvdShape shape = GetParam();
  std::mt19937_64 rng(shape.seed ^ 0xABCD);
  std::normal_distribution<double> gauss(0.0, 1.0);
  linalg::Matrix x(shape.rows, shape.cols);
  for (double& v : x.data()) v = gauss(rng);
  const auto r = linalg::svd(x);
  EXPECT_LT(x.max_abs_diff(r.reconstruct()), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(SvdShape{10, 10, 1}, SvdShape{50, 18, 2},
                      SvdShape{18, 50, 3}, SvdShape{200, 18, 4},
                      SvdShape{5, 3, 5}, SvdShape{3, 5, 6},
                      SvdShape{100, 2, 7}, SvdShape{2, 100, 8}));

// --- Summarizer invariants across (n, r, k) -------------------------------

struct SummarizerParams {
  std::size_t n;
  std::size_t r;
  std::size_t k;
};

class SummarizerProperty : public ::testing::TestWithParam<SummarizerParams> {
};

TEST_P(SummarizerProperty, CountsAndCostsConsistent) {
  const auto [n, r, k] = GetParam();
  summarize::SummarizerConfig cfg;
  cfg.batch_size = n;
  cfg.min_batch = n / 2;
  cfg.rank = r;
  cfg.centroids = k;
  summarize::Summarizer summarizer(cfg);

  trace::BackgroundTraffic gen(trace::trace1_profile(), n * 31 + r * 7 + k);
  const auto batch = trace::take(gen, n);
  const auto out = summarizer.summarize(batch);

  // Counts sum to n.
  std::uint64_t total = 0;
  if (const auto* split =
          std::get_if<summarize::SplitSummary>(&out.summary)) {
    for (auto c : split->counts) total += c;
  } else {
    for (auto c : std::get<summarize::CombinedSummary>(out.summary).counts) {
      total += c;
    }
  }
  EXPECT_EQ(total, n);

  // The auto format choice is the cheaper of the two cost formulas.
  const std::size_t actual = summarize::element_count(out.summary);
  EXPECT_EQ(actual,
            std::min(summarizer.combined_cost(), summarizer.split_cost()));

  // Every packet maps to a valid centroid.
  EXPECT_EQ(out.assignment.size(), n);
  const std::size_t k_eff = std::min(k, n);
  for (std::size_t a : out.assignment) EXPECT_LT(a, k_eff);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SummarizerProperty,
    ::testing::Values(SummarizerParams{400, 6, 40},
                      SummarizerParams{400, 12, 80},
                      SummarizerParams{700, 12, 140},
                      SummarizerParams{700, 15, 70},
                      SummarizerParams{500, 17, 100},
                      SummarizerParams{300, 18, 60},
                      SummarizerParams{256, 10, 256}));

// --- Mix quota holds for any fraction -------------------------------------

class MixProperty : public ::testing::TestWithParam<double> {};

TEST_P(MixProperty, AttackFractionNeverExceedsQuota) {
  const double fraction = GetParam();
  trace::BackgroundTraffic background(trace::trace1_profile(), 77);
  attack::AttackConfig acfg;
  acfg.victim_ip = packet::make_ip(203, 0, 10, 5);
  acfg.packets_per_second = 60000.0;  // oversubscribed on purpose
  acfg.seed = 78;
  attack::DistributedSynFlood flood(acfg);
  trace::TrafficMix mix(background, {&flood}, fraction);
  std::uint64_t attack_count = 0;
  const std::uint64_t total = 8000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (mix.next().label != packet::AttackType::kNone) ++attack_count;
  }
  EXPECT_LE(static_cast<double>(attack_count),
            fraction * static_cast<double>(total) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, MixProperty,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.25, 0.5));

// --- Question/centroid distance symmetry across attacks -------------------

class AttackSignatureProperty
    : public ::testing::TestWithParam<packet::AttackType> {};

TEST_P(AttackSignatureProperty, PureAttackBatchMatchesItsQuestion) {
  // Summarize a batch of pure attack traffic; the matching question must be
  // within a small distance of at least one centroid (this is the essence
  // of why Jaal detects attacks from summaries).
  const packet::AttackType attack = GetParam();
  core::TrialConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 200;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 80;
  cfg.monitor_count = 1;
  cfg.profile = trace::trace1_profile();
  cfg.attack_fraction = 0.10;
  cfg.attack_intensity_min = 1.0;
  cfg.attack_intensity_max = 1.0;
  cfg.seed = 5;

  const core::Trial trial = core::make_trial(attack, cfg, 1234);
  const auto rules = rules::parse_rules(rules::default_ruleset_text(),
                                        core::evaluation_rule_vars());
  const auto questions = rules::translate(rules);

  double best = 1e300;
  for (const auto& question : questions) {
    bool relevant = false;
    for (std::uint32_t sid : core::sids_for(attack)) {
      relevant |= question.sid == sid;
    }
    if (!relevant) continue;
    for (std::size_t row = 0; row < trial.aggregate.rows(); ++row) {
      best = std::min(best,
                      question.distance(trial.aggregate.centroids.row(row)));
    }
  }
  EXPECT_LT(best, 0.05) << packet::attack_name(attack);
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, AttackSignatureProperty,
    ::testing::Values(packet::AttackType::kSynFlood,
                      packet::AttackType::kDistributedSynFlood,
                      packet::AttackType::kPortScan,
                      packet::AttackType::kSshBruteForce,
                      packet::AttackType::kSockstress,
                      packet::AttackType::kMiraiScan),
    [](const ::testing::TestParamInfo<packet::AttackType>& info) {
      return packet::attack_name(info.param);
    });

// --- Topology invariants across profiles and seeds -------------------------

struct TopoParams {
  bool abovenet;
  std::uint64_t seed;
};

class TopologyProperty : public ::testing::TestWithParam<TopoParams> {};

TEST_P(TopologyProperty, StructuralInvariants) {
  const auto [abovenet, seed] = GetParam();
  const netsim::IspProfile profile =
      abovenet ? netsim::abovenet_profile() : netsim::exodus_profile();
  const netsim::Topology topo = netsim::make_isp_topology(profile, seed);

  EXPECT_EQ(topo.node_count(), profile.target_router_count);
  // Construction succeeding implies connectivity; verify adjacency symmetry
  // and that shortest paths are symmetric in length.
  for (netsim::NodeId n = 0; n < 20; ++n) {
    for (netsim::NodeId nb : topo.neighbors(n)) {
      const auto& back = topo.neighbors(nb);
      EXPECT_TRUE(std::find(back.begin(), back.end(), n) != back.end());
    }
  }
  const auto edges = topo.edge_nodes();
  ASSERT_GE(edges.size(), 2u);
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(edges.size(), 8);
       ++i) {
    const auto forward = topo.shortest_path(edges[i], edges[i + 1]);
    const auto backward = topo.shortest_path(edges[i + 1], edges[i]);
    EXPECT_EQ(forward.size(), backward.size());
    EXPECT_EQ(forward.front(), edges[i]);
    EXPECT_EQ(forward.back(), edges[i + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyProperty,
                         ::testing::Values(TopoParams{true, 1},
                                           TopoParams{true, 7},
                                           TopoParams{true, 13},
                                           TopoParams{false, 1},
                                           TopoParams{false, 7},
                                           TopoParams{false, 13}));

// --- Summary serialization round-trips across formats/shapes ---------------

struct SummaryShape {
  std::size_t n;
  std::size_t r;
  std::size_t k;
  bool split;
};

class SummarySerializationProperty
    : public ::testing::TestWithParam<SummaryShape> {};

TEST_P(SummarySerializationProperty, SerializeDeserializeIdentity) {
  const auto [n, r, k, split] = GetParam();
  trace::BackgroundTraffic gen(trace::trace1_profile(), n + r + k);
  const auto batch = trace::take(gen, n);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = n;
  cfg.min_batch = 1;
  cfg.rank = r;
  cfg.centroids = k;
  cfg.format = split ? summarize::SummaryFormat::kSplit
                     : summarize::SummaryFormat::kCombined;
  summarize::Summarizer summarizer(cfg);
  const auto out = summarizer.summarize(batch);

  const auto bytes = serialize(out.summary);
  // The frame carries the elements plus small headers (tags, dimensions).
  EXPECT_GE(bytes.size(), summarize::wire_bytes(out.summary));
  EXPECT_LE(bytes.size(), summarize::wire_bytes(out.summary) + 64);
  const auto restored = summarize::deserialize(bytes);
  // Round-trip through float32 must be byte-stable on a second pass.
  EXPECT_EQ(serialize(restored), bytes);
  EXPECT_EQ(summarize::element_count(restored),
            summarize::element_count(out.summary));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SummarySerializationProperty,
    ::testing::Values(SummaryShape{300, 6, 30, true},
                      SummaryShape{300, 6, 30, false},
                      SummaryShape{500, 12, 100, true},
                      SummaryShape{500, 12, 100, false},
                      SummaryShape{200, 18, 200, false},
                      SummaryShape{128, 1, 8, true}));

// --- Port/address spec algebra ---------------------------------------------

class PortSpecProperty : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(PortSpecProperty, NegationIsExactComplement) {
  const std::uint16_t port = GetParam();
  rules::RuleVars vars;
  const auto positive = rules::parse_rule(
      "alert tcp any any -> any [22,80,8000:8080] (msg:\"p\"; sid:1;)", vars);
  const auto negative = rules::parse_rule(
      "alert tcp any any -> any ![22,80,8000:8080] (msg:\"n\"; sid:2;)", vars);
  EXPECT_NE(positive.dst_port.matches(port), negative.dst_port.matches(port))
      << "port " << port;
}

INSTANTIATE_TEST_SUITE_P(Ports, PortSpecProperty,
                         ::testing::Values(0, 21, 22, 23, 79, 80, 81, 443,
                                           7999, 8000, 8040, 8080, 8081,
                                           65535));

}  // namespace
}  // namespace jaal
