// observe/slo: error-budget arithmetic over the completeness and latency
// SLIs — config validation, budget depletion, rolling-window burn rate,
// the no-latency-sample sentinel, and the deterministic summary line.
#include "observe/slo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace jaal::observe {
namespace {

TEST(SloConfig, ValidateRejectsDegenerateTargets) {
  SloConfig cfg;
  cfg.objective = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SloConfig{};
  cfg.objective = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SloConfig{};
  cfg.report_fraction_min = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SloConfig{};
  cfg.latency_target_ms = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SloConfig{};
  cfg.window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SloConfig{}.validate());
}

TEST(SloTracker, AllGoodEpochsLeaveBudgetUntouched) {
  SloTracker slo;
  for (std::uint64_t e = 0; e < 20; ++e) slo.observe_epoch(e, 1.0, 10.0);
  EXPECT_EQ(slo.epochs(), 20u);
  EXPECT_EQ(slo.rf_breaches(), 0u);
  EXPECT_EQ(slo.latency_breaches(), 0u);
  EXPECT_EQ(slo.rf_budget_remaining_permille(), 1000);
  EXPECT_EQ(slo.latency_budget_remaining_permille(), 1000);
  EXPECT_EQ(slo.rf_burn_rate_permille(), 0);
}

TEST(SloTracker, BreachesDepleteTheLifetimeBudget) {
  SloConfig cfg;
  cfg.objective = 0.9;  // 10% of epochs may be bad.
  cfg.window = 8;
  SloTracker slo(cfg);
  // 20 epochs allow 2 bad ones; 1 bad epoch burns half the budget.
  for (std::uint64_t e = 0; e < 20; ++e) {
    slo.observe_epoch(e, e == 3 ? 0.5 : 1.0, -1.0);
  }
  EXPECT_EQ(slo.rf_breaches(), 1u);
  EXPECT_EQ(slo.rf_budget_remaining_permille(), 500);
  // Overdraw clamps at zero rather than going negative.
  SloTracker drained(cfg);
  for (std::uint64_t e = 0; e < 10; ++e) drained.observe_epoch(e, 0.0, -1.0);
  EXPECT_EQ(drained.rf_budget_remaining_permille(), 0);
}

TEST(SloTracker, BurnRateTracksTheRollingWindowOnly) {
  SloConfig cfg;
  cfg.objective = 0.9;
  cfg.window = 10;
  SloTracker slo(cfg);
  // 2 bad epochs inside the window: (2/10) / 0.1 = 2x sustainable.
  for (std::uint64_t e = 0; e < 10; ++e) {
    slo.observe_epoch(e, e < 2 ? 0.0 : 1.0, -1.0);
  }
  EXPECT_EQ(slo.rf_burn_rate_permille(), 2000);
  // Ten more good epochs push the bad ones out of the window entirely;
  // the lifetime budget still remembers them.
  for (std::uint64_t e = 10; e < 20; ++e) slo.observe_epoch(e, 1.0, -1.0);
  EXPECT_EQ(slo.rf_burn_rate_permille(), 0);
  EXPECT_EQ(slo.rf_breaches(), 2u);
  EXPECT_EQ(slo.rf_budget_remaining_permille(), 0);
}

TEST(SloTracker, NegativeLatencyMeansNoSample) {
  SloConfig cfg;
  cfg.latency_target_ms = 50.0;
  SloTracker slo(cfg);
  slo.observe_epoch(0, 1.0, -1.0);   // offline reconstruction: no sample
  slo.observe_epoch(1, 1.0, 49.0);   // under target
  slo.observe_epoch(2, 1.0, 51.0);   // over target
  EXPECT_EQ(slo.latency_breaches(), 1u);
}

TEST(SloTracker, SummaryLineIsDeterministicAndCompletenessOnly) {
  SloTracker a;
  SloTracker b;
  for (std::uint64_t e = 0; e < 7; ++e) {
    // Different wall-clock latencies must not leak into the summary.
    a.observe_epoch(e, e == 2 ? 0.5 : 1.0, 10.0 + static_cast<double>(e));
    b.observe_epoch(e, e == 2 ? 0.5 : 1.0, 90.0 - static_cast<double>(e));
  }
  const std::string line = a.to_jsonl();
  EXPECT_EQ(line, b.to_jsonl());
  EXPECT_EQ(line.rfind("{\"kind\":\"slo_summary\"", 0), 0u);
  EXPECT_NE(line.find("\"epochs\":7"), std::string::npos);
  EXPECT_NE(line.find("\"rf_breaches\":1"), std::string::npos);
  EXPECT_EQ(line.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace jaal::observe
