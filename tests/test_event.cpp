#include "netsim/event.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace jaal::netsim {
namespace {

TEST(EventQueue, RunsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreaking) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.schedule(10.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeriodicSelfRescheduling) {
  EventQueue q;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 10) q.schedule_in(2.0, tick);
  };
  q.schedule(0.0, tick);
  q.run();
  EXPECT_EQ(ticks, 10);
  EXPECT_DOUBLE_EQ(q.now(), 18.0);
}

}  // namespace
}  // namespace jaal::netsim
