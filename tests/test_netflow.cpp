#include "baseline/netflow.hpp"

#include "packet/wire.hpp"

#include <gtest/gtest.h>

#include "attack/generators.hpp"
#include "core/experiment.hpp"
#include "trace/background.hpp"

namespace jaal::baseline {
namespace {

using packet::PacketRecord;

PacketRecord flow_packet(std::uint32_t src, std::uint16_t sport,
                         std::uint16_t dport, double t,
                         std::uint8_t flags = 0x10,
                         std::uint16_t length = 60) {
  PacketRecord pkt;
  pkt.ip.src_ip = src;
  pkt.ip.dst_ip = packet::make_ip(203, 0, 10, 5);
  pkt.ip.total_length = length;
  pkt.tcp.src_port = sport;
  pkt.tcp.dst_port = dport;
  pkt.tcp.flags = flags;
  pkt.timestamp = t;
  return pkt;
}

TEST(FlowCache, AggregatesPerFiveTuple) {
  FlowCache cache;
  for (int i = 0; i < 10; ++i) {
    cache.observe(flow_packet(1, 1000, 80, 0.1 * i));
  }
  cache.observe(flow_packet(2, 1000, 80, 0.5));  // different flow
  EXPECT_EQ(cache.active_flows(), 2u);
  EXPECT_EQ(cache.packets_seen(), 11u);

  cache.flush();
  const auto records = cache.drain();
  ASSERT_EQ(records.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& rec : records) total += rec.packets;
  EXPECT_EQ(total, 11u);
}

TEST(FlowCache, RecordsAccumulateBytesFlagsTimestamps) {
  FlowCache cache;
  cache.observe(flow_packet(1, 1000, 80, 1.0, 0x02, 60));   // SYN
  cache.observe(flow_packet(1, 1000, 80, 1.5, 0x10, 40));   // ACK
  cache.observe(flow_packet(1, 1000, 80, 2.0, 0x18, 1500)); // PSH|ACK
  cache.flush();
  const auto records = cache.drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].packets, 3u);
  EXPECT_EQ(records[0].bytes, 1600u);
  EXPECT_EQ(records[0].tcp_flags_or, 0x1A);  // SYN|ACK|PSH
  EXPECT_DOUBLE_EQ(records[0].first_seen, 1.0);
  EXPECT_DOUBLE_EQ(records[0].last_seen, 2.0);
}

TEST(FlowCache, InactiveTimeoutExports) {
  FlowCacheConfig cfg;
  cfg.inactive_timeout = 5.0;
  FlowCache cache(cfg);
  cache.observe(flow_packet(1, 1000, 80, 0.0));
  EXPECT_EQ(cache.expire(4.0), 0u);   // still fresh
  EXPECT_EQ(cache.expire(10.0), 1u);  // idle past timeout
  EXPECT_EQ(cache.active_flows(), 0u);
  EXPECT_EQ(cache.drain().size(), 1u);
}

TEST(FlowCache, ActiveTimeoutSplitsLongFlows) {
  FlowCacheConfig cfg;
  cfg.active_timeout = 10.0;
  cfg.inactive_timeout = 100.0;
  FlowCache cache(cfg);
  for (int i = 0; i <= 25; ++i) {
    cache.observe(flow_packet(1, 1000, 80, static_cast<double>(i)));
  }
  cache.flush();
  const auto records = cache.drain();
  EXPECT_GE(records.size(), 2u);  // split at least once
  std::uint64_t total = 0;
  for (const auto& rec : records) total += rec.packets;
  EXPECT_EQ(total, 26u);
}

TEST(FlowCache, SizeBoundForcesEviction) {
  FlowCacheConfig cfg;
  cfg.max_entries = 100;
  FlowCache cache(cfg);
  for (std::uint32_t i = 0; i < 500; ++i) {
    cache.observe(flow_packet(i, static_cast<std::uint16_t>(1000 + i), 80,
                              static_cast<double>(i) * 0.001));
  }
  EXPECT_LE(cache.active_flows(), 101u);
  EXPECT_GT(cache.exported_records(), 0u);
}

TEST(FlowCache, ExportBytesAre48PerRecord) {
  FlowCache cache;
  cache.observe(flow_packet(1, 1, 80, 0.0));
  cache.observe(flow_packet(2, 2, 80, 0.0));
  cache.flush();
  (void)cache.drain();
  EXPECT_EQ(cache.exported_bytes(), 2u * FlowRecord::kWireBytes);
}

TEST(NetFlowDetection, FlagOrPrecisionLoss) {
  // A benign completed handshake ORs to SYN|ACK|PSH|FIN...; a flags:S rule
  // "matches" it at the record level even though no pure-SYN burst existed
  // — the false-positive side of NetFlow's coarseness.
  const auto ruleset = rules::parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      core::evaluation_rule_vars());

  std::vector<FlowRecord> records;
  FlowRecord benign;
  benign.key = {1, packet::make_ip(203, 0, 10, 5), 1000, 80};
  benign.packets = 150;  // a normal bulk download
  benign.tcp_flags_or = 0x1B;  // SYN|ACK|PSH|FIN all appeared
  records.push_back(benign);

  const auto alerts = detect_on_flow_records(ruleset, records);
  ASSERT_EQ(alerts.size(), 1u);  // false positive by construction
  EXPECT_EQ(alerts[0].matched_packets, 150u);
}

TEST(NetFlowDetection, WindowRulesNeverMatch) {
  // Sockstress keys on window == 0, which flow records do not carry.
  const auto ruleset = rules::parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"sockstress\"; flags:A; "
      "window:0; detection_filter: count 1, seconds 2; sid:2;)",
      core::evaluation_rule_vars());
  FlowRecord rec;
  rec.key = {1, packet::make_ip(203, 0, 10, 5), 1000, 80};
  rec.packets = 1000;
  rec.tcp_flags_or = 0x10;
  EXPECT_TRUE(detect_on_flow_records(ruleset, {rec}).empty());
}

TEST(NetFlowDetection, DetectsDistributedFloodFromRecords) {
  // A DDoS is visible in flow records: many single-SYN flows to one host.
  const auto ruleset = rules::parse_rules(rules::default_ruleset_text(),
                                          core::evaluation_rule_vars());
  FlowCache cache;
  attack::AttackConfig acfg;
  acfg.victim_ip = core::evaluation_victim_ip();
  acfg.packets_per_second = 5000.0;
  acfg.seed = 3;
  attack::DistributedSynFlood flood(acfg);
  for (int i = 0; i < 400; ++i) cache.observe(flood.next());
  cache.flush();
  const auto alerts = detect_on_flow_records(ruleset, cache.drain());
  bool ddos = false;
  for (const auto& a : alerts) ddos |= a.sid == 1000002;
  EXPECT_TRUE(ddos);
}

TEST(NetFlowDetection, CompressionIsExcellentAccuracyIsNot) {
  // The §2 trade: flow export is far smaller than headers (long flows
  // collapse to one record) but benign traffic now carries flag-OR false
  // positives.  Just quantify the compression here.
  trace::BackgroundTraffic gen(trace::trace1_profile(), 5);
  FlowCache cache;
  for (const auto& pkt : trace::take(gen, 10000)) cache.observe(pkt);
  cache.flush();
  const auto records = cache.drain();
  const double record_bytes =
      static_cast<double>(records.size()) * FlowRecord::kWireBytes;
  const double header_bytes = 10000.0 * packet::kHeadersBytes;
  EXPECT_LT(record_bytes / header_bytes, 0.5);
}

}  // namespace
}  // namespace jaal::baseline
