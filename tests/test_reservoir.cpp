#include "baseline/reservoir.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"
#include "trace/background.hpp"

namespace jaal::baseline {
namespace {

using packet::PacketRecord;

PacketRecord numbered_packet(std::uint32_t i) {
  PacketRecord pkt;
  pkt.ip.identification = static_cast<std::uint16_t>(i);
  pkt.tcp.seq = i;
  return pkt;
}

TEST(Reservoir, ValidatesCapacity) {
  EXPECT_THROW(ReservoirSampler(0, 1), std::invalid_argument);
}

TEST(Reservoir, FillsToCapacityThenStays) {
  ReservoirSampler sampler(10, 1);
  for (std::uint32_t i = 0; i < 5; ++i) sampler.add(numbered_packet(i));
  EXPECT_EQ(sampler.sample().size(), 5u);
  for (std::uint32_t i = 5; i < 100; ++i) sampler.add(numbered_packet(i));
  EXPECT_EQ(sampler.sample().size(), 10u);
  EXPECT_EQ(sampler.seen(), 100u);
}

TEST(Reservoir, ScaleFactor) {
  ReservoirSampler sampler(25, 2);
  for (std::uint32_t i = 0; i < 1000; ++i) sampler.add(numbered_packet(i));
  EXPECT_DOUBLE_EQ(sampler.scale_factor(), 40.0);
  ReservoirSampler empty(5, 3);
  EXPECT_DOUBLE_EQ(empty.scale_factor(), 1.0);
}

TEST(Reservoir, ResetClearsState) {
  ReservoirSampler sampler(5, 4);
  for (std::uint32_t i = 0; i < 50; ++i) sampler.add(numbered_packet(i));
  sampler.reset();
  EXPECT_EQ(sampler.seen(), 0u);
  EXPECT_TRUE(sampler.sample().empty());
}

TEST(Reservoir, SampleIsApproximatelyUniform) {
  // Each stream position should land in the reservoir with probability
  // capacity/N.  Chi-square-ish sanity check on quartile occupancy.
  std::map<int, int> quartile_hits;
  const std::uint32_t n = 2000;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    ReservoirSampler sampler(100, seed);
    for (std::uint32_t i = 0; i < n; ++i) sampler.add(numbered_packet(i));
    for (const auto& pkt : sampler.sample()) {
      quartile_hits[static_cast<int>(pkt.tcp.seq / (n / 4))]++;
    }
  }
  const double expected = 50.0 * 100.0 / 4.0;  // per quartile
  for (int qt = 0; qt < 4; ++qt) {
    EXPECT_NEAR(quartile_hits[qt], expected, expected * 0.15) << "quartile " << qt;
  }
}

TEST(Reservoir, ShortBurstGetsDiluted) {
  // The Table 1 mechanism: 100 attack packets inside 10000 background
  // packets leave only ~1% of a 250-slot reservoir.
  ReservoirSampler sampler(250, 7);
  trace::BackgroundTraffic background(trace::trace1_profile(), 7);
  for (int i = 0; i < 5000; ++i) sampler.add(background.next());
  for (std::uint32_t i = 0; i < 100; ++i) {
    PacketRecord pkt = numbered_packet(i);
    pkt.label = packet::AttackType::kSynFlood;
    sampler.add(pkt);
  }
  for (int i = 0; i < 5000; ++i) sampler.add(background.next());
  std::size_t attack_in_sample = 0;
  for (const auto& pkt : sampler.sample()) {
    if (pkt.label != packet::AttackType::kNone) ++attack_in_sample;
  }
  EXPECT_LT(attack_in_sample, 15u);  // ~2.5 expected
}

TEST(DetectOnSample, ScalingRecoversDenseAttack) {
  // A sustained attack (50% of stream) survives sampling: detection over
  // the sample with scaled thresholds should fire.
  const auto rule_vars = core::evaluation_rule_vars();
  const auto ruleset = rules::parse_rules(
      "alert tcp any any -> $HOME_NET any (msg:\"flood\"; flags:S; "
      "detection_filter: count 400, seconds 2; sid:1;)",
      rule_vars);
  const rules::RawMatcher matcher(ruleset);

  ReservoirSampler sampler(250, 9);
  trace::BackgroundTraffic background(trace::trace1_profile(), 9);
  for (int i = 0; i < 1000; ++i) {
    sampler.add(background.next());
    PacketRecord syn;
    syn.ip.src_ip = 42;
    syn.ip.dst_ip = packet::make_ip(203, 0, 10, 5);
    syn.tcp.set(packet::TcpFlag::kSyn);
    syn.label = packet::AttackType::kSynFlood;
    sampler.add(syn);
  }
  const auto alerts = detect_on_sample(matcher, sampler, 2.0);
  EXPECT_FALSE(alerts.empty());
}

TEST(Reservoir, DeterministicForSeed) {
  ReservoirSampler a(50, 5), b(50, 5);
  for (std::uint32_t i = 0; i < 500; ++i) {
    a.add(numbered_packet(i));
    b.add(numbered_packet(i));
  }
  EXPECT_EQ(a.sample(), b.sample());
}

}  // namespace
}  // namespace jaal::baseline
