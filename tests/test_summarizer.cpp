#include "summarize/summarizer.hpp"

#include <gtest/gtest.h>

#include "trace/background.hpp"

namespace jaal::summarize {
namespace {

std::vector<packet::PacketRecord> batch(std::size_t n, std::uint64_t seed = 1) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), seed);
  return trace::take(gen, n);
}

SummarizerConfig config(std::size_t n = 1000, std::size_t r = 12,
                        std::size_t k = 200) {
  SummarizerConfig cfg;
  cfg.batch_size = n;
  cfg.min_batch = n / 2;
  cfg.rank = r;
  cfg.centroids = k;
  return cfg;
}

TEST(Summarizer, ValidatesConfig) {
  SummarizerConfig bad = config();
  bad.rank = 0;
  EXPECT_THROW(Summarizer{bad}, std::invalid_argument);
  bad = config();
  bad.rank = packet::kFieldCount + 1;
  EXPECT_THROW(Summarizer{bad}, std::invalid_argument);
  bad = config();
  bad.centroids = 0;
  EXPECT_THROW(Summarizer{bad}, std::invalid_argument);
  bad = config();
  bad.min_batch = bad.batch_size + 1;
  EXPECT_THROW(Summarizer{bad}, std::invalid_argument);
}

TEST(Summarizer, RejectsBatchBelowMinimum) {
  Summarizer s(config(1000));
  const auto small = batch(100);
  EXPECT_THROW((void)s.summarize(small), std::invalid_argument);
}

TEST(Summarizer, CostFormulas) {
  const Summarizer s(config(1000, 12, 200));
  EXPECT_EQ(s.combined_cost(), 200u * 19u);
  EXPECT_EQ(s.split_cost(), 12u * 219u + 200u);
}

TEST(Summarizer, AutoPicksSplitWhenCheaper) {
  // r=12, k=200, p=18: split (2828) < combined (3800).
  Summarizer s(config(1000, 12, 200));
  const auto out = s.summarize(batch(1000));
  EXPECT_TRUE(std::holds_alternative<SplitSummary>(out.summary));
  EXPECT_EQ(element_count(out.summary), s.split_cost());
}

TEST(Summarizer, AutoPicksCombinedWhenCheaper) {
  // r=17, k=200: combined (3800) < split (3923).
  Summarizer s(config(1000, 17, 200));
  const auto out = s.summarize(batch(1000));
  EXPECT_TRUE(std::holds_alternative<CombinedSummary>(out.summary));
}

TEST(Summarizer, ForcedFormatsHonored) {
  SummarizerConfig cfg = config(1000, 12, 100);
  cfg.format = SummaryFormat::kCombined;
  Summarizer forced_combined(cfg);
  EXPECT_TRUE(std::holds_alternative<CombinedSummary>(
      forced_combined.summarize(batch(1000)).summary));
  cfg.format = SummaryFormat::kSplit;
  Summarizer forced_split(cfg);
  EXPECT_TRUE(std::holds_alternative<SplitSummary>(
      forced_split.summarize(batch(1000)).summary));
}

TEST(Summarizer, AssignmentCoversEveryPacket) {
  Summarizer s(config(800, 12, 50));
  const auto packets = batch(800);
  const auto out = s.summarize(packets);
  EXPECT_EQ(out.assignment.size(), 800u);
  for (std::size_t a : out.assignment) EXPECT_LT(a, 50u);
}

TEST(Summarizer, CountsSumToBatchSize) {
  Summarizer s(config(1000, 12, 200));
  const auto out = s.summarize(batch(1000));
  const auto& split = std::get<SplitSummary>(out.summary);
  std::uint64_t total = 0;
  for (std::uint64_t c : split.counts) total += c;
  EXPECT_EQ(total, 1000u);
}

TEST(Summarizer, CentroidsRepresentPackets) {
  // Every packet's normalized vector must be close to its centroid after
  // reconstruction (rank-12 keeps ~all energy of backbone traffic).
  SummarizerConfig cfg = config(500, 12, 100);
  Summarizer s(cfg);
  const auto packets = batch(500);
  const auto out = s.summarize(packets);
  const CombinedSummary combined =
      std::get<SplitSummary>(out.summary).reconstruct();
  double total_err = 0.0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto v = packet::to_normalized_vector(packets[i]);
    const auto c = combined.centroids.row(out.assignment[i]);
    double err = 0.0;
    for (std::size_t j = 0; j < packet::kFieldCount; ++j) {
      err += std::abs(v[j] - c[j]);
    }
    total_err += err / packet::kFieldCount;
  }
  EXPECT_LT(total_err / static_cast<double>(packets.size()), 0.05);
}

TEST(Summarizer, SplitAndCombinedCarryEquivalentInformation) {
  // §4.3: "the information compiled in S1 is equivalent to that in S2".
  // Cluster the same batch both ways with the same seed and compare the
  // reconstructed centroid sets' quantization error.
  const auto packets = batch(600, 9);
  SummarizerConfig cfg = config(600, 12, 80);
  cfg.format = SummaryFormat::kSplit;
  Summarizer split_s(cfg);
  const auto split_out = split_s.summarize(packets);
  const auto split_centroids =
      std::get<SplitSummary>(split_out.summary).reconstruct().centroids;
  EXPECT_EQ(split_centroids.rows(), 80u);
  EXPECT_EQ(split_centroids.cols(), packet::kFieldCount);
  for (double v : split_centroids.data()) {
    EXPECT_GT(v, -0.35);
    EXPECT_LT(v, 1.35);
  }
}

TEST(Summarizer, DeterministicAcrossInstancesWithSameSeed) {
  const auto packets = batch(700, 4);
  Summarizer a(config(700, 12, 64));
  Summarizer b(config(700, 12, 64));
  const auto oa = a.summarize(packets);
  const auto ob = b.summarize(packets);
  EXPECT_EQ(oa.assignment, ob.assignment);
  EXPECT_EQ(serialize(oa.summary), serialize(ob.summary));
}

TEST(Summarizer, RandomizedSvdVariantProducesEquivalentQuality) {
  const auto packets = batch(800, 6);
  SummarizerConfig exact_cfg = config(800, 12, 100);
  SummarizerConfig rand_cfg = exact_cfg;
  rand_cfg.svd_backend = SvdBackend::kRandomized;

  auto quantization = [&](const SummarizeOutput& out) {
    const CombinedSummary combined =
        std::holds_alternative<SplitSummary>(out.summary)
            ? std::get<SplitSummary>(out.summary).reconstruct()
            : std::get<CombinedSummary>(out.summary);
    double total = 0.0;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const auto v = packet::to_normalized_vector(packets[i]);
      const auto c = combined.centroids.row(out.assignment[i]);
      double err = 0.0;
      for (std::size_t j = 0; j < packet::kFieldCount; ++j) {
        err += std::abs(v[j] - c[j]);
      }
      total += err / packet::kFieldCount;
    }
    return total / static_cast<double>(packets.size());
  };

  Summarizer exact(exact_cfg);
  Summarizer randomized(rand_cfg);
  const double exact_err = quantization(exact.summarize(packets));
  const double rand_err = quantization(randomized.summarize(packets));
  EXPECT_LT(rand_err, exact_err * 1.3 + 0.01);
}

TEST(Summarizer, TinyRankStillWorks) {
  Summarizer s(config(600, 1, 10));
  const auto out = s.summarize(batch(600));
  EXPECT_EQ(out.assignment.size(), 600u);
}

}  // namespace
}  // namespace jaal::summarize
