#include "inference/aggregate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::inference {
namespace {

using summarize::CombinedSummary;
using summarize::MonitorSummary;
using summarize::SplitSummary;

CombinedSummary combined(summarize::MonitorId id, std::size_t k,
                         std::size_t p, double fill) {
  CombinedSummary s;
  s.monitor = id;
  s.centroids = linalg::Matrix(k, p);
  for (double& v : s.centroids.data()) v = fill;
  s.counts.assign(k, 10 * (id + 1));
  return s;
}

TEST(Aggregator, ConcatenatesInOrder) {
  Aggregator agg;
  agg.add(MonitorSummary{combined(0, 2, 4, 0.1)});
  agg.add(MonitorSummary{combined(1, 3, 4, 0.2)});
  EXPECT_EQ(agg.summaries_added(), 2u);
  const AggregatedSummary a = agg.take();
  EXPECT_EQ(a.rows(), 5u);
  EXPECT_EQ(a.centroids.cols(), 4u);
  EXPECT_EQ(a.origin[0], 0u);
  EXPECT_EQ(a.origin[4], 1u);
  EXPECT_EQ(a.local_index[0], 0u);
  EXPECT_EQ(a.local_index[2], 0u);  // first row of monitor 1
  EXPECT_EQ(a.local_index[4], 2u);
  EXPECT_DOUBLE_EQ(a.centroids(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(a.centroids(3, 3), 0.2);
  EXPECT_EQ(a.counts[0], 10u);
  EXPECT_EQ(a.counts[2], 20u);
}

TEST(Aggregator, ReconstructsSplitSummaries) {
  SplitSummary split;
  split.monitor = 5;
  split.u_centroids = linalg::Matrix{{1.0, 0.0}, {0.0, 1.0}};
  split.sigma = {2.0, 3.0};
  split.vt = linalg::Matrix{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  split.counts = {4, 6};

  Aggregator agg;
  agg.add(MonitorSummary{split});
  const AggregatedSummary a = agg.take();
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.centroids.cols(), 3u);
  EXPECT_DOUBLE_EQ(a.centroids(0, 0), 2.0);  // u*sigma*vt row 0
  EXPECT_DOUBLE_EQ(a.centroids(1, 1), 3.0);
  EXPECT_EQ(a.origin[0], 5u);
}

TEST(Aggregator, TotalPacketsSumsCounts) {
  Aggregator agg;
  agg.add(MonitorSummary{combined(0, 2, 3, 0.0)});  // counts 10,10
  agg.add(MonitorSummary{combined(2, 1, 3, 0.0)});  // count 30
  EXPECT_EQ(agg.take().total_packets(), 50u);
}

TEST(Aggregator, TakeResetsState) {
  Aggregator agg;
  agg.add(MonitorSummary{combined(0, 2, 3, 0.0)});
  (void)agg.take();
  EXPECT_EQ(agg.summaries_added(), 0u);
  const AggregatedSummary empty = agg.take();
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.total_packets(), 0u);
}

TEST(Aggregator, RejectsMixedFieldWidths) {
  Aggregator agg;
  agg.add(MonitorSummary{combined(0, 2, 3, 0.0)});
  EXPECT_THROW(agg.add(MonitorSummary{combined(1, 2, 5, 0.0)}),
               std::invalid_argument);
}

TEST(ReduceAggregate, PreservesTotalPacketsAndShrinksRows) {
  Aggregator agg;
  for (summarize::MonitorId m = 0; m < 10; ++m) {
    agg.add(MonitorSummary{combined(m, 20, 6, 0.05 * m)});
  }
  const AggregatedSummary full = agg.take();
  const std::uint64_t total = full.total_packets();
  ASSERT_EQ(full.rows(), 200u);

  const AggregatedSummary reduced = reduce_aggregate(full, 30, 7);
  EXPECT_LE(reduced.rows(), 30u);
  EXPECT_GT(reduced.rows(), 0u);
  EXPECT_EQ(reduced.total_packets(), total);
  for (summarize::MonitorId origin : reduced.origin) {
    EXPECT_EQ(origin, kNoOrigin);  // feedback mapping is gone by design
  }
}

TEST(ReduceAggregate, CentroidsStayInsideDataRange) {
  Aggregator agg;
  agg.add(MonitorSummary{combined(0, 8, 4, 0.25)});
  agg.add(MonitorSummary{combined(1, 8, 4, 0.75)});
  const AggregatedSummary reduced = reduce_aggregate(agg.take(), 3, 1);
  for (double v : reduced.centroids.data()) {
    EXPECT_GE(v, 0.25 - 1e-9);
    EXPECT_LE(v, 0.75 + 1e-9);
  }
}

TEST(ReduceAggregate, ValidatesInput) {
  EXPECT_THROW((void)reduce_aggregate(AggregatedSummary{}, 5),
               std::invalid_argument);
  Aggregator agg;
  agg.add(MonitorSummary{combined(0, 2, 3, 0.0)});
  EXPECT_THROW((void)reduce_aggregate(agg.take(), 0), std::invalid_argument);
}

TEST(Aggregator, RejectsBrokenInvariants) {
  CombinedSummary bad = combined(0, 2, 3, 0.0);
  bad.counts.pop_back();
  Aggregator agg;
  EXPECT_THROW(agg.add(MonitorSummary{bad}), std::logic_error);
}

}  // namespace
}  // namespace jaal::inference
