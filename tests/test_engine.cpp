#include "inference/engine.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace jaal::inference {
namespace {

using packet::FieldIndex;
using packet::PacketRecord;

std::vector<rules::Rule> flood_ruleset() {
  return rules::parse_rules(
      "alert tcp any any -> 203.0.10.5 any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)",
      core::evaluation_rule_vars());
}

/// Aggregate with one centroid at distance `dist` (in normalized-L1 terms)
/// from the flood question, carrying `count` packets.
AggregatedSummary aggregate_at_distance(double dist, std::uint64_t count) {
  AggregatedSummary agg;
  agg.centroids = linalg::Matrix(1, packet::kFieldCount);
  auto row = agg.centroids.row(0);
  // Question pins dst addr, flags; leave dst_port wildcarded by the rule.
  row[packet::index(FieldIndex::kIpDstAddr)] =
      packet::normalize_field(FieldIndex::kIpDstAddr,
                              packet::make_ip(203, 0, 10, 5));
  row[packet::index(FieldIndex::kTcpFlags)] = 2.0 / 63.0 + 2.0 * dist;
  agg.counts = {count};
  agg.origin = {0};
  agg.local_index = {0};
  return agg;
}

RawPacketFetcher fetcher_returning(std::vector<PacketRecord> packets) {
  return [packets](summarize::MonitorId,
                   const std::vector<std::size_t>&) { return packets; };
}

std::vector<PacketRecord> matching_syns(std::size_t n) {
  std::vector<PacketRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    PacketRecord pkt;
    pkt.ip.src_ip = 1234;
    pkt.ip.dst_ip = packet::make_ip(203, 0, 10, 5);
    pkt.tcp.set(packet::TcpFlag::kSyn);
    out.push_back(pkt);
  }
  return out;
}

TEST(Engine, ValidatesConfig) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.5, 0.1};  // tau_d2 < tau_d1
  EXPECT_THROW(InferenceEngine(flood_ruleset(), cfg), std::invalid_argument);
  EXPECT_THROW(InferenceEngine({}, EngineConfig{}), std::invalid_argument);
}

TEST(Engine, Case1StrictMatchAlertsWithoutFeedback) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.15};
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.0, 500);
  bool fetch_called = false;
  const auto alerts = engine.infer(
      agg, [&](summarize::MonitorId, const std::vector<std::size_t>&) {
        fetch_called = true;
        return std::vector<PacketRecord>{};
      });
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_FALSE(alerts[0].via_feedback);
  EXPECT_FALSE(fetch_called);
  EXPECT_EQ(engine.stats().feedback_requests, 0u);
}

TEST(Engine, Case2NoMatchNoAlert) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.02, 0.05};
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.5, 500);  // far from question
  EXPECT_TRUE(engine.infer(agg, nullptr).empty());
}

TEST(Engine, Case3FeedbackConfirmsRealAttack) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};  // strict misses, loose hits
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.05, 500);
  const auto alerts =
      engine.infer(agg, fetcher_returning(matching_syns(150)));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].via_feedback);
  EXPECT_EQ(engine.stats().feedback_requests, 1u);
  EXPECT_EQ(engine.stats().raw_packets_fetched, 150u);
  EXPECT_EQ(engine.stats().raw_bytes_fetched, 150u * packet::kHeadersBytes);
}

TEST(Engine, Case3FeedbackRefutesFalsePositive) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.05, 500);
  // Raw packets reveal only 5 exact SYNs: below the raw-evidence threshold
  // (kRawEvidenceFactor x count = 35).
  const auto alerts =
      engine.infer(agg, fetcher_returning(matching_syns(5)));
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(engine.stats().feedback_requests, 1u);
}

TEST(Engine, FeedbackDisabledFallsBackToLooseDecision) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};
  cfg.feedback_enabled = false;
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.05, 500);
  const auto alerts = engine.infer(agg, nullptr);
  ASSERT_EQ(alerts.size(), 1u);  // loose threshold decision accepted
  EXPECT_FALSE(alerts[0].via_feedback);
}

TEST(Engine, TauCScaleAdjustsCounts) {
  // count 100 calibrated for the nominal window; a half-volume window
  // (tau_c_scale 0.5) needs only 50 matched packets.
  EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.05};
  cfg.tau_c_scale = 0.5;
  InferenceEngine engine(flood_ruleset(), cfg);
  EXPECT_EQ(engine.infer(aggregate_at_distance(0.0, 60), nullptr).size(), 1u);
  engine.set_tau_c_scale(1.0);
  EXPECT_DOUBLE_EQ(engine.tau_c_scale(), 1.0);
  EXPECT_TRUE(engine.infer(aggregate_at_distance(0.0, 60), nullptr).empty());
}

TEST(Engine, PerRuleThresholdOverrides) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.0, 0.0};
  cfg.per_rule[1] = {0.1, 0.1};
  InferenceEngine engine(flood_ruleset(), cfg);
  EXPECT_DOUBLE_EQ(engine.thresholds_for(1).tau_d1, 0.1);
  EXPECT_DOUBLE_EQ(engine.thresholds_for(999).tau_d1, 0.0);
  const auto agg = aggregate_at_distance(0.05, 500);
  EXPECT_EQ(engine.infer(agg, nullptr).size(), 1u);
}

TEST(Engine, DistributedClassificationViaPostprocessor) {
  // Two matching centroids with widely different source addresses: the
  // opportunistic postprocessor should tag the alert distributed.
  EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.05};
  InferenceEngine engine(flood_ruleset(), cfg);
  AggregatedSummary agg = aggregate_at_distance(0.0, 300);
  AggregatedSummary second = aggregate_at_distance(0.0, 300);
  second.centroids(0, packet::index(FieldIndex::kIpSrcAddr)) = 0.9;
  // Merge manually.
  linalg::Matrix both(2, packet::kFieldCount);
  for (std::size_t j = 0; j < packet::kFieldCount; ++j) {
    both(0, j) = agg.centroids(0, j);
    both(1, j) = second.centroids(0, j);
  }
  agg.centroids = both;
  agg.counts = {300, 300};
  agg.origin = {0, 0};
  agg.local_index = {0, 1};
  const auto alerts = engine.infer(agg, nullptr);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].distributed);
  EXPECT_GT(alerts[0].variance, 0.0);
}

TEST(Engine, VerifyAllAlertsSuppressesUnconfirmedCase1) {
  // Strict match fires (case 1), but the raw packets behind the centroid
  // contain almost no exact matches: §10 verification kills the alert.
  EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.15};
  cfg.verify_all_alerts = true;
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.0, 500);
  const auto alerts = engine.infer(agg, fetcher_returning(matching_syns(5)));
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(engine.stats().alerts_suppressed, 1u);
}

TEST(Engine, VerifyAllAlertsConfirmsRealCase1) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.15};
  cfg.verify_all_alerts = true;
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto agg = aggregate_at_distance(0.0, 500);
  const auto alerts =
      engine.infer(agg, fetcher_returning(matching_syns(200)));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(engine.stats().alerts_suppressed, 0u);
}

TEST(Engine, VerifyAllAlertsNoopWithoutFetcher) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.05, 0.15};
  cfg.verify_all_alerts = true;
  cfg.feedback_enabled = false;
  InferenceEngine engine(flood_ruleset(), cfg);
  const auto alerts = engine.infer(aggregate_at_distance(0.0, 500), nullptr);
  EXPECT_EQ(alerts.size(), 1u);  // nothing to verify against
}

TEST(Engine, RawCountOverridesVerificationThreshold) {
  // Same scenario as Case3FeedbackRefutesFalsePositive, but the rule pins
  // jaal_raw_count to 5, so 5 exact matches now confirm.
  auto rules = rules::parse_rules(
      "alert tcp any any -> 203.0.10.5 any (msg:\"flood\"; flags:S; "
      "detection_filter: count 100, seconds 2; jaal_raw_count: 5; sid:1;)",
      core::evaluation_rule_vars());
  EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};
  InferenceEngine engine(std::move(rules), cfg);
  const auto agg = aggregate_at_distance(0.05, 500);
  const auto alerts = engine.infer(agg, fetcher_returning(matching_syns(5)));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].via_feedback);
}

TEST(Engine, FetchCacheCountsBytesOnce) {
  // Two rules matching the same centroid must not double-bill the fetch.
  auto rules = rules::parse_rules(
      "alert tcp any any -> 203.0.10.5 any (msg:\"a\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:1;)\n"
      "alert tcp any any -> 203.0.10.5 any (msg:\"b\"; flags:S; "
      "detection_filter: count 100, seconds 2; sid:2;)",
      core::evaluation_rule_vars());
  EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};  // both go through case 3
  InferenceEngine engine(std::move(rules), cfg);
  const auto agg = aggregate_at_distance(0.05, 500);
  std::size_t fetch_calls = 0;
  const auto alerts = engine.infer(
      agg, [&](summarize::MonitorId, const std::vector<std::size_t>&) {
        ++fetch_calls;
        return matching_syns(150);
      });
  EXPECT_EQ(alerts.size(), 2u);
  EXPECT_EQ(fetch_calls, 1u);  // second rule served from the cache
  EXPECT_EQ(engine.stats().raw_packets_fetched, 150u);
  EXPECT_EQ(engine.stats().feedback_requests, 2u);
}

TEST(Engine, StatsResettable) {
  EngineConfig cfg;
  cfg.default_thresholds = {0.001, 0.2};
  InferenceEngine engine(flood_ruleset(), cfg);
  (void)engine.infer(aggregate_at_distance(0.05, 500),
                     fetcher_returning(matching_syns(150)));
  EXPECT_GT(engine.stats().feedback_requests, 0u);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().feedback_requests, 0u);
}

TEST(Engine, EmptyAggregateYieldsNothing) {
  EngineConfig cfg;
  InferenceEngine engine(flood_ruleset(), cfg);
  EXPECT_TRUE(engine.infer(AggregatedSummary{}, nullptr).empty());
}

}  // namespace
}  // namespace jaal::inference
