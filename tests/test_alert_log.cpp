#include "core/alert_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jaal::core {
namespace {

inference::Alert sample_alert() {
  inference::Alert alert;
  alert.sid = 1000002;
  alert.msg = "Distributed SYN flood";
  alert.matched_packets = 431;
  alert.distributed = true;
  alert.via_feedback = false;
  alert.variance = 0.0625;
  return alert;
}

TEST(AlertLog, JsonContainsEveryField) {
  const std::string json = alert_to_json(sample_alert(), 12.5);
  EXPECT_NE(json.find("\"time\":12.500000"), std::string::npos);
  EXPECT_NE(json.find("\"sid\":1000002"), std::string::npos);
  EXPECT_NE(json.find("\"msg\":\"Distributed SYN flood\""), std::string::npos);
  EXPECT_NE(json.find("\"matched_packets\":431"), std::string::npos);
  EXPECT_NE(json.find("\"distributed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"via_feedback\":false"), std::string::npos);
  EXPECT_NE(json.find("\"variance\":0.0625"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

TEST(AlertLog, EscapesSpecialCharacters) {
  inference::Alert alert = sample_alert();
  alert.msg = "quote:\" backslash:\\ newline:\n tab:\t ctrl:\x01";
  const std::string json = alert_to_json(alert, 0.0);
  EXPECT_NE(json.find("quote:\\\""), std::string::npos);
  EXPECT_NE(json.find("backslash:\\\\"), std::string::npos);
  EXPECT_NE(json.find("newline:\\n"), std::string::npos);
  EXPECT_NE(json.find("tab:\\t"), std::string::npos);
  EXPECT_NE(json.find("ctrl:\\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(AlertLog, LoggerWritesOneLinePerAlert) {
  std::stringstream out;
  AlertLogger logger(out);
  EXPECT_EQ(logger.log_epoch(1.0, {sample_alert(), sample_alert()}), 2u);
  EXPECT_EQ(logger.log_epoch(2.0, {}), 0u);
  EXPECT_EQ(logger.log_epoch(3.0, {sample_alert()}), 1u);
  EXPECT_EQ(logger.lines_written(), 3u);

  std::string line;
  std::size_t lines = 0;
  while (std::getline(out, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3u);
}

}  // namespace
}  // namespace jaal::core
