#include "attack/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace jaal::attack {
namespace {

using packet::AttackType;
using packet::TcpFlag;

AttackConfig config() {
  AttackConfig cfg;
  cfg.victim_ip = packet::make_ip(203, 0, 10, 5);
  cfg.packets_per_second = 1000.0;
  cfg.source_count = 200;
  cfg.seed = 3;
  return cfg;
}

template <typename Source>
std::vector<packet::PacketRecord> draw(Source& src, std::size_t n) {
  std::vector<packet::PacketRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(src.next());
  return out;
}

TEST(AttackSource, ValidatesConfig) {
  AttackConfig bad_rate = config();
  bad_rate.packets_per_second = 0.0;
  EXPECT_THROW(SynFlood{bad_rate}, std::invalid_argument);
  AttackConfig no_sources = config();
  no_sources.source_count = 0;
  EXPECT_THROW(SynFlood{no_sources}, std::invalid_argument);
}

TEST(AttackSource, StartTimeRespected) {
  AttackConfig cfg = config();
  cfg.start_time = 100.0;
  SynFlood flood(cfg);
  EXPECT_GE(flood.peek_time(), 100.0);
  EXPECT_GE(flood.next().timestamp, 100.0);
}

TEST(SynFlood, SignatureShape) {
  SynFlood flood(config(), 80);
  std::set<std::uint32_t> sources;
  for (const auto& pkt : draw(flood, 500)) {
    EXPECT_EQ(pkt.label, AttackType::kSynFlood);
    EXPECT_EQ(pkt.tcp.flags, packet::flag_bit(TcpFlag::kSyn));
    EXPECT_EQ(pkt.tcp.dst_port, 80);
    EXPECT_EQ(pkt.ip.dst_ip, config().victim_ip);
    EXPECT_EQ(pkt.tcp.ack, 0u);
    sources.insert(pkt.ip.src_ip);
  }
  EXPECT_EQ(sources.size(), 1u);  // single-source DoS
}

TEST(DistributedSynFlood, ManySourcesOneVictim) {
  DistributedSynFlood flood(config(), 80);
  std::set<std::uint32_t> sources;
  std::set<std::uint16_t> subnets;
  for (const auto& pkt : draw(flood, 2000)) {
    EXPECT_EQ(pkt.label, AttackType::kDistributedSynFlood);
    EXPECT_EQ(pkt.tcp.flags, packet::flag_bit(TcpFlag::kSyn));
    EXPECT_EQ(pkt.ip.dst_ip, config().victim_ip);
    sources.insert(pkt.ip.src_ip);
    subnets.insert(static_cast<std::uint16_t>(pkt.ip.src_ip >> 16));
  }
  EXPECT_GT(sources.size(), 150u);  // ~200 attacking hosts (paper §8)
  EXPECT_GT(subnets.size(), 100u);  // spread across subnets
}

TEST(PortScan, SweepsNmapDefaultPorts) {
  PortScan scan(config());
  const auto& defaults = PortScan::nmap_default_ports();
  std::set<std::uint16_t> seen;
  for (const auto& pkt : draw(scan, 2000)) {
    EXPECT_EQ(pkt.label, AttackType::kPortScan);
    EXPECT_EQ(pkt.tcp.flags, packet::flag_bit(TcpFlag::kSyn));
    seen.insert(pkt.tcp.dst_port);
    EXPECT_TRUE(std::find(defaults.begin(), defaults.end(),
                          pkt.tcp.dst_port) != defaults.end());
  }
  EXPECT_EQ(seen.size(), defaults.size());  // full sweep after enough probes
}

TEST(PortScan, DefaultPortListSane) {
  const auto& ports = PortScan::nmap_default_ports();
  EXPECT_GT(ports.size(), 50u);
  EXPECT_TRUE(std::find(ports.begin(), ports.end(), 22) != ports.end());
  EXPECT_TRUE(std::find(ports.begin(), ports.end(), 80) != ports.end());
  EXPECT_TRUE(std::find(ports.begin(), ports.end(), 443) != ports.end());
}

TEST(SshBruteForce, TargetsPort22WithHandshakeAndData) {
  SshBruteForce brute(config());
  int syn = 0, psh = 0;
  for (const auto& pkt : draw(brute, 2000)) {
    EXPECT_EQ(pkt.label, AttackType::kSshBruteForce);
    EXPECT_EQ(pkt.tcp.dst_port, 22);
    EXPECT_EQ(pkt.ip.dst_ip, config().victim_ip);
    if (pkt.tcp.flags == packet::flag_bit(TcpFlag::kSyn)) ++syn;
    if (pkt.tcp.has(TcpFlag::kPsh)) {
      ++psh;
      EXPECT_GT(pkt.ip.total_length, 40);  // carries an auth attempt
    }
  }
  EXPECT_GT(syn, 0);
  EXPECT_GT(psh, syn);  // multiple attempts per connection
}

TEST(Sockstress, ZeroWindowSignature) {
  Sockstress stress(config(), 80);
  int zero_window = 0, syn = 0;
  for (const auto& pkt : draw(stress, 2000)) {
    EXPECT_EQ(pkt.label, AttackType::kSockstress);
    EXPECT_EQ(pkt.tcp.dst_port, 80);
    if (pkt.tcp.has(TcpFlag::kSyn)) {
      ++syn;
    } else {
      EXPECT_TRUE(pkt.tcp.has(TcpFlag::kAck));
      EXPECT_EQ(pkt.tcp.window, 0);
      ++zero_window;
    }
  }
  EXPECT_GT(zero_window, syn);  // the stall phase dominates
  EXPECT_GT(syn, 0);
}

TEST(MimicrySynFlood, DisguisesFreeFieldsOnly) {
  MimicrySynFlood flood(config(), 80);
  std::set<std::uint16_t> windows;
  for (const auto& pkt : draw(flood, 500)) {
    // Essential fields cannot be disguised.
    EXPECT_EQ(pkt.label, AttackType::kDistributedSynFlood);
    EXPECT_EQ(pkt.tcp.flags, packet::flag_bit(TcpFlag::kSyn));
    EXPECT_EQ(pkt.ip.dst_ip, config().victim_ip);
    EXPECT_EQ(pkt.tcp.dst_port, 80);
    // Free fields mimic benign handshakes.
    EXPECT_EQ(pkt.ip.total_length, 60);   // SYN with options
    EXPECT_EQ(pkt.tcp.data_offset, 10);
    EXPECT_NE(pkt.tcp.window, 512);       // not the hping3 fingerprint
    windows.insert(pkt.tcp.window);
  }
  EXPECT_GT(windows.size(), 1u);  // OS-persona diversity
}

TEST(AttackSource, DeterministicGivenSeed) {
  DistributedSynFlood a(config());
  DistributedSynFlood b(config());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(AttackSource, TimestampsFollowConfiguredRate) {
  AttackConfig cfg = config();
  cfg.packets_per_second = 5000.0;
  DistributedSynFlood flood(cfg);
  const auto packets = draw(flood, 5000);
  const double span = packets.back().timestamp - packets.front().timestamp;
  EXPECT_NEAR(5000.0 / span, 5000.0, 300.0);
}

}  // namespace
}  // namespace jaal::attack
