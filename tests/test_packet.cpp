#include "packet/fields.hpp"
#include "packet/wire.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::packet {
namespace {

PacketRecord sample_packet() {
  PacketRecord pkt;
  pkt.ip.tos = 0x10;
  pkt.ip.total_length = 1500;
  pkt.ip.identification = 0xBEEF;
  pkt.ip.flags = 2;
  pkt.ip.fragment_offset = 0;
  pkt.ip.ttl = 57;
  pkt.ip.src_ip = make_ip(192, 168, 1, 10);
  pkt.ip.dst_ip = make_ip(203, 0, 10, 5);
  pkt.tcp.src_port = 43210;
  pkt.tcp.dst_port = 443;
  pkt.tcp.seq = 0x12345678;
  pkt.tcp.ack = 0x9ABCDEF0;
  pkt.tcp.set(TcpFlag::kAck);
  pkt.tcp.set(TcpFlag::kPsh);
  pkt.tcp.window = 29200;
  return pkt;
}

TEST(Headers, FlagHelpers) {
  TcpHeader tcp;
  EXPECT_FALSE(tcp.has(TcpFlag::kSyn));
  tcp.set(TcpFlag::kSyn);
  tcp.set(TcpFlag::kAck);
  EXPECT_TRUE(tcp.has(TcpFlag::kSyn));
  EXPECT_TRUE(tcp.has(TcpFlag::kAck));
  EXPECT_EQ(tcp.flags, 0x12);
  tcp.set(TcpFlag::kSyn, false);
  EXPECT_FALSE(tcp.has(TcpFlag::kSyn));
  EXPECT_EQ(tcp.flags, 0x10);
}

TEST(Headers, IpStringRoundTrip) {
  EXPECT_EQ(ip_to_string(make_ip(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(ip_from_string("10.0.0.1"), make_ip(10, 0, 0, 1));
  EXPECT_EQ(ip_from_string("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(ip_from_string("0.0.0.0"), 0u);
}

TEST(Headers, IpFromStringRejectsGarbage) {
  EXPECT_THROW((void)ip_from_string("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW((void)ip_from_string("1.2.3"), std::invalid_argument);
  EXPECT_THROW((void)ip_from_string("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW((void)ip_from_string("a.b.c.d"), std::invalid_argument);
}

TEST(Fields, CountIsEighteen) {
  EXPECT_EQ(kFieldCount, 18u);
  EXPECT_EQ(all_fields().size(), 18u);
}

TEST(Fields, NameRoundTrip) {
  for (FieldIndex f : all_fields()) {
    EXPECT_EQ(field_from_name(field_name(f)), f);
  }
  EXPECT_THROW((void)field_from_name("tcp.bogus"), std::invalid_argument);
}

TEST(Fields, VectorizationPlacesEveryField) {
  const PacketRecord pkt = sample_packet();
  const FieldVector v = to_field_vector(pkt);
  EXPECT_EQ(v[index(FieldIndex::kIpVersion)], 4.0);
  EXPECT_EQ(v[index(FieldIndex::kIpTotalLength)], 1500.0);
  EXPECT_EQ(v[index(FieldIndex::kIpTtl)], 57.0);
  EXPECT_EQ(v[index(FieldIndex::kIpSrcAddr)],
            static_cast<double>(make_ip(192, 168, 1, 10)));
  EXPECT_EQ(v[index(FieldIndex::kTcpDstPort)], 443.0);
  EXPECT_EQ(v[index(FieldIndex::kTcpFlags)], 0x18);
  EXPECT_EQ(v[index(FieldIndex::kTcpWindow)], 29200.0);
}

TEST(Fields, NormalizedVectorInUnitInterval) {
  PacketRecord pkt = sample_packet();
  pkt.tcp.seq = 0xFFFFFFFF;
  pkt.ip.ttl = 255;
  const FieldVector v = to_normalized_vector(pkt);
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  EXPECT_DOUBLE_EQ(v[index(FieldIndex::kIpTtl)], 1.0);
  EXPECT_DOUBLE_EQ(v[index(FieldIndex::kTcpSeq)], 1.0);
}

TEST(Fields, NormalizeDenormalizeRoundTrip) {
  for (FieldIndex f : all_fields()) {
    const double raw = field_max(f) * 0.37;
    EXPECT_NEAR(denormalize_field(f, normalize_field(f, raw)), raw, 1e-9);
  }
}

TEST(FlowKey, ExtractedFromPacket) {
  const PacketRecord pkt = sample_packet();
  const FlowKey key = pkt.flow();
  EXPECT_EQ(key.src_ip, pkt.ip.src_ip);
  EXPECT_EQ(key.dst_port, 443);
}

TEST(FlowKey, HashDistinguishesDirections) {
  FlowKey a{1, 2, 10, 20};
  FlowKey b{2, 1, 20, 10};
  EXPECT_NE(FlowKeyHash{}(a), FlowKeyHash{}(b));
  EXPECT_EQ(FlowKeyHash{}(a), FlowKeyHash{}(a));
}

TEST(Wire, SerializeLength) {
  const PacketRecord pkt = sample_packet();
  const auto bytes = serialize_headers(pkt.ip, pkt.tcp);
  EXPECT_EQ(bytes.size(), kHeadersBytes);
}

TEST(Wire, RoundTripPreservesEveryField) {
  const PacketRecord pkt = sample_packet();
  const auto bytes = serialize_headers(pkt.ip, pkt.tcp);
  const auto parsed = parse_headers(bytes);
  ASSERT_TRUE(parsed.has_value());
  // Checksums are computed by the serializer; zero them out to compare the
  // semantic fields.
  Ipv4Header ip = parsed->ip;
  TcpHeader tcp = parsed->tcp;
  ip.checksum = 0;
  tcp.checksum = 0;
  EXPECT_EQ(ip, pkt.ip);
  EXPECT_EQ(tcp, pkt.tcp);
}

TEST(Wire, ChecksumsValidateOnRoundTrip) {
  const PacketRecord pkt = sample_packet();
  const auto bytes = serialize_headers(pkt.ip, pkt.tcp);
  const auto parsed = parse_headers(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ip_checksum_ok);
  EXPECT_TRUE(parsed->tcp_checksum_ok);
}

TEST(Wire, CorruptionDetectedByChecksum) {
  const PacketRecord pkt = sample_packet();
  auto bytes = serialize_headers(pkt.ip, pkt.tcp);
  bytes[8] ^= 0xFF;  // flip the TTL
  const auto parsed = parse_headers(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ip_checksum_ok);
}

TEST(Wire, RejectsShortBuffer) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(parse_headers(tiny).has_value());
}

TEST(Wire, RejectsNonIpv4) {
  const PacketRecord pkt = sample_packet();
  auto bytes = serialize_headers(pkt.ip, pkt.tcp);
  bytes[0] = 0x65;  // version 6
  EXPECT_FALSE(parse_headers(bytes).has_value());
}

TEST(Wire, RejectsNonTcp) {
  PacketRecord pkt = sample_packet();
  pkt.ip.protocol = 17;  // UDP
  const auto bytes = serialize_headers(pkt.ip, pkt.tcp);
  EXPECT_FALSE(parse_headers(bytes).has_value());
}

TEST(Wire, InternetChecksumKnownVector) {
  // RFC 1071 example-style check: checksum of a buffer plus its checksum
  // folds to zero.
  const std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                          0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                          0xC0, 0xA8, 0x00, 0x01, 0xC0, 0xA8,
                                          0x00, 0xC7};
  const std::uint16_t csum = internet_checksum(data);
  std::vector<std::uint8_t> with = data;
  with[10] = static_cast<std::uint8_t>(csum >> 8);
  with[11] = static_cast<std::uint8_t>(csum & 0xFF);
  EXPECT_EQ(internet_checksum(with), 0);
}

TEST(Wire, ChecksumOddLength) {
  const std::vector<std::uint8_t> data = {0x01, 0x02, 0x03};
  // Odd byte padded with zero: sum = 0x0102 + 0x0300.
  EXPECT_EQ(internet_checksum(data),
            static_cast<std::uint16_t>(~(0x0102 + 0x0300) & 0xFFFF));
}

TEST(AttackTypes, NamesAreUnique) {
  for (std::size_t i = 0; i < kAttackTypeCount; ++i) {
    for (std::size_t j = i + 1; j < kAttackTypeCount; ++j) {
      EXPECT_STRNE(attack_name(static_cast<AttackType>(i)),
                   attack_name(static_cast<AttackType>(j)));
    }
  }
}

}  // namespace
}  // namespace jaal::packet
