// Metrics registry: striped counters/gauges/histograms, bucket boundaries,
// the enabled kill switch, and the Prometheus exposition parsed back.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace jaal::telemetry {
namespace {

// Everything below exercises metric *writes*, which compile to no-ops under
// -DJAAL_TELEMETRY_DISABLED; the pure-math bucket tests stay active there.
#ifndef JAAL_TELEMETRY_DISABLED

TEST(Telemetry, CounterAccumulatesAcrossStripes) {
  MetricsRegistry reg;
  Counter& c = reg.counter("jaal_test_events_total");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Telemetry, CounterConcurrentWritersLoseNothing) {
  MetricsRegistry reg;
  Counter& c = reg.counter("jaal_test_concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, SnapshotUnderConcurrentWritersIsSane) {
  // Readers may run while writers write: the snapshot must be internally
  // consistent enough to never exceed the final total and never go
  // backwards.  (The TSan CI job runs this test for data-race freedom.)
  MetricsRegistry reg;
  Counter& c = reg.counter("jaal_test_live_total");
  Histogram& h = reg.histogram("jaal_test_live_hist");
  constexpr int kWriters = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(1.0);
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.entries.size(), 2u);
    EXPECT_GE(snap.entries[0].counter, last);
    EXPECT_LE(snap.entries[0].counter,
              static_cast<std::uint64_t>(kWriters) * kPerThread);
    last = snap.entries[0].counter;
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.entries[0].counter,
            static_cast<std::uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(final_snap.entries[1].histogram.count,
            static_cast<std::uint64_t>(kWriters) * kPerThread);
  EXPECT_DOUBLE_EQ(final_snap.entries[1].histogram.sum,
                   static_cast<double>(kWriters) * kPerThread);
}

TEST(Telemetry, GaugeSetAddMax) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("jaal_test_depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.update_max(5);
  EXPECT_EQ(g.value(), 7);  // 5 < 7: no change
  g.update_max(19);
  EXPECT_EQ(g.value(), 19);
}

#endif  // JAAL_TELEMETRY_DISABLED

TEST(Telemetry, HistogramBucketBoundaries) {
  // Bucket i has inclusive upper bound 2^(i + kMinExponent); values on the
  // bound land in that bucket, values just above in the next.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  const double smallest = Histogram::upper_bound(0);
  EXPECT_DOUBLE_EQ(smallest, std::ldexp(1.0, Histogram::kMinExponent));
  EXPECT_EQ(Histogram::bucket_index(smallest / 4.0), 0u);
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    const double bound = Histogram::upper_bound(i);
    EXPECT_EQ(Histogram::bucket_index(bound), i) << "on-bound value, i=" << i;
    if (i + 2 < Histogram::kBucketCount) {
      EXPECT_EQ(Histogram::bucket_index(bound * 1.0001), i + 1)
          << "just-above value, i=" << i;
    }
  }
  // The last bucket is +Inf and swallows everything beyond the last finite
  // bound.
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBucketCount - 1)));
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
}

#ifndef JAAL_TELEMETRY_DISABLED

TEST(Telemetry, HistogramObserveAndSnapshot) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("jaal_test_latency_ms");
  h.observe(0.5);
  h.observe(2.0);
  h.observe(64.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 66.5);
  EXPECT_DOUBLE_EQ(s.max, 64.0);
  std::uint64_t total = 0;
  for (std::uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(0.5)], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(2.0)], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(64.0)], 1u);
}

TEST(Telemetry, RegistryReturnsStableHandlesAndRejectsKindClashes) {
  MetricsRegistry reg;
  Counter& a = reg.counter("jaal_test_x_total");
  Counter& b = reg.counter("jaal_test_x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW((void)reg.gauge("jaal_test_x_total"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("jaal_test_x_total"), std::invalid_argument);
}

TEST(Telemetry, DisabledRegistryDropsWrites) {
  MetricsRegistry reg;
  Counter& c = reg.counter("jaal_test_total");
  Histogram& h = reg.histogram("jaal_test_hist");
  reg.set_enabled(false);
  c.add(5);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  reg.set_enabled(true);
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition, parsed back line by line.

struct PromSample {
  std::string name;                       // base name (before '{')
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

std::vector<PromSample> parse_prometheus(const std::string& text) {
  std::vector<PromSample> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    PromSample s;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    s.value = std::stod(line.substr(space + 1));
    std::string series = line.substr(0, space);
    const std::size_t brace = series.find('{');
    if (brace == std::string::npos) {
      s.name = series;
    } else {
      s.name = series.substr(0, brace);
      std::string labels = series.substr(brace + 1, series.size() - brace - 2);
      std::size_t pos = 0;
      while (pos < labels.size()) {
        const std::size_t eq = labels.find('=', pos);
        const std::size_t q1 = labels.find('"', eq);
        const std::size_t q2 = labels.find('"', q1 + 1);
        s.labels[labels.substr(pos, eq - pos)] =
            labels.substr(q1 + 1, q2 - q1 - 1);
        pos = labels.find(',', q2);
        pos = pos == std::string::npos ? labels.size() : pos + 1;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

const PromSample* find_sample(const std::vector<PromSample>& samples,
                              const std::string& name,
                              const std::map<std::string, std::string>& labels) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

TEST(Telemetry, PrometheusExpositionRoundTrips) {
  MetricsRegistry reg;
  reg.counter("jaal_test_events_total").add(7);
  reg.counter("jaal_test_drops_total{link=\"m0-ctrl\"}").add(3);
  reg.counter("jaal_test_drops_total{link=\"m1-ctrl\"}").add(4);
  reg.gauge("jaal_test_depth").set(1234);
  Histogram& h = reg.histogram("jaal_test_ms");
  h.observe(0.5);
  h.observe(3.0);

  const std::string text = prometheus_text(reg.snapshot());
  const auto samples = parse_prometheus(text);

  const auto* events = find_sample(samples, "jaal_test_events_total", {});
  ASSERT_NE(events, nullptr);
  EXPECT_DOUBLE_EQ(events->value, 7.0);

  // Embedded labels are split onto the sample, one series per label set.
  const auto* d0 =
      find_sample(samples, "jaal_test_drops_total", {{"link", "m0-ctrl"}});
  const auto* d1 =
      find_sample(samples, "jaal_test_drops_total", {{"link", "m1-ctrl"}});
  ASSERT_NE(d0, nullptr);
  ASSERT_NE(d1, nullptr);
  EXPECT_DOUBLE_EQ(d0->value, 3.0);
  EXPECT_DOUBLE_EQ(d1->value, 4.0);

  const auto* depth = find_sample(samples, "jaal_test_depth", {});
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 1234.0);

  // Histogram series: cumulative buckets, +Inf bucket == count, sum/count.
  const auto* count = find_sample(samples, "jaal_test_ms_count", {});
  const auto* sum = find_sample(samples, "jaal_test_ms_sum", {});
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 2.0);
  EXPECT_DOUBLE_EQ(sum->value, 3.5);
  const auto* inf_bucket =
      find_sample(samples, "jaal_test_ms_bucket", {{"le", "+Inf"}});
  ASSERT_NE(inf_bucket, nullptr);
  EXPECT_DOUBLE_EQ(inf_bucket->value, 2.0);
  // Cumulative counts never decrease as le grows.
  double prev = 0.0;
  for (const auto& s : samples) {
    if (s.name != "jaal_test_ms_bucket") continue;
    EXPECT_GE(s.value, prev);
    prev = s.value;
  }

  // # TYPE comments name the base metric, once per base.
  EXPECT_NE(text.find("# TYPE jaal_test_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jaal_test_drops_total counter"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE jaal_test_drops_total counter"),
            text.rfind("# TYPE jaal_test_drops_total counter"));
}

#endif  // JAAL_TELEMETRY_DISABLED

TEST(Telemetry, LabelValueEscaping) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(escape_label_value(""), "");
}

TEST(Telemetry, WithLabelComposesAndAppends) {
  EXPECT_EQ(with_label("jaal_alerts_total", "sid", "1000002"),
            "jaal_alerts_total{sid=\"1000002\"}");
  // Appending to an existing label set keeps prior labels intact.
  EXPECT_EQ(with_label("jaal_alerts_total{sid=\"7\"}", "rule", "x"),
            "jaal_alerts_total{sid=\"7\",rule=\"x\"}");
  // Hostile values cannot break out of the quoted label value.
  EXPECT_EQ(with_label("m", "msg", "a\"b\\c\nd"),
            "m{msg=\"a\\\"b\\\\c\\nd\"}");
}

#ifndef JAAL_TELEMETRY_DISABLED

TEST(Telemetry, EscapedLabelStaysInsideItsQuotesInTheExposition) {
  MetricsRegistry reg;
  reg.counter(with_label("jaal_test_labeled_total", "msg", "quote\"and\\slash"))
      .add(5);
  const std::string text = prometheus_text(reg.snapshot());
  // The hostile value appears escaped, inside one quoted label value, and
  // the series still parses as a counter sample.
  EXPECT_NE(
      text.find("jaal_test_labeled_total{msg=\"quote\\\"and\\\\slash\"} 5"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE jaal_test_labeled_total counter"),
            std::string::npos);
}

TEST(Telemetry, HelpLinesCuratedAndConventionFallback) {
  // Curated families get their one-line description; unknown families fall
  // back to what the naming convention guarantees.
  EXPECT_EQ(metric_help("jaal_faults_packets_lost_total"),
            "Ingress packets lost to crashed monitors, never observed.");
  EXPECT_EQ(metric_help("jaal_test_unknown_total"),
            "Monotonic event count.");
  EXPECT_EQ(metric_help("jaal_test_unknown_ms"),
            "Wall-clock measurement in milliseconds.");
  EXPECT_EQ(metric_help("jaal_test_unknown_depth"), "Point-in-time value.");

  MetricsRegistry reg;
  reg.counter("jaal_faults_packets_lost_total").add(3);
  const std::string text = prometheus_text(reg.snapshot());
  // Exactly one # HELP line per family, before its # TYPE line.
  const auto help_at =
      text.find("# HELP jaal_faults_packets_lost_total Ingress packets");
  ASSERT_NE(help_at, std::string::npos);
  EXPECT_EQ(text.find("# HELP jaal_faults_packets_lost_total", help_at + 1),
            std::string::npos);
  EXPECT_LT(help_at, text.find("# TYPE jaal_faults_packets_lost_total"));
}

#endif  // JAAL_TELEMETRY_DISABLED

TEST(Telemetry, SnapshotDiffDeltasCountersKeepsGauges) {
  auto entry = [](const std::string& name, MetricKind kind) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = kind;
    return e;
  };
  MetricsSnapshot prev;
  prev.entries.push_back(entry("jaal_a_total", MetricKind::kCounter));
  prev.entries.back().counter = 10;
  prev.entries.push_back(entry("jaal_depth", MetricKind::kGauge));
  prev.entries.back().gauge = 5;
  prev.entries.push_back(entry("jaal_hist", MetricKind::kHistogram));
  prev.entries.back().histogram.count = 2;
  prev.entries.back().histogram.sum = 1.0;
  prev.entries.back().histogram.max = 0.75;
  prev.entries.back().histogram.buckets = {2, 0, 0};

  MetricsSnapshot cur = prev;
  cur.entries[0].counter = 17;
  cur.entries[1].gauge = -3;
  cur.entries[2].histogram.count = 5;
  cur.entries[2].histogram.sum = 4.5;
  cur.entries[2].histogram.max = 2.5;
  cur.entries[2].histogram.buckets = {2, 3, 0};
  cur.entries.push_back(entry("jaal_new_total", MetricKind::kCounter));
  cur.entries.back().counter = 4;

  const MetricsSnapshot d = cur.diff(prev);
  ASSERT_EQ(d.entries.size(), 4u);
  EXPECT_EQ(d.entries[0].counter, 7u);           // counter: delta
  EXPECT_EQ(d.entries[1].gauge, -3);             // gauge: point-in-time
  EXPECT_EQ(d.entries[2].histogram.count, 3u);   // histogram: count delta
  EXPECT_DOUBLE_EQ(d.entries[2].histogram.sum, 3.5);
  EXPECT_DOUBLE_EQ(d.entries[2].histogram.max, 2.5);  // lifetime max
  const std::vector<std::uint64_t> want_buckets = {0, 3, 0};
  EXPECT_EQ(d.entries[2].histogram.buckets, want_buckets);
  EXPECT_EQ(d.entries[3].counter, 4u);           // absent in prev: itself

  // A counter below its previous value means the registry was reset; the
  // delta clamps to the current value rather than wrapping.
  MetricsSnapshot reset = prev;
  reset.entries[0].counter = 2;
  EXPECT_EQ(reset.diff(prev).entries[0].counter, 2u);
}

}  // namespace
}  // namespace jaal::telemetry
