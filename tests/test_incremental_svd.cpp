#include "linalg/incremental_svd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "summarize/summarizer.hpp"
#include "summarize/summary.hpp"
#include "trace/background.hpp"

namespace jaal::linalg {
namespace {

/// Batches resembling normalized header vectors: [0,1] entries with a few
/// dominant directions, so the spectrum decays like the paper's Fig. 10.
Matrix batch(std::size_t n, std::size_t p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 0.05);
  std::vector<double> profile(p);
  std::mt19937_64 profile_rng(7);  // shared across seeds: similar batches
  for (double& v : profile) v = unit(profile_rng);
  Matrix x(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = 0.5 + 0.5 * unit(rng);
    for (std::size_t j = 0; j < p; ++j) {
      const double v = profile[j] * scale + noise(rng);
      x(i, j) = std::min(1.0, std::max(0.0, v));
    }
  }
  return x;
}

double frobenius_gap(const Matrix& a, const Matrix& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

TEST(IncrementalSvd, ValidatesInput) {
  EXPECT_THROW(IncrementalSvd(0), std::invalid_argument);
  IncrementalSvd inc(6);
  EXPECT_THROW((void)inc.update(Matrix{}, 1), std::invalid_argument);
  EXPECT_THROW((void)inc.update(Matrix(10, 5), 1), std::invalid_argument);
  EXPECT_THROW((void)inc.update(Matrix(10, 6), 0), std::invalid_argument);
  EXPECT_THROW((void)inc.update(Matrix(10, 6), 7), std::invalid_argument);
}

TEST(IncrementalSvd, ColdUpdateMatchesExactSvd) {
  const Matrix x = batch(150, 10, 1);
  IncrementalSvd inc(10);
  const SvdResult got = inc.update(x, 10);
  const SvdResult want = svd(x);
  ASSERT_EQ(got.sigma.size(), want.sigma.size());
  for (std::size_t i = 0; i < want.sigma.size(); ++i) {
    EXPECT_NEAR(got.sigma[i], want.sigma[i], 1e-8 * (1.0 + want.sigma[0]))
        << "i=" << i;
  }
  // The factors reproduce the batch, not just the spectrum.
  EXPECT_LT(frobenius_gap(got.reconstruct(), x), 1e-6);
}

TEST(IncrementalSvd, TruncatedFactorsReconstructLikeExact) {
  const Matrix x = batch(200, 12, 2);
  const std::size_t r = 8;
  IncrementalSvd inc(12);
  const SvdResult got = inc.update(x, r);
  const SvdResult want = truncated_svd(x, r);
  EXPECT_EQ(got.u.rows(), 200u);
  EXPECT_EQ(got.u.cols(), r);
  EXPECT_EQ(got.v.rows(), 12u);
  EXPECT_EQ(got.v.cols(), r);
  const double got_err = frobenius_gap(got.reconstruct(), x);
  const double want_err = frobenius_gap(want.reconstruct(), x);
  // Same truncation error up to Gram-route roundoff.
  EXPECT_NEAR(got_err, want_err, 1e-6 + 0.01 * want_err);
}

TEST(IncrementalSvd, WarmStartConvergesInFewerSweeps) {
  const Matrix x = batch(300, 12, 10);
  IncrementalSvd inc(12);
  (void)inc.update(x, 8);
  const int cold = inc.last_sweeps();
  EXPECT_TRUE(inc.warm());  // warm after the first update
  EXPECT_GE(cold, 2);       // the cold solve actually had work to do
  // A statistically identical epoch (here: literally the same batch, the
  // limiting case of "traffic looks like last epoch") arrives with the
  // Gram matrix already diagonal in the accumulated basis: the warm
  // eigensolve detects convergence in one sweep.
  (void)inc.update(x, 8);
  EXPECT_LE(inc.last_sweeps(), 2);
  EXPECT_LT(inc.last_sweeps(), cold);
}

TEST(IncrementalSvd, WarmUpdatesStayAccurate) {
  IncrementalSvd inc(10);
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    const Matrix x = batch(150, 10, 20 + epoch);
    const SvdResult got = inc.update(x, 10);
    const SvdResult want = svd(x);
    for (std::size_t i = 0; i < want.sigma.size(); ++i) {
      EXPECT_NEAR(got.sigma[i], want.sigma[i], 1e-7 * (1.0 + want.sigma[0]))
          << "epoch=" << epoch << " i=" << i;
    }
  }
}

TEST(IncrementalSvd, ResetColdStarts) {
  IncrementalSvd inc(8);
  (void)inc.update(batch(100, 8, 3), 4);
  EXPECT_TRUE(inc.warm());
  inc.reset();
  EXPECT_FALSE(inc.warm());
  EXPECT_EQ(inc.last_sweeps(), 0);
}

TEST(IncrementalSvd, DeterministicAcrossInstances) {
  IncrementalSvd a(10);
  IncrementalSvd b(10);
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    const Matrix x = batch(120, 10, 30 + epoch);
    const SvdResult ra = a.update(x, 6);
    const SvdResult rb = b.update(x, 6);
    EXPECT_EQ(ra.sigma, rb.sigma);
    EXPECT_TRUE(std::equal(ra.u.data().begin(), ra.u.data().end(),
                           rb.u.data().begin()));
    EXPECT_TRUE(std::equal(ra.v.data().begin(), ra.v.data().end(),
                           rb.v.data().begin()));
  }
}

TEST(IncrementalSvd, SummarizerIncrementalBackendIsDeterministic) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 4);
  const auto packets = trace::take(gen, 800);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 800;
  cfg.min_batch = 400;
  cfg.rank = 12;
  cfg.centroids = 64;
  cfg.svd_backend = summarize::SvdBackend::kIncremental;
  summarize::Summarizer a(cfg);
  summarize::Summarizer b(cfg);
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto oa = a.summarize(packets);
    const auto ob = b.summarize(packets);
    EXPECT_EQ(oa.assignment, ob.assignment) << "epoch=" << epoch;
    EXPECT_EQ(summarize::serialize(oa.summary),
              summarize::serialize(ob.summary));
  }
}

TEST(IncrementalSvd, SummarizerIncrementalBackendKeepsFidelity) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 4);
  const auto packets = trace::take(gen, 800);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 800;
  cfg.min_batch = 400;
  cfg.rank = 12;
  cfg.centroids = 64;
  summarize::Summarizer exact(cfg);
  cfg.svd_backend = summarize::SvdBackend::kIncremental;
  summarize::Summarizer incremental(cfg);
  const auto exact_out = exact.summarize(packets);
  // Warm the basis, then measure the steady-state epoch.
  (void)incremental.summarize(packets);
  const auto inc_out = incremental.summarize(packets);
  ASSERT_TRUE(exact_out.fidelity.has_value());
  ASSERT_TRUE(inc_out.fidelity.has_value());
  EXPECT_NEAR(inc_out.fidelity->svd_energy_retained,
              exact_out.fidelity->svd_energy_retained, 1e-6);
}

TEST(IncrementalSvd, SummarizerMiniBatchBackendWarmsAcrossEpochs) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 6);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 700;
  cfg.min_batch = 350;
  cfg.rank = 12;
  cfg.centroids = 48;
  cfg.cluster_backend = summarize::ClusterBackend::kMiniBatch;
  summarize::Summarizer a(cfg);
  summarize::Summarizer b(cfg);
  double first_inertia = 0.0;
  double last_inertia = 0.0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const auto packets = trace::take(gen, 700);
    const auto oa = a.summarize(packets);
    const auto ob = b.summarize(packets);
    // Deterministic across instances...
    EXPECT_EQ(oa.assignment, ob.assignment) << "epoch=" << epoch;
    EXPECT_EQ(summarize::serialize(oa.summary),
              summarize::serialize(ob.summary));
    // ...and structurally sound: every packet maps to a live centroid.
    ASSERT_TRUE(oa.fidelity.has_value());
    if (epoch == 0) first_inertia = oa.fidelity->kmeans_inertia;
    last_inertia = oa.fidelity->kmeans_inertia;
  }
  // Warm centroids must not be catastrophically worse than the first
  // epoch's (they should be in the same ballpark or better).
  EXPECT_LT(last_inertia, first_inertia * 3.0 + 1e-9);
}

}  // namespace
}  // namespace jaal::linalg
