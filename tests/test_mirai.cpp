#include "attack/mirai.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jaal::attack {
namespace {

using packet::AttackType;
using packet::TcpFlag;

AttackConfig scan_config() {
  AttackConfig cfg;
  cfg.packets_per_second = 2000.0;
  cfg.source_count = 50;
  cfg.seed = 11;
  return cfg;
}

TEST(MiraiScan, TargetsTelnetPorts) {
  MiraiScan scan(scan_config());
  std::size_t p23 = 0, p2323 = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto pkt = scan.next();
    EXPECT_EQ(pkt.label, AttackType::kMiraiScan);
    EXPECT_EQ(pkt.tcp.flags, packet::flag_bit(TcpFlag::kSyn));
    if (pkt.tcp.dst_port == 23) {
      ++p23;
    } else {
      EXPECT_EQ(pkt.tcp.dst_port, 2323);
      ++p2323;
    }
  }
  // scanner.c ratio: roughly one in ten probes goes to 2323.
  EXPECT_GT(p23, p2323 * 5);
  EXPECT_GT(p2323, 0u);
}

TEST(MiraiScan, SequenceEqualsDestination) {
  // The well-known Mirai fingerprint: TCP seq == dst IP.
  MiraiScan scan(scan_config());
  for (int i = 0; i < 200; ++i) {
    const auto pkt = scan.next();
    EXPECT_EQ(pkt.tcp.seq, pkt.ip.dst_ip);
  }
}

TEST(MiraiScan, DestinationsSpreadWide) {
  MiraiScan scan(scan_config());
  std::set<std::uint8_t> first_octets;
  for (int i = 0; i < 2000; ++i) {
    first_octets.insert(static_cast<std::uint8_t>(scan.next().ip.dst_ip >> 24));
  }
  EXPECT_GT(first_octets.size(), 100u);  // near-whole-IPv4 scanning
}

TEST(MiraiScan, UsesProvidedBotList) {
  const std::vector<std::uint32_t> bots = {packet::make_ip(1, 2, 3, 4),
                                           packet::make_ip(5, 6, 7, 8)};
  MiraiScan scan(scan_config(), bots);
  for (int i = 0; i < 100; ++i) {
    const auto pkt = scan.next();
    EXPECT_TRUE(pkt.ip.src_ip == bots[0] || pkt.ip.src_ip == bots[1]);
  }
}

TEST(MiraiOutbreak, UncheckedInfectionGrows) {
  MiraiConfig cfg;
  cfg.duration = 60.0;
  const auto trajectory = simulate_outbreak(cfg, ResponsePolicy{});
  ASSERT_FALSE(trajectory.empty());
  EXPECT_EQ(trajectory.front().total_infected, 1u);
  // Unchecked, the epidemic should compromise most vulnerable devices.
  EXPECT_GT(trajectory.back().total_infected, cfg.vulnerable_count / 2);
  // Monotone non-decreasing cumulative infections.
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    EXPECT_GE(trajectory[i].total_infected, trajectory[i - 1].total_infected);
  }
}

TEST(MiraiOutbreak, ResponseCapsInfections) {
  MiraiConfig cfg;
  cfg.duration = 60.0;
  ResponsePolicy response;
  response.enabled = true;
  response.detection_latency = 3.0;
  response.detection_probability = 0.95;
  const auto unchecked = simulate_outbreak(cfg, ResponsePolicy{});
  const auto defended = simulate_outbreak(cfg, response);
  // Fig. 8: with detection and shut-off the outbreak stays far below the
  // unchecked trajectory (paper: never above 50 of 150).
  EXPECT_LT(defended.back().total_infected,
            unchecked.back().total_infected / 2);
  EXPECT_LE(defended.back().total_infected, 60u);
  EXPECT_GT(defended.back().shut_off, 0u);
}

TEST(MiraiOutbreak, InfectionsNeverExceedVulnerablePopulation) {
  MiraiConfig cfg;
  cfg.duration = 120.0;
  const auto trajectory = simulate_outbreak(cfg, ResponsePolicy{});
  for (const auto& point : trajectory) {
    EXPECT_LE(point.total_infected, cfg.vulnerable_count);
    EXPECT_LE(point.active_bots + point.shut_off, point.total_infected);
  }
}

TEST(MiraiOutbreak, DeterministicForSeed) {
  MiraiConfig cfg;
  cfg.duration = 30.0;
  const auto a = simulate_outbreak(cfg, ResponsePolicy{});
  const auto b = simulate_outbreak(cfg, ResponsePolicy{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_infected, b[i].total_infected);
  }
}

}  // namespace
}  // namespace jaal::attack
