#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace jaal::core {
namespace {

TEST(Confusion, CountsRoute) {
  ConfusionCounts c;
  c.add(true, true);    // tp
  c.add(true, false);   // fp
  c.add(false, true);   // fn
  c.add(false, false);  // tn
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(Confusion, EmptyClassesAreZero) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
}

TEST(Confusion, Accumulation) {
  ConfusionCounts a, b;
  a.add(true, true);
  b.add(false, false);
  b.add(true, false);
  a += b;
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.tp, 1u);
  EXPECT_EQ(a.fp, 1u);
  EXPECT_EQ(a.tn, 1u);
}

TEST(Roc, PerfectClassifierAucIsOne) {
  RocCurve curve;
  curve.points = {{0.1, 1.0, 0.0, 1.0}};
  EXPECT_NEAR(curve.auc(), 1.0, 1e-12);
}

TEST(Roc, DiagonalAucIsHalf) {
  RocCurve curve;
  curve.points = {{0.1, 1.0, 0.25, 0.25},
                  {0.2, 1.0, 0.5, 0.5},
                  {0.3, 1.0, 0.75, 0.75}};
  EXPECT_NEAR(curve.auc(), 0.5, 1e-12);
}

TEST(Roc, AucHandlesUnsortedPoints) {
  RocCurve curve;
  curve.points = {{0.3, 1.0, 0.75, 0.9}, {0.1, 1.0, 0.25, 0.5}};
  const double auc = curve.auc();
  EXPECT_GT(auc, 0.5);
  EXPECT_LE(auc, 1.0);
}

TEST(Roc, TprAtFprLimit) {
  RocCurve curve;
  curve.points = {{0.1, 1.0, 0.02, 0.6},
                  {0.2, 1.0, 0.08, 0.85},
                  {0.3, 1.0, 0.25, 0.97}};
  EXPECT_DOUBLE_EQ(curve.tpr_at_fpr(0.10), 0.85);
  EXPECT_DOUBLE_EQ(curve.tpr_at_fpr(0.01), 0.0);
  EXPECT_DOUBLE_EQ(curve.tpr_at_fpr(1.0), 0.97);
}

TEST(Roc, EnvelopeKeepsBestTprPerFpr) {
  RocCurve curve;
  curve.points = {{0.1, 1.0, 0.05, 0.4},
                  {0.1, 0.5, 0.05, 0.7},   // dominates previous
                  {0.2, 1.0, 0.10, 0.6},   // dominated (lower tpr, higher fpr)
                  {0.2, 0.5, 0.20, 0.9}};
  const RocCurve env = curve.envelope();
  ASSERT_EQ(env.points.size(), 2u);
  EXPECT_DOUBLE_EQ(env.points[0].tpr, 0.7);
  EXPECT_DOUBLE_EQ(env.points[1].tpr, 0.9);
}

TEST(Comm, OverheadRatio) {
  CommStats s;
  s.raw_header_bytes = 1000;
  s.summary_bytes = 300;
  s.feedback_bytes = 50;
  EXPECT_DOUBLE_EQ(s.overhead_ratio(), 0.35);
  EXPECT_DOUBLE_EQ(s.savings(), 0.65);
}

TEST(Comm, ZeroBaselineIsZeroRatio) {
  CommStats s;
  s.summary_bytes = 10;
  EXPECT_DOUBLE_EQ(s.overhead_ratio(), 0.0);
}

TEST(Comm, Accumulation) {
  CommStats a, b;
  a.raw_header_bytes = 100;
  a.summary_bytes = 30;
  b.raw_header_bytes = 100;
  b.feedback_bytes = 10;
  a += b;
  EXPECT_EQ(a.raw_header_bytes, 200u);
  EXPECT_DOUBLE_EQ(a.overhead_ratio(), 0.2);
}

}  // namespace
}  // namespace jaal::core
