// Determinism contract of the sharded inference tier: at MergePolicy::kExact
// the deployment's observable output — alerts, provenance, store bytes, the
// offline doctor timeline — is byte-identical at every shard count and every
// thread count, under clean and faulted scenarios alike.  The one documented
// exception: a sharded store's EpochMeta commit records carry a trailing
// shard-count word (store.hpp), so EpochMeta comparison is field-wise with
// shard_count checked against the writing tier, not byte-wise.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "inference/alert_json.hpp"
#include "shard/hash_ring.hpp"
#include "shard/tier.hpp"
#include "store/doctor.hpp"
#include "store/replay.hpp"
#include "store/store.hpp"
#include "trace/mix.hpp"

namespace jaal::core {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("jaal_shard_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

std::vector<rules::Rule> ruleset() {
  return rules::parse_rules(rules::default_ruleset_text(),
                            evaluation_rule_vars());
}

// ------------------------------------------------------------- hash ring

TEST(HashRing, SingleShardOwnsEverything) {
  shard::ShardingConfig cfg;
  shard::HashRing ring(cfg);
  for (summarize::MonitorId m = 0; m < 100; ++m) {
    EXPECT_EQ(ring.owner(m), 0u);
  }
}

TEST(HashRing, OwnershipIsDeterministicAndCoversAllShards) {
  shard::ShardingConfig cfg;
  cfg.shards = 4;
  shard::HashRing a(cfg), b(cfg);
  std::vector<std::size_t> hits(cfg.shards, 0);
  for (summarize::MonitorId m = 0; m < 64; ++m) {
    const std::size_t owner = a.owner(m);
    EXPECT_EQ(owner, b.owner(m)) << "monitor " << m;
    ASSERT_LT(owner, cfg.shards);
    ++hits[owner];
  }
  // 16 virtual nodes per shard spread 64 monitors over all 4 shards.
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " owns nothing";
  }
}

TEST(HashRing, SeedChangesThePartition) {
  shard::ShardingConfig a, b;
  a.shards = b.shards = 8;
  b.hash_seed = a.hash_seed + 1;
  shard::HashRing ra(a), rb(b);
  std::size_t moved = 0;
  for (summarize::MonitorId m = 0; m < 256; ++m) {
    moved += ra.owner(m) != rb.owner(m) ? 1 : 0;
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRing, ConfigValidates) {
  shard::ShardingConfig cfg;
  cfg.shards = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.shards = 2;
  cfg.virtual_nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.virtual_nodes = 16;
  cfg.merge = shard::MergePolicy::kReduced;
  cfg.reduce_rows = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.reduce_rows = 32;
  EXPECT_NO_THROW(cfg.validate());
}

// ------------------------------------------------- aggregation policy

TEST(AggregationPolicy, NegativeDeadlineThrowsAtConstruction) {
  JaalConfig cfg;
  cfg.aggregation.deadline_s = -1.0;
  EXPECT_THROW(JaalController(cfg, ruleset()), std::invalid_argument);
}

TEST(InferenceTier, RejectsShardFaultWindowsOutOfRange) {
  shard::ShardingConfig sharding;
  sharding.shards = 2;
  faults::ShardCrashWindow w;
  w.shard = 2;  // >= shards
  EXPECT_THROW(shard::InferenceTier(sharding, ruleset(), {}, {}, {w}),
               std::invalid_argument);
  w.shard = 0;
  w.crash_epoch = 5;
  w.restart_epoch = 3;
  EXPECT_THROW(shard::InferenceTier(sharding, ruleset(), {}, {}, {w}),
               std::invalid_argument);
}

// ------------------------------------------------- epoch-meta codec

TEST(EpochMetaCodec, SingleShardEncodingIsThePreShardingFormat) {
  store::EpochMeta m{7, 3.5, 1200, 0.75, 0.25};
  const auto bytes = store::encode_epoch_meta(m);
  EXPECT_EQ(bytes.size(), 32u);
  const auto back = store::decode_epoch_meta(7, bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->shard_count, 1u);
  EXPECT_EQ(back->packets, 1200u);
  EXPECT_EQ(back->report_fraction, 0.75);
}

TEST(EpochMetaCodec, ShardedEncodingRoundTripsAndRejectsGarbage) {
  store::EpochMeta m{9, 4.0, 800, 1.0, 0.0};
  m.shard_count = 4;
  const auto bytes = store::encode_epoch_meta(m);
  EXPECT_EQ(bytes.size(), 40u);
  const auto back = store::decode_epoch_meta(9, bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->shard_count, 4u);
  // A zero shard count and odd sizes are malformed.
  auto zero = bytes;
  for (std::size_t i = 32; i < 40; ++i) zero[i] = 0;
  EXPECT_FALSE(store::decode_epoch_meta(9, zero).has_value());
  auto truncated = bytes;
  truncated.resize(36);
  EXPECT_FALSE(store::decode_epoch_meta(9, truncated).has_value());
}

// ------------------------------------------- sharded deployment harness

struct ShardRun {
  std::vector<EpochResult> epochs;
  std::vector<std::string> alert_lines;       ///< Stored alert JSON.
  std::vector<std::string> provenance_lines;  ///< Stored provenance JSON.
  /// Canonical rendering of every record in the summaries log, with
  /// EpochMeta decoded (shard_count separately asserted, not rendered).
  std::vector<std::string> summary_records;
  /// Raw ops-log records (kind/epoch/payload bytes, hex).
  std::vector<std::string> ops_records;
  std::string doctor_timeline;
  std::uint64_t doctor_shard_count = 1;
};

constexpr double kDuration = 0.3;

JaalConfig shard_config(std::size_t shards, std::size_t threads,
                        const std::string& dir, telemetry::Telemetry* tel) {
  JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 5;
  cfg.epoch_seconds = 0.04;
  cfg.threads = threads;
  // Strict/loose pair so case-3 feedback (serial, root-side) runs sharded.
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.feedback_enabled = true;
  cfg.sharding.shards = shards;
  cfg.store_dir = dir;
  cfg.store_metrics = true;
  cfg.telemetry = tel;
  return cfg;
}

ShardRun run_sharded(std::size_t shards, std::size_t threads,
                     const faults::FaultScenario& scenario,
                     const std::string& dir) {
  telemetry::Telemetry tel;
  JaalConfig cfg = shard_config(shards, threads, dir, &tel);
  cfg.faults = scenario;

  ShardRun out;
  {
    JaalController controller(cfg, ruleset());
    trace::BackgroundTraffic bg(trace::trace1_profile(), 11);
    attack::AttackConfig acfg;
    acfg.victim_ip = evaluation_victim_ip();
    acfg.start_time = 0.03;
    acfg.packets_per_second = 5000.0;
    acfg.seed = 3;
    attack::SynFlood flood(acfg);
    trace::TrafficMix mix(bg, {&flood}, 0.10);
    out.epochs = controller.run(mix, kDuration);
    EXPECT_FALSE(controller.store()->failed());
  }

  store::DeploymentStore reader({dir, cfg.store_epochs_per_shard},
                                /*writable=*/false);
  reader.each_alert_line(
      [&](std::uint64_t, std::uint32_t, std::string_view line) {
        out.alert_lines.emplace_back(line);
        return true;
      });
  reader.each_provenance_line(
      [&](std::uint64_t, std::uint32_t, std::string_view line) {
        out.provenance_lines.emplace_back(line);
        return true;
      });
  reader.summaries_log().for_each([&](const store::RecordView& rec) {
    std::ostringstream line;
    line.precision(17);
    if (rec.kind == store::RecordKind::kEpochMeta) {
      const auto meta = store::decode_epoch_meta(rec.epoch, rec.payload);
      EXPECT_TRUE(meta.has_value());
      if (meta) {
        // The shard-count word is the single allowed cross-shard-count
        // difference; every other field must line up byte-for-byte.
        EXPECT_EQ(meta->shard_count, shards) << "epoch " << rec.epoch;
        line << "meta epoch=" << meta->epoch << " end=" << meta->end_time
             << " packets=" << meta->packets
             << " rf=" << meta->report_fraction
             << " caution=" << meta->caution;
      }
    } else {
      line << "kind=" << static_cast<int>(rec.kind) << " epoch=" << rec.epoch
           << " stream=" << rec.stream << " bytes=";
      for (const std::uint8_t b : rec.payload) {
        line << std::hex << static_cast<int>(b) << std::dec;
      }
    }
    out.summary_records.push_back(line.str());
    return true;
  });
  reader.ops_log().for_each([&](const store::RecordView& rec) {
    std::ostringstream line;
    line << "kind=" << static_cast<int>(rec.kind) << " epoch=" << rec.epoch
         << " bytes=";
    for (const std::uint8_t b : rec.payload) {
      line << std::hex << static_cast<int>(b) << std::dec;
    }
    out.ops_records.push_back(line.str());
    return true;
  });

  store::StoreDiagnosisConfig dcfg;
  dcfg.observe = cfg.observe;
  const store::StoreDiagnosis diag = store::diagnose_store(reader, dcfg);
  out.doctor_timeline = diag.timeline_jsonl;
  out.doctor_shard_count = diag.shard_count;
  return out;
}

void expect_identical(const ShardRun& base, const ShardRun& got,
                      const std::string& what) {
  ASSERT_EQ(base.epochs.size(), got.epochs.size()) << what;
  std::size_t total_alerts = 0;
  for (std::size_t e = 0; e < base.epochs.size(); ++e) {
    const EpochResult& lhs = base.epochs[e];
    const EpochResult& rhs = got.epochs[e];
    EXPECT_EQ(lhs.end_time, rhs.end_time) << what << " epoch " << e;
    EXPECT_EQ(lhs.packets, rhs.packets) << what << " epoch " << e;
    EXPECT_EQ(lhs.monitors_reporting, rhs.monitors_reporting)
        << what << " epoch " << e;
    EXPECT_EQ(lhs.report_fraction, rhs.report_fraction)
        << what << " epoch " << e;
    ASSERT_EQ(lhs.alerts.size(), rhs.alerts.size()) << what << " epoch " << e;
    for (std::size_t a = 0; a < lhs.alerts.size(); ++a) {
      EXPECT_EQ(inference::alert_to_json(lhs.alerts[a], lhs.end_time),
                inference::alert_to_json(rhs.alerts[a], rhs.end_time))
          << what << " epoch " << e << " alert " << a;
    }
    total_alerts += lhs.alerts.size();
  }
  EXPECT_GT(total_alerts, 0u) << what << ": vacuously empty alert stream";
  EXPECT_EQ(base.alert_lines, got.alert_lines) << what;
  EXPECT_EQ(base.provenance_lines, got.provenance_lines) << what;
  EXPECT_EQ(base.summary_records, got.summary_records) << what;
  EXPECT_EQ(base.ops_records, got.ops_records) << what;
  EXPECT_EQ(base.doctor_timeline, got.doctor_timeline) << what;
}

// The acceptance matrix: shards in {1, 2, 4} x threads in {1, 2}, clean.
TEST(ShardEquivalence, CleanRunByteIdenticalAcrossShardsAndThreads) {
  TempDir base_dir("clean_base");
  const ShardRun base = run_sharded(1, 1, {}, base_dir.str());
  EXPECT_EQ(base.doctor_shard_count, 1u);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      TempDir dir("clean_s" + std::to_string(shards) + "_t" +
                  std::to_string(threads));
      const ShardRun got = run_sharded(shards, threads, {}, dir.str());
      expect_identical(base, got,
                       "shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads));
      EXPECT_EQ(got.doctor_shard_count, shards);
    }
  }
  // One shard at two threads against the serial baseline, too.
  TempDir dir("clean_s1_t2");
  expect_identical(base, run_sharded(1, 2, {}, dir.str()), "shards=1 t=2");
}

// Transport loss must not disturb the equivalence: the tier sees whatever
// the transport delivered, in the same order, at every shard count.
TEST(ShardEquivalence, DropFivePercentByteIdenticalAcrossShards) {
  faults::FaultScenario scenario;
  scenario.drop_rate = 0.15;
  scenario.seed = 77;

  TempDir base_dir("drop_base");
  const ShardRun base = run_sharded(1, 1, scenario, base_dir.str());
  std::size_t dropped = 0;
  for (const EpochResult& e : base.epochs) dropped += e.summaries_dropped;
  EXPECT_GT(dropped, 0u) << "scenario never dropped anything";

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    TempDir dir("drop_s" + std::to_string(shards));
    expect_identical(base, run_sharded(shards, 2, scenario, dir.str()),
                     "drop shards=" + std::to_string(shards));
  }
}

// ------------------------------------------------------- shard loss

TEST(ShardEquivalence, ShardCrashDegradesInsteadOfCrashing) {
  faults::FaultScenario scenario;
  faults::ShardCrashWindow w;
  w.shard = 1;
  w.crash_epoch = 2;
  w.restart_epoch = 4;
  scenario.shard_crashes.push_back(w);

  TempDir dir("crash_s4");
  const ShardRun got = run_sharded(4, 2, scenario, dir.str());

  std::size_t lost = 0;
  bool degraded_epoch = false;
  for (const EpochResult& e : got.epochs) {
    lost += e.summaries_lost_shard;
    ASSERT_EQ(e.shards.size(), 4u);
    std::size_t accepted = 0, shard_lost = 0;
    for (std::size_t s = 0; s < e.shards.size(); ++s) {
      EXPECT_EQ(e.shards[s].shard, s);
      accepted += e.shards[s].summaries;
      shard_lost += e.shards[s].summaries_lost;
      if (s == 1) {
        // Inside the window the shard is marked down; outside it is not.
        const bool in_window = e.shards[s].down;
        if (in_window) EXPECT_EQ(e.shards[s].summaries, 0u);
      } else {
        EXPECT_FALSE(e.shards[s].down);
      }
    }
    EXPECT_EQ(accepted, e.monitors_reporting + e.summaries_rolled_in);
    EXPECT_EQ(shard_lost, e.summaries_lost_shard);
    if (e.summaries_lost_shard > 0) {
      degraded_epoch = true;
      // Refused summaries count against the report fraction: thresholds
      // rescale instead of the epoch crashing or silently pretending.
      EXPECT_LT(e.report_fraction, 1.0);
      EXPECT_TRUE(e.degraded());
    }
  }
  EXPECT_GT(lost, 0u) << "crash window never refused a summary";
  EXPECT_TRUE(degraded_epoch);

  // The degraded run is still deterministic across thread counts.
  TempDir dir_serial("crash_s4_t1");
  expect_identical(got, run_sharded(4, 1, scenario, dir_serial.str()),
                   "shard crash threads=1");
}

// ---------------------------------------------- sharded store consumers

TEST(ShardEquivalence, ShardedStoreReplaysLikeSingleEngine) {
  // Replay equivalence is documented feedback-free, so run the live side
  // feedback-free too (store_config idiom from test_store.cpp).
  auto run_store = [&](std::size_t shards, const std::string& dir) {
    telemetry::Telemetry tel;
    JaalConfig cfg = shard_config(shards, 2, dir, &tel);
    cfg.engine.feedback_enabled = false;
    JaalController controller(cfg, ruleset());
    trace::BackgroundTraffic gen(trace::trace1_profile(), 11);
    return controller.run(gen, kDuration);
  };

  TempDir dir("replay_s4");
  const auto live = run_store(4, dir.str());

  JaalConfig cfg = shard_config(4, 1, dir.str(), nullptr);
  inference::InferenceEngine engine(ruleset(), cfg.engine);
  store::StoreReplayer replayer({dir.str(), cfg.store_epochs_per_shard});
  const auto replayed = replayer.replay(engine, cfg.engine.tau_c_scale);
  ASSERT_EQ(replayed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replayed[i].shard_count, 4u);
    ASSERT_EQ(replayed[i].alerts.size(), live[i].alerts.size())
        << "epoch " << i;
    for (std::size_t j = 0; j < live[i].alerts.size(); ++j) {
      EXPECT_EQ(inference::alert_to_json(replayed[i].alerts[j],
                                         replayed[i].end_time),
                inference::alert_to_json(live[i].alerts[j], live[i].end_time))
          << "epoch " << i << " alert " << j;
    }
  }
}

// ------------------------------------------------------ reduced merge

TEST(ShardEquivalence, ReducedMergeRunsAndBoundsTheAggregate) {
  TempDir dir("reduced");
  telemetry::Telemetry tel;
  JaalConfig cfg = shard_config(2, 2, dir.str(), &tel);
  cfg.sharding.merge = shard::MergePolicy::kReduced;
  cfg.sharding.reduce_rows = 24;
  JaalController controller(cfg, ruleset());
  trace::BackgroundTraffic gen(trace::trace1_profile(), 11);
  const auto epochs = controller.run(gen, kDuration);
  EXPECT_GE(epochs.size(), 5u);
  // The reduced path trades exactness for a bounded cross-shard aggregate;
  // it must run to completion — alerts are a different (documented)
  // contract, so only the degenerate failure modes are asserted.
  for (const EpochResult& e : epochs) {
    EXPECT_EQ(e.shards.size(), 2u);
  }
}

}  // namespace
}  // namespace jaal::core
