#include "trace/mix.hpp"

#include <gtest/gtest.h>

#include "attack/generators.hpp"

namespace jaal::trace {
namespace {

using packet::AttackType;

attack::AttackConfig attack_config(double rate = 50000.0) {
  attack::AttackConfig cfg;
  cfg.victim_ip = packet::make_ip(203, 0, 10, 5);
  cfg.packets_per_second = rate;
  cfg.seed = 5;
  return cfg;
}

TEST(TrafficMix, QuotaCapsAttackFraction) {
  BackgroundTraffic background(trace1_profile(), 1);
  // Attack offered at the same rate as background: without the cap it would
  // be ~50% of traffic.
  attack::DistributedSynFlood flood(attack_config());
  TrafficMix mix(background, {&flood}, 0.10);
  std::size_t attack_count = 0;
  const std::size_t total = 20000;
  for (std::size_t i = 0; i < total; ++i) {
    if (mix.next().label != AttackType::kNone) ++attack_count;
  }
  const double fraction = static_cast<double>(attack_count) / total;
  EXPECT_LE(fraction, 0.101);
  EXPECT_GT(fraction, 0.08);  // quota should be nearly saturated
  EXPECT_GT(mix.attack_dropped(), 0u);
}

TEST(TrafficMix, LowRateAttackNotThrottled) {
  BackgroundTraffic background(trace1_profile(), 2);
  attack::Sockstress slow(attack_config(100.0));  // 0.2% of background
  TrafficMix mix(background, {&slow}, 0.10);
  for (int i = 0; i < 10000; ++i) (void)mix.next();
  EXPECT_EQ(mix.attack_dropped(), 0u);
  EXPECT_GT(mix.attack_emitted(), 0u);
}

TEST(TrafficMix, TimestampsMonotone) {
  BackgroundTraffic background(trace1_profile(), 3);
  attack::SynFlood flood(attack_config(20000.0));
  TrafficMix mix(background, {&flood}, 0.10);
  double last = -1.0;
  for (int i = 0; i < 5000; ++i) {
    const auto pkt = mix.next();
    EXPECT_GE(pkt.timestamp, last);
    last = pkt.timestamp;
  }
}

TEST(TrafficMix, ZeroFractionSuppressesAllAttacks) {
  BackgroundTraffic background(trace1_profile(), 4);
  attack::SynFlood flood(attack_config());
  TrafficMix mix(background, {&flood}, 0.0);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(mix.next().label, AttackType::kNone);
  }
}

TEST(TrafficMix, NoAttackSourcesPassesBackgroundThrough) {
  BackgroundTraffic a(trace1_profile(), 5);
  BackgroundTraffic b(trace1_profile(), 5);
  TrafficMix mix(a, {}, 0.10);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(mix.next(), b.next());
  }
}

TEST(TrafficMix, CountsAreConsistent) {
  BackgroundTraffic background(trace1_profile(), 6);
  attack::PortScan scan(attack_config(30000.0));
  TrafficMix mix(background, {&scan}, 0.10);
  std::uint64_t attack_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    if (mix.next().label != AttackType::kNone) ++attack_seen;
  }
  EXPECT_EQ(mix.total_emitted(), 5000u);
  EXPECT_EQ(mix.attack_emitted(), attack_seen);
}

TEST(TrafficMix, InvalidConfigRejected) {
  BackgroundTraffic background(trace1_profile(), 7);
  EXPECT_THROW(TrafficMix(background, {}, -0.1), std::invalid_argument);
  EXPECT_THROW(TrafficMix(background, {}, 1.1), std::invalid_argument);
  EXPECT_THROW(TrafficMix(background, {nullptr}, 0.1), std::invalid_argument);
}

TEST(TrafficMix, MultipleAttackSourcesShareQuota) {
  BackgroundTraffic background(trace1_profile(), 8);
  attack::SynFlood flood(attack_config(30000.0));
  attack::PortScan scan(attack_config(30000.0));
  TrafficMix mix(background, {&flood, &scan}, 0.10);
  std::uint64_t attack_seen = 0;
  const std::size_t total = 20000;
  for (std::size_t i = 0; i < total; ++i) {
    if (mix.next().label != AttackType::kNone) ++attack_seen;
  }
  EXPECT_LE(static_cast<double>(attack_seen) / total, 0.101);
}

}  // namespace
}  // namespace jaal::trace
