#include "proto/messages.hpp"

#include <gtest/gtest.h>

#include "inference/aggregate.hpp"
#include "summarize/summarizer.hpp"
#include "trace/background.hpp"

namespace jaal::proto {
namespace {

summarize::MonitorSummary sample_summary() {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 1);
  const auto batch = trace::take(gen, 400);
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 400;
  cfg.min_batch = 1;
  cfg.rank = 12;
  cfg.centroids = 40;
  summarize::Summarizer s(cfg, 7);
  return s.summarize(batch).summary;
}

std::vector<packet::PacketRecord> sample_packets(std::size_t n) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), 2);
  return trace::take(gen, n);
}

TEST(Proto, LoadUpdateRoundTrip) {
  const LoadUpdate original{3, 12345.5, 678};
  const Message decoded = decode(encode(Message{original}));
  EXPECT_EQ(std::get<LoadUpdate>(decoded), original);
}

TEST(Proto, AlertRecordRoundTrip) {
  AlertRecord original;
  original.sid = 1000002;
  original.msg = "Distributed SYN flood; with \"quotes\" and ; semicolons";
  original.matched_packets = 1ULL << 40;  // exercises the u64 path
  original.distributed = true;
  original.via_feedback = true;
  const Message decoded = decode(encode(Message{original}));
  EXPECT_EQ(std::get<AlertRecord>(decoded), original);
}

TEST(Proto, RawRequestRoundTrip) {
  const RawPacketRequest original{42, {0, 7, 199}};
  const Message decoded = decode(encode(Message{original}));
  EXPECT_EQ(std::get<RawPacketRequest>(decoded), original);
}

TEST(Proto, RawResponseRoundTripPreservesHeaders) {
  RawPacketResponse original;
  original.epoch = 9;
  original.packets = sample_packets(25);
  const Message decoded = decode(encode(Message{original}));
  const auto& restored = std::get<RawPacketResponse>(decoded);
  EXPECT_EQ(restored.epoch, 9u);
  ASSERT_EQ(restored.packets.size(), original.packets.size());
  for (std::size_t i = 0; i < original.packets.size(); ++i) {
    packet::PacketRecord expected = original.packets[i];
    packet::PacketRecord actual = restored.packets[i];
    // Checksums are filled by the codec; labels never cross the wire.
    expected.ip.checksum = actual.ip.checksum;
    expected.tcp.checksum = actual.tcp.checksum;
    expected.label = packet::AttackType::kNone;
    EXPECT_EQ(actual.ip, expected.ip) << i;
    EXPECT_EQ(actual.tcp, expected.tcp) << i;
    EXPECT_DOUBLE_EQ(actual.timestamp, expected.timestamp);
  }
}

TEST(Proto, SummaryUploadRoundTrip) {
  SummaryUpload original;
  original.epoch = 5;
  original.summary = sample_summary();
  const Message decoded = decode(encode(Message{original}));
  const auto& restored = std::get<SummaryUpload>(decoded);
  EXPECT_EQ(restored.epoch, 5u);
  EXPECT_EQ(summarize::element_count(restored.summary),
            summarize::element_count(original.summary));
  EXPECT_EQ(summarize::serialize(restored.summary),
            summarize::serialize(original.summary));
}

TEST(Proto, DecodeRejectsCorruption) {
  auto frame = encode(Message{LoadUpdate{1, 2.0, 3}});
  // Truncated.
  auto cut = frame;
  cut.resize(cut.size() - 2);
  EXPECT_THROW((void)decode(cut), std::runtime_error);
  // Bad tag.
  auto bad_tag = frame;
  bad_tag[4] = 200;
  EXPECT_THROW((void)decode(bad_tag), std::runtime_error);
  // Length mismatch.
  auto extra = frame;
  extra.push_back(0);
  EXPECT_THROW((void)decode(extra), std::runtime_error);
}

TEST(FrameReader, ReassemblesAcrossArbitraryChunks) {
  // Encode several messages, concatenate, feed byte by byte.
  std::vector<std::uint8_t> stream;
  const auto append = [&stream](const Message& m) {
    const auto f = encode(m);
    stream.insert(stream.end(), f.begin(), f.end());
  };
  append(Message{LoadUpdate{1, 100.0, 10}});
  append(Message{RawPacketRequest{2, {5, 6}}});
  append(Message{AlertRecord{99, "x", 1, false, false}});

  FrameReader reader;
  std::vector<Message> received;
  for (std::uint8_t b : stream) {
    reader.feed(std::span<const std::uint8_t>(&b, 1));
    while (auto msg = reader.next()) received.push_back(std::move(*msg));
  }
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(std::get<LoadUpdate>(received[0]).monitor, 1u);
  EXPECT_EQ(std::get<RawPacketRequest>(received[1]).centroids.size(), 2u);
  EXPECT_EQ(std::get<AlertRecord>(received[2]).sid, 99u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, HandlesLargeChunksContainingManyFrames) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto f = encode(Message{LoadUpdate{i, static_cast<double>(i), i}});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  reader.feed(stream);
  std::uint32_t expected = 0;
  while (auto msg = reader.next()) {
    EXPECT_EQ(std::get<LoadUpdate>(*msg).monitor, expected++);
  }
  EXPECT_EQ(expected, 50u);
}

TEST(FrameReader, ThrowsOnGarbageStream) {
  FrameReader reader;
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x00};
  reader.feed(garbage);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST(Proto, FullControlPlaneExchange) {
  // Monitor side produces a summary upload and a raw response; controller
  // side consumes them through a FrameReader and uses the payloads with the
  // real inference types (end-to-end of the §7 wire path).
  FrameReader controller_rx;

  SummaryUpload upload;
  upload.epoch = 1;
  upload.summary = sample_summary();
  controller_rx.feed(encode(Message{upload}));
  controller_rx.feed(encode(Message{LoadUpdate{7, 5000.0, 120}}));

  auto msg1 = controller_rx.next();
  ASSERT_TRUE(msg1.has_value());
  inference::Aggregator aggregator;
  aggregator.add(std::get<SummaryUpload>(*msg1).summary);
  const auto aggregate = aggregator.take();
  EXPECT_GT(aggregate.rows(), 0u);

  auto msg2 = controller_rx.next();
  ASSERT_TRUE(msg2.has_value());
  EXPECT_EQ(std::get<LoadUpdate>(*msg2).monitor, 7u);
  EXPECT_FALSE(controller_rx.next().has_value());
}

}  // namespace
}  // namespace jaal::proto
