#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace jaal::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowViewWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.5;
  EXPECT_EQ(m(1, 2), 7.5);
  EXPECT_THROW((void)m.row(2), std::out_of_range);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t(2, 0), 3.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Multiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_EQ(c, (Matrix{{19, 22}, {43, 50}}));
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(a * Matrix::identity(3), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  EXPECT_EQ(a + b, (Matrix{{5, 5}, {5, 5}}));
  EXPECT_EQ(a - a, Matrix(2, 2));
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_THROW((void)(a + Matrix(3, 2)), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix(4, 4).frobenius_norm(), 0.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {3, 3}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
  EXPECT_THROW((void)a.max_abs_diff(Matrix(1, 2)), std::invalid_argument);
}

TEST(Matrix, Diagonal) {
  const double d[] = {1.0, 2.0, 3.0};
  Matrix m = Matrix::diagonal(d);
  EXPECT_EQ(m, (Matrix{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}}));
}

TEST(Matrix, TopRowsLeftCols) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  EXPECT_EQ(m.top_rows(2), (Matrix{{1, 2, 3}, {4, 5, 6}}));
  EXPECT_EQ(m.left_cols(2), (Matrix{{1, 2}, {4, 5}, {7, 8}}));
  EXPECT_THROW((void)m.top_rows(4), std::invalid_argument);
  EXPECT_THROW((void)m.left_cols(4), std::invalid_argument);
}

}  // namespace
}  // namespace jaal::linalg
