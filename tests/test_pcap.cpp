#include "trace/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/background.hpp"

namespace jaal::trace {
namespace {

using packet::PacketRecord;

std::vector<PacketRecord> sample_packets(std::size_t n) {
  BackgroundTraffic gen(trace1_profile(), 99);
  return take(gen, n);
}

TEST(Pcap, RoundTripPreservesHeaders) {
  const auto packets = sample_packets(50);
  std::stringstream buffer;
  write_pcap(buffer, packets);
  const auto restored = read_pcap(buffer);
  ASSERT_EQ(restored.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    PacketRecord expected = packets[i];
    PacketRecord actual = restored[i];
    // Checksums are filled in by the writer; labels don't survive pcap.
    expected.ip.checksum = actual.ip.checksum;
    expected.tcp.checksum = actual.tcp.checksum;
    expected.label = packet::AttackType::kNone;
    EXPECT_EQ(actual.ip, expected.ip) << "packet " << i;
    EXPECT_EQ(actual.tcp, expected.tcp) << "packet " << i;
  }
}

TEST(Pcap, TimestampsSurviveWithMicrosecondPrecision) {
  const auto packets = sample_packets(20);
  std::stringstream buffer;
  write_pcap(buffer, packets);
  const auto restored = read_pcap(buffer);
  ASSERT_EQ(restored.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(restored[i].timestamp, packets[i].timestamp, 1e-6);
  }
}

TEST(Pcap, EmptyCapture) {
  std::stringstream buffer;
  write_pcap(buffer, {});
  EXPECT_TRUE(read_pcap(buffer).empty());
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream buffer;
  buffer.write("XXXXXXXXXXXXXXXXXXXXXXXX", 24);
  EXPECT_THROW((void)read_pcap(buffer), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedGlobalHeader) {
  std::stringstream buffer;
  buffer.write("\xd4\xc3\xb2\xa1", 4);
  EXPECT_THROW((void)read_pcap(buffer), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedRecordBody) {
  const auto packets = sample_packets(2);
  std::stringstream buffer;
  write_pcap(buffer, packets);
  std::string data = buffer.str();
  data.resize(data.size() - 10);  // cut into the final record
  std::stringstream cut(data);
  EXPECT_THROW((void)read_pcap(cut), std::runtime_error);
}

TEST(Pcap, FileRoundTrip) {
  const auto packets = sample_packets(10);
  const std::string path = testing::TempDir() + "/jaal_test.pcap";
  write_pcap_file(path, packets);
  const auto restored = read_pcap_file(path);
  EXPECT_EQ(restored.size(), packets.size());
}

TEST(Pcap, MissingFileThrows) {
  EXPECT_THROW((void)read_pcap_file("/nonexistent/nope.pcap"),
               std::runtime_error);
}

}  // namespace
}  // namespace jaal::trace
