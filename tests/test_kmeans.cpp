#include "summarize/kmeans.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace jaal::summarize {
namespace {

/// Three well-separated Gaussian blobs in 2D.
linalg::Matrix blobs(std::size_t per_cluster, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.05);
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {10.0, 0.0}};
  linalg::Matrix x(3 * per_cluster, 2);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      x(c * per_cluster + i, 0) = centers[c][0] + noise(rng);
      x(c * per_cluster + i, 1) = centers[c][1] + noise(rng);
    }
  }
  return x;
}

TEST(KMeans, ValidatesArguments) {
  std::mt19937_64 rng(1);
  EXPECT_THROW((void)kmeans(linalg::Matrix{}, 2, rng), std::invalid_argument);
  EXPECT_THROW((void)kmeans(blobs(5, 1), 0, rng), std::invalid_argument);
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  std::mt19937_64 rng(2);
  const linalg::Matrix x = blobs(50, 2);
  const KMeansResult res = kmeans(x, 3, rng);
  ASSERT_EQ(res.centroids.rows(), 3u);
  // Each true center has a centroid within 0.5.
  const double centers[3][2] = {{0.0, 0.0}, {5.0, 5.0}, {10.0, 0.0}};
  for (const auto& center : centers) {
    double best = 1e300;
    for (std::size_t c = 0; c < 3; ++c) {
      const double dx = res.centroids(c, 0) - center[0];
      const double dy = res.centroids(c, 1) - center[1];
      best = std::min(best, dx * dx + dy * dy);
    }
    EXPECT_LT(best, 0.25);
  }
  // Balanced counts.
  for (std::uint64_t count : res.counts) EXPECT_EQ(count, 50u);
}

TEST(KMeans, CountsSumToN) {
  std::mt19937_64 rng(3);
  const KMeansResult res = kmeans(blobs(40, 3), 7, rng);
  std::uint64_t total = 0;
  for (std::uint64_t c : res.counts) total += c;
  EXPECT_EQ(total, 120u);
  EXPECT_EQ(res.assignment.size(), 120u);
}

TEST(KMeans, AssignmentConsistentWithCounts) {
  std::mt19937_64 rng(4);
  const linalg::Matrix x = blobs(30, 4);
  const KMeansResult res = kmeans(x, 5, rng);
  std::vector<std::uint64_t> recount(5, 0);
  for (std::size_t a : res.assignment) {
    ASSERT_LT(a, 5u);
    ++recount[a];
  }
  EXPECT_EQ(recount, res.counts);
}

TEST(KMeans, AssignmentIsNearest) {
  std::mt19937_64 rng(5);
  const linalg::Matrix x = blobs(20, 5);
  const KMeansResult res = kmeans(x, 4, rng);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double assigned = 0.0, best = 1e300;
    for (std::size_t c = 0; c < res.centroids.rows(); ++c) {
      double d = 0.0;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        const double diff = x(i, j) - res.centroids(c, j);
        d += diff * diff;
      }
      if (c == res.assignment[i]) assigned = d;
      best = std::min(best, d);
    }
    EXPECT_NEAR(assigned, best, 1e-9);
  }
}

TEST(KMeans, KGreaterOrEqualNDegeneratesToIdentity) {
  std::mt19937_64 rng(6);
  const linalg::Matrix x = blobs(2, 6);  // 6 rows
  const KMeansResult res = kmeans(x, 10, rng);
  EXPECT_EQ(res.centroids.rows(), 6u);
  EXPECT_EQ(res.centroids, x);
  EXPECT_DOUBLE_EQ(res.inertia, 0.0);
}

TEST(KMeans, InertiaDecreasesWithMoreCentroids) {
  const linalg::Matrix x = blobs(40, 7);
  double last = 1e300;
  for (std::size_t k : {1u, 2u, 3u, 6u, 12u}) {
    std::mt19937_64 rng(7);
    const KMeansResult res = kmeans(x, k, rng);
    EXPECT_LE(res.inertia, last * 1.05) << "k=" << k;
    last = res.inertia;
  }
}

TEST(KMeans, PlusPlusBeatsRandomOnAverage) {
  // With few iterations, D^2 seeding should find lower inertia than naive
  // random seeding on clustered data (the reason the paper chose it).
  const linalg::Matrix x = blobs(60, 8);
  KMeansOptions fast;
  fast.max_iterations = 2;
  double pp_total = 0.0, rand_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::mt19937_64 rng1(seed), rng2(seed);
    fast.init = KMeansInit::kPlusPlus;
    pp_total += kmeans(x, 3, rng1, fast).inertia;
    fast.init = KMeansInit::kRandom;
    rand_total += kmeans(x, 3, rng2, fast).inertia;
  }
  EXPECT_LT(pp_total, rand_total);
}

TEST(KMeans, IdenticalPointsHandled) {
  linalg::Matrix x(50, 3);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = 2.0;
    x(i, 2) = 3.0;
  }
  std::mt19937_64 rng(9);
  const KMeansResult res = kmeans(x, 4, rng);
  EXPECT_DOUBLE_EQ(res.inertia, 0.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : res.counts) total += c;
  EXPECT_EQ(total, 50u);
}

TEST(WeightedKMeans, ValidatesArguments) {
  std::mt19937_64 rng(1);
  const linalg::Matrix x = blobs(5, 1);
  const std::vector<std::uint64_t> wrong_size(3, 1);
  EXPECT_THROW((void)weighted_kmeans(x, wrong_size, 2, rng),
               std::invalid_argument);
  const std::vector<std::uint64_t> zeros(x.rows(), 0);
  EXPECT_THROW((void)weighted_kmeans(x, zeros, 2, rng),
               std::invalid_argument);
  const std::vector<std::uint64_t> ok(x.rows(), 1);
  EXPECT_THROW((void)weighted_kmeans(x, ok, 0, rng), std::invalid_argument);
}

TEST(WeightedKMeans, UnitWeightsMatchPlainSemantics) {
  const linalg::Matrix x = blobs(40, 12);
  const std::vector<std::uint64_t> unit(x.rows(), 1);
  std::mt19937_64 rng(12);
  const auto res = weighted_kmeans(x, unit, 3, rng);
  // Same well-separated blobs: recovered and balanced.
  for (std::uint64_t count : res.counts) EXPECT_EQ(count, 40u);
}

TEST(WeightedKMeans, CountsSumToTotalWeight) {
  const linalg::Matrix x = blobs(30, 13);
  std::vector<std::uint64_t> weights(x.rows());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1 + i % 7;
    total += weights[i];
  }
  std::mt19937_64 rng(13);
  const auto res = weighted_kmeans(x, weights, 5, rng);
  std::uint64_t sum = 0;
  for (std::uint64_t c : res.counts) sum += c;
  EXPECT_EQ(sum, total);
}

TEST(WeightedKMeans, HeavyPointPullsItsCentroid) {
  // Two points; one carries 99x the weight: the 1-centroid solution must
  // sit nearly on the heavy point.
  linalg::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  const std::vector<std::uint64_t> weights = {99, 1};
  std::mt19937_64 rng(14);
  const auto res = weighted_kmeans(x, weights, 1, rng);
  EXPECT_NEAR(res.centroids(0, 0), 0.01, 1e-9);
}

TEST(WeightedKMeans, KGreaterEqualNReturnsRowsWithWeights) {
  const linalg::Matrix x = blobs(2, 15);  // 6 rows
  const std::vector<std::uint64_t> weights = {1, 2, 3, 4, 5, 6};
  std::mt19937_64 rng(15);
  const auto res = weighted_kmeans(x, weights, 10, rng);
  EXPECT_EQ(res.centroids.rows(), 6u);
  EXPECT_EQ(res.counts, weights);
}

TEST(KMeans, DeterministicGivenRngState) {
  const linalg::Matrix x = blobs(30, 10);
  std::mt19937_64 rng1(11), rng2(11);
  const KMeansResult a = kmeans(x, 4, rng1);
  const KMeansResult b = kmeans(x, 4, rng2);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace jaal::summarize
