#include "rules/rule.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

namespace jaal::rules {
namespace {

RuleVars vars() {
  RuleVars v;
  v.home_net = AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  return v;
}

TEST(RuleParser, ParsesPaperSshRule) {
  // The SSH brute-force rule quoted in §5.2 (sid 19559).
  const std::string line =
      R"(alert tcp $EXTERNAL_NET any -> $HOME_NET 22 (msg:"INDICATOR-SCAN SSH brute force login attempt"; flow:to_server,established; content:"SSH-"; depth:4; detection_filter: track by_src, count 5, seconds 60; metadata:service ssh; classtype:misc-activity; sid:19559; rev:5;))";
  const Rule rule = parse_rule(line, vars());
  EXPECT_EQ(rule.action, "alert");
  EXPECT_EQ(rule.proto, "tcp");
  EXPECT_TRUE(rule.src_addr.negated);  // $EXTERNAL_NET = !$HOME_NET
  EXPECT_TRUE(rule.src_port.any);
  EXPECT_FALSE(rule.dst_addr.any);
  EXPECT_EQ(rule.dst_port.value(), 22);
  EXPECT_EQ(rule.msg, "INDICATOR-SCAN SSH brute force login attempt");
  ASSERT_TRUE(rule.content.has_value());
  EXPECT_EQ(*rule.content, "SSH-");
  ASSERT_TRUE(rule.detection_filter.has_value());
  EXPECT_EQ(rule.detection_filter->count, 5u);
  EXPECT_DOUBLE_EQ(rule.detection_filter->seconds, 60.0);
  EXPECT_EQ(rule.sid, 19559u);
  EXPECT_EQ(rule.rev, 5u);
}

TEST(RuleParser, ParsesFlagsAndWindow) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any 80 (msg:\"x\"; flags:SA; window:0; sid:1;)",
      vars());
  ASSERT_TRUE(rule.flags.has_value());
  EXPECT_EQ(*rule.flags, 0x12);  // SYN|ACK
  ASSERT_TRUE(rule.window.has_value());
  EXPECT_EQ(*rule.window, 0);
}

TEST(RuleParser, ParsesCidrAddresses) {
  const Rule rule = parse_rule(
      "alert tcp 10.1.0.0/16 any -> 192.168.1.5 443 (msg:\"x\"; sid:2;)",
      vars());
  EXPECT_FALSE(rule.src_addr.any);
  EXPECT_EQ(rule.src_addr.prefix(), 16u);
  EXPECT_TRUE(rule.src_addr.matches(packet::make_ip(10, 1, 200, 3)));
  EXPECT_FALSE(rule.src_addr.matches(packet::make_ip(10, 2, 0, 1)));
  EXPECT_TRUE(rule.dst_addr.is_exact_host());
  EXPECT_TRUE(rule.dst_addr.matches(packet::make_ip(192, 168, 1, 5)));
}

TEST(RuleParser, ParsesJaalVarianceExtension) {
  const Rule rule = parse_rule(
      "alert tcp any any -> $HOME_NET any (msg:\"scan\"; flags:S; "
      "jaal_variance: tcp.dst_port, 0.003; sid:3;)",
      vars());
  ASSERT_TRUE(rule.variance.has_value());
  EXPECT_EQ(rule.variance->field, packet::FieldIndex::kTcpDstPort);
  EXPECT_DOUBLE_EQ(rule.variance->threshold, 0.003);
}

TEST(RuleParser, ParsesJaalRawCountExtension) {
  const Rule rule = parse_rule(
      "alert tcp any any -> $HOME_NET 80 (msg:\"flood\"; flags:S; "
      "detection_filter: count 190, seconds 2; jaal_raw_count: 80; sid:7;)",
      vars());
  ASSERT_TRUE(rule.raw_count.has_value());
  EXPECT_EQ(*rule.raw_count, 80u);
}

TEST(RuleParser, DefaultRulesetCarriesRawCounts) {
  for (const Rule& rule : parse_rules(default_ruleset_text(), vars())) {
    ASSERT_TRUE(rule.raw_count.has_value()) << "sid " << rule.sid;
    // Raw exact-match confirmation is always cheaper than the
    // summary-domain count (which absorbs near-miss benign centroids).
    ASSERT_TRUE(rule.detection_filter.has_value());
    EXPECT_LT(*rule.raw_count, rule.detection_filter->count)
        << "sid " << rule.sid;
  }
}

TEST(RuleParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_rule("alert tcp any any -> any 80", vars()),
               std::invalid_argument);  // no options
  EXPECT_THROW((void)parse_rule("alert tcp any any any 80 (sid:1;)", vars()),
               std::invalid_argument);  // no arrow
  EXPECT_THROW(
      (void)parse_rule("alert udp any any -> any 53 (sid:1;)", vars()),
      std::invalid_argument);  // only tcp supported
  EXPECT_THROW(
      (void)parse_rule("alert tcp any any -> any 80 (bogus_opt:1;)", vars()),
      std::invalid_argument);
  EXPECT_THROW((void)parse_rule(
                   "alert tcp any any -> any 80 (flags:Z; sid:1;)", vars()),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_rule(
          "alert tcp any any -> any 80 (jaal_variance: tcp.dst_port; sid:1;)",
          vars()),
      std::invalid_argument);
}

TEST(RuleParser, SemicolonInsideQuotedMsgSurvives) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any 80 (msg:\"a;b\"; sid:9;)", vars());
  EXPECT_EQ(rule.msg, "a;b");
}

TEST(RuleParser, ParsesMultiRuleText) {
  const std::string text =
      "# comment\n"
      "\n"
      "alert tcp any any -> any 80 (msg:\"one\"; sid:1;)\n"
      "alert tcp any any -> any 443 (msg:\"two\"; sid:2;)\n";
  const auto rules = parse_rules(text, vars());
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].sid, 1u);
  EXPECT_EQ(rules[1].sid, 2u);
}

TEST(RuleParser, DefaultRulesetParses) {
  const auto rules = parse_rules(default_ruleset_text(), vars());
  EXPECT_EQ(rules.size(), 7u);  // 5 attacks + 2 Mirai ports
  bool saw_ssh = false;
  for (const Rule& r : rules) {
    if (r.sid == 19559) {
      saw_ssh = true;
      EXPECT_EQ(r.dst_port.value(), 22);
    }
  }
  EXPECT_TRUE(saw_ssh);
}

TEST(RuleParser, LoadsRulesFromDisk) {
  const std::string path = testing::TempDir() + "/jaal_rules_test.rules";
  {
    std::ofstream file(path);
    file << "# test rules\n";
    file << "alert tcp any any -> $HOME_NET 80 (msg:\"one\"; sid:1;)\n";
    file << "alert tcp any any -> $HOME_NET 443 (msg:\"two\"; sid:2;)\n";
  }
  const auto loaded = load_rules_file(path, vars());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].sid, 1u);
  EXPECT_EQ(loaded[1].sid, 2u);
  EXPECT_THROW((void)load_rules_file("/nonexistent/x.rules", vars()),
               std::runtime_error);
}

TEST(AddrSpec, NegationSemantics) {
  const AddrSpec home = AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16);
  const AddrSpec external =
      AddrSpec::cidr(packet::make_ip(203, 0, 0, 0), 16, /*negated=*/true);
  EXPECT_TRUE(home.matches(packet::make_ip(203, 0, 5, 5)));
  EXPECT_FALSE(external.matches(packet::make_ip(203, 0, 5, 5)));
  EXPECT_TRUE(external.matches(packet::make_ip(8, 8, 8, 8)));
}

TEST(AddrSpec, PrefixZeroMatchesAll) {
  const AddrSpec spec = AddrSpec::cidr(0, 0);
  EXPECT_TRUE(spec.matches(0));
  EXPECT_TRUE(spec.matches(0xFFFFFFFF));
}

TEST(AddrSpec, BracketedListIsUnion) {
  const Rule rule = parse_rule(
      "alert tcp [10.0.0.0/8,192.168.1.0/24] any -> any 80 (msg:\"x\"; "
      "sid:11;)",
      vars());
  EXPECT_TRUE(rule.src_addr.matches(packet::make_ip(10, 9, 8, 7)));
  EXPECT_TRUE(rule.src_addr.matches(packet::make_ip(192, 168, 1, 200)));
  EXPECT_FALSE(rule.src_addr.matches(packet::make_ip(192, 168, 2, 1)));
  EXPECT_FALSE(rule.src_addr.matches(packet::make_ip(11, 0, 0, 1)));
}

TEST(AddrSpec, NegatedListMatchesComplement) {
  const Rule rule = parse_rule(
      "alert tcp ![10.0.0.0/8,172.16.0.0/12] any -> any 80 (msg:\"x\"; "
      "sid:12;)",
      vars());
  EXPECT_FALSE(rule.src_addr.matches(packet::make_ip(10, 1, 1, 1)));
  EXPECT_FALSE(rule.src_addr.matches(packet::make_ip(172, 20, 0, 1)));
  EXPECT_TRUE(rule.src_addr.matches(packet::make_ip(8, 8, 8, 8)));
}

TEST(PortSpec, RangesAndLists) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any [22,80,8000:8080] (msg:\"x\"; sid:13;)",
      vars());
  EXPECT_TRUE(rule.dst_port.matches(22));
  EXPECT_TRUE(rule.dst_port.matches(80));
  EXPECT_TRUE(rule.dst_port.matches(8040));
  EXPECT_TRUE(rule.dst_port.matches(8080));
  EXPECT_FALSE(rule.dst_port.matches(8081));
  EXPECT_FALSE(rule.dst_port.matches(443));
}

TEST(PortSpec, OpenEndedRanges) {
  const Rule low = parse_rule(
      "alert tcp any any -> any :1023 (msg:\"x\"; sid:14;)", vars());
  EXPECT_TRUE(low.dst_port.matches(0));
  EXPECT_TRUE(low.dst_port.matches(1023));
  EXPECT_FALSE(low.dst_port.matches(1024));
  const Rule high = parse_rule(
      "alert tcp any 32768: -> any any (msg:\"x\"; sid:15;)", vars());
  EXPECT_TRUE(high.src_port.matches(65535));
  EXPECT_FALSE(high.src_port.matches(32767));
}

TEST(PortSpec, NegatedPort) {
  const Rule rule = parse_rule(
      "alert tcp any any -> any !80 (msg:\"x\"; sid:16;)", vars());
  EXPECT_FALSE(rule.dst_port.matches(80));
  EXPECT_TRUE(rule.dst_port.matches(81));
  EXPECT_FALSE(rule.dst_port.is_exact_port());  // negation is not exact
}

TEST(PortSpec, RejectsMalformedRanges) {
  EXPECT_THROW((void)parse_rule(
                   "alert tcp any any -> any 1024:80 (msg:\"x\"; sid:17;)",
                   vars()),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_rule("alert tcp any any -> any 70000 (msg:\"x\"; sid:18;)",
                       vars()),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_rule("alert tcp [] any -> any 80 (msg:\"x\"; sid:19;)",
                       vars()),
      std::invalid_argument);
}

TEST(RuleMatch, FiveTupleAndFlags) {
  Rule rule = parse_rule(
      "alert tcp any any -> 203.0.10.5 80 (msg:\"x\"; flags:S; sid:4;)",
      vars());
  packet::PacketRecord pkt;
  pkt.ip.src_ip = packet::make_ip(1, 2, 3, 4);
  pkt.ip.dst_ip = packet::make_ip(203, 0, 10, 5);
  pkt.tcp.dst_port = 80;
  pkt.tcp.set(packet::TcpFlag::kSyn);
  EXPECT_TRUE(rule.matches_packet(pkt));
  pkt.tcp.set(packet::TcpFlag::kAck);  // SYN|ACK is not flags:S exactly
  EXPECT_FALSE(rule.matches_packet(pkt));
  pkt.tcp.set(packet::TcpFlag::kAck, false);
  pkt.tcp.dst_port = 81;
  EXPECT_FALSE(rule.matches_packet(pkt));
}

TEST(ParseFlagLetters, AllLetters) {
  EXPECT_EQ(parse_flag_letters("FSRPAU"), 0x3F);
  EXPECT_EQ(parse_flag_letters("S"), 0x02);
  EXPECT_EQ(parse_flag_letters(""), 0x00);
  EXPECT_THROW((void)parse_flag_letters("X"), std::invalid_argument);
}

}  // namespace
}  // namespace jaal::rules
