// Determinism contract of the execution runtime: every parallelized stage
// (k-means assignment, monitor epoch flush, question matching) must produce
// bit-identical results to the serial path — threads change wall clock,
// never output.
#include <gtest/gtest.h>

#include "attack/generators.hpp"
#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "runtime/thread_pool.hpp"
#include "summarize/summarizer.hpp"
#include "trace/mix.hpp"

namespace jaal::core {
namespace {

std::vector<rules::Rule> ruleset() {
  return rules::parse_rules(rules::default_ruleset_text(),
                            evaluation_rule_vars());
}

std::vector<packet::PacketRecord> traffic(std::size_t n, std::uint64_t seed) {
  trace::BackgroundTraffic gen(trace::trace1_profile(), seed);
  return trace::take(gen, n);
}

TEST(ParallelEquivalence, KMeansAssignmentBitIdenticalAcrossPools) {
  const auto packets = traffic(900, 5);
  const linalg::Matrix x = summarize::to_normalized_matrix(packets);

  std::mt19937_64 rng_serial(7);
  const summarize::KMeansResult serial =
      summarize::kmeans(x, 64, rng_serial, {});

  runtime::ThreadPool pool(4);
  summarize::KMeansOptions pooled_opts;
  pooled_opts.pool = &pool;
  std::mt19937_64 rng_pooled(7);
  const summarize::KMeansResult pooled =
      summarize::kmeans(x, 64, rng_pooled, pooled_opts);

  EXPECT_EQ(serial.assignment, pooled.assignment);
  EXPECT_EQ(serial.counts, pooled.counts);
  EXPECT_EQ(serial.iterations, pooled.iterations);
  EXPECT_EQ(serial.inertia, pooled.inertia);  // bitwise, not approximate
  ASSERT_EQ(serial.centroids.rows(), pooled.centroids.rows());
  const auto& a = serial.centroids.data();
  const auto& b = pooled.centroids.data();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "centroid element " << i;
  }
}

TEST(ParallelEquivalence, SummarizerProducesIdenticalWireBytesWithPool) {
  summarize::SummarizerConfig cfg;
  cfg.batch_size = 800;
  cfg.min_batch = 200;
  cfg.rank = 10;
  cfg.centroids = 96;
  const auto packets = traffic(800, 9);

  summarize::Summarizer serial(cfg, 1);
  const auto serial_out = serial.summarize(packets);

  auto pool = std::make_shared<runtime::ThreadPool>(8);
  summarize::Summarizer pooled(cfg, 1);
  pooled.set_pool(pool);
  const auto pooled_out = pooled.summarize(packets);

  EXPECT_EQ(serial_out.assignment, pooled_out.assignment);
  EXPECT_EQ(summarize::serialize(serial_out.summary),
            summarize::serialize(pooled_out.summary));
}

std::vector<EpochResult> run_deployment(std::size_t threads) {
  JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.rank = 12;
  cfg.summarizer.centroids = 48;
  cfg.monitor_count = 4;
  cfg.epoch_seconds = 0.04;
  // Strict/loose pair so the case-3 feedback path (serial, order-dependent
  // fetch cache) is exercised under the pool too.
  cfg.engine.default_thresholds = {0.008, 0.03};
  cfg.engine.tau_c_scale = 1.0;
  cfg.threads = threads;

  JaalController controller(cfg, ruleset());
  trace::BackgroundTraffic bg(trace::trace1_profile(), 11);
  attack::AttackConfig acfg;
  acfg.victim_ip = evaluation_victim_ip();
  acfg.start_time = 0.03;
  acfg.packets_per_second = 5000.0;
  acfg.seed = 3;
  attack::SynFlood flood(acfg);
  trace::TrafficMix mix(bg, {&flood}, 0.10);
  return controller.run(mix, 0.25);
}

TEST(ParallelEquivalence, ControllerAlertsIdenticalAtOneAndEightThreads) {
  const auto serial = run_deployment(1);
  const auto pooled = run_deployment(8);

  ASSERT_EQ(serial.size(), pooled.size());
  std::size_t total_alerts = 0;
  for (std::size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e].end_time, pooled[e].end_time);
    EXPECT_EQ(serial[e].packets, pooled[e].packets);
    EXPECT_EQ(serial[e].monitors_reporting, pooled[e].monitors_reporting);
    ASSERT_EQ(serial[e].alerts.size(), pooled[e].alerts.size())
        << "epoch " << e;
    for (std::size_t a = 0; a < serial[e].alerts.size(); ++a) {
      const inference::Alert& lhs = serial[e].alerts[a];
      const inference::Alert& rhs = pooled[e].alerts[a];
      EXPECT_EQ(lhs.sid, rhs.sid);
      EXPECT_EQ(lhs.msg, rhs.msg);
      EXPECT_EQ(lhs.matched_packets, rhs.matched_packets);
      EXPECT_EQ(lhs.distributed, rhs.distributed);
      EXPECT_EQ(lhs.via_feedback, rhs.via_feedback);
      EXPECT_EQ(lhs.variance, rhs.variance);  // bitwise
    }
    total_alerts += serial[e].alerts.size();
  }
  // The injected SYN flood must actually fire somewhere, or this test
  // would pass vacuously on empty alert streams.
  EXPECT_GT(total_alerts, 0u);
}

TEST(ParallelEquivalence, ControllerReportsRuntimeStatsOnlyWhenPooled) {
  JaalConfig cfg;
  cfg.summarizer.batch_size = 400;
  cfg.summarizer.min_batch = 150;
  cfg.summarizer.centroids = 32;
  cfg.monitor_count = 2;
  cfg.threads = 1;
  JaalController serial(cfg, ruleset());
  EXPECT_EQ(serial.threads(), 1u);
  EXPECT_FALSE(serial.runtime_stats().has_value());

  cfg.threads = 3;
  JaalController pooled(cfg, ruleset());
  EXPECT_EQ(pooled.threads(), 3u);
  trace::BackgroundTraffic gen(trace::trace1_profile(), 2);
  for (const auto& pkt : trace::take(gen, 900)) pooled.ingest(pkt);
  (void)pooled.close_epoch(1.0);
  const auto stats = pooled.runtime_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->threads, 3u);
#ifndef JAAL_TELEMETRY_DISABLED
  // Counts only accumulate when the telemetry backing store is compiled in.
  EXPECT_GE(stats->tasks_submitted, cfg.monitor_count);
  // The flush stage was timed and renders through core/metrics.
  ASSERT_FALSE(stats->stages.empty());
  EXPECT_FALSE(describe(*stats).empty());
#endif
}

}  // namespace
}  // namespace jaal::core
